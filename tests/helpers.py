"""Shared non-fixture test helpers (importable from any test module)."""

from __future__ import annotations

import numpy as np

from repro.graph.datasets import DatasetSpec, PaperScale


def make_spec(
    name: str = "tiny",
    num_nodes: int = 2000,
    avg_degree: float = 8.0,
    feature_dim: int = 16,
    num_classes: int = 5,
    train_fraction: float = 0.3,
    left_memory_bytes: int = 1 << 30,
) -> DatasetSpec:
    """A small DatasetSpec with plausible paper-scale metadata."""
    return DatasetSpec(
        name=name,
        num_nodes=num_nodes,
        avg_degree=avg_degree,
        feature_dim=feature_dim,
        num_classes=num_classes,
        train_fraction=train_fraction,
        paper=PaperScale(
            num_nodes=num_nodes * 100,
            num_edges=int(num_nodes * avg_degree * 50),
            left_memory_bytes=left_memory_bytes,
        ),
    )


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-2) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` at ``x``."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = fn(x.astype(np.float32))
        x[idx] = orig - eps
        lo = fn(x.astype(np.float32))
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


def assert_grad_close(analytic: np.ndarray, numeric: np.ndarray,
                      rtol: float = 5e-2, atol: float = 5e-3) -> None:
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
