"""Tests for the experiment runner and (cheap) experiment drivers.

The full experiment set runs in the benchmark suite; here the shared
machinery and the light-weight drivers are exercised directly.
"""

import numpy as np
import pytest

from repro.config import RunConfig
from repro.experiments import runner as exp_runner
from repro.experiments.runner import (
    ExperimentResult,
    clear_report_cache,
    epoch_report,
    short_name,
    speedup,
)
from repro.experiments import tab03_gpu_spec


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_report_cache()
    yield
    clear_report_cache()


class TestExperimentResult:
    def test_render_contains_table_and_notes(self):
        result = ExperimentResult(
            exp_id="x1", title="demo",
            headers=["a", "b"], rows=[[1, 2.5]],
            series=[("s", [0, 1], [1.0, 2.0])],
            notes=["hello"],
        )
        text = result.render()
        assert "x1: demo" in text
        assert "2.5" in text
        assert "s: 0=1" in text
        assert "note: hello" in text

    def test_row_dict(self):
        result = ExperimentResult(exp_id="x", title="t",
                                  headers=["k", "v"],
                                  rows=[["a", 1], ["b", 2]])
        assert result.row_dict()["b"] == ["b", 2]


class TestRunnerHelpers:
    def test_short_names(self):
        assert short_name("reddit") == "RD"
        assert short_name("papers100m") == "PA"
        assert short_name("custom") == "custom"

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_epoch_report_memoized(self, tiny_dataset, monkeypatch):
        calls = []
        from repro.frameworks import DGLFramework

        original = DGLFramework.run_epoch

        def counted(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(DGLFramework, "run_epoch", counted)
        cfg = RunConfig(batch_size=64, fanouts=(3,), num_gpus=2,
                        hidden_dim=8)
        # Memoization requires the registry path; feed the tiny dataset
        # through a patched get_dataset.
        monkeypatch.setattr(exp_runner, "get_dataset",
                            lambda name, seed=0: tiny_dataset)
        a = epoch_report("dgl", "tiny", cfg)
        b = epoch_report("dgl", "tiny", cfg)
        assert a is b
        assert len(calls) == 1

    def test_epoch_report_custom_dataset_not_cached(self, tiny_dataset):
        cfg = RunConfig(batch_size=64, fanouts=(3,), num_gpus=2,
                        hidden_dim=8)
        a = epoch_report("dgl", "tiny", cfg, dataset=tiny_dataset)
        b = epoch_report("dgl", "tiny", cfg, dataset=tiny_dataset)
        assert a is not b


class TestCheapExperiments:
    def test_tab03_rows(self):
        result = tab03_gpu_spec.run()
        assert result.exp_id == "tab03"
        assert len(result.rows) == 4

    def test_tab02_trace_shape(self, tiny_graph, tiny_dataset):
        from repro.experiments.tab02_cache_hits import aggregation_trace
        from repro.sampling import NeighborSampler

        sampler = NeighborSampler(tiny_graph, (3, 4), rng=0)
        sg = sampler.sample(tiny_dataset.train_ids[:32])
        block = sg.layers[-1]
        trace = aggregation_trace(block, feature_dim=128, max_edges=500)
        lines_per_row = 128 * 4 // 128
        expected = min(500, block.num_edges) * (2 * lines_per_row + 1)
        assert len(trace) == expected
        assert np.all(trace >= 0)
