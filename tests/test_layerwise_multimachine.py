"""Tests for the extension features: layer-wise sampler, multi-machine."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.gpu.multimachine import (
    MachineSpec,
    hierarchical_allreduce_time,
    multimachine_epoch_time,
)
from repro.sampling import BaselineIdMap
from repro.sampling.layerwise import LayerWiseSampler


class TestLayerWiseSampler:
    @pytest.fixture()
    def sampler(self, tiny_graph):
        return LayerWiseSampler(tiny_graph, (64, 256), rng=0)

    def test_block_structure(self, sampler, tiny_dataset):
        sg = sampler.sample(tiny_dataset.train_ids[:32])
        sg.validate()
        assert sg.num_layers == 2

    def test_layer_budget_bounds_frontier(self, sampler, tiny_dataset):
        sg = sampler.sample(tiny_dataset.train_ids[:32])
        # frontier <= previous frontier + layer budget.
        assert sg.layers[0].num_src <= 32 + 64
        assert sg.layers[1].num_src <= sg.layers[0].num_src + 256

    def test_edges_are_real(self, sampler, tiny_graph, tiny_dataset):
        sg = sampler.sample(tiny_dataset.train_ids[:16])
        block = sg.layers[0]
        src_g = block.src_global[block.edge_src]
        dst_g = block.dst_global[block.edge_dst]
        for s, d in zip(src_g[:100], dst_g[:100]):
            assert s in tiny_graph.neighbors(int(d))

    def test_degree_biased_candidates(self, tiny_graph, tiny_dataset):
        """High-degree nodes appear in the candidate pool far more often
        than uniform sampling would produce."""
        sampler = LayerWiseSampler(tiny_graph, (128,), rng=1)
        picks = []
        for trial in range(20):
            sg = sampler.sample(tiny_dataset.train_ids[trial::40][:16])
            picks.append(sg.layers[0].src_global)
        picked = np.concatenate(picks)
        avg_degree_picked = tiny_graph.degrees[picked].mean()
        assert avg_degree_picked > 1.2 * tiny_graph.degrees.mean()

    def test_invalid_args(self, tiny_graph):
        with pytest.raises(SamplingError):
            LayerWiseSampler(tiny_graph, ())
        with pytest.raises(SamplingError):
            LayerWiseSampler(tiny_graph, (0,))
        with pytest.raises(SamplingError):
            LayerWiseSampler(tiny_graph, (8,), device="dsp")

    def test_edgeless_graph_rejected(self):
        from repro.graph.csr import CSRGraph

        empty = CSRGraph(indptr=np.zeros(5, dtype=np.int64),
                         indices=np.array([], dtype=np.int64))
        with pytest.raises(SamplingError):
            LayerWiseSampler(empty, (4,))

    def test_idmap_injection(self, tiny_graph, tiny_dataset):
        sampler = LayerWiseSampler(tiny_graph, (64,),
                                   idmap=BaselineIdMap(), rng=0)
        sg = sampler.sample(tiny_dataset.train_ids[:8])
        assert sg.idmap_report.sync_events > 0


class TestMultiMachine:
    def test_single_machine_is_intra_only(self):
        from repro.gpu.cluster import allreduce_time

        spec = MachineSpec(gpus_per_machine=4)
        t = hierarchical_allreduce_time(1e8, 1, spec)
        assert t == pytest.approx(allreduce_time(1e8, 4))

    def test_inter_machine_adds_nic_cost(self):
        spec = MachineSpec(gpus_per_machine=4)
        one = hierarchical_allreduce_time(1e8, 1, spec)
        two = hierarchical_allreduce_time(1e8, 2, spec)
        assert two > one

    def test_zero_bytes(self):
        assert hierarchical_allreduce_time(0, 4) == 0.0

    def test_invalid_machines(self):
        with pytest.raises(ValueError):
            hierarchical_allreduce_time(1e6, 0)
        with pytest.raises(ValueError):
            multimachine_epoch_time(1.0, 10, 1e6, 0)

    def test_epoch_time_scales_down(self):
        t1 = multimachine_epoch_time(10.0, 100, 1e6, 1)
        t4 = multimachine_epoch_time(10.0, 100, 1e6, 4)
        assert t4 < t1
        # But never superlinearly.
        assert t4 > t1 / 8

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            multimachine_epoch_time(1.0, -1, 1e6, 2)
