"""Tests for the cluster tier: spec, fabric, halo exchange, run wiring."""

import numpy as np
import pytest

from repro import api
from repro.cluster import ClusterSpec, HaloExchange, NetworkFabric
from repro.cluster.fabric import NetworkFabric as Fabric
from repro.cluster.partitioner import random_partition
from repro.config import RunConfig
from repro.errors import ConfigError, NetworkStallError
from repro.faults import FaultPlan, FaultSpec, fault_scope
from repro.faults.retry import RetryPolicy
from repro.graph.datasets import Dataset
from repro.storage.cache import MISS, FrequencyPageCache

import helpers


class TestClusterSpec:
    def test_defaults_valid(self):
        spec = ClusterSpec()
        assert spec.num_nodes == 4
        assert spec.partitioner == "greedy"

    @pytest.mark.parametrize("kwargs", [
        dict(num_nodes=0),
        dict(topology="torus"),
        dict(link_bandwidth=0.0),
        dict(link_latency_s=-1.0),
        dict(nic_bandwidth=-5.0),
        dict(oversubscription=0.5),
        dict(pod_size=0),
        dict(partitioner="metis-real"),
        dict(balance_slack=-0.1),
        dict(remote_cache="arc"),
        dict(remote_cache_ratio=1.5),
        dict(allreduce="butterfly"),
    ])
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ClusterSpec(**kwargs)

    def test_frozen_and_hashable(self):
        spec = ClusterSpec(num_nodes=8)
        assert hash(spec) == hash(ClusterSpec(num_nodes=8))
        with pytest.raises(AttributeError):
            spec.num_nodes = 2


class TestNetworkFabric:
    def test_fat_tree_penalizes_inter_pod(self):
        fabric = Fabric(num_nodes=8, topology="fat-tree",
                        link_bandwidth=10e9, oversubscription=2.0,
                        pod_size=4)
        assert fabric.pair_bandwidth(0, 3) == 10e9       # same pod
        assert fabric.pair_bandwidth(0, 4) == 5e9        # across pods
        alltoall = Fabric(num_nodes=8, topology="alltoall",
                          link_bandwidth=10e9)
        assert alltoall.pair_bandwidth(0, 4) == 10e9

    def test_gather_time_fluid_model(self):
        fabric = Fabric(num_nodes=4, link_bandwidth=10e9,
                        link_latency_s=1e-6, nic_bandwidth=10e9)
        # One dominant flow: bounded by total bytes over the NIC.
        skewed = fabric.gather_time({1: 10_000_000, 2: 1_000}, node=0)
        assert skewed == pytest.approx(1e-6 + 10_001_000 / 10e9)
        # The makespan never beats the largest single flow's own link.
        slow_link = Fabric(num_nodes=8, topology="fat-tree",
                           link_bandwidth=10e9, link_latency_s=1e-6,
                           nic_bandwidth=100e9, oversubscription=2.0,
                           pod_size=4)
        t = slow_link.gather_time({4: 10_000_000}, node=0)
        assert t == pytest.approx(1e-6 + 10_000_000 / 5e9)

    def test_gather_ignores_self_and_empty(self):
        fabric = Fabric(num_nodes=4)
        assert fabric.gather_time({}, node=0) == 0.0
        assert fabric.gather_time({0: 1_000_000}, node=0) == 0.0
        assert fabric.gather_time({1: 0}, node=0) == 0.0

    def test_ring_vs_tree_crossover(self):
        fabric = Fabric(num_nodes=8, link_bandwidth=10e9,
                        link_latency_s=10e-6, nic_bandwidth=10e9)
        # Large payload: ring's 2(n-1)/n bandwidth term wins.
        big = 1_000_000_000
        assert (fabric.allreduce_time(big, "ring")
                < fabric.allreduce_time(big, "tree"))
        # Tiny payload: tree's 2*log2(n) latency steps beat 2(n-1).
        small = 1_000
        assert (fabric.allreduce_time(small, "tree")
                < fabric.allreduce_time(small, "ring"))

    def test_allreduce_degenerate_cases(self):
        fabric = Fabric(num_nodes=1)
        assert fabric.allreduce_time(1_000_000, "ring") == 0.0
        many = Fabric(num_nodes=4)
        assert many.allreduce_time(0, "ring") == 0.0
        with pytest.raises(ValueError):
            many.allreduce_time(100, "butterfly")

    def test_from_spec_roundtrip(self):
        spec = ClusterSpec(num_nodes=8, topology="fat-tree",
                           link_bandwidth=1e9, pod_size=2)
        fabric = NetworkFabric.from_spec(spec)
        assert fabric.num_nodes == 8
        assert fabric.topology == "fat-tree"
        assert fabric.pod_of(3) == 1


class TestFrequencyCache:
    def test_admission_protects_hot_pages(self):
        cache = FrequencyPageCache(2)
        for _ in range(3):
            cache.lookup(1)
            cache.lookup(2)
        cache.insert(1, "a")
        cache.insert(2, "b")
        # A once-seen page cannot displace established residents.
        assert cache.lookup(9) is MISS
        cache.insert(9, "c")
        assert cache.lookup(1) == "a"
        assert cache.lookup(2) == "b"
        assert cache.lookup(9) is MISS

    def test_hot_newcomer_evicts_coldest(self):
        cache = FrequencyPageCache(2)
        cache.lookup(1)
        cache.insert(1, "a")
        cache.lookup(2)
        cache.insert(2, "b")
        for _ in range(5):
            cache.lookup(9)
        cache.insert(9, "c")
        # Victim is the (count, id)-minimal resident: page 1.
        assert cache.lookup(9) == "c"
        assert cache.lookup(1) is MISS
        assert cache.evictions == 1

    def test_heap_matches_scan_reference(self):
        """The lazy-heap victim selection is behaviorally identical to
        the full (count, id) min-scan it replaced."""
        rng = np.random.default_rng(0)
        cache = FrequencyPageCache(16)
        shadow_frames: dict = {}
        for page in rng.integers(0, 64, size=2000).tolist():
            resident = cache.lookup(page) is not MISS
            assert resident == (page in shadow_frames)
            if resident:
                continue
            # Reference: exact min-scan over the shadow copy.
            if len(shadow_frames) < 16:
                shadow_frames[page] = True
            else:
                victim = min(shadow_frames,
                             key=lambda p: (cache._counts.get(p, 0), p))
                if (cache._counts.get(page, 0)
                        > cache._counts.get(victim, 0)):
                    del shadow_frames[victim]
                    shadow_frames[page] = True
            cache.insert(page, True)
            assert set(cache._frames) == set(shadow_frames)


def _exchange(num_graph_nodes=400, num_cluster_nodes=4, seed=0,
              cache="freq", retry_policy=None) -> HaloExchange:
    spec = ClusterSpec(num_nodes=num_cluster_nodes, remote_cache=cache)
    assignment = random_partition(num_graph_nodes, num_cluster_nodes,
                                  seed=seed)
    fabric = NetworkFabric.from_spec(spec)
    return HaloExchange(assignment, fabric, spec, bytes_per_row=64,
                        retry_policy=retry_policy)


class TestHaloConservation:
    def test_bytes_conserved_end_to_end(self):
        halo = _exchange()
        rng = np.random.default_rng(1)
        for batch in range(20):
            node = batch % halo.num_nodes
            ids = rng.integers(0, 400, size=80)
            report = halo.exchange(node, ids)
            # Per-batch double entry.
            assert report.fetched_rows == (report.requested_rows
                                           - report.cache_hits)
            assert report.bytes_total == report.fetched_rows * 64
        # Cumulative: bytes sent == bytes received == fetched rows paid
        # at row granularity (cache hits never touch the fabric).
        assert halo.bytes_sent_total == halo.bytes_received_total
        assert halo.bytes_sent_total == halo.fetched_rows * 64
        assert halo.fetched_rows == halo.requested_rows - halo.cache_hits
        assert 0.0 < halo.hit_rate < 1.0

    def test_no_self_traffic(self):
        halo = _exchange()
        rng = np.random.default_rng(2)
        for batch in range(12):
            halo.exchange(batch % halo.num_nodes,
                          rng.integers(0, 400, size=60))
        assert np.all(np.diag(halo.traffic) == 0)

    def test_local_only_batch_is_free(self):
        halo = _exchange(cache="none")
        local = np.flatnonzero(halo.assignment == 2)[:10]
        report = halo.exchange(2, local)
        assert report.requested_rows == 0
        assert report.exchange_s == 0.0

    def test_cache_policies_all_run(self):
        # Deliberate reuse: one requesting node, a small ID universe,
        # and enough capacity that repeats must hit for every policy.
        rng = np.random.default_rng(3)
        batches = [rng.integers(0, 120, size=60) for _ in range(10)]
        hit_rates = {}
        for cache in ("freq", "partition", "lru", "none"):
            spec = ClusterSpec(num_nodes=4, remote_cache=cache,
                               remote_cache_ratio=0.5)
            assignment = random_partition(400, 4, seed=0)
            halo = HaloExchange(assignment, NetworkFabric.from_spec(spec),
                                spec, bytes_per_row=64)
            for ids in batches:
                halo.exchange(0, ids)
            hit_rates[cache] = halo.hit_rate
        assert hit_rates["none"] == 0.0
        assert all(rate > 0 for name, rate in hit_rates.items()
                   if name != "none")


class TestNetStall:
    def _stall_plan(self, probability=1.0, max_failures=2, seed=7):
        return FaultPlan(seed=seed, sites={
            "net_stall": FaultSpec(probability=probability,
                                   max_failures=max_failures),
        })

    def test_recovered_stalls_add_backoff_delay(self):
        with fault_scope(self._stall_plan()):
            halo = _exchange(cache="none")
            rng = np.random.default_rng(4)
            report = halo.exchange(0, rng.integers(0, 400, size=80))
        assert report.retries > 0
        assert report.retry_delay_s > 0.0
        # The backoff is folded into the modeled exchange time.
        base = halo.fabric.gather_time(report.bytes_by_peer, 0)
        assert report.exchange_s == pytest.approx(
            base + report.retry_delay_s)

    def test_stalls_are_deterministic(self):
        def run():
            with fault_scope(self._stall_plan(probability=0.5)):
                halo = _exchange(cache="none")
                rng = np.random.default_rng(5)
                for i in range(10):
                    halo.exchange(i % halo.num_nodes,
                                  rng.integers(0, 400, size=60))
            return halo.retries, halo.retry_delay_s_total

        assert run() == run()

    def test_exhausted_budget_raises_network_stall(self):
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0,
                             jitter_fraction=0.0)
        with fault_scope(self._stall_plan(max_failures=5)):
            halo = _exchange(cache="none", retry_policy=policy)
            rng = np.random.default_rng(6)
            with pytest.raises(NetworkStallError) as excinfo:
                halo.exchange(1, rng.integers(0, 400, size=80))
        assert excinfo.value.dst == 1
        assert excinfo.value.attempts == 2


class TestRunWithCluster:
    @pytest.fixture(scope="class")
    def dataset(self):
        return Dataset(helpers.make_spec(name="cluster-run",
                                         num_nodes=800, avg_degree=6.0,
                                         feature_dim=16, num_classes=4),
                       seed=3)

    @pytest.fixture(scope="class")
    def report(self, dataset):
        return api.run(
            "dgl", dataset,
            config=RunConfig(batch_size=64, fanouts=(3, 3), num_gpus=2,
                             seed=1),
            exec=api.ExecutionSpec(cluster=ClusterSpec(num_nodes=2)),
        )

    def test_network_phase_populated(self, report):
        assert report.phases.network > 0.0
        detail = report.phases.fractions(detail=True)
        assert detail["network"] > 0.0
        assert sum(detail.values()) == pytest.approx(1.0)

    def test_timeline_reconciles(self, report):
        spans = report.timeline()
        extent = max(span.end for span in spans)
        assert extent == pytest.approx(report.epoch_time, abs=1e-9)
        assert any(span.category == "network" for span in spans)

    def test_cluster_summary_in_extras(self, report):
        cluster = report.extras["cluster"]
        assert cluster["num_nodes"] == 2
        assert cluster["partition"]["sizes"][0] > 0
        halo = cluster["halo"]
        assert halo["requested_rows"] > 0
        assert halo["bytes_moved"] == halo["fetched_rows"] * 16 * 4

    def test_owner_compute_batch_placement(self, dataset):
        """Each lane's seeds are owned by the lane's node."""
        from repro.cluster.engine import ClusterState

        config = RunConfig(batch_size=32, num_gpus=2, seed=1)
        state = ClusterState(dataset, config, ClusterSpec(num_nodes=2), 2)
        batches = [np.arange(0, 200), np.arange(200, 400)]
        chunks = state.place_batches(batches, config.batch_size)
        assert len(chunks) == 4  # 2 nodes x 2 lanes
        all_seeds = []
        for lane, chunk in enumerate(chunks):
            node = state.node_of_lane(lane)
            for batch in chunk:
                assert len(batch) <= config.batch_size
                assert np.all(state.assignment[batch] == node)
                all_seeds.append(batch)
        # Every seed still trained exactly once.
        np.testing.assert_array_equal(
            np.sort(np.concatenate(all_seeds)), np.arange(400))
