"""Tests for the graph-aware autograd ops (Eq. 1 / Eq. 5 semantics)."""

import numpy as np
import pytest

from helpers import assert_grad_close, numerical_gradient
from repro.nn.functional import (
    a3_aggregate,
    cross_entropy,
    dropout,
    edge_softmax,
    elu,
    gather_rows,
    leaky_relu,
    log_softmax,
    relu,
    segment_sum,
)
from repro.nn.tensor import Tensor


class TestGatherSegment:
    def test_gather_rows_forward(self, rng):
        x = Tensor(rng.random((5, 3), dtype=np.float32))
        idx = np.array([4, 0, 0])
        out = gather_rows(x, idx)
        np.testing.assert_allclose(out.data, x.data[idx])

    def test_gather_rows_backward_scatter_adds(self):
        x = Tensor(np.zeros((3, 2), dtype=np.float32), requires_grad=True)
        gather_rows(x, np.array([1, 1, 2])).sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 0], [2, 2], [1, 1]])

    def test_segment_sum_forward(self):
        x = Tensor(np.array([[1.0], [2.0], [3.0]], dtype=np.float32))
        out = segment_sum(x, np.array([0, 0, 1]), num_segments=3)
        np.testing.assert_allclose(out.data, [[3.0], [3.0], [0.0]])

    def test_segment_sum_backward(self):
        x = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        out = segment_sum(x, np.array([0, 1, 1]), num_segments=2)
        (out * Tensor(np.array([[1.0, 1.0], [5.0, 5.0]]))).sum().backward()
        np.testing.assert_allclose(x.grad, [[1, 1], [5, 5], [5, 5]])


class TestA3Aggregate:
    def test_eq1_forward(self):
        """h_u = sum_{v in N(u)} w_uv x_v, exactly."""
        x = Tensor(np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 2.0]],
                            dtype=np.float32))
        w = Tensor(np.array([0.5, 2.0, 1.0], dtype=np.float32))
        out = a3_aggregate(x, np.array([0, 1, 2]), np.array([0, 0, 1]), w, 2)
        np.testing.assert_allclose(out.data, [[0.5, 2.0], [2.0, 2.0]])

    def test_gradcheck_features_and_weights(self, rng):
        num_src, num_dst, num_edges, dim = 6, 3, 10, 4
        edge_src = rng.integers(0, num_src, num_edges)
        edge_dst = rng.integers(0, num_dst, num_edges)
        x0 = rng.random((num_src, dim), dtype=np.float32)
        w0 = rng.random(num_edges, dtype=np.float32)

        x = Tensor(x0, requires_grad=True)
        w = Tensor(w0, requires_grad=True)
        (a3_aggregate(x, edge_src, edge_dst, w, num_dst) ** 2.0)\
            .sum().backward()

        def fx(arr):
            return float(
                (a3_aggregate(Tensor(arr), edge_src, edge_dst,
                              Tensor(w0), num_dst) ** 2.0).sum().data
            )

        def fw(arr):
            return float(
                (a3_aggregate(Tensor(x0), edge_src, edge_dst,
                              Tensor(arr), num_dst) ** 2.0).sum().data
            )

        assert_grad_close(x.grad, numerical_gradient(fx, x0))
        assert_grad_close(w.grad, numerical_gradient(fw, w0))

    def test_length_mismatch(self):
        x = Tensor(np.zeros((2, 2)))
        w = Tensor(np.zeros(3))
        with pytest.raises(ValueError):
            a3_aggregate(x, np.array([0]), np.array([0]), w, 1)

    def test_isolated_target_zero(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32))
        w = Tensor(np.ones(1, dtype=np.float32))
        out = a3_aggregate(x, np.array([0]), np.array([0]), w, num_dst=3)
        np.testing.assert_allclose(out.data[1:], 0.0)


class TestEdgeSoftmax:
    def test_sums_to_one_per_target(self, rng):
        scores = Tensor(rng.normal(size=12).astype(np.float32))
        edge_dst = rng.integers(0, 4, 12)
        alpha = edge_softmax(scores, edge_dst, 4)
        sums = np.zeros(4)
        np.add.at(sums, edge_dst, alpha.data)
        present = np.unique(edge_dst)
        np.testing.assert_allclose(sums[present], 1.0, rtol=1e-5)

    def test_single_edge_is_one(self):
        alpha = edge_softmax(Tensor(np.array([3.7], dtype=np.float32)),
                             np.array([0]), 1)
        np.testing.assert_allclose(alpha.data, [1.0])

    def test_stability_with_large_scores(self):
        scores = Tensor(np.array([1000.0, 1001.0], dtype=np.float32))
        alpha = edge_softmax(scores, np.array([0, 0]), 1)
        assert np.isfinite(alpha.data).all()
        np.testing.assert_allclose(alpha.data.sum(), 1.0, rtol=1e-5)

    def test_gradcheck(self, rng):
        s0 = rng.normal(size=8).astype(np.float32)
        edge_dst = np.array([0, 0, 0, 1, 1, 2, 2, 2])
        coeff = rng.random(8).astype(np.float32)

        s = Tensor(s0, requires_grad=True)
        (edge_softmax(s, edge_dst, 3) * Tensor(coeff)).sum().backward()

        def f(arr):
            return float(
                (edge_softmax(Tensor(arr), edge_dst, 3)
                 * Tensor(coeff)).sum().data
            )

        assert_grad_close(s.grad, numerical_gradient(f, s0, eps=1e-3),
                          atol=1e-2)


class TestActivations:
    def test_relu(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0], dtype=np.float32),
                   requires_grad=True)
        out = relu(x)
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.0, 1.0])

    def test_leaky_relu(self):
        x = Tensor(np.array([-2.0, 3.0], dtype=np.float32),
                   requires_grad=True)
        out = leaky_relu(x, 0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0], rtol=1e-6)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_elu_continuous_and_grad(self, rng):
        x0 = rng.normal(size=6).astype(np.float32)
        x = Tensor(x0, requires_grad=True)
        elu(x).sum().backward()

        def f(arr):
            return float(elu(Tensor(arr)).sum().data)

        assert_grad_close(x.grad, numerical_gradient(f, x0, eps=1e-3),
                          atol=1e-2)


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(np.ones(100, dtype=np.float32))
        out = dropout(x, 0.5, training=False)
        assert out is x

    def test_zero_p_identity(self):
        x = Tensor(np.ones(10, dtype=np.float32))
        assert dropout(x, 0.0) is x

    def test_inverted_scaling(self):
        x = Tensor(np.ones(10_000, dtype=np.float32))
        out = dropout(x, 0.3, rng=0)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 1.0 / 0.7, rtol=1e-5)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(2)), 1.0)


class TestLosses:
    def test_log_softmax_rows_normalize(self, rng):
        x = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        logp = log_softmax(x)
        np.testing.assert_allclose(np.exp(logp.data).sum(axis=1), 1.0,
                                   rtol=1e-5)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4), dtype=np.float32))
        loss = cross_entropy(logits, np.array([0, 3]))
        assert float(loss.data) == pytest.approx(np.log(4), rel=1e-5)

    def test_cross_entropy_gradcheck(self, rng):
        x0 = rng.normal(size=(3, 5)).astype(np.float32)
        labels = np.array([1, 4, 0])
        x = Tensor(x0, requires_grad=True)
        cross_entropy(x, labels).backward()

        def f(arr):
            return float(cross_entropy(Tensor(arr), labels).data)

        assert_grad_close(x.grad, numerical_gradient(f, x0, eps=1e-3),
                          atol=1e-2)

    def test_cross_entropy_grad_is_softmax_minus_onehot(self, rng):
        x0 = rng.normal(size=(2, 3)).astype(np.float32)
        labels = np.array([2, 0])
        x = Tensor(x0, requires_grad=True)
        cross_entropy(x, labels).backward()
        softmax = np.exp(x0 - x0.max(1, keepdims=True))
        softmax /= softmax.sum(1, keepdims=True)
        onehot = np.zeros((2, 3), dtype=np.float32)
        onehot[np.arange(2), labels] = 1.0
        np.testing.assert_allclose(x.grad, (softmax - onehot) / 2,
                                   rtol=1e-4, atol=1e-6)

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))
