"""Tests for the FastGLTrainer end-to-end pipeline (Fig. 5)."""

import numpy as np
import pytest

from repro.config import RunConfig
from repro.core.pipeline import FastGLTrainer, TrainHistory


@pytest.fixture()
def trainer(tiny_dataset):
    config = RunConfig(batch_size=64, fanouts=(3, 4), hidden_dim=8,
                       reorder_window=4, seed=2)
    return FastGLTrainer(tiny_dataset, "gcn", config)


class TestFastGLTrainer:
    def test_train_returns_history(self, trainer):
        history = trainer.train(num_epochs=1)
        assert history.num_batches == 10  # 600 / 64
        assert len(history.losses) == 10
        assert history.modeled_time > 0
        assert history.sample_time > 0
        assert history.compute_time > 0

    def test_loss_decreases_over_epochs(self, trainer):
        history = trainer.train(num_epochs=4)
        epochs = history.epoch_mean_losses(4)
        assert epochs[-1] < epochs[0]

    def test_match_reuses_rows(self, trainer):
        history = trainer.train(num_epochs=1)
        assert history.rows_reused > 0

    def test_rows_loaded_without_cache(self):
        """With no leftover device memory (no cache), non-overlapping rows
        must cross PCIe."""
        from helpers import make_spec
        from repro.graph.datasets import Dataset

        dataset = Dataset(make_spec(left_memory_bytes=0), seed=3)
        config = RunConfig(batch_size=64, fanouts=(3, 4), hidden_dim=8)
        trainer = FastGLTrainer(dataset, "gcn", config)
        history = trainer.train(num_epochs=1)
        assert history.rows_loaded > 0
        assert history.rows_reused > 0

    def test_training_resumes_across_calls(self, trainer):
        first = trainer.train(num_epochs=2)
        second = trainer.train(num_epochs=2)
        assert np.mean(second.losses) < np.mean(first.losses)

    def test_evaluate_beats_chance_after_training(self, trainer,
                                                  tiny_dataset):
        trainer.train(num_epochs=4)
        accuracy = trainer.evaluate(tiny_dataset.train_ids[:128])
        assert accuracy > 2.0 / tiny_dataset.num_classes

    def test_invalid_epochs(self, trainer):
        with pytest.raises(ValueError):
            trainer.train(0)

    def test_gin_model(self, tiny_dataset):
        config = RunConfig(batch_size=64, fanouts=(3, 4), hidden_dim=8)
        trainer = FastGLTrainer(tiny_dataset, "gin", config)
        history = trainer.train(1)
        assert all(np.isfinite(history.losses))


class TestTrainHistory:
    def test_epoch_mean_losses(self):
        history = TrainHistory(losses=[4.0, 2.0, 3.0, 1.0])
        means = history.epoch_mean_losses(2)
        assert means == [3.0, 2.0]

    def test_epoch_mean_losses_empty(self):
        assert TrainHistory().epoch_mean_losses(2) == []
        assert TrainHistory(losses=[1.0]).epoch_mean_losses(0) == []
