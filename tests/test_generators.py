"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    chung_lu_graph,
    community_graph,
    erdos_renyi_graph,
    power_law_degrees,
    rmat_graph,
)


class TestPowerLawDegrees:
    def test_mean_matches_target(self):
        w = power_law_degrees(5000, avg_degree=12.0, rng=0)
        assert abs(w.mean() - 12.0) < 1e-6

    def test_positive_and_skewed(self):
        w = power_law_degrees(5000, avg_degree=10.0, rng=1)
        assert w.min() > 0
        assert w.max() > 3 * w.mean()  # heavy tail

    def test_invalid_args(self):
        with pytest.raises(GraphError):
            power_law_degrees(0, 5.0)
        with pytest.raises(GraphError):
            power_law_degrees(10, -1.0)


class TestChungLu:
    def test_average_degree_close(self):
        g = chung_lu_graph(4000, avg_degree=10.0, rng=0)
        assert 6.0 < g.avg_degree < 14.0

    def test_undirected(self):
        g = chung_lu_graph(500, avg_degree=6.0, rng=1)
        src, dst = g.to_edges()
        edge_set = set(zip(src.tolist(), dst.tolist()))
        assert all((b, a) in edge_set for a, b in edge_set)

    def test_no_self_loops(self):
        g = chung_lu_graph(500, avg_degree=6.0, rng=2)
        src, dst = g.to_edges()
        assert np.all(src != dst)

    def test_deterministic(self):
        a = chung_lu_graph(300, 5.0, rng=7)
        b = chung_lu_graph(300, 5.0, rng=7)
        np.testing.assert_array_equal(a.indices, b.indices)


class TestCommunityGraph:
    def test_returns_assignment(self):
        g, comm = community_graph(1000, 8.0, num_communities=4, rng=0)
        assert len(comm) == g.num_nodes == 1000
        assert set(np.unique(comm)) <= set(range(4))

    def test_homophily(self):
        """Intra-community edges far exceed the random baseline."""
        g, comm = community_graph(2000, 10.0, num_communities=4,
                                  intra_fraction=0.8, rng=1)
        src, dst = g.to_edges()
        intra = float(np.mean(comm[src] == comm[dst]))
        assert intra > 0.5  # random baseline would be ~0.25

    def test_communities_contiguous(self):
        """The generator lays communities out contiguously by node ID
        (batch-locality in MinibatchPlan depends on this)."""
        _, comm = community_graph(500, 6.0, num_communities=5, rng=2)
        assert np.all(np.diff(comm) >= 0)

    def test_invalid_args(self):
        with pytest.raises(GraphError):
            community_graph(100, 5.0, num_communities=0)
        with pytest.raises(GraphError):
            community_graph(100, 5.0, num_communities=2, intra_fraction=1.5)


class TestRMAT:
    def test_size_and_skew(self):
        g = rmat_graph(2048, avg_degree=8.0, rng=0)
        assert g.num_nodes == 2048
        assert g.avg_degree > 3.0
        # RMAT produces hubs well above the average.
        assert g.degrees.max() > 4 * g.avg_degree

    def test_invalid_quadrants(self):
        with pytest.raises(GraphError):
            rmat_graph(128, 4.0, a=0.6, b=0.3, c=0.3)


class TestErdosRenyi:
    def test_degree_concentrated(self):
        g = erdos_renyi_graph(3000, avg_degree=10.0, rng=0)
        assert 7.0 < g.avg_degree < 13.0
        # No power-law tail: max degree within a few x of the mean.
        assert g.degrees.max() < 5 * g.avg_degree
