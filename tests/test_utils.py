"""Tests for the rng and formatting utilities."""

import numpy as np
import pytest

from repro.utils.format import (
    ascii_series,
    ascii_table,
    format_bytes,
    format_seconds,
    format_si,
)
from repro.utils.rng import RngFactory, ensure_rng


class TestEnsureRng:
    def test_passthrough_generator(self):
        gen = np.random.default_rng(5)
        assert ensure_rng(gen) is gen

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(4)
        b = ensure_rng(42).random(4)
        np.testing.assert_array_equal(a, b)

    def test_none_is_fixed_default(self):
        a = ensure_rng(None).random(4)
        b = ensure_rng(None).random(4)
        np.testing.assert_array_equal(a, b)


class TestRngFactory:
    def test_same_name_same_stream(self):
        f = RngFactory(9)
        a = f.child("sampler").random(8)
        b = RngFactory(9).child("sampler").random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        f = RngFactory(9)
        a = f.child("alpha").random(8)
        b = f.child("beta").random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(1).child("x").random(8)
        b = RngFactory(2).child("x").random(8)
        assert not np.array_equal(a, b)

    def test_child_seed_stable_int(self):
        s1 = RngFactory(3).child_seed("loader")
        s2 = RngFactory(3).child_seed("loader")
        assert s1 == s2
        assert isinstance(s1, int)


class TestFormat:
    def test_format_si(self):
        assert format_si(1.2e9) == "1.2G"
        assert format_si(3400, "B/s") == "3.4kB/s"
        assert format_si(5) == "5"

    def test_format_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2KiB"
        assert "GiB" in format_bytes(3 * 1024**3)

    def test_format_seconds(self):
        assert format_seconds(2.5) == "2.5s"
        assert format_seconds(0.0021) == "2.1ms"
        assert "µs" in format_seconds(3e-6)

    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "long"], [[1, 2.34567], [10, 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.346" in text

    def test_ascii_table_title(self):
        text = ascii_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_ascii_series(self):
        text = ascii_series("s", [1, 2], [0.5, 0.25])
        assert text == "s: 1=0.5, 2=0.25"


@pytest.mark.parametrize("value,expect", [
    (0.0, "0"),
    (-2.5e6, "-2.5M"),
])
def test_format_si_edge_cases(value, expect):
    assert format_si(value) == expect
