"""Tests for the out-of-core storage tier (NVMe model, page store, page
caches, IO scheduler, storage-backed loader)."""

import numpy as np
import pytest

from repro.config import DEFAULT_COST_MODEL, RunConfig
from repro.gpu.pcie import PCIeLink
from repro.graph.features import HashFeatureStore
from repro.sampling import NeighborSampler
from repro.storage import (
    MISS,
    IOScheduler,
    LRUPageCache,
    NVMeLink,
    PageStore,
    PartitionAwarePageCache,
    StorageBackedFeatureStore,
    build_page_cache,
    nvme_from_cost,
    partition_page_hotness,
    storage_pipeline_makespan,
)
from repro.transfer.storage_loader import (
    StorageTransferReport,
    build_storage_loader,
    page_cache_budget_bytes,
)


@pytest.fixture()
def sampler(tiny_graph):
    return NeighborSampler(tiny_graph, (3, 4), rng=0)


@pytest.fixture()
def subgraphs(sampler, tiny_dataset):
    ids = tiny_dataset.train_ids
    return [sampler.sample(ids[i * 50:(i + 1) * 50]) for i in range(3)]


class TestNVMeLink:
    def test_zero_work_is_free(self):
        assert NVMeLink().read_time(0, 0) == 0.0

    def test_deep_queue_amortizes_latency(self):
        link = NVMeLink()
        shallow = link.read_time(1000, 4096 * 1000, queue_depth=1)
        deep = link.read_time(1000, 4096 * 1000, queue_depth=1000)
        assert deep < shallow
        # One wave: exactly one latency plus the stream term.
        stream = max(4096 * 1000 / link.bandwidth, 1000 / link.iops_limit)
        assert deep == pytest.approx(link.latency_s + stream)

    def test_bandwidth_bound_for_large_transfers(self):
        link = NVMeLink()
        t = link.read_time(1, 68e9, queue_depth=1)
        assert t == pytest.approx(link.latency_s + 68e9 / link.bandwidth)

    def test_bandwidth_cap_applies(self):
        link = NVMeLink(bandwidth=8e9)
        capped = link.read_time(1, 8e9, bandwidth_cap=4e9)
        uncapped = link.read_time(1, 8e9)
        assert capped > uncapped

    def test_iops_ceiling(self):
        link = NVMeLink(iops_limit=1e6)
        # 2M tiny commands cannot finish faster than 2 seconds.
        t = link.read_time(2_000_000, 2_000_000, queue_depth=100000)
        assert t >= 2.0

    def test_bad_queue_depth(self):
        with pytest.raises(ValueError):
            NVMeLink().read_time(1, 1, queue_depth=0)

    def test_from_cost_model(self):
        link = nvme_from_cost(DEFAULT_COST_MODEL)
        assert link.bandwidth == DEFAULT_COST_MODEL.nvme_read_bytes_per_s
        assert link.latency_s == DEFAULT_COST_MODEL.nvme_read_latency_s
        assert link.iops_limit == DEFAULT_COST_MODEL.nvme_iops_limit


class TestPageStore:
    def test_layout_math(self):
        backing = HashFeatureStore(100, 4)  # 16-byte rows
        store = PageStore(backing, page_bytes=64)
        assert store.rows_per_page == 4
        assert store.num_pages == 25
        assert store.total_bytes == 25 * 64

    def test_tail_page_partial(self):
        backing = HashFeatureStore(10, 4)
        store = PageStore(backing, page_bytes=64)  # 4 rows/page
        start, count = store.page_rows(2)
        assert (start, count) == (8, 2)
        rows = store.read_page(2)
        assert rows.shape == (2, 4)
        # The full page still crosses the link.
        assert store.bytes_read == 64

    def test_page_rounds_up_to_row(self):
        backing = HashFeatureStore(8, 128)  # 512-byte rows
        store = PageStore(backing, page_bytes=64)
        assert store.page_bytes == 512
        assert store.rows_per_page == 1

    def test_page_of(self):
        backing = HashFeatureStore(100, 4)
        store = PageStore(backing, page_bytes=64)
        np.testing.assert_array_equal(
            store.page_of(np.array([0, 3, 4, 99])), [0, 0, 1, 24]
        )

    def test_stats_only_read(self):
        backing = HashFeatureStore(100, 4)
        store = PageStore(backing, page_bytes=64)
        assert store.read_page(0, materialize=False) is None
        assert store.pages_read == 1 and store.bytes_read == 64
        store.reset_stats()
        assert store.pages_read == 0

    def test_out_of_range_page(self):
        store = PageStore(HashFeatureStore(10, 4), page_bytes=64)
        with pytest.raises(IndexError):
            store.page_rows(99)


class TestLRUPageCache:
    def test_hit_miss_counting(self):
        cache = LRUPageCache(2)
        assert cache.lookup(1) is MISS
        cache.insert(1, "a")
        assert cache.lookup(1) == "a"
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_evicts_least_recent(self):
        cache = LRUPageCache(2)
        cache.insert(1, "a")
        cache.insert(2, "b")
        cache.lookup(1)  # 1 is now most recent
        cache.insert(3, "c")
        assert cache.lookup(2) is MISS
        assert cache.lookup(1) == "a"
        assert cache.evictions == 1

    def test_zero_capacity(self):
        cache = LRUPageCache(0)
        cache.insert(1, "a")
        assert cache.num_resident == 0

    def test_update_only_resident(self):
        cache = LRUPageCache(2)
        cache.update(5, "x")
        assert cache.num_resident == 0
        cache.insert(5, None)
        cache.update(5, "x")
        assert cache.lookup(5) == "x"

    def test_resident_bytes(self):
        cache = LRUPageCache(4)
        cache.insert(1, "a")
        cache.insert(2, "b")
        assert cache.resident_bytes(4096) == 2 * 4096


class TestPartitionAwarePageCache:
    def test_pinned_pages_survive_scans(self):
        hotness = np.array([5.0, 4.0, 0.0, 0.0, 0.0, 0.0])
        cache = PartitionAwarePageCache(2, hotness, pinned_fraction=1.0)
        assert cache.pinned_ids == {0, 1}
        for pid in range(6):
            if cache.lookup(pid) is MISS:
                cache.insert(pid, f"p{pid}")
        # A full scan later, the hot pages are still resident.
        assert cache.lookup(0) == "p0"
        assert cache.lookup(1) == "p1"

    def test_cold_first_touch_is_miss(self):
        cache = PartitionAwarePageCache(1, np.array([1.0]),
                                        pinned_fraction=1.0)
        assert cache.lookup(0) is MISS
        cache.insert(0, "x")
        assert cache.lookup(0) == "x"

    def test_beats_lru_on_cyclic_scan(self):
        """The workload the tier exists for: a scan wider than capacity.
        LRU evicts every page before its reuse; pinning keeps the hot set."""
        num_pages, capacity = 10, 5
        hotness = np.arange(num_pages, 0, -1, dtype=float)

        def run(cache):
            for _ in range(4):
                for pid in range(num_pages):
                    if cache.lookup(pid) is MISS:
                        cache.insert(pid, pid)
            return cache.hit_rate

        lru_rate = run(LRUPageCache(capacity))
        part_rate = run(PartitionAwarePageCache(capacity, hotness))
        assert lru_rate == 0.0
        assert part_rate > 0.25

    def test_bad_pinned_fraction(self):
        with pytest.raises(ValueError):
            PartitionAwarePageCache(2, np.ones(4), pinned_fraction=1.5)


class TestPartitionPageHotness:
    def test_train_dense_partition_is_hotter(self):
        backing = HashFeatureStore(8, 4)
        page_store = PageStore(backing, page_bytes=32)  # 2 rows/page
        # Nodes 0-3 in partition 0 (all train seeds), 4-7 in partition 1.
        partitions = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        hotness = partition_page_hotness(page_store, partitions,
                                         train_ids=np.array([0, 1, 2, 3]))
        assert hotness.shape == (4,)
        assert hotness[:2].min() > hotness[2:].max()

    def test_build_page_cache_factory(self):
        backing = HashFeatureStore(8, 4)
        page_store = PageStore(backing, page_bytes=32)
        assert isinstance(build_page_cache("lru", 2), LRUPageCache)
        cache = build_page_cache(
            "partition", 2, page_store=page_store,
            partition_of_node=np.zeros(8, dtype=np.int64),
            train_ids=np.array([0]),
        )
        assert isinstance(cache, PartitionAwarePageCache)
        with pytest.raises(ValueError):
            build_page_cache("partition", 2)
        with pytest.raises(ValueError):
            build_page_cache("fifo", 2)


class TestIOScheduler:
    def _scheduler(self, num_nodes=64, dim=4, page_bytes=64,
                   capacity=1000, max_coalesce=8):
        backing = HashFeatureStore(num_nodes, dim)
        page_store = PageStore(backing, page_bytes=page_bytes)
        return IOScheduler(page_store, LRUPageCache(capacity),
                           max_coalesce=max_coalesce)

    def test_coalescing_runs(self):
        sched = self._scheduler(max_coalesce=8)
        assert sched.coalesced_requests(np.array([], dtype=np.int64)) == 0
        assert sched.coalesced_requests(np.arange(8)) == 1
        assert sched.coalesced_requests(np.arange(9)) == 2
        # A gap splits the run: [0..3] and [5..8] are separate commands.
        assert sched.coalesced_requests(
            np.array([0, 1, 2, 3, 5, 6, 7, 8])
        ) == 2

    def test_submit_deduplicates_pages(self):
        sched = self._scheduler()  # 4 rows/page
        plan, _ = sched.submit(np.array([0, 1, 2, 3, 0, 1]))
        assert plan.num_rows == 6
        assert plan.num_unique_pages == 1
        assert plan.page_misses == 1
        assert plan.ssd_bytes == sched.page_store.page_bytes

    def test_second_submit_hits(self):
        sched = self._scheduler()
        sched.submit(np.array([0, 1]))
        plan, _ = sched.submit(np.array([2, 3]))
        assert plan.page_hits == 1 and plan.page_misses == 0
        assert plan.hit_rate == 1.0

    def test_stats_only_then_fetch_materializes_quietly(self):
        sched = self._scheduler()
        sched.submit(np.array([0, 1]), fetch=False)
        pages_after_plan = sched.page_store.pages_read
        plan, frames = sched.submit(np.array([0, 1]), fetch=True)
        # The hit is served without touching the drive again.
        assert plan.page_misses == 0
        assert sched.page_store.pages_read == pages_after_plan
        np.testing.assert_array_equal(
            frames[0], sched.page_store.backing.gather(np.arange(4))
        )

    def test_bad_max_coalesce(self):
        backing = HashFeatureStore(8, 4)
        with pytest.raises(ValueError):
            IOScheduler(PageStore(backing), LRUPageCache(1), max_coalesce=0)


class TestStoragePipelineMakespan:
    def test_empty(self):
        assert storage_pipeline_makespan([], [], []) == 0.0

    def test_single_batch_is_serial(self):
        assert storage_pipeline_makespan([1.0], [2.0], [3.0]) == 6.0

    def test_overlap_beats_serial(self):
        samples, reads, trains = [1.0] * 4, [1.0] * 4, [1.0] * 4
        span = storage_pipeline_makespan(samples, reads, trains)
        serial = sum(samples) + sum(reads) + sum(trains)
        assert span < serial
        # Steady state: one batch drains per stage time.
        assert span == pytest.approx(3.0 + 3 * 1.0)

    def test_bounded_queue_never_faster(self):
        samples, reads, trains = [0.1] * 6, [2.0] * 6, [0.1] * 6
        free = storage_pipeline_makespan(samples, reads, trains)
        tight = storage_pipeline_makespan(samples, reads, trains,
                                          queue_depth=1)
        assert tight >= free
        assert free >= sum(reads)  # the bottleneck stage is exclusive

    def test_validation(self):
        with pytest.raises(ValueError):
            storage_pipeline_makespan([1.0], [1.0], [])
        with pytest.raises(ValueError):
            storage_pipeline_makespan([1.0], [1.0], [1.0], queue_depth=0)


class TestStorageTransferReport:
    def _report(self, access):
        return StorageTransferReport(
            num_wanted=100, num_loaded=100, num_transfers=1,
            feature_bytes=4096 * 10 if access == "direct" else 1600,
            structure_bytes=1000,
            page_hits=5, page_misses=10, ssd_pages=10,
            ssd_requests=4, ssd_bytes=4096 * 10,
            host_bounce_bytes=0 if access == "direct" else 4096 * 10 + 1600,
            access=access, nvme=NVMeLink(),
        )

    def test_direct_faster_than_bounce(self):
        link = PCIeLink()
        direct = self._report("direct").modeled_time(link)
        bounce = self._report("bounce").modeled_time(link)
        assert direct < bounce

    def test_merge_accumulates_storage_counters(self):
        total = StorageTransferReport()
        total.merge(self._report("direct"))
        total.merge(self._report("direct"))
        assert total.ssd_pages == 20
        assert total.ssd_bytes == 2 * 4096 * 10
        assert total.page_hit_rate == pytest.approx(10 / 30)
        # The first merge adopted the link model and access path.
        assert total.nvme is not None and total.access == "direct"

    def test_plain_merge_partner_is_safe(self):
        from repro.transfer.loader import TransferReport

        total = StorageTransferReport(nvme=NVMeLink())
        total.merge(TransferReport(num_wanted=5, feature_bytes=80))
        assert total.num_wanted == 5 and total.ssd_bytes == 0


class TestStorageBackedLoader:
    def _config(self, **kw):
        return RunConfig(num_gpus=1, **kw)

    def test_direct_path_accounting(self, tiny_dataset, subgraphs):
        loader = build_storage_loader(tiny_dataset, self._config())
        report = loader.plan(subgraphs[0])
        assert report.access == "direct"
        assert report.host_bounce_bytes == 0
        assert report.feature_bytes == report.ssd_bytes
        assert report.ssd_pages == report.page_misses
        assert report.ssd_requests <= report.ssd_pages

    def test_bounce_path_accounting(self, tiny_dataset, subgraphs):
        loader = build_storage_loader(
            tiny_dataset, self._config(storage_access="bounce")
        )
        report = loader.plan(subgraphs[0])
        row_bytes = report.num_loaded * tiny_dataset.features.bytes_per_node
        assert report.feature_bytes == row_bytes
        assert report.host_bounce_bytes == report.ssd_bytes + row_bytes

    def test_match_excludes_resident_rows(self, tiny_dataset, subgraphs):
        loader = build_storage_loader(tiny_dataset, self._config(),
                                      use_match=True)
        loader.plan(subgraphs[0])
        second = loader.plan(subgraphs[1])
        assert second.num_reused > 0
        assert second.num_loaded == subgraphs[1].num_nodes - second.num_reused
        loader.reset_epoch()
        fresh = loader.plan(subgraphs[0])
        assert fresh.num_reused == 0

    def test_load_returns_true_rows(self, tiny_dataset, subgraphs):
        loader = build_storage_loader(tiny_dataset, self._config())
        features, report = loader.load(subgraphs[0])
        expected = tiny_dataset.features.gather(subgraphs[0].input_nodes)
        np.testing.assert_array_equal(features, expected)
        assert report.num_loaded == subgraphs[0].num_nodes

    def test_budget_defaults_to_tenth_of_table(self, tiny_dataset):
        config = self._config()
        budget = page_cache_budget_bytes(tiny_dataset, config)
        assert budget == int(0.1 * tiny_dataset.features.total_bytes)
        explicit = self._config(host_memory_bytes=12345)
        assert page_cache_budget_bytes(tiny_dataset, explicit) == 12345

    def test_cache_respects_budget(self, tiny_dataset, subgraphs):
        config = self._config(
            host_memory_bytes=int(0.05 * tiny_dataset.features.total_bytes)
        )
        loader = build_storage_loader(tiny_dataset, config)
        for sg in subgraphs:
            loader.plan(sg)
        page_bytes = loader.store.page_store.page_bytes
        assert loader.cache.resident_bytes(page_bytes) <= (
            config.host_memory_bytes
        )

    def test_rejects_unknown_access(self, tiny_dataset):
        from repro.storage.nvme import nvme_from_cost
        from repro.transfer.storage_loader import StorageBackedLoader

        store = StorageBackedFeatureStore(tiny_dataset.features)
        with pytest.raises(ValueError):
            StorageBackedLoader(store, nvme_from_cost(), access="mmap")
