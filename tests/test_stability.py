"""Robustness: the reproduced shapes hold across seeds and settings.

The headline claims (FastGL < DGL epoch time; Match loads less than
naive; Fused-Map beats the baseline ID map) must not depend on a lucky
seed or a particular batch size.
"""

import pytest

from repro.config import RunConfig
from repro.frameworks import DGLFramework, FastGLFramework
from repro.graph.datasets import Dataset
from helpers import make_spec


@pytest.fixture(scope="module")
def datasets():
    return {seed: Dataset(make_spec(), seed=seed) for seed in (1, 2, 3)}


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_fastgl_wins_across_seeds(datasets, seed):
    config = RunConfig(batch_size=64, fanouts=(3, 4), num_gpus=2,
                       hidden_dim=8, seed=seed)
    dataset = datasets[seed]
    dgl = DGLFramework().run_epoch(dataset, config)
    fast = FastGLFramework().run_epoch(dataset, config)
    assert fast.epoch_time < dgl.epoch_time
    assert fast.phases.memory_io < dgl.phases.memory_io
    assert fast.phases.idmap < dgl.phases.idmap


@pytest.mark.parametrize("batch_size", [16, 64, 200])
def test_fastgl_wins_across_batch_sizes(datasets, batch_size):
    config = RunConfig(batch_size=batch_size, fanouts=(3, 4), num_gpus=2,
                       hidden_dim=8, seed=1)
    dataset = datasets[1]
    dgl = DGLFramework().run_epoch(dataset, config)
    fast = FastGLFramework().run_epoch(dataset, config)
    assert fast.epoch_time < dgl.epoch_time


@pytest.mark.parametrize("fanouts", [(2,), (3, 3), (2, 3, 4)])
def test_fastgl_wins_across_depths(datasets, fanouts):
    config = RunConfig(batch_size=64, fanouts=fanouts, num_gpus=2,
                       hidden_dim=8, seed=2)
    dataset = datasets[2]
    dgl = DGLFramework().run_epoch(dataset, config)
    fast = FastGLFramework().run_epoch(dataset, config)
    assert fast.epoch_time < dgl.epoch_time


def test_reports_are_deterministic(datasets):
    """Same config + same seed => identical reports (modulo float noise)."""
    config = RunConfig(batch_size=64, fanouts=(3, 4), num_gpus=2,
                       hidden_dim=8, seed=3)
    dataset = datasets[3]
    a = FastGLFramework().run_epoch(dataset, config)
    b = FastGLFramework().run_epoch(dataset, config)
    assert a.epoch_time == pytest.approx(b.epoch_time, rel=1e-12)
    assert a.transfer.num_loaded == b.transfer.num_loaded
    assert a.phases.sample == pytest.approx(b.phases.sample, rel=1e-12)
