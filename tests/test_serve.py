"""Online inference serving: batcher invariants, queueing properties,
timeline reconciliation, and the FastGL-vs-DGL serving gap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RunConfig
from repro.graph.datasets import Dataset
from repro.serve import (
    MicroBatcher,
    RequestQueue,
    ServeConfig,
    bursty_arrivals,
    build_schedule,
    plan_dispatch_order,
    poisson_arrivals,
    replay_arrivals,
    select_next_batch,
    simulate,
)
from repro.serve.request import InferenceRequest
from repro.utils.rng import RngFactory

from helpers import make_spec

WINDOW_TOL = 1e-9


@pytest.fixture(scope="module")
def dataset():
    return Dataset(make_spec(name="serve-test", num_nodes=1500,
                             avg_degree=8.0, feature_dim=32), seed=0)


@pytest.fixture(scope="module")
def run_config():
    return RunConfig(num_gpus=1, fanouts=(5, 10), seed=0)


def _request(req_id, arrival, seeds=(1, 2, 3)):
    return InferenceRequest(req_id=req_id, arrival=arrival,
                            seeds=np.array(seeds, dtype=np.int64))


# ---------------------------------------------------------------------------
# Arrival processes


class TestArrivals:
    def test_poisson_positive_and_increasing(self):
        times = poisson_arrivals(100.0, 50, rng=RngFactory(0).child("a"))
        assert len(times) == 50
        assert np.all(times > 0)
        assert np.all(np.diff(times) >= 0)

    def test_bursty_mean_rate_matches_nominal(self):
        """Burst/calm normalization keeps the mean rate comparable."""
        rate = 1000.0
        times = bursty_arrivals(rate, 20_000, rng=RngFactory(1).child("b"))
        empirical = len(times) / times[-1]
        assert empirical == pytest.approx(rate, rel=0.05)

    def test_bursty_has_heavier_tail_than_poisson(self):
        rngs = RngFactory(2)
        poisson = np.diff(poisson_arrivals(100.0, 20_000,
                                           rng=rngs.child("p")))
        bursty = np.diff(bursty_arrivals(100.0, 20_000,
                                         rng=rngs.child("q")))
        assert np.var(bursty) > np.var(poisson)

    def test_replay_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            replay_arrivals([0.0, 2.0, 1.0])

    def test_build_schedule_deterministic(self):
        pool = np.arange(100, dtype=np.int64)
        a = build_schedule("poisson", 500.0, 20, pool, 4, slo_s=0.1, seed=3)
        b = build_schedule("poisson", 500.0, 20, pool, 4, slo_s=0.1, seed=3)
        for ra, rb in zip(a, b):
            assert ra.arrival == rb.arrival
            assert ra.deadline == pytest.approx(ra.arrival + 0.1)
            np.testing.assert_array_equal(ra.seeds, rb.seeds)

    def test_build_schedule_unknown_process(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            build_schedule("fractal", 1.0, 1, np.arange(10), 2, slo_s=0)


# ---------------------------------------------------------------------------
# Admission control


class TestRequestQueue:
    def test_sheds_beyond_capacity(self):
        queue = RequestQueue(capacity=2)
        requests = [_request(i, 0.0) for i in range(3)]
        assert queue.offer(requests[0], 0.0)
        assert queue.offer(requests[1], 0.0)
        assert not queue.offer(requests[2], 0.0)
        assert requests[2].outcome == "shed"
        assert queue.stats.shed == 1 and queue.stats.admitted == 2

    def test_take_frees_capacity(self):
        queue = RequestQueue(capacity=1)
        first, second = _request(0, 0.0), _request(1, 0.0)
        assert queue.offer(first, 0.0)
        assert not queue.offer(second, 0.0)
        assert queue.take(first, 0.1)
        assert queue.depth == 0
        third = _request(2, 0.2)
        assert queue.offer(third, 0.2)

    def test_take_drops_past_deadline(self):
        queue = RequestQueue(capacity=4)
        request = _request(0, 0.0)
        request.deadline = 0.05
        queue.offer(request, 0.0)
        assert not queue.take(request, 0.1)
        assert request.outcome == "dropped"
        assert queue.stats.dropped == 1


# ---------------------------------------------------------------------------
# Micro-batching


def _drive_batcher(max_batch, window, gaps):
    """Feed a request stream through the pure state machine the same way
    the server's event process does; return the closed batches."""
    batcher = MicroBatcher(max_batch, window)
    closed = []
    now = 0.0
    for i, gap in enumerate(gaps):
        now += gap
        request = _request(i, now)
        if batcher.has_open_batch and now > batcher.close_deadline:
            closed.append(batcher.close(now, trigger="window"))
        if not batcher.has_open_batch:
            full = batcher.open(request, now)
        else:
            full = batcher.add(request, now)
        if full:
            closed.append(batcher.close(now, trigger="size"))
    if batcher.has_open_batch:
        closed.append(batcher.close(now, trigger="flush"))
    return closed


class TestMicroBatcher:
    @settings(max_examples=60, deadline=None)
    @given(
        max_batch=st.integers(1, 8),
        window=st.floats(0.0, 0.05, allow_nan=False),
        gaps=st.lists(st.floats(0.0, 0.02, allow_nan=False),
                      min_size=1, max_size=60),
    )
    def test_never_violates_window_or_size(self, max_batch, window, gaps):
        """PROPERTY: for any arrival pattern, no batch is held open past
        the window and no batch exceeds the size trigger."""
        closed = _drive_batcher(max_batch, window, gaps)
        assert sum(b.size for b in closed) == len(gaps)
        for batch in closed:
            assert 1 <= batch.size <= max_batch
            if batch.trigger != "flush":
                assert batch.batching_delay <= window + WINDOW_TOL
            if batch.trigger == "size":
                assert batch.size == max_batch

    def test_size_trigger_fires_exactly_at_max(self):
        batcher = MicroBatcher(max_batch=3, window_s=1.0)
        batcher.open(_request(0, 0.0), 0.0)
        assert not batcher.add(_request(1, 0.1), 0.1)
        assert batcher.add(_request(2, 0.2), 0.2)
        batch = batcher.close(0.2, trigger="size")
        assert batch.size == 3 and batch.trigger == "size"

    def test_add_past_window_raises(self):
        batcher = MicroBatcher(max_batch=8, window_s=0.01)
        batcher.open(_request(0, 0.0), 0.0)
        with pytest.raises(RuntimeError, match="batching window"):
            batcher.add(_request(1, 0.5), 0.5)

    def test_seeds_union_sorted_unique(self):
        batcher = MicroBatcher(max_batch=4, window_s=1.0)
        batcher.open(_request(0, 0.0, seeds=(5, 3)), 0.0)
        batcher.add(_request(1, 0.1, seeds=(3, 9)), 0.1)
        batch = batcher.close(0.1)
        np.testing.assert_array_equal(batch.seeds, [3, 5, 9])

    def test_select_next_batch_prefers_match_degree(self):
        resident = np.array([10, 11, 12, 13], dtype=np.int64)
        batcher = MicroBatcher(max_batch=4, window_s=1.0)
        pending = []
        for seeds in ((1, 2, 3), (10, 11, 12), (11, 40)):
            batcher.open(_request(0, 0.0, seeds=seeds), 0.0)
            pending.append(batcher.close(0.0))
        assert select_next_batch(pending, resident) == 1
        # cold start (nothing resident) falls back to FIFO
        assert select_next_batch(pending, np.empty(0, dtype=np.int64)) == 0

    def test_plan_dispatch_order_is_permutation(self):
        batcher = MicroBatcher(max_batch=4, window_s=1.0)
        batches = []
        for i in range(5):
            batcher.open(_request(i, 0.0, seeds=(i, i + 1, i + 2)), 0.0)
            batches.append(batcher.close(0.0))
        order = plan_dispatch_order(batches)
        assert sorted(order) == list(range(5))


# ---------------------------------------------------------------------------
# End-to-end serving simulation


class TestServerSim:
    @pytest.fixture(scope="class")
    def reports(self, dataset, run_config):
        config = ServeConfig(rate=80_000.0, num_requests=300,
                             seeds_per_request=8, max_batch=16,
                             batch_window_s=0.002, queue_capacity=10_000,
                             slo_s=0.0, seed=0)
        return {
            name: simulate(name, dataset, run_config=run_config,
                           serve_config=config)
            for name in ("dgl", "fastgl")
        }

    def test_every_request_accounted_for(self, reports):
        for report in reports.values():
            outcomes = {r.outcome for r in report.requests}
            assert outcomes <= {"completed", "shed", "dropped"}
            total = (report.num_completed + report.num_shed
                     + report.num_dropped)
            assert total == len(report.requests)

    def test_batches_respect_window_and_size(self, reports):
        """The in-simulation batches obey the same invariants the pure
        state machine guarantees."""
        for report in reports.values():
            assert report.batches
            for batch in report.batches:
                assert 1 <= batch.size <= report.config.max_batch
                assert (batch.batching_delay
                        <= report.config.batch_window_s + WINDOW_TOL)
                assert batch.service_end >= batch.service_start >= batch.closed_at

    def test_timeline_reconciles_with_makespan(self, reports):
        for report in reports.values():
            assert report.reconciles(1e-6), (
                f"{report.framework}: extent {report.timeline_extent} vs "
                f"makespan {report.makespan}")

    def test_latencies_positive_and_percentiles_ordered(self, reports):
        for report in reports.values():
            assert np.all(report.latencies > 0)
            assert report.p50 <= report.p95 <= report.p99
            assert report.throughput > 0
            assert 0 < report.occupancy <= 1.0 + 1e-9

    def test_fastgl_strictly_faster_than_dgl_at_equal_load(self, reports):
        """The acceptance comparison: same schedule, FastGL's fused map +
        match-reorder + memory-aware path wins every summary statistic."""
        dgl, fastgl = reports["dgl"], reports["fastgl"]
        assert dgl.num_shed == fastgl.num_shed == 0
        assert fastgl.p50 < dgl.p50
        assert fastgl.p95 < dgl.p95
        assert fastgl.p99 < dgl.p99
        assert fastgl.throughput > dgl.throughput

    def test_deterministic_across_runs(self, dataset, run_config, reports):
        config = reports["fastgl"].config
        again = simulate("fastgl", dataset, run_config=run_config,
                         serve_config=config)
        assert again.makespan == reports["fastgl"].makespan
        np.testing.assert_array_equal(again.latencies,
                                      reports["fastgl"].latencies)

    def test_chrome_trace_export(self, reports, tmp_path):
        path = tmp_path / "serve.json"
        count = reports["fastgl"].write_chrome_trace(path)
        assert count > 0
        assert path.exists()


class TestQueueingProperties:
    def test_p99_monotone_in_arrival_rate(self, dataset, run_config):
        """PROPERTY: with singleton batches (window 0), no shedding and no
        deadlines, compressing the same replayed trace can only increase
        every request's latency — so p99 is non-decreasing in load."""
        base = poisson_arrivals(20_000.0, 120,
                                rng=RngFactory(7).child("trace"))
        p99s, means = [], []
        for factor in (1.0, 2.0, 4.0, 8.0):
            config = ServeConfig(
                rate=1.0, num_requests=120, arrival="replay",
                replay_times=tuple(float(t) for t in base / factor),
                seeds_per_request=6, max_batch=16, batch_window_s=0.0,
                queue_capacity=10**6, slo_s=0.0, seed=0)
            report = simulate("dgl", dataset, run_config=run_config,
                              serve_config=config)
            assert report.num_completed == 120
            p99s.append(report.p99)
            means.append(report.mean_latency)
        assert p99s == sorted(p99s)
        assert means == sorted(means)

    def test_max_batch_one_serves_singletons(self, dataset, run_config):
        """Regression: max_batch=1 means open() itself fires the size
        trigger; the batching process must not try to add a second."""
        config = ServeConfig(rate=2_000.0, num_requests=30,
                             seeds_per_request=4, max_batch=1,
                             batch_window_s=0.004, queue_capacity=10_000,
                             slo_s=0.0, seed=0)
        report = simulate("dgl", dataset, run_config=run_config,
                          serve_config=config)
        assert report.num_completed == 30
        assert all(batch.size == 1 for batch in report.batches)

    def test_small_queue_sheds_under_overload(self, dataset, run_config):
        config = ServeConfig(rate=500_000.0, num_requests=200,
                             seeds_per_request=8, max_batch=4,
                             batch_window_s=0.0005, queue_capacity=8,
                             slo_s=0.0, seed=0)
        report = simulate("dgl", dataset, run_config=run_config,
                          serve_config=config)
        assert report.num_shed > 0
        assert report.shed_rate == report.num_shed / 200

    def test_tight_slo_causes_deadline_drops(self, dataset, run_config):
        config = ServeConfig(rate=200_000.0, num_requests=200,
                             seeds_per_request=8, max_batch=16,
                             batch_window_s=0.002, queue_capacity=10_000,
                             slo_s=0.002, seed=0)
        report = simulate("dgl", dataset, run_config=run_config,
                          serve_config=config)
        assert report.num_dropped > 0
        for request in report.requests:
            if request.outcome == "dropped":
                assert request.completion > request.deadline
