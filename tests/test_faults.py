"""Tests for the fault-injection layer and the resilience it exercises.

Property tests (Hypothesis) pin the retry/backoff schedule contract and
:class:`FaultPlan` determinism; the unit tests drive the storage
scheduler, the feature loaders, the Match residency invalidation, and
the serving admission controller through injected faults.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.match import MatchState
from repro.errors import (
    FaultError,
    StorageReadError,
    TransferStallError,
)
from repro.faults import (
    KNOWN_SITES,
    DEFAULT_RETRY_POLICY,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    call_with_faults,
    fault_scope,
    get_fault_plan,
    set_fault_plan,
)
from repro.obs import get_registry, set_registry
from repro.obs.exporters import flatten_snapshot, to_snapshot
from repro.obs.registry import MetricsRegistry
from repro.sampling import NeighborSampler
from repro.graph.features import HashFeatureStore
from repro.storage import IOScheduler, LRUPageCache, PageStore
from repro.storage.cache import MISS
from repro.transfer.loader import MatchLoader


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with fault injection disabled."""
    set_fault_plan(None)
    yield
    set_fault_plan(None)


# ---------------------------------------------------------------------------
# Retry policy / backoff schedule (Hypothesis)


policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=8),
    base_delay_s=st.floats(min_value=1e-6, max_value=1e-2),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    max_delay_s=st.floats(min_value=1e-5, max_value=1.0),
    jitter_fraction=st.floats(min_value=0.0, max_value=0.5),
)


class TestRetryPolicyProperties:
    @given(policy=policies, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_schedule_contract(self, policy, seed):
        """PROPERTY: the jittered schedule has one delay per possible
        retry, stays monotone non-decreasing, and each delay is within
        the jitter envelope of its nominal value."""
        rng = np.random.default_rng(seed)
        schedule = policy.schedule(rng)
        assert len(schedule) == policy.max_attempts - 1
        previous = 0.0
        for k, delay in enumerate(schedule):
            nominal = policy.nominal_delay(k)
            assert delay >= previous  # monotone non-decreasing
            lo = nominal * (1.0 - policy.jitter_fraction)
            hi = nominal * (1.0 + policy.jitter_fraction)
            # max-with-previous can only raise a delay toward an earlier
            # (smaller-nominal) bound, never above this step's ceiling.
            assert lo - 1e-12 <= delay <= hi + 1e-12
            previous = delay

    @given(policy=policies)
    @settings(max_examples=100, deadline=None)
    def test_nominal_is_capped_and_monotone(self, policy):
        delays = [policy.nominal_delay(k) for k in range(8)]
        assert all(d <= policy.max_delay_s for d in delays)
        assert all(b >= a for a, b in zip(delays, delays[1:]))

    def test_unjittered_schedule_is_nominal(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.01,
                             multiplier=2.0, max_delay_s=1.0)
        assert policy.schedule() == [0.01, 0.02, 0.04]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)


# ---------------------------------------------------------------------------
# FaultPlan determinism (Hypothesis)


class TestFaultPlanProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        probability=st.floats(min_value=0.0, max_value=1.0),
        max_failures=st.integers(min_value=0, max_value=5),
        keys=st.lists(st.integers(min_value=0, max_value=10_000),
                      min_size=1, max_size=20),
    )
    @settings(max_examples=150, deadline=None)
    def test_same_seed_same_decisions(self, seed, probability,
                                      max_failures, keys):
        """PROPERTY: fault decisions are pure in (seed, site, key)."""
        def build():
            return FaultPlan(seed=seed, sites={
                "storage_read": FaultSpec(probability=probability,
                                          max_failures=max_failures),
            })

        a, b = build(), build()
        for key in keys:
            fa = a.failures_planned("storage_read", key)
            fb = b.failures_planned("storage_read", key)
            assert fa == fb
            assert 0 <= fa <= max_failures
            if probability == 0.0:
                assert fa == 0

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        keys=st.lists(st.integers(min_value=0, max_value=1000),
                      min_size=1, max_size=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_same_seed_same_trace(self, seed, keys):
        """PROPERTY: the same call sequence replays the same trace."""
        def run():
            plan = FaultPlan.chaos(seed, probability=0.5, delay_s=1e-3)
            for key in keys:
                plan.failures_planned("storage_read", key)
                if plan.should_crash("worker_crash", key, 0):
                    plan.record("worker_crash", key, 0, "crash")
                plan.stall("storage_slow", key=key)
            return plan.trace()

        assert run() == run()

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        key=st.integers(min_value=0, max_value=10_000),
        delay=st.floats(min_value=1e-6, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_stall_bounds(self, seed, key, delay):
        """PROPERTY: a fired stall is in [0.5, 1.5) x delay_s."""
        plan = FaultPlan(seed=seed, sites={
            "storage_slow": FaultSpec(probability=1.0, delay_s=delay),
        })
        stall = plan.stall("storage_slow", key=key)
        assert 0.5 * delay <= stall < 1.5 * delay
        assert stall == FaultPlan(seed=seed, sites=plan.sites).stall(
            "storage_slow", key=key)

    def test_chaos_covers_every_known_site(self):
        plan = FaultPlan.chaos(1)
        assert set(plan.sites) == set(KNOWN_SITES)
        assert plan.enabled

    def test_disabled_plan(self):
        plan = FaultPlan.disabled()
        assert not plan.enabled
        assert plan.failures_planned("storage_read", 0) == 0
        assert plan.stall("storage_slow") == 0.0

    def test_should_crash_matches_failures_planned(self):
        plan = FaultPlan(seed=3, sites={
            "worker_crash": FaultSpec(probability=0.8, max_failures=3),
        })
        for key in range(50):
            planned = plan.failures_planned("worker_crash", key)
            for attempt in range(planned + 2):
                assert plan.should_crash("worker_crash", key, attempt) \
                    == (attempt < planned)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(delay_s=-1.0)
        with pytest.raises(TypeError):
            FaultPlan(sites={"storage_read": 0.5})

    def test_fault_scope_restores(self):
        plan = FaultPlan.chaos(7)
        before = get_fault_plan()
        with fault_scope(plan) as active:
            assert active is plan
            assert get_fault_plan() is plan
        assert get_fault_plan() is before

    def test_next_key_sequences_per_site(self):
        plan = FaultPlan.chaos(0)
        assert [plan.next_key("storage_read") for _ in range(3)] == [0, 1, 2]
        assert plan.next_key("pcie_stall") == 0
        plan.reset_trace()
        assert plan.next_key("storage_read") == 0


# ---------------------------------------------------------------------------
# call_with_faults


class TestCallWithFaults:
    def test_disabled_plan_is_passthrough(self):
        result, stats = call_with_faults(
            lambda: 42, site="storage_read", plan=FaultPlan.disabled())
        assert result == 42
        assert stats.num_retries == 0 and stats.delay_s == 0.0

    def test_recovered_failures_accumulate_backoff(self):
        plan = FaultPlan(seed=0, sites={
            "storage_read": FaultSpec(probability=1.0, max_failures=2),
        })
        calls = []
        result, stats = call_with_faults(
            lambda: calls.append(1) or "ok",
            site="storage_read", key=5, plan=plan)
        assert result == "ok"
        assert calls == [1]  # fn ran exactly once
        assert stats.num_retries == 2
        assert stats.attempts == 3
        assert stats.delay_s > 0
        assert plan.fired("storage_read") == 2

    def test_exhaustion_raises_without_running_fn(self):
        policy = RetryPolicy(max_attempts=2)
        plan = FaultPlan(seed=0, sites={
            "storage_read": FaultSpec(probability=1.0, max_failures=5),
        })
        calls = []
        with pytest.raises(StorageReadError) as excinfo:
            call_with_faults(
                lambda: calls.append(1),
                site="storage_read", key=9, policy=policy, plan=plan,
                exc_factory=lambda attempts: StorageReadError(9, attempts))
        assert calls == []  # no partial result can leak
        assert excinfo.value.page_id == 9
        assert excinfo.value.attempts == policy.max_attempts

    def test_default_exhaustion_error_is_fault_error(self):
        plan = FaultPlan(seed=0, sites={
            "pcie_stall": FaultSpec(probability=1.0, max_failures=9),
        })
        with pytest.raises(FaultError, match="pcie_stall"):
            call_with_faults(lambda: None, site="pcie_stall",
                             policy=RetryPolicy(max_attempts=2), plan=plan)

    def test_retry_metrics_recorded(self):
        registry = MetricsRegistry()
        previous = get_registry()
        set_registry(registry)
        try:
            plan = FaultPlan(seed=1, sites={
                "storage_read": FaultSpec(probability=1.0, max_failures=1),
            })
            call_with_faults(lambda: 1, site="storage_read", key=0,
                             plan=plan)
        finally:
            set_registry(previous)
        flat = flatten_snapshot(to_snapshot(registry))
        assert flat['repro_faults_retries_total{site="storage_read"}'] == 1.0
        assert flat[
            'repro_faults_injected_total{kind="fail",site="storage_read"}'
        ] == 1.0


# ---------------------------------------------------------------------------
# Storage scheduler under injected NVMe errors


def _scheduler(num_nodes=64, dim=4, page_bytes=64, capacity=1000,
               retry_policy=None):
    backing = HashFeatureStore(num_nodes, dim)
    page_store = PageStore(backing, page_bytes=page_bytes)
    return IOScheduler(page_store, LRUPageCache(capacity),
                       retry_policy=retry_policy)


class TestSchedulerFaults:
    def test_recovered_read_errors_are_accounted(self):
        sched = _scheduler()
        plan = FaultPlan(seed=2, sites={
            "storage_read": FaultSpec(probability=1.0, max_failures=2),
        })
        with fault_scope(plan):
            io_plan, frames = sched.submit(np.arange(16), fetch=True)
        assert io_plan.page_misses > 0
        # Every missed page failed twice before succeeding.
        assert io_plan.num_retries == 2 * io_plan.page_misses
        assert io_plan.fault_delay_s > 0
        # The functional result is unharmed.
        for pid, frame in frames.items():
            start, count = sched.page_store.page_rows(pid)
            np.testing.assert_array_equal(
                frame,
                sched.page_store.backing.gather(
                    np.arange(start, start + count)),
            )

    def test_exhausted_read_raises_and_pollutes_nothing(self):
        sched = _scheduler(retry_policy=RetryPolicy(max_attempts=2))
        plan = FaultPlan(seed=2, sites={
            "storage_read": FaultSpec(probability=1.0, max_failures=5),
        })
        with fault_scope(plan):
            with pytest.raises(StorageReadError) as excinfo:
                sched.submit(np.arange(8), fetch=True)
        # The failed page never reached the cache — not even a
        # placeholder a later fetch would trust.
        assert sched.cache.lookup(excinfo.value.page_id) is MISS

    def test_storage_slow_adds_delay_only(self):
        sched = _scheduler()
        plan = FaultPlan(seed=4, sites={
            "storage_slow": FaultSpec(probability=1.0, delay_s=1e-3),
        })
        with fault_scope(plan):
            io_plan, _ = sched.submit(np.arange(16))
        assert io_plan.num_retries == 0
        assert io_plan.fault_delay_s > 0

    def test_no_faults_means_zero_overhead_fields(self):
        io_plan, _ = _scheduler().submit(np.arange(16))
        assert io_plan.num_retries == 0
        assert io_plan.fault_delay_s == 0.0


# ---------------------------------------------------------------------------
# Loader faults + Match residency invalidation


class TestLoaderFaults:
    @pytest.fixture()
    def subgraphs(self, tiny_graph, tiny_dataset):
        sampler = NeighborSampler(tiny_graph, (3, 4), rng=0)
        ids = tiny_dataset.train_ids
        return [sampler.sample(ids[i * 50:(i + 1) * 50]) for i in range(2)]

    def test_recovered_stall_keeps_plan_and_adds_delay(self, tiny_dataset,
                                                       subgraphs):
        loader = MatchLoader(tiny_dataset.features)
        baseline = MatchLoader(tiny_dataset.features).plan(subgraphs[0])
        plan = FaultPlan(seed=0, sites={
            "pcie_stall": FaultSpec(probability=1.0, max_failures=2),
        })
        with fault_scope(plan):
            report = loader.plan(subgraphs[0])
        assert report.num_retries == 2
        assert report.retry_delay_s > 0
        assert report.feature_bytes == baseline.feature_bytes
        assert report.num_loaded == baseline.num_loaded

    def test_exhausted_stall_invalidates_residency(self, tiny_dataset,
                                                   subgraphs):
        loader = MatchLoader(tiny_dataset.features)
        loader.plan(subgraphs[0])  # warm residency
        assert len(loader._state.resident) > 0
        plan = FaultPlan(seed=0, sites={
            "pcie_stall": FaultSpec(probability=1.0, max_failures=9),
        })
        with fault_scope(plan):
            with pytest.raises(TransferStallError):
                loader.plan(subgraphs[1])
        # The failed DMA wiped residency: nothing may be reused.
        assert len(loader._state.resident) == 0
        report = loader.plan(subgraphs[1])
        assert report.num_reused == 0
        assert report.num_loaded == subgraphs[1].num_nodes


class TestMatchInvalidation:
    def test_invalidate_all(self):
        state = MatchState()
        state.step(np.array([3, 1, 2]))
        assert len(state.resident) == 3
        state.invalidate()
        assert len(state.resident) == 0
        assert len(state.last_load_ids) == 0

    def test_invalidate_subset(self):
        state = MatchState()
        state.step(np.array([1, 2, 3, 4]))
        state.invalidate(np.array([2, 4, 99]))
        np.testing.assert_array_equal(state.resident, [1, 3])

    def test_invalidate_pending_keeps_reused_rows(self):
        state = MatchState()
        state.step(np.array([1, 2, 3]))
        result = state.step(np.array([2, 3, 4, 5]))
        np.testing.assert_array_equal(result.load_ids, [4, 5])
        state.invalidate_pending()
        # Rows 2 and 3 were already on the device; only the in-flight
        # rows 4 and 5 lose residency.
        np.testing.assert_array_equal(state.resident, [2, 3])

    def test_step_tracks_last_load_ids(self):
        state = MatchState()
        result = state.step(np.array([5, 6]))
        np.testing.assert_array_equal(state.last_load_ids, result.load_ids)
        state.reset()
        assert len(state.last_load_ids) == 0


# ---------------------------------------------------------------------------
# Serving degradation + distinct exit counters


from repro.serve import ServeConfig, simulate  # noqa: E402
from repro.serve.request import InferenceRequest, RequestQueue  # noqa: E402

from helpers import make_spec  # noqa: E402


def _request(req_id, arrival, deadline=float("inf")):
    request = InferenceRequest(req_id=req_id, arrival=arrival,
                               seeds=np.array([1, 2], dtype=np.int64))
    request.deadline = deadline
    return request


class TestServeDegradation:
    def test_drop_burst_trips_degraded_mode(self):
        queue = RequestQueue(capacity=8, degrade_after_drops=2,
                             degrade_window_s=1.0,
                             degrade_capacity_factor=0.25)
        assert not queue.degraded(0.0)
        for i in range(2):
            request = _request(i, 0.0, deadline=0.1)
            queue.offer(request, 0.0)
            assert not queue.take(request, 0.5)  # deadline drop
        assert queue.degraded(0.5)
        assert queue.effective_capacity(0.5) == 2

    def test_degraded_shed_counted_separately(self):
        queue = RequestQueue(capacity=8, degrade_after_drops=1,
                             degrade_window_s=1.0,
                             degrade_capacity_factor=0.25)
        victim = _request(0, 0.0, deadline=0.1)
        queue.offer(victim, 0.0)
        queue.take(victim, 0.5)  # trips degradation; queue empty again
        for i in range(1, 4):
            queue.offer(_request(i, 0.5), 0.5)
        # Effective capacity is 2: the third arrival is shed even though
        # the real queue has room — a degraded-mode shed.
        assert queue.stats.shed == 1
        assert queue.stats.degraded_shed == 1
        assert queue.stats.dropped == 1

    def test_window_drains_and_capacity_recovers(self):
        queue = RequestQueue(capacity=8, degrade_after_drops=1,
                             degrade_window_s=0.01)
        request = _request(0, 0.0, deadline=0.001)
        queue.offer(request, 0.0)
        queue.take(request, 0.005)
        assert queue.degraded(0.005)
        assert not queue.degraded(1.0)
        assert queue.effective_capacity(1.0) == 8

    def test_degradation_off_by_default(self):
        queue = RequestQueue(capacity=4)
        request = _request(0, 0.0, deadline=0.0)
        queue.offer(request, 0.0)
        queue.take(request, 1.0)
        assert not queue.degraded(1.0)
        assert queue.effective_capacity(1.0) == 4

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            RequestQueue(capacity=4, degrade_capacity_factor=0.0)

    def test_serve_stall_faults_shed_instead_of_stalling(self):
        """Under injected serving stalls, degradation sheds at the door;
        shed vs deadline-dropped stay distinct in the metrics."""
        dataset = __import__("repro.graph.datasets",
                             fromlist=["Dataset"]).Dataset(
            make_spec(name="faulty-serve", num_nodes=800, avg_degree=6.0,
                      feature_dim=8), seed=3)
        from repro.config import RunConfig

        serve_config = ServeConfig(
            rate=2000.0, num_requests=120, queue_capacity=8, slo_s=0.01,
            degrade_after_drops=2, degrade_window_s=0.05,
            degrade_capacity_factor=0.25, seed=1,
        )
        plan = FaultPlan(seed=11, sites={
            "serve_stall": FaultSpec(probability=0.5, delay_s=0.02),
        })
        registry = MetricsRegistry()
        previous = get_registry()
        set_registry(registry)
        try:
            with fault_scope(plan):
                report = simulate(
                    "dgl", dataset,
                    run_config=RunConfig(num_gpus=1, fanouts=(3, 3), seed=0),
                    serve_config=serve_config,
                )
        finally:
            set_registry(previous)
        assert plan.fired("serve_stall") > 0
        assert report.num_dropped > 0
        assert report.num_degraded_shed > 0
        assert report.reconciles()
        stalls = [s for s in report.timeline if s["cat"] == "fault_stall"]
        assert len(stalls) == plan.fired("serve_stall")
        assert report.phase_busy["fault_stall"] == pytest.approx(
            sum(s["dur"] for s in stalls))
        # Distinct counters: shed != dropped, both present.
        flat = flatten_snapshot(to_snapshot(registry))
        shed = flat.get('repro_serve_shed_requests_total{framework="dgl"}',
                        0.0)
        dropped = flat.get(
            'repro_serve_deadline_dropped_total{framework="dgl"}', 0.0)
        assert shed == report.num_shed > 0
        assert dropped == report.num_dropped > 0
