"""Tests for the cache simulator and memory-hierarchy model."""

import numpy as np
import pytest

from repro.gpu.memory import CacheSim, MemoryHierarchy
from repro.gpu.spec import RTX3090


class TestCacheSim:
    def test_cold_misses(self):
        cache = CacheSim(1024, line_bytes=64, ways=2)
        hits = cache.access(np.array([0, 64, 128]))
        assert not hits.any()
        assert cache.stats.hit_rate == 0.0

    def test_rereference_hits(self):
        cache = CacheSim(1024, line_bytes=64, ways=2)
        cache.access(np.array([0, 64]))
        hits = cache.access(np.array([0, 64, 0]))
        assert hits.all()
        assert cache.stats.hits == 3

    def test_same_line_spatial_hit(self):
        cache = CacheSim(1024, line_bytes=64, ways=2)
        hits = cache.access(np.array([0, 8, 63]))
        np.testing.assert_array_equal(hits, [False, True, True])

    def test_lru_eviction(self):
        # 2 sets x 2 ways x 64B lines = 256B. Lines 0, 2, 4 map to set 0.
        cache = CacheSim(256, line_bytes=64, ways=2)
        a, b, c = 0, 2 * 64, 4 * 64
        cache.access(np.array([a, b]))   # set 0 holds {a, b}
        cache.access(np.array([c]))      # evicts a (LRU)
        hits = cache.access(np.array([b, c, a]))
        np.testing.assert_array_equal(hits, [True, True, False])

    def test_lru_refresh_on_hit(self):
        cache = CacheSim(256, line_bytes=64, ways=2)
        a, b, c = 0, 2 * 64, 4 * 64
        cache.access(np.array([a, b, a]))  # a refreshed; b is LRU
        cache.access(np.array([c]))        # evicts b
        hits = cache.access(np.array([a, b]))
        np.testing.assert_array_equal(hits, [True, False])

    def test_capacity_rounding(self):
        cache = CacheSim(1000, line_bytes=64, ways=4)
        assert cache.capacity_bytes <= 1000
        assert cache.num_sets >= 1

    def test_working_set_exceeds_capacity(self):
        cache = CacheSim(4096, line_bytes=64, ways=4)
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 10_000_000, size=20_000) * 4
        cache.access(addrs)
        assert cache.stats.hit_rate < 0.05

    def test_reset(self):
        cache = CacheSim(1024)
        cache.access(np.array([0, 0]))
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.access(np.array([0]))[0]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CacheSim(0)
        with pytest.raises(ValueError):
            CacheSim(1024, ways=0)


class TestMemoryHierarchy:
    def test_run_trace_levels(self):
        hier = MemoryHierarchy(RTX3090)
        rng = np.random.default_rng(1)
        # Small working set: everything ends up hitting after warmup.
        addrs = np.tile(rng.integers(0, 64, size=64) * 128, 20)
        stats = hier.run_trace(addrs)
        assert stats.l1_hit_rate > 0.8
        assert stats.accesses == len(addrs)

    def test_effective_bandwidth_bounds(self):
        hier = MemoryHierarchy(RTX3090)
        bw_all_global = hier.effective_bandwidth(0.0, 0.0)
        bw_all_l1 = hier.effective_bandwidth(1.0, 0.0)
        assert bw_all_global == pytest.approx(RTX3090.global_bw)
        assert bw_all_l1 == pytest.approx(RTX3090.l1_bw)

    def test_effective_bandwidth_monotone(self):
        hier = MemoryHierarchy(RTX3090)
        bws = [hier.effective_bandwidth(h, 0.2) for h in (0.0, 0.3, 0.9)]
        assert bws == sorted(bws)

    def test_global_fraction(self):
        from repro.gpu.memory import HierarchyStats

        stats = HierarchyStats(l1_hit_rate=0.1, l2_hit_rate=0.5, accesses=10)
        assert stats.global_fraction == pytest.approx(0.45)
