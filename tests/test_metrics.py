"""Tests for roofline analysis and the paper-scale memory estimator."""

import pytest

from helpers import make_spec
from repro.core.memory_aware import ComputeCostModel, model_profile
from repro.gpu.spec import RTX3090
from repro.metrics.memory import paper_scale_workspace_bytes
from repro.metrics.roofline import (
    RooflinePoint,
    point_from_compute_report,
    roofline_ceiling,
)
from repro.sampling import NeighborSampler


class TestRoofline:
    def test_ceiling_memory_bound_region(self):
        oi = 0.5
        assert roofline_ceiling(oi) == pytest.approx(oi * RTX3090.global_bw)

    def test_ceiling_compute_bound_region(self):
        assert roofline_ceiling(1e6) == RTX3090.peak_flops

    def test_negative_oi_rejected(self):
        with pytest.raises(ValueError):
            roofline_ceiling(-1.0)

    def test_point_properties(self):
        point = RooflinePoint("k", operational_intensity=0.25,
                              achieved_flops=2e11)
        assert point.achieved_gflops == pytest.approx(200)
        assert point.attainable_flops() == pytest.approx(
            0.25 * RTX3090.global_bw
        )

    def test_point_from_report(self, tiny_graph, tiny_dataset):
        sampler = NeighborSampler(tiny_graph, (3, 4), rng=0)
        sg = sampler.sample(tiny_dataset.train_ids[:32])
        model = ComputeCostModel(mode="memory_aware")
        profile = model_profile("gcn", 16, 5, hidden_dim=8, num_layers=2)
        report = model.subgraph_report(sg, profile)
        point = point_from_compute_report("ma", report)
        assert point.achieved_flops > 0
        # Never above the roof for its OI (the model is consistent).
        assert point.achieved_flops <= 1.05 * point.attainable_flops()


class TestPaperScaleWorkspace:
    def test_breakdown_sums(self):
        spec = make_spec(num_nodes=1000, avg_degree=10)
        result = paper_scale_workspace_bytes(spec)
        assert result["total"] > 0
        assert result["features"] > 0
        assert result["input_nodes"] > 0

    def test_monotone_in_batch_size(self):
        spec = make_spec()
        small = paper_scale_workspace_bytes(spec, batch_size=100)
        large = paper_scale_workspace_bytes(spec, batch_size=10_000)
        assert large["total"] > small["total"]

    def test_monotone_in_feature_dim(self):
        narrow = paper_scale_workspace_bytes(make_spec(feature_dim=16))
        wide = paper_scale_workspace_bytes(make_spec(feature_dim=512))
        assert wide["total"] > narrow["total"]

    def test_edge_messages_toggle(self):
        spec = make_spec()
        with_msgs = paper_scale_workspace_bytes(
            spec, materialize_edge_messages=True)
        without = paper_scale_workspace_bytes(
            spec, materialize_edge_messages=False)
        assert with_msgs["total"] > without["total"]
        assert without["edge_messages"] == 0

    def test_structure_formats(self):
        spec = make_spec()
        three = paper_scale_workspace_bytes(spec, structure_formats=3)
        one = paper_scale_workspace_bytes(spec, structure_formats=1)
        assert three["structure"] == 3 * one["structure"]

    def test_full_graph_term_scales_with_paper_edges(self):
        small = paper_scale_workspace_bytes(make_spec(num_nodes=1000))
        big = paper_scale_workspace_bytes(make_spec(num_nodes=100_000))
        assert (big["full_graph_topology"]
                > small["full_graph_topology"])
