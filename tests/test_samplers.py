"""Tests for neighbor and random-walk samplers."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling import (
    BaselineIdMap,
    NeighborSampler,
    RandomWalkSampler,
)


@pytest.fixture()
def sampler(tiny_graph):
    return NeighborSampler(tiny_graph, (3, 5), rng=0)


class TestNeighborSampler:
    def test_block_chain(self, sampler, tiny_dataset):
        sg = sampler.sample(tiny_dataset.train_ids[:32])
        sg.validate()
        assert sg.num_layers == 2
        # Block k+1's targets are block k's sources.
        np.testing.assert_array_equal(sg.layers[1].dst_global,
                                      sg.layers[0].src_global)

    def test_edges_are_real_neighbors(self, sampler, tiny_graph,
                                      tiny_dataset):
        sg = sampler.sample(tiny_dataset.train_ids[:32])
        for block in sg.layers:
            src_g = block.src_global[block.edge_src]
            dst_g = block.dst_global[block.edge_dst]
            for s, d in zip(src_g[:200], dst_g[:200]):
                assert s in tiny_graph.neighbors(d), (s, d)

    def test_fanout_respected(self, tiny_graph, tiny_dataset):
        fanout = 4
        sampler = NeighborSampler(tiny_graph, (fanout,), rng=1)
        seeds = tiny_dataset.train_ids[:64]
        sg = sampler.sample(seeds)
        block = sg.layers[0]
        deg = block.in_degrees()
        expected = np.minimum(tiny_graph.degrees[seeds], fanout)
        np.testing.assert_array_equal(deg, expected)

    def test_sampling_without_replacement(self, tiny_graph, tiny_dataset):
        """A node's sampled neighbors within one hop are distinct."""
        sampler = NeighborSampler(tiny_graph, (5,), rng=2)
        sg = sampler.sample(tiny_dataset.train_ids[:64])
        block = sg.layers[0]
        for pos in range(block.num_dst):
            srcs = block.edge_src[block.edge_dst == pos]
            assert len(np.unique(srcs)) == len(srcs)

    def test_targets_lead_sources(self, sampler, tiny_dataset):
        sg = sampler.sample(tiny_dataset.train_ids[:16])
        for block in sg.layers:
            np.testing.assert_array_equal(
                block.src_global[: block.num_dst], block.dst_global
            )

    def test_input_nodes_unique(self, sampler, tiny_dataset):
        sg = sampler.sample(tiny_dataset.train_ids[:32])
        inp = sg.input_nodes
        assert len(np.unique(inp)) == len(inp)

    def test_draw_count(self, tiny_graph, tiny_dataset):
        sampler = NeighborSampler(tiny_graph, (3,), rng=3)
        seeds = tiny_dataset.train_ids[:64]
        sg = sampler.sample(seeds)
        expected = int(np.minimum(tiny_graph.degrees[seeds], 3).sum())
        assert sg.num_sampled_edges == expected

    def test_seeds_must_be_unique(self, sampler):
        with pytest.raises(SamplingError):
            sampler.sample(np.array([1, 1, 2]))

    def test_seeds_must_be_non_empty(self, sampler):
        with pytest.raises(SamplingError):
            sampler.sample(np.array([], dtype=np.int64))

    def test_invalid_fanouts(self, tiny_graph):
        with pytest.raises(SamplingError):
            NeighborSampler(tiny_graph, ())
        with pytest.raises(SamplingError):
            NeighborSampler(tiny_graph, (0,))

    def test_invalid_device(self, tiny_graph):
        with pytest.raises(SamplingError):
            NeighborSampler(tiny_graph, (3,), device="tpu")

    def test_deterministic_given_rng(self, tiny_graph, tiny_dataset):
        seeds = tiny_dataset.train_ids[:16]
        a = NeighborSampler(tiny_graph, (3, 3), rng=9).sample(seeds)
        b = NeighborSampler(tiny_graph, (3, 3), rng=9).sample(seeds)
        np.testing.assert_array_equal(a.input_nodes, b.input_nodes)

    def test_idmap_injection(self, tiny_graph, tiny_dataset):
        sampler = NeighborSampler(tiny_graph, (3,), idmap=BaselineIdMap(),
                                  rng=0)
        sg = sampler.sample(tiny_dataset.train_ids[:8])
        assert sg.idmap_report.sync_events > 0  # baseline map was used

    def test_modeled_time_cpu_slower(self, tiny_graph, tiny_dataset):
        seeds = tiny_dataset.train_ids[:32]
        gpu = NeighborSampler(tiny_graph, (3, 5), device="gpu", rng=0)
        cpu = NeighborSampler(tiny_graph, (3, 5), device="cpu", rng=0)
        sg = gpu.sample(seeds)
        assert cpu.modeled_sample_time(sg) > gpu.modeled_sample_time(sg)
        # Per-draw cost gap matches the throughput calibration exactly
        # (fixed hop overheads cancel).
        from repro.config import DEFAULT_COST_MODEL as c

        gap = cpu.modeled_sample_time(sg) - gpu.modeled_sample_time(sg)
        expected = sg.num_sampled_edges * (
            1 / c.cpu_sample_edges_per_s - 1 / c.gpu_sample_edges_per_s
        )
        assert gap == pytest.approx(expected)

    def test_structure_bytes_positive(self, sampler, tiny_dataset):
        sg = sampler.sample(tiny_dataset.train_ids[:8])
        assert sg.structure_bytes() > 0
        assert sg.num_edges > 0


class TestRandomWalkSampler:
    def test_single_star_block(self, tiny_graph, tiny_dataset):
        sampler = RandomWalkSampler(tiny_graph, walk_length=3, num_walks=4,
                                    rng=0)
        seeds = tiny_dataset.train_ids[:32]
        sg = sampler.sample(seeds)
        sg.validate()
        assert sg.num_layers == 1
        assert sg.num_sampled_edges == len(seeds) * 4 * 3

    def test_visited_nodes_reachable(self, tiny_graph, tiny_dataset):
        """Every edge's source was reached by a walk from its seed, so it
        must lie within walk_length hops — check hop-1 containment of the
        first step via direct neighborship of *some* node."""
        sampler = RandomWalkSampler(tiny_graph, walk_length=1, num_walks=2,
                                    rng=1)
        seeds = tiny_dataset.train_ids[:16]
        sg = sampler.sample(seeds)
        block = sg.layers[0]
        src_g = block.src_global[block.edge_src]
        dst_g = block.dst_global[block.edge_dst]
        for s, d in zip(src_g, dst_g):
            assert s in tiny_graph.neighbors(d) or s == d

    def test_zero_degree_walker_stays(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph(indptr=np.array([0, 0]), indices=np.array([], dtype=int))
        sampler = RandomWalkSampler(g, walk_length=2, num_walks=1, rng=0)
        sg = sampler.sample(np.array([0]))
        block = sg.layers[0]
        np.testing.assert_array_equal(block.src_global[block.edge_src],
                                      [0, 0])

    def test_invalid_args(self, tiny_graph):
        with pytest.raises(SamplingError):
            RandomWalkSampler(tiny_graph, walk_length=0)
        with pytest.raises(SamplingError):
            RandomWalkSampler(tiny_graph, num_walks=0)
        with pytest.raises(SamplingError):
            RandomWalkSampler(tiny_graph, device="quantum")
        sampler = RandomWalkSampler(tiny_graph, rng=0)
        with pytest.raises(SamplingError):
            sampler.sample(np.array([3, 3]))
