"""Tests for the PCIe link and multi-GPU models."""

import pytest

from repro.config import DEFAULT_COST_MODEL
from repro.gpu.atomics import AtomicCounters, atomic_time
from repro.gpu.cluster import allreduce_time, effective_pcie_bandwidth
from repro.gpu.pcie import PCIeLink, link_from_cost
from repro.gpu.spec import RTX3090


class TestPCIeLink:
    def test_transfer_time(self):
        link = PCIeLink(bandwidth=32e9, latency_s=1e-5)
        t = link.transfer_time(32e9)
        assert t == pytest.approx(1.0 + 1e-5)

    def test_zero_bytes_free(self):
        assert PCIeLink().transfer_time(0) == 0.0
        assert PCIeLink().gather_and_transfer_time(0) == 0.0

    def test_contention_caps_bandwidth(self):
        link = PCIeLink(bandwidth=32e9, host_aggregate=80e9)
        assert link.effective_bandwidth(1) == 32e9
        assert link.effective_bandwidth(2) == 32e9  # 80/2 = 40 > 32
        assert link.effective_bandwidth(4) == pytest.approx(20e9)
        assert link.effective_bandwidth(8) == pytest.approx(10e9)

    def test_invalid_links(self):
        with pytest.raises(ValueError):
            PCIeLink().effective_bandwidth(0)

    def test_gather_adds_host_time(self):
        link = PCIeLink()
        plain = link.transfer_time(1e9)
        with_gather = link.gather_and_transfer_time(1e9)
        assert with_gather > plain

    def test_link_from_cost(self):
        link = link_from_cost(RTX3090, DEFAULT_COST_MODEL)
        assert link.bandwidth == RTX3090.pcie_bw
        assert link.latency_s == DEFAULT_COST_MODEL.pcie_transfer_latency_s


class TestAllreduce:
    def test_single_gpu_free(self):
        assert allreduce_time(1e9, 1) == 0.0
        assert allreduce_time(0, 4) == 0.0

    def test_ring_formula(self):
        cost = DEFAULT_COST_MODEL
        t = allreduce_time(1e9, 4, cost)
        moved = 2 * 3 / 4 * 1e9
        assert t == pytest.approx(cost.nccl_latency_s
                                  + moved / cost.nccl_bus_bytes_per_s)

    def test_grows_sublinearly_with_gpus(self):
        t2 = allreduce_time(1e9, 2)
        t8 = allreduce_time(1e9, 8)
        assert t2 < t8 < 2 * t2

    def test_invalid_gpus(self):
        with pytest.raises(ValueError):
            allreduce_time(1e9, 0)


class TestEffectivePCIe:
    def test_no_contention_at_low_count(self):
        assert effective_pcie_bandwidth(32e9, 2) == 32e9

    def test_contention_at_high_count(self):
        assert effective_pcie_bandwidth(32e9, 8) == pytest.approx(10e9)

    def test_invalid(self):
        with pytest.raises(ValueError):
            effective_pcie_bandwidth(32e9, 0)


class TestAtomics:
    def test_counter_addition(self):
        a = AtomicCounters(cas_ops=2, add_ops=1, probe_retries=3)
        b = AtomicCounters(cas_ops=1)
        total = a + b
        assert total.cas_ops == 3
        assert total.total_ops == 7

    def test_atomic_time(self):
        counters = AtomicCounters(cas_ops=1000)
        cost = DEFAULT_COST_MODEL
        assert atomic_time(counters) == pytest.approx(
            1000 / cost.atomic_ops_per_s
        )

    def test_contention_slows(self):
        counters = AtomicCounters(add_ops=1000)
        assert atomic_time(counters, contention_factor=4.0) == pytest.approx(
            4 * atomic_time(counters)
        )

    def test_invalid_contention(self):
        with pytest.raises(ValueError):
            atomic_time(AtomicCounters(), contention_factor=0.5)
