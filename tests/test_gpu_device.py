"""Tests for the device-memory allocator."""

import pytest

from repro.errors import DeviceMemoryError
from repro.gpu.device import DeviceMemory


class TestDeviceMemory:
    def test_alloc_and_free(self):
        dev = DeviceMemory(1000)
        dev.alloc("a", 400)
        assert dev.used_bytes == 400
        assert dev.free_bytes == 600
        dev.free("a")
        assert dev.used_bytes == 0

    def test_over_allocation_raises(self):
        dev = DeviceMemory(100)
        with pytest.raises(DeviceMemoryError) as err:
            dev.alloc("big", 200)
        assert err.value.requested == 200
        assert err.value.available == 100

    def test_duplicate_name_rejected(self):
        dev = DeviceMemory(100)
        dev.alloc("x", 10)
        with pytest.raises(ValueError):
            dev.alloc("x", 10)

    def test_free_unknown_name(self):
        with pytest.raises(KeyError):
            DeviceMemory(10).free("ghost")

    def test_peak_tracking(self):
        dev = DeviceMemory(1000)
        dev.alloc("a", 300)
        dev.alloc("b", 400)
        dev.free("a")
        dev.alloc("c", 100)
        assert dev.peak_bytes == 700

    def test_resize(self):
        dev = DeviceMemory(1000)
        dev.alloc("buf", 100)
        dev.resize("buf", 600)
        assert dev.used_bytes == 600
        dev.resize("buf", 50)
        assert dev.used_bytes == 50
        assert dev.peak_bytes == 600

    def test_resize_over_capacity(self):
        dev = DeviceMemory(100)
        dev.alloc("buf", 50)
        with pytest.raises(DeviceMemoryError):
            dev.resize("buf", 200)

    def test_resize_unknown(self):
        with pytest.raises(KeyError):
            DeviceMemory(10).resize("ghost", 5)

    def test_snapshot(self):
        dev = DeviceMemory(100)
        dev.alloc("a", 10)
        dev.alloc("b", 20)
        assert dev.snapshot() == {"a": 10, "b": 20}

    def test_negative_alloc(self):
        with pytest.raises(ValueError):
            DeviceMemory(10).alloc("neg", -1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            DeviceMemory(0)
