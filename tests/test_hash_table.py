"""Tests for the exact open-addressing hash table (Algorithm 2)."""

import numpy as np
import pytest

from repro.sampling.idmap.hash_table import (
    ExactOpenAddressTable,
    estimate_probe_stats,
    table_capacity,
)


class TestTableCapacity:
    def test_power_of_two(self):
        for n in (1, 3, 100, 1000):
            cap = table_capacity(n)
            assert cap & (cap - 1) == 0
            assert cap >= n / 0.5

    def test_respects_load_factor(self):
        assert table_capacity(100, load_factor=0.25) >= 400

    def test_invalid(self):
        with pytest.raises(ValueError):
            table_capacity(-1)


class TestInsertSemantics:
    def test_fresh_insert_flag_false(self):
        table = ExactOpenAddressTable(8)
        _, flag = table.insert_id(3)
        assert flag is False  # new node

    def test_duplicate_insert_flag_true(self):
        table = ExactOpenAddressTable(8)
        table.insert_id(3)
        index, flag = table.insert_id(3)
        assert flag is True
        assert table.keys[index] == 3

    def test_linear_probing_on_collision(self):
        table = ExactOpenAddressTable(8)
        # 3 and 11 both hash to slot 3 (mod 8): 11 must probe to slot 4.
        i1, _ = table.insert_id(3)
        i2, _ = table.insert_id(11)
        assert i1 == 3 and i2 == 4
        assert table.stats.probe_retries == 1

    def test_probe_wraps_around(self):
        table = ExactOpenAddressTable(4)
        table.insert_id(3)
        index, _ = table.insert_id(7)  # hashes to 3, wraps to 0
        assert index == 0

    def test_full_table_raises(self):
        table = ExactOpenAddressTable(2)
        table.insert_id(0)
        table.insert_id(1)
        with pytest.raises(RuntimeError, match="full"):
            table.insert_id(2)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            ExactOpenAddressTable(4).insert_id(-1)


class TestFusedMap:
    def test_consecutive_local_ids(self):
        table = ExactOpenAddressTable(16)
        for gid in [5, 9, 5, 2, 9, 7]:
            table.fused_map_insert(gid)
        mapping = table.mapping()
        assert set(mapping.keys()) == {5, 9, 2, 7}
        assert sorted(mapping.values()) == [0, 1, 2, 3]
        assert table.local_id == 4

    def test_duplicates_are_idempotent(self):
        table = ExactOpenAddressTable(16)
        for _ in range(10):
            table.fused_map_insert(4)
        assert table.local_id == 1
        assert table.mapping() == {4: 0}
        assert table.stats.duplicate_hits == 9

    def test_lookup(self):
        table = ExactOpenAddressTable(8)
        table.fused_map_insert(3)
        table.fused_map_insert(11)  # collides, probes
        assert table.lookup(3) == 0
        assert table.lookup(11) == 1
        assert table.lookup(99) == -1

    def test_atomic_add_returns_old_value(self):
        table = ExactOpenAddressTable(4)
        assert table.atomic_add_local_id() == 0
        assert table.atomic_add_local_id() == 1
        assert table.add_ops == 2

    def test_cas_counter(self):
        table = ExactOpenAddressTable(8)
        table.insert_id(1)
        table.insert_id(1)
        assert table.cas_ops == 2


class TestProbeEstimate:
    def test_no_collisions_no_probes(self):
        stats = estimate_probe_stats(np.arange(8), 0, capacity=64)
        assert stats.probe_retries == 0
        assert stats.inserts == 8

    def test_clustered_keys_probe(self):
        # All keys hash to the same slot.
        keys = np.arange(0, 64, 8) * 8  # multiples of 64 mod 64 == 0
        stats = estimate_probe_stats(keys, 0, capacity=64)
        n = len(keys)
        assert stats.probe_retries == n * (n - 1) // 2

    def test_duplicates_scale_probes(self):
        keys = np.array([0, 64, 128])  # same slot in capacity 64
        no_dup = estimate_probe_stats(keys, 0, capacity=64)
        with_dup = estimate_probe_stats(keys, 30, capacity=64)
        assert with_dup.probe_retries > no_dup.probe_retries
        assert with_dup.duplicate_hits == 30

    def test_avg_probes(self):
        stats = estimate_probe_stats(np.arange(10), 0, capacity=1024)
        assert stats.avg_probes == 0.0
