"""Tests for the framework strategy bundles and the epoch driver."""

import numpy as np
import pytest

from repro.config import RunConfig
from repro.frameworks import (
    DGLFramework,
    FastGLFramework,
    FRAMEWORKS,
    GNNAdvisorFramework,
    GNNLabFramework,
    PyGFramework,
    create,
    fastgl_variant,
)


@pytest.fixture()
def config():
    return RunConfig(batch_size=64, fanouts=(3, 4), num_gpus=2,
                     hidden_dim=8, seed=1)


class TestRegistry:
    def test_all_paper_frameworks(self):
        assert set(FRAMEWORKS) == {
            "pyg", "dgl", "gnnadvisor", "gnnlab", "pagraph", "fastgl",
            "dgl-ooc", "fastgl-ooc",
        }

    def test_create(self):
        assert isinstance(create("dgl"), DGLFramework)
        with pytest.raises(KeyError):
            create("tensorflow")


class TestStrategyBundles:
    """Each framework matches its Table 5 row."""

    def test_pyg(self):
        fw = PyGFramework()
        assert fw.sample_device == "cpu"
        assert fw.compute_mode == "naive"

    def test_dgl(self):
        fw = DGLFramework()
        assert fw.sample_device == "gpu"
        assert fw.make_idmap().map(np.array([1, 1])).report.sync_events == 1

    def test_gnnadvisor(self):
        assert GNNAdvisorFramework().compute_mode == "advisor"

    def test_gnnlab(self, config):
        fw = GNNLabFramework()
        assert fw.pipelined_sampling
        assert fw.num_sampler_gpus(config) == 1
        eight = RunConfig(num_gpus=8)
        assert fw.num_sampler_gpus(eight) == 2

    def test_gnnlab_needs_two_gpus(self):
        fw = GNNLabFramework()
        with pytest.raises(ValueError, match="2 GPUs"):
            fw.num_sampler_gpus(RunConfig(num_gpus=1))

    def test_fastgl(self):
        fw = FastGLFramework()
        assert fw.compute_mode == "memory_aware"
        assert fw.use_reorder and fw.prefetch_topology
        assert fw.make_idmap().map(np.array([1, 1])).report.sync_events == 0


class TestRunEpoch:
    @pytest.mark.parametrize("name", sorted(FRAMEWORKS))
    def test_epoch_report_sane(self, name, tiny_dataset, config):
        report = create(name).run_epoch(tiny_dataset, config)
        assert report.framework == name
        assert report.num_batches == 10  # 600 train ids / 64
        assert report.epoch_time > 0
        phases = report.phases
        assert phases.sample > 0 and phases.memory_io >= 0
        assert phases.compute > 0
        assert phases.idmap <= phases.sample
        assert report.memory_peak_bytes > 0

    def test_fastgl_beats_dgl(self, tiny_dataset, config):
        dgl = DGLFramework().run_epoch(tiny_dataset, config)
        fast = FastGLFramework().run_epoch(tiny_dataset, config)
        assert fast.epoch_time < dgl.epoch_time
        assert fast.phases.memory_io < dgl.phases.memory_io
        assert fast.transfer.num_loaded < dgl.transfer.num_loaded

    def test_training_produces_losses(self, tiny_dataset, config):
        from dataclasses import replace

        cfg = replace(config, train_model=True)
        report = DGLFramework().run_epoch(tiny_dataset, cfg)
        assert len(report.losses) == report.num_batches
        assert all(np.isfinite(report.losses))

    def test_multi_epoch_accumulates(self, tiny_dataset, config):
        from dataclasses import replace

        cfg = replace(config, num_epochs=2)
        one = DGLFramework().run_epoch(tiny_dataset, config)
        two = DGLFramework().run_epoch(tiny_dataset, cfg)
        assert two.num_batches == 2 * one.num_batches
        assert two.epoch_time > one.epoch_time

    def test_multi_epoch_training_continues(self, tiny_dataset, config):
        """One model persists across epochs: later losses are lower."""
        from dataclasses import replace

        cfg = replace(config, num_epochs=3, train_model=True)
        report = DGLFramework().run_epoch(tiny_dataset, cfg)
        n = report.num_batches // 3
        first = np.mean(report.losses[:n])
        last = np.mean(report.losses[-n:])
        assert last < first

    def test_more_gpus_faster(self, tiny_dataset, config):
        from dataclasses import replace

        two = DGLFramework().run_epoch(tiny_dataset, config)
        four = DGLFramework().run_epoch(tiny_dataset,
                                        replace(config, num_gpus=4))
        assert four.epoch_time < two.epoch_time

    def test_custom_sampler_injection(self, tiny_dataset, config):
        from repro.sampling import RandomWalkSampler
        from dataclasses import replace

        sampler = RandomWalkSampler(tiny_dataset.graph, walk_length=2,
                                    num_walks=3, rng=0)
        cfg = replace(config, fanouts=(3,))  # 1-layer model
        report = DGLFramework().run_epoch(tiny_dataset, cfg,
                                          sampler=sampler)
        assert report.epoch_time > 0

    def test_gat_model_runs(self, tiny_dataset, config):
        report = FastGLFramework().run_epoch(tiny_dataset, config,
                                             model_name="gat")
        assert report.epoch_time > 0

    def test_summary_text(self, tiny_dataset, config):
        report = FastGLFramework().run_epoch(tiny_dataset, config)
        text = report.summary()
        assert "fastgl" in text and "batches" in text
        assert "reused" in text

    @pytest.mark.parametrize("window", [2, 3, 100])
    def test_reorder_window_boundaries(self, tiny_dataset, config, window):
        """Any window size (tiny, odd, larger than the epoch) is valid and
        preserves the batch multiset."""
        from dataclasses import replace

        cfg = replace(config, reorder_window=window)
        report = FastGLFramework().run_epoch(tiny_dataset, cfg)
        assert report.num_batches == 10
        assert report.transfer.num_wanted > 0


class TestVariants:
    def test_variant_names(self):
        v = fastgl_variant(match=True, reorder=False, memory_aware=False,
                           fused_map=False)
        assert v.name == "dgl+m"
        assert not v.use_reorder

    def test_variant_without_match_is_naive_loader(self, tiny_dataset,
                                                   config):
        v = fastgl_variant(match=False, reorder=False, memory_aware=True,
                           fused_map=True)()
        report = v.run_epoch(tiny_dataset, config)
        assert report.transfer.num_reused == 0

    def test_reorder_requires_match(self):
        v = fastgl_variant(match=False, reorder=True)
        assert not v.use_reorder

    def test_variant_idmap_switch(self):
        with_fm = fastgl_variant(fused_map=True)()
        without_fm = fastgl_variant(fused_map=False)()
        assert with_fm.make_idmap().map(
            np.array([1, 1])).report.sync_events == 0
        assert without_fm.make_idmap().map(
            np.array([1, 1])).report.sync_events == 1

    def test_stack_ordering(self, tiny_dataset, config):
        """Cumulative stacks are monotonically at least as fast."""
        dgl = DGLFramework().run_epoch(tiny_dataset, config)
        mr = fastgl_variant(memory_aware=False,
                            fused_map=False)().run_epoch(tiny_dataset,
                                                         config)
        full = fastgl_variant()().run_epoch(tiny_dataset, config)
        assert mr.epoch_time < dgl.epoch_time
        assert full.epoch_time <= mr.epoch_time * 1.01


class TestMemoryAccounting:
    def test_detail_keys(self, tiny_dataset, config):
        report = DGLFramework().run_epoch(tiny_dataset, config)
        for key in ("features", "structure", "activations",
                    "edge_messages", "params_opt", "runtime", "cache"):
            assert key in report.memory_detail

    def test_fastgl_skips_edge_messages(self, tiny_dataset, config):
        fast = FastGLFramework().run_epoch(tiny_dataset, config)
        dgl = DGLFramework().run_epoch(tiny_dataset, config)
        assert fast.memory_detail["edge_messages"] == 0
        assert dgl.memory_detail["edge_messages"] > 0

    def test_gnnlab_accounts_cache(self, tiny_dataset, config):
        report = GNNLabFramework().run_epoch(tiny_dataset, config)
        assert report.memory_detail["cache"] > 0

    def test_pagraph_uses_degree_cache(self, tiny_dataset, config):
        from repro.frameworks import PaGraphFramework

        fw = PaGraphFramework()
        report = fw.run_epoch(tiny_dataset, config)
        assert report.transfer.num_cache_hits > 0
        cache = fw._last_cache
        # The cache holds the top-degree nodes.
        threshold = tiny_dataset.graph.degrees[cache.cached_ids].min()
        uncached = np.setdiff1d(np.arange(tiny_dataset.num_nodes),
                                cache.cached_ids)
        if len(uncached):
            assert tiny_dataset.graph.degrees[uncached].max() <= threshold + 1
