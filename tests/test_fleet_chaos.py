"""Chaos: replica loss mid-flash-crowd.

A fleet absorbing a flash crowd loses replicas through the
``replica_crash`` fault site. The contract under fire:

* nothing vanishes — every scheduled request reaches a terminal
  outcome, and ``completed + shed + dropped == scheduled`` exactly;
* a crashed replica's queued and in-flight requests are recovered and
  re-offered (``rerouted`` equals the sum of per-crash recovery
  counts), never silently lost;
* the availability ledger is exact: it falls only by what genuinely
  could not be absorbed;
* the whole storm is deterministic in ``REPRO_CHAOS_SEED`` — two runs
  produce identical crash schedules, outcomes and makespans.
"""

from __future__ import annotations

import os

import pytest

from helpers import make_spec
from repro.config import RunConfig
from repro.faults import FaultPlan, FaultSpec, fault_scope
from repro.graph.datasets import Dataset
from repro.serve import AutoscalerConfig, FleetSpec, ServeConfig, simulate_fleet

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "99"))


@pytest.fixture(scope="module")
def chaos_dataset() -> Dataset:
    spec = make_spec(name="fleet-chaos", num_nodes=800, avg_degree=8.0,
                     feature_dim=16, num_classes=4, train_fraction=0.3)
    return Dataset(spec, seed=5)


def _flash_config() -> ServeConfig:
    return ServeConfig(rate=4_000.0, num_requests=400,
                       seeds_per_request=8, max_batch=4,
                       batch_window_s=0.002, queue_capacity=256,
                       slo_s=5.0, seed=CHAOS_SEED, num_users=16,
                       arrival="flash")


def _run_config() -> RunConfig:
    return RunConfig(num_gpus=1, fanouts=(3, 3), seed=5)


def _storm(chaos_dataset, probability: float,
           autoscaler: AutoscalerConfig | None = None):
    plan = FaultPlan(seed=CHAOS_SEED, sites={
        "replica_crash": FaultSpec(probability=probability,
                                   max_failures=1),
    })
    with fault_scope(plan):
        return simulate_fleet(
            "fastgl", chaos_dataset, run_config=_run_config(),
            serve_config=_flash_config(),
            fleet=FleetSpec(num_replicas=4, router="jsq",
                            autoscaler=autoscaler or AutoscalerConfig()))


def test_crash_requests_recovered_not_lost(chaos_dataset):
    report = _storm(chaos_dataset, probability=0.5)
    scheduled = len(report.requests)

    assert report.crash_events, "pinned seed must kill at least one replica"
    # Survivors remain, so nothing hits the total-outage path.
    assert len(report.crash_events) < 4
    assert report.outage_shed == 0

    # Conservation: every request terminal, counters partition exactly.
    assert report.num_terminal == scheduled
    assert (report.num_completed + report.num_shed
            + report.num_dropped) == scheduled
    for request in report.requests:
        assert request.outcome in ("completed", "shed", "dropped")
        assert request.completion is not None

    # Every stranded request was re-offered, and the reroute ledger
    # matches the per-crash recovery counts exactly.
    assert report.rerouted == sum(n for _, _, n in report.crash_events)
    assert sum(r.reroutes for r in report.requests) == report.rerouted

    # Availability is the completed fraction, to the last request.
    assert report.availability == report.num_completed / scheduled
    assert report.reconciles(1e-6)


def test_total_outage_sheds_exactly_and_recovers(chaos_dataset):
    scaler = AutoscalerConfig(enabled=True, max_replicas=6,
                              add_occupancy=0.2, drain_occupancy=0.02,
                              interval_s=0.005, cooldown_s=0.02)
    report = _storm(chaos_dataset, probability=1.0, autoscaler=scaler)

    # Probability 1.0 kills every original replica.
    crashed = {rid for _, rid, _ in report.crash_events}
    assert crashed >= {0, 1, 2, 3}
    # The autoscaler restarts capacity (outage reads as occupancy 1.0).
    assert any(e.action == "add" for e in report.scale_events)

    scheduled = len(report.requests)
    assert report.num_terminal == scheduled
    # Outage sheds are counted inside num_shed, never double-booked.
    assert report.outage_shed <= report.num_shed
    assert report.availability == report.num_completed / scheduled
    assert report.reconciles(1e-6)


def test_chaos_is_deterministic_under_seed(chaos_dataset):
    first = _storm(chaos_dataset, probability=0.5)
    second = _storm(chaos_dataset, probability=0.5)

    assert first.crash_events == second.crash_events
    assert first.makespan == second.makespan
    assert first.rerouted == second.rerouted
    assert first.outage_shed == second.outage_shed
    by_id = {r.req_id: r for r in second.requests}
    for ours in first.requests:
        theirs = by_id[ours.req_id]
        assert ours.outcome == theirs.outcome
        assert ours.completion == theirs.completion
        assert ours.reroutes == theirs.reroutes


def test_no_faults_means_no_crash_bookkeeping(chaos_dataset):
    report = _storm(chaos_dataset, probability=0.0)
    assert report.crash_events == []
    assert report.rerouted == 0
    assert report.outage_shed == 0
    assert all(r.reroutes == 0 for r in report.requests)


# -- degraded-mode admission accounting (regression) -------------------------
def test_degraded_door_drop_is_not_a_degraded_shed():
    """At the reduced-capacity boundary, a degraded-mode request whose
    deadline already passed is ONE deadline drop — not a degraded shed.
    Before the fix the same casualty class was charged to either counter
    depending on whether it squeaked under the shrunk cap first."""
    from repro.serve.request import InferenceRequest, RequestQueue

    queue = RequestQueue(capacity=4, degrade_after_drops=2,
                         degrade_window_s=1.0,
                         degrade_capacity_factor=0.5)
    # Trip degraded mode with two deadline drops at take().
    for req_id in (0, 1):
        late = InferenceRequest(req_id=req_id, arrival=0.0, seeds=None,
                                deadline=0.1)
        assert queue.offer(late, now=0.2)
        assert not queue.take(late, now=0.3)
    assert queue.degraded(0.4)
    assert queue.effective_capacity(0.4) == 2

    # A past-deadline arrival at the degraded door: exactly one counter
    # moves, and it is `dropped`.
    before = (queue.stats.dropped, queue.stats.shed,
              queue.stats.degraded_shed)
    doomed = InferenceRequest(req_id=2, arrival=0.35, seeds=None,
                              deadline=0.30)
    assert not queue.offer(doomed, now=0.4)
    assert doomed.outcome == "dropped"
    assert queue.stats.dropped == before[0] + 1
    assert queue.stats.shed == before[1]
    assert queue.stats.degraded_shed == before[2]

    # A live request refused by the shrunk cap IS a degraded shed.
    filler = [InferenceRequest(req_id=10 + i, arrival=0.4, seeds=None,
                               deadline=9.0) for i in range(3)]
    assert queue.offer(filler[0], now=0.4)
    assert queue.offer(filler[1], now=0.4)
    assert not queue.offer(filler[2], now=0.4)
    assert filler[2].outcome == "shed"
    assert queue.stats.degraded_shed == before[2] + 1
