"""Tests for the resident feature buffer and the thread-block autotuner."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpu.kernels import ThreadBlockConfig, autotune_thread_block
from repro.gpu.spec import A100, RTX3090
from repro.sampling import NeighborSampler
from repro.transfer.buffer import ResidentFeatureBuffer


class TestResidentFeatureBuffer:
    @pytest.fixture()
    def subgraphs(self, tiny_graph, tiny_dataset):
        sampler = NeighborSampler(tiny_graph, (3, 4), rng=0)
        ids = tiny_dataset.train_ids
        return [sampler.sample(ids[i * 40:(i + 1) * 40]) for i in range(4)]

    def test_matches_direct_gather_exactly(self, subgraphs, tiny_dataset):
        """The exactness property behind the paper's Fig. 16: reused rows
        are bit-identical to freshly gathered ones."""
        buffer = ResidentFeatureBuffer(tiny_dataset.features)
        for sg in subgraphs:
            assembled = buffer.fetch(sg.input_nodes)
            direct = tiny_dataset.features.gather(sg.input_nodes)
            np.testing.assert_array_equal(assembled, direct)

    def test_host_fetches_shrink_after_first_batch(self, subgraphs,
                                                   tiny_dataset):
        buffer = ResidentFeatureBuffer(tiny_dataset.features)
        first = subgraphs[0]
        buffer.fetch(first.input_nodes)
        fetched_first = buffer.host_rows_fetched
        assert fetched_first == first.num_nodes
        buffer.fetch(subgraphs[1].input_nodes)
        newly = buffer.host_rows_fetched - fetched_first
        assert newly < subgraphs[1].num_nodes
        assert buffer.rows_reused > 0

    def test_counts_match_matchloader(self, subgraphs, tiny_dataset):
        """The functional buffer and the byte-accounting loader agree on
        exactly which rows cross the host link."""
        from repro.transfer.loader import MatchLoader

        buffer = ResidentFeatureBuffer(tiny_dataset.features)
        loader = MatchLoader(tiny_dataset.features)
        for sg in subgraphs:
            report = loader.plan(sg)
            before = buffer.host_rows_fetched
            buffer.fetch(sg.input_nodes)
            assert buffer.host_rows_fetched - before == report.num_loaded

    def test_reset_flushes(self, subgraphs, tiny_dataset):
        buffer = ResidentFeatureBuffer(tiny_dataset.features)
        buffer.fetch(subgraphs[0].input_nodes)
        buffer.reset()
        before = buffer.host_rows_fetched
        buffer.fetch(subgraphs[0].input_nodes)
        assert buffer.host_rows_fetched - before == subgraphs[0].num_nodes


class TestAutotuneThreadBlock:
    def test_returns_valid_config(self):
        config = autotune_thread_block(64, 10.0, RTX3090)
        config.validate(RTX3090)
        assert config.threads_per_block <= RTX3090.max_threads_per_block

    def test_default_is_competitive(self):
        """The paper's empirical X=8/Y=32 achieves the tuned occupancy."""
        from repro.gpu.kernels import aggregation_kernel_plan

        tuned = autotune_thread_block(64, 10.0, RTX3090)
        default_plan = aggregation_kernel_plan(1024, 64, 10.0, RTX3090,
                                               ThreadBlockConfig())
        tuned_plan = aggregation_kernel_plan(1024, 64, 10.0, RTX3090, tuned)
        assert default_plan.occupancy >= 0.9 * tuned_plan.occupancy

    def test_huge_degree_prefers_small_x(self):
        """Weights dominate shared memory at high degree; fewer targets
        per block keep the footprint inside the limit."""
        config = autotune_thread_block(64, 3000.0, RTX3090)
        assert config.x_nodes <= 8

    def test_a100_also_tunable(self):
        config = autotune_thread_block(256, 15.0, A100)
        config.validate(A100)

    def test_impossible_workload(self):
        with pytest.raises(ConfigError):
            autotune_thread_block(
                64, 1e9, RTX3090,
                candidates=[ThreadBlockConfig(32, 32)],
            )
