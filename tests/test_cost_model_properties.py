"""Property-based invariants of the cost model.

The experiments' conclusions rest on the cost model behaving sanely:
more work must never cost less, Memory-Aware must never lose to naive on
the same workload, and the ID-map advantage must hold for any input
distribution. Hypothesis sweeps the input space.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_COST_MODEL
from repro.core.memory_aware import ComputeCostModel
from repro.gpu.pcie import PCIeLink
from repro.sampling import BaselineIdMap, FusedIdMap
from repro.transfer.loader import TransferReport

NAIVE = ComputeCostModel(mode="naive")
MA = ComputeCostModel(mode="memory_aware")


class TestAggregationCostProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        num_dst=st.integers(1, 5000),
        deg=st.integers(1, 40),
        dim=st.integers(2, 1024),
    )
    def test_memory_aware_never_loses(self, num_dst, deg, dim):
        edges = num_dst * deg
        t_naive = NAIVE.aggregation_cost(num_dst, edges, dim).time
        t_ma = MA.aggregation_cost(num_dst, edges, dim).time
        assert t_ma <= t_naive * 1.001

    @settings(max_examples=40, deadline=None)
    @given(
        num_dst=st.integers(1, 2000),
        deg=st.integers(1, 30),
        dim=st.integers(2, 512),
        scale=st.integers(2, 5),
    )
    def test_monotone_in_edges(self, num_dst, deg, dim, scale):
        for model in (NAIVE, MA):
            small = model.aggregation_cost(num_dst, num_dst * deg, dim)
            large = model.aggregation_cost(num_dst, num_dst * deg * scale,
                                           dim)
            assert large.time >= small.time
            assert large.flops > small.flops

    @settings(max_examples=40, deadline=None)
    @given(num_dst=st.integers(1, 2000), deg=st.integers(1, 30),
           dim=st.integers(2, 256))
    def test_monotone_in_dim(self, num_dst, deg, dim):
        for model in (NAIVE, MA):
            narrow = model.aggregation_cost(num_dst, num_dst * deg, dim)
            wide = model.aggregation_cost(num_dst, num_dst * deg, dim * 2)
            assert wide.time >= narrow.time

    @settings(max_examples=40, deadline=None)
    @given(num_dst=st.integers(1, 2000), deg=st.integers(1, 30),
           dim=st.integers(2, 512))
    def test_nonnegative_and_consistent(self, num_dst, deg, dim):
        cost = MA.aggregation_cost(num_dst, num_dst * deg, dim)
        assert cost.mem_time >= 0 and cost.flop_time >= 0
        assert cost.time == max(cost.mem_time, cost.flop_time)
        assert cost.dram_bytes <= cost.bytes_global + 1e-9


class TestTransferTimeProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        bytes_a=st.integers(0, 10**9),
        extra=st.integers(0, 10**9),
        links=st.integers(1, 8),
    )
    def test_monotone_in_bytes(self, bytes_a, extra, links):
        link = PCIeLink()
        a = TransferReport(feature_bytes=bytes_a, num_transfers=1)
        b = TransferReport(feature_bytes=bytes_a + extra, num_transfers=1)
        assert (b.modeled_time(link, DEFAULT_COST_MODEL, links)
                >= a.modeled_time(link, DEFAULT_COST_MODEL, links))

    @settings(max_examples=50, deadline=None)
    @given(num_bytes=st.integers(1, 10**9), links=st.integers(1, 7))
    def test_contention_never_helps(self, num_bytes, links):
        link = PCIeLink()
        report = TransferReport(feature_bytes=num_bytes, num_transfers=1)
        assert (report.modeled_time(link, DEFAULT_COST_MODEL, links + 1)
                >= report.modeled_time(link, DEFAULT_COST_MODEL, links))


class TestIdMapProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        num_unique=st.integers(1, 5000),
        dup_factor=st.integers(1, 5),
        seed=st.integers(0, 100),
    )
    def test_fused_never_slower(self, num_unique, dup_factor, seed):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, num_unique, size=num_unique * dup_factor)
        t_base = BaselineIdMap().map(ids).report.modeled_time()
        t_fused = FusedIdMap().map(ids).report.modeled_time()
        assert t_fused <= t_base * 1.001

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 3000), seed=st.integers(0, 50))
    def test_time_scales_with_input(self, n, seed):
        rng = np.random.default_rng(seed)
        small = rng.integers(0, 10**6, size=n)
        large = np.concatenate([small, rng.integers(0, 10**6, size=n)])
        for idmap in (BaselineIdMap(), FusedIdMap()):
            assert (idmap.map(large).report.modeled_time()
                    >= idmap.map(small).report.modeled_time() * 0.999)
