"""Executable checks of the documentation's code snippets (docs/api.md).

Docs rot; these tests run the same call sequences the API tour shows, on
the tiny test dataset, so a breaking rename fails loudly here.
"""

import numpy as np

from repro.config import DEFAULT_COST_MODEL, RunConfig


def test_dataset_surface(tiny_dataset):
    dataset = tiny_dataset
    assert dataset.graph.num_nodes > 0
    rows = dataset.features.gather(dataset.train_ids[:4])
    assert rows.shape == (4, dataset.feature_dim)
    assert dataset.cache_budget_bytes() >= 0
    assert len(dataset.val_ids) and len(dataset.test_ids)


def test_sampling_surface(tiny_dataset):
    from repro import FusedIdMap, NeighborSampler

    sampler = NeighborSampler(tiny_dataset.graph, fanouts=(3, 4),
                              idmap=FusedIdMap(), rng=0)
    subgraph = sampler.sample(tiny_dataset.train_ids[:16])
    assert subgraph.num_layers == 2
    assert len(subgraph.input_nodes) >= 16
    assert subgraph.idmap_report.modeled_time() > 0


def test_framework_surface(tiny_dataset):
    from repro import create

    config = RunConfig(batch_size=64, fanouts=(3, 4), num_gpus=2,
                       hidden_dim=8)
    report = create("fastgl").run_epoch(tiny_dataset, config,
                                        model_name="gcn")
    assert report.epoch_time > 0
    assert set(report.phases.fractions()) == {"sample", "memory_io",
                                              "compute"}
    assert isinstance(report.summary(), str)


def test_trainer_surface(tiny_dataset, tmp_path):
    from repro import FastGLTrainer

    config = RunConfig(batch_size=64, fanouts=(3, 4), hidden_dim=8)
    trainer = FastGLTrainer(tiny_dataset, "gcn", config)
    history = trainer.train(num_epochs=1, validate=True)
    assert history.losses and history.val_accuracies
    assert 0.0 <= trainer.evaluate(tiny_dataset.test_ids[:64]) <= 1.0
    trainer.model.save(tmp_path / "gcn.npz")
    assert (tmp_path / "gcn.npz").exists()


def test_core_techniques_surface():
    from repro.core import (
        A3,
        ComputeCostModel,
        MatchState,
        greedy_reorder,
        match_degree_matrix,
        match_split,
    )

    state = MatchState()
    state.step(np.array([1, 2, 3]))
    result = state.step(np.array([2, 3, 4]))
    assert result.num_reused == 2
    assert match_split(np.array([1, 2]), np.array([2, 9])).num_loaded == 1

    sets = [np.array([1, 2, 3]), np.array([2, 3]), np.array([9])]
    order = greedy_reorder(match_degree_matrix(sets))
    assert sorted(order) == [0, 1, 2]

    cost = ComputeCostModel(mode="memory_aware").aggregation_cost(10, 100,
                                                                  64)
    assert cost.time > 0
    assert A3() is not None


def test_gpu_surface():
    from repro.gpu import CacheSim, DeviceMemory, PCIeLink, RTX3090
    from repro.gpu.kernels import autotune_thread_block
    from repro.gpu.spec import A100

    CacheSim(128 * 1024).access(np.arange(10) * 128)
    assert PCIeLink().transfer_time(1e6, concurrent_links=4) > 0
    DeviceMemory(1000).alloc("x", 10)
    config = autotune_thread_block(256, 12, A100)
    config.validate(A100)
    assert RTX3090.global_bw == 938e9


def test_cost_override_surface(tiny_dataset):
    from repro import create

    slow_atomics = DEFAULT_COST_MODEL.scaled(atomic_ops_per_s=1e7)
    config = RunConfig(batch_size=64, fanouts=(3,), num_gpus=1,
                       hidden_dim=8, cost=slow_atomics)
    base = RunConfig(batch_size=64, fanouts=(3,), num_gpus=1, hidden_dim=8)
    slow = create("dgl").run_epoch(tiny_dataset, config)
    fast = create("dgl").run_epoch(tiny_dataset, base)
    assert slow.phases.idmap > fast.phases.idmap


def test_experiment_surface():
    from repro.experiments import tab03_gpu_spec

    result = tab03_gpu_spec.run()
    assert "Global Memory" in result.render()
