"""Tests for the event loop and pipeline-makespan models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventLoop
from repro.sim.pipeline import two_stage_makespan, two_stage_makespan_sim


class TestEventLoop:
    def test_delays_accumulate(self):
        loop = EventLoop()
        log = []

        def proc():
            yield 1.0
            log.append(loop.now)
            yield 2.5
            log.append(loop.now)

        loop.spawn(proc())
        end = loop.run()
        assert log == [1.0, 3.5]
        assert end == 3.5

    def test_two_processes_interleave(self):
        loop = EventLoop()
        log = []

        def proc(name, delay):
            yield delay
            log.append((name, loop.now))

        loop.spawn(proc("slow", 2.0))
        loop.spawn(proc("fast", 1.0))
        loop.run()
        assert log == [("fast", 1.0), ("slow", 2.0)]

    def test_resource_exclusive(self):
        loop = EventLoop()
        gate = loop.resource("gpu")
        log = []

        def worker(name):
            yield gate.acquire()
            log.append((name, "start", loop.now))
            yield 1.0
            gate.release()
            log.append((name, "end", loop.now))

        loop.spawn(worker("a"))
        loop.spawn(worker("b"))
        end = loop.run()
        assert end == 2.0  # serialized, not parallel
        assert log[1] == ("a", "end", 1.0)
        assert log[2] == ("b", "start", 1.0)

    def test_release_idle_resource_raises(self):
        loop = EventLoop()
        gate = loop.resource()
        with pytest.raises(RuntimeError):
            gate.release()

    def test_run_until(self):
        loop = EventLoop()

        def proc():
            yield 10.0

        loop.spawn(proc())
        assert loop.run(until=5.0) == 5.0

    def test_bad_yield_type(self):
        loop = EventLoop()

        def proc():
            yield "nonsense"

        loop.spawn(proc())
        with pytest.raises(TypeError):
            loop.run()

    def test_negative_delay_rejected(self):
        loop = EventLoop()

        def proc():
            yield -1.0

        loop.spawn(proc())
        with pytest.raises(ValueError):
            loop.run()


#: Per-item stage seconds for the agreement properties: zero-length
#: service times are legal (an all-cache-hit IO stage, an empty halo)
#: and must not desynchronize the recurrence from the event simulation,
#: so they are drawn often rather than never.
_stage_seconds = st.one_of(st.just(0.0), st.floats(0.01, 5.0))


class TestTwoStageMakespan:
    def test_producer_bound(self):
        # Slow producer, instant consumer: makespan ~ total production.
        assert two_stage_makespan([2, 2, 2], [0.1, 0.1, 0.1]) == pytest.approx(6.1)

    def test_consumer_bound(self):
        # Fast producer: consumer streams back-to-back after first batch.
        assert two_stage_makespan([0.1, 0.1, 0.1], [2, 2, 2]) == pytest.approx(6.1)

    def test_empty(self):
        assert two_stage_makespan([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            two_stage_makespan([1], [1, 2])

    def test_backpressure(self):
        # depth 1: producer can only run one batch ahead.
        free = two_stage_makespan([1, 1, 1], [3, 3, 3])
        constrained = two_stage_makespan([1, 1, 1], [3, 3, 3], queue_depth=1)
        assert constrained >= free  # never faster with backpressure

    @settings(max_examples=40, deadline=None)
    @given(
        times=st.lists(
            st.tuples(_stage_seconds, _stage_seconds),
            min_size=1, max_size=12,
        )
    )
    def test_recurrence_matches_event_sim(self, times):
        """Property: the closed form equals the event simulation —
        including items with zero-length service at either stage."""
        produce = [p for p, _ in times]
        consume = [c for _, c in times]
        a = two_stage_makespan(produce, consume)
        b = two_stage_makespan_sim(produce, consume)
        assert a == pytest.approx(b, rel=1e-9, abs=1e-12)

    @pytest.mark.parametrize("depth", [1, 2, 3, 7])
    def test_recurrence_matches_event_sim_bounded(self, depth):
        produce = [1.0, 0.5, 2.0, 0.25, 1.5, 0.75]
        consume = [3.0, 0.1, 1.0, 2.5, 0.2, 1.25]
        a = two_stage_makespan(produce, consume, queue_depth=depth)
        b = two_stage_makespan_sim(produce, consume, queue_depth=depth)
        assert a == pytest.approx(b, rel=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(
        times=st.lists(
            st.tuples(_stage_seconds, _stage_seconds),
            min_size=1, max_size=12,
        ),
        depth=st.integers(1, 6),
    )
    def test_bounded_agreement_property(self, times, depth):
        """Property: recurrence and slot-ring simulation agree for any
        finite queue depth (including the fully serialized depth 1 and
        zero-length stage times), and deeper queues never slow the
        pipeline."""
        produce = [p for p, _ in times]
        consume = [c for _, c in times]
        a = two_stage_makespan(produce, consume, queue_depth=depth)
        b = two_stage_makespan_sim(produce, consume, queue_depth=depth)
        assert a == pytest.approx(b, rel=1e-9, abs=1e-12)
        unbounded = two_stage_makespan_sim(produce, consume)
        assert b >= unbounded - 1e-9

    def test_depth_one_serializes_against_consumer(self):
        # One slot: the producer may only start item i+1 once the
        # consumer has *finished* item i — the makespan degenerates to
        # the chained recurrence, not the unbounded overlap.
        produce = [1.0, 1.0, 1.0]
        consume = [2.0, 2.0, 2.0]
        bounded = two_stage_makespan(produce, consume, queue_depth=1)
        sim = two_stage_makespan_sim(produce, consume, queue_depth=1)
        assert bounded == pytest.approx(sim, rel=1e-9)
        # items start at 0, 3, 6 (wait for consume(i-1)); last ends 6+1+2.
        assert bounded == pytest.approx(9.0)

    def test_zero_length_stage_times_agree(self):
        # All-zero producer (pure cache hits) and sparse zero consumers.
        produce = [0.0, 0.0, 0.0, 0.0]
        consume = [1.0, 0.0, 2.0, 0.0]
        for depth in (None, 1, 2):
            a = two_stage_makespan(produce, consume, queue_depth=depth)
            b = two_stage_makespan_sim(produce, consume, queue_depth=depth)
            assert a == pytest.approx(b, rel=1e-9, abs=1e-12)
            assert a == pytest.approx(3.0)

    def test_sim_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            two_stage_makespan_sim([1.0], [1.0], queue_depth=0)

    def test_lower_bounds(self):
        produce = [1.0, 2.0]
        consume = [3.0, 1.0]
        span = two_stage_makespan(produce, consume)
        assert span >= sum(consume)
        assert span >= produce[0] + consume[0]
