"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.nn.metrics import accuracy, logits_accuracy, macro_f1


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == (
            pytest.approx(2 / 3)
        )

    def test_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))


class TestMacroF1:
    def test_perfect(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1(labels, labels) == pytest.approx(1.0)

    def test_known_value(self):
        # class 0: P=1, R=0.5 -> F1=2/3; class 1: P=0.5, R=1 -> F1=2/3.
        predictions = np.array([0, 1, 1])
        labels = np.array([0, 0, 1])
        assert macro_f1(predictions, labels) == pytest.approx(2 / 3)

    def test_absent_class_skipped(self):
        predictions = np.array([0, 0])
        labels = np.array([0, 0])
        assert macro_f1(predictions, labels, num_classes=5) == (
            pytest.approx(1.0)
        )

    def test_all_wrong(self):
        assert macro_f1(np.array([1, 1]), np.array([0, 0])) == 0.0

    def test_empty(self):
        assert macro_f1(np.array([]), np.array([])) == 0.0


class TestLogitsAccuracy:
    def test_argmax(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert logits_accuracy(logits, np.array([1, 0])) == 1.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            logits_accuracy(np.array([0.1, 0.9]), np.array([1]))
