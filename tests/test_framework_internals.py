"""Unit tests for epoch-driver internals (chunking, lockstep, overlap)."""

import numpy as np
import pytest

from repro.config import RunConfig
from repro.core.memory_aware import ComputeReport
from repro.frameworks.base import (
    Framework,
    PhaseTimes,
    _chunk,
    _profile_param_bytes,
)
from repro.frameworks.dgl import DGLFramework
from repro.frameworks.gnnlab import GNNLabFramework
from repro.gpu.cluster import allreduce_time
from repro.gpu.pcie import PCIeLink
from repro.transfer.loader import TransferReport


class TestChunk:
    def test_even_split(self):
        chunks = _chunk(list(range(6)), 2)
        assert chunks == [[0, 1, 2], [3, 4, 5]]

    def test_uneven_split_front_loaded(self):
        chunks = _chunk(list(range(7)), 3)
        assert [len(c) for c in chunks] == [3, 2, 2]
        assert sum(chunks, []) == list(range(7))

    def test_more_chunks_than_items(self):
        chunks = _chunk([1, 2], 4)
        assert [len(c) for c in chunks] == [1, 1, 0, 0]


class TestPhaseTimes:
    def test_serial_total(self):
        phases = PhaseTimes(sample=1.0, memory_io=2.0, compute=3.0,
                            allreduce=0.5)
        assert phases.serial_total == 6.5

    def test_fractions_sum_to_one(self):
        phases = PhaseTimes(sample=1.0, memory_io=2.0, compute=3.0,
                            allreduce=0.5)
        fractions = phases.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_zero_total(self):
        assert PhaseTimes().fractions()["sample"] == 0.0

    def test_detail_exposes_idmap_and_preprocess_shares(self):
        phases = PhaseTimes(sample=1.0, idmap=0.25, memory_io=2.0,
                            network=0.5, compute=3.0, preprocess=0.75,
                            allreduce=0.5)
        detail = phases.fractions(detail=True)
        assert set(detail) == {"sample", "idmap", "memory_io", "network",
                               "compute", "preprocess", "allreduce"}
        assert sum(detail.values()) == pytest.approx(1.0)
        total = phases.serial_total
        assert detail["idmap"] == pytest.approx(0.25 / total)
        assert detail["preprocess"] == pytest.approx(0.75 / total)
        assert detail["network"] == pytest.approx(0.5 / total)
        # The detailed split refines the coarse one: the components the
        # default view folds together sum back to its shares.
        coarse = phases.fractions()
        assert detail["sample"] + detail["idmap"] == pytest.approx(
            coarse["sample"])
        assert (detail["compute"] + detail["preprocess"]
                + detail["allreduce"] + detail["network"]
                ) == pytest.approx(coarse["compute"])

    def test_detail_zero_total(self):
        detail = PhaseTimes().fractions(detail=True)
        assert set(detail) == {"sample", "idmap", "memory_io", "network",
                               "compute", "preprocess", "allreduce"}
        assert all(v == 0.0 for v in detail.values())


class TestLockstepEpochTime:
    def test_single_trainer_is_sum(self):
        fw = DGLFramework()
        iters = [[(1.0, 1.0, 1.0), (0.5, 0.5, 1.0)]]
        config = RunConfig(num_gpus=1)
        assert fw._epoch_time(iters, 0, 1, config) == pytest.approx(5.0)

    def test_two_trainers_lockstep_max(self):
        fw = DGLFramework()
        iters = [[(1.0, 0.5, 0.5)], [(2.0, 1.0, 2.0)]]
        config = RunConfig(num_gpus=2)
        time = fw._epoch_time(iters, 0, 2, config)
        sync = allreduce_time(0, 2, config.cost)
        assert time == pytest.approx(5.0 + sync)

    def test_allreduce_added_per_round(self):
        fw = DGLFramework()
        iters = [[(1.0, 0.5, 0.5), (1.0, 0.5, 0.5)],
                 [(1.0, 0.5, 0.5), (1.0, 0.5, 0.5)]]
        config = RunConfig(num_gpus=2)
        grad = 10_000_000
        with_sync = fw._epoch_time(iters, grad, 2, config)
        without = fw._epoch_time(iters, 0, 2, config)
        expected = 2 * (allreduce_time(grad, 2, config.cost)
                        - allreduce_time(0, 2, config.cost))
        assert with_sync - without == pytest.approx(expected)


class TestGNNLabPipeline:
    def test_pipeline_overlaps_sampling(self):
        """Epoch time ~ max(total sampling, total training), not the sum."""
        fw = GNNLabFramework()
        config = RunConfig(num_gpus=2)
        # 4 rounds, sampling 1s each, io+training 1s each.
        iters = [[(1.0, 0.5, 0.5)] * 4]
        time = fw._epoch_time(iters, 0, 1, config)
        assert time == pytest.approx(5.0)  # 1 + 4 (pipeline fill + drain)
        serial = 8.0
        assert time < serial

    def test_two_samplers_above_four_gpus(self):
        fw = GNNLabFramework()
        five = RunConfig(num_gpus=5)
        assert fw.num_sampler_gpus(five) == 2
        assert fw.num_trainer_gpus(five) == 3

    def test_matches_event_simulation(self):
        """GNNLab's closed-form pipeline time equals the discrete-event
        simulation of the same producer/consumer schedule."""
        from repro.sim.pipeline import two_stage_makespan_sim

        fw = GNNLabFramework()
        config = RunConfig(num_gpus=2)
        iters = [[(0.7, 0.4, 0.9), (1.1, 0.2, 0.2),
                  (0.2, 0.4, 0.5), (0.5, 0.25, 0.25)]]
        closed = fw._epoch_time(iters, 0, 1, config)
        produce = [s for s, _, _ in iters[0]]
        consume = [io + c for _, io, c in iters[0]]
        simulated = two_stage_makespan_sim(produce, consume)
        assert closed == pytest.approx(simulated)


class TestIoTimeOverlap:
    def _report(self, feature_bytes, structure_bytes):
        return TransferReport(feature_bytes=feature_bytes,
                              structure_bytes=structure_bytes,
                              num_transfers=1)

    def test_prefetch_hides_structure(self):
        class Prefetching(Framework):
            prefetch_topology = True

        class Plain(Framework):
            prefetch_topology = False

        link = PCIeLink(bandwidth=32e9, latency_s=0.0, host_aggregate=80e9)
        config = RunConfig()
        report = self._report(feature_bytes=0, structure_bytes=32_000_000)
        comp = ComputeReport(agg_time=1.0)  # plenty of compute to hide under
        hidden = Prefetching()._io_time(report, comp, link, config.cost, 1)
        plain = Plain()._io_time(report, comp, link, config.cost, 1)
        assert plain > 0
        assert hidden < 0.1 * plain

    def test_prefetch_partial_when_compute_short(self):
        class Prefetching(Framework):
            prefetch_topology = True

        link = PCIeLink(bandwidth=32e9, latency_s=0.0)
        config = RunConfig()
        report = self._report(feature_bytes=0, structure_bytes=320_000_000)
        comp = ComputeReport(agg_time=1e-6)  # compute too short to hide it
        partial = Prefetching()._io_time(report, comp, link, config.cost, 1)
        assert partial > 0

    def test_never_negative(self):
        class Prefetching(Framework):
            prefetch_topology = True

        link = PCIeLink(latency_s=0.0)
        report = self._report(feature_bytes=0, structure_bytes=100)
        comp = ComputeReport(agg_time=10.0)
        assert Prefetching()._io_time(report, comp, link,
                                      RunConfig().cost, 1) >= 0.0


class TestProfileParamBytes:
    def test_gcn_param_bytes(self):
        from repro.core.memory_aware import model_profile

        profile = model_profile("gcn", 100, 10, hidden_dim=64, num_layers=2)
        expected = ((100 * 64 + 64) + (64 * 10 + 10)) * 4
        assert _profile_param_bytes(profile) == expected

    def test_close_to_real_model(self):
        """The analytic estimate tracks the real parameter count."""
        from repro.core.memory_aware import model_profile
        from repro.nn import build_model

        model = build_model("gcn", 32, 7, hidden_dim=16, num_layers=3)
        profile = model_profile("gcn", 32, 7, hidden_dim=16, num_layers=3)
        assert _profile_param_bytes(profile) == model.parameter_bytes()
