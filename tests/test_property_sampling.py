"""Property-based tests: sampler invariants over random graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.sampling import BaselineIdMap, FusedIdMap, NeighborSampler


@st.composite
def graph_and_seeds(draw):
    """A random connected-ish graph plus a set of unique seeds."""
    num_nodes = draw(st.integers(8, 60))
    num_edges = draw(st.integers(num_nodes, num_nodes * 6))
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    src = rng.integers(0, num_nodes, num_edges)
    dst = rng.integers(0, num_nodes, num_edges)
    graph = CSRGraph.from_edges(src, dst, num_nodes, symmetrize=True)
    num_seeds = draw(st.integers(1, min(8, num_nodes)))
    seeds = rng.choice(num_nodes, size=num_seeds, replace=False)
    return graph, np.sort(seeds)


@settings(max_examples=30, deadline=None)
@given(data=graph_and_seeds(), fanout=st.integers(1, 5),
       hops=st.integers(1, 3), sampler_seed=st.integers(0, 100))
def test_neighbor_sampler_invariants(data, fanout, hops, sampler_seed):
    """For any graph/seed/fanout combination:

    * blocks chain correctly (validated invariants),
    * every edge connects a true graph neighbor,
    * per-target degree is min(fanout, degree),
    * the frontier grows monotonically and contains the seeds.
    """
    graph, seeds = data
    sampler = NeighborSampler(graph, (fanout,) * hops, rng=sampler_seed)
    sg = sampler.sample(seeds)
    sg.validate()

    frontier_sizes = [len(seeds)] + [b.num_src for b in sg.layers]
    assert frontier_sizes == sorted(frontier_sizes)
    assert set(seeds.tolist()) <= set(sg.input_nodes.tolist())

    for block in sg.layers:
        degrees = block.in_degrees()
        expected = np.minimum(graph.degrees[block.dst_global], fanout)
        np.testing.assert_array_equal(degrees, expected)
        src_g = block.src_global[block.edge_src]
        dst_g = block.dst_global[block.edge_dst]
        for s, d in zip(src_g, dst_g):
            assert s in graph.neighbors(int(d))


@settings(max_examples=30, deadline=None)
@given(data=graph_and_seeds(), fanout=st.integers(1, 4),
       sampler_seed=st.integers(0, 100))
def test_idmap_choice_does_not_change_subgraph(data, fanout, sampler_seed):
    """Baseline and Fused-Map ID maps yield identical subgraphs — the
    technique changes device work, never semantics."""
    graph, seeds = data
    a = NeighborSampler(graph, (fanout, fanout), idmap=BaselineIdMap(),
                        rng=sampler_seed).sample(seeds)
    b = NeighborSampler(graph, (fanout, fanout), idmap=FusedIdMap(),
                        rng=sampler_seed).sample(seeds)
    assert a.num_layers == b.num_layers
    for block_a, block_b in zip(a.layers, b.layers):
        np.testing.assert_array_equal(block_a.src_global,
                                      block_b.src_global)
        np.testing.assert_array_equal(block_a.edge_src, block_b.edge_src)
        np.testing.assert_array_equal(block_a.edge_dst, block_b.edge_dst)


@settings(max_examples=20, deadline=None)
@given(data=graph_and_seeds(), sampler_seed=st.integers(0, 100))
def test_match_loader_conservation(data, sampler_seed):
    """Across any sequence of batches: reused + loaded == wanted, and the
    reused rows were exactly the previous batch's residents."""
    from repro.core.match import MatchState

    graph, seeds = data
    sampler = NeighborSampler(graph, (2, 3), rng=sampler_seed)
    state = MatchState()
    previous = None
    for shift in range(3):
        shifted = (seeds + shift) % graph.num_nodes
        shifted = np.unique(shifted)
        sg = sampler.sample(shifted)
        result = state.step(sg.input_nodes)
        assert result.num_reused + result.num_loaded == sg.num_nodes
        if previous is not None:
            assert set(result.overlap_ids.tolist()) <= set(
                previous.tolist()
            )
        previous = sg.input_nodes
