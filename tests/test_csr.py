"""Tests for the CSR graph structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


def small_graph() -> CSRGraph:
    # 0 -> {1, 2}, 1 -> {2}, 2 -> {}, 3 -> {0}
    return CSRGraph(
        indptr=np.array([0, 2, 3, 3, 4]),
        indices=np.array([1, 2, 2, 0]),
    )


class TestConstruction:
    def test_basic_properties(self):
        g = small_graph()
        assert g.num_nodes == 4
        assert g.num_edges == 4
        assert g.avg_degree == 1.0
        np.testing.assert_array_equal(g.degrees, [2, 1, 0, 1])

    def test_neighbors(self):
        g = small_graph()
        np.testing.assert_array_equal(g.neighbors(0), [1, 2])
        np.testing.assert_array_equal(g.neighbors(2), [])

    def test_neighbors_out_of_range(self):
        with pytest.raises(GraphError):
            small_graph().neighbors(4)
        with pytest.raises(GraphError):
            small_graph().neighbors(-1)

    def test_arrays_are_read_only(self):
        g = small_graph()
        with pytest.raises(ValueError):
            g.indices[0] = 3

    def test_structure_bytes(self):
        g = small_graph()
        assert g.structure_bytes() == g.indptr.nbytes + g.indices.nbytes

    def test_empty_graph(self):
        g = CSRGraph(indptr=np.array([0]), indices=np.array([], dtype=int))
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.avg_degree == 0.0


class TestValidation:
    def test_indptr_must_start_at_zero(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([1, 2]), indices=np.array([0]))

    def test_indptr_monotone(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 2, 1]), indices=np.array([0, 1]))

    def test_indptr_tail_matches_indices(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 3]), indices=np.array([0]))

    def test_indices_in_range(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([5]))
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([-1]))


class TestFromEdges:
    def test_dedup_and_sort(self):
        g = CSRGraph.from_edges(
            src=np.array([0, 0, 0, 1]),
            dst=np.array([2, 1, 2, 0]),
            num_nodes=3,
        )
        np.testing.assert_array_equal(g.neighbors(0), [1, 2])
        np.testing.assert_array_equal(g.neighbors(1), [0])

    def test_symmetrize(self):
        g = CSRGraph.from_edges(
            src=np.array([0]), dst=np.array([1]), num_nodes=2,
            symmetrize=True,
        )
        np.testing.assert_array_equal(g.neighbors(0), [1])
        np.testing.assert_array_equal(g.neighbors(1), [0])

    def test_drop_self_loops(self):
        g = CSRGraph.from_edges(
            src=np.array([0, 0]), dst=np.array([0, 1]), num_nodes=2
        )
        np.testing.assert_array_equal(g.neighbors(0), [1])

    def test_keep_self_loops(self):
        g = CSRGraph.from_edges(
            src=np.array([0]), dst=np.array([0]), num_nodes=1,
            drop_self_loops=False,
        )
        np.testing.assert_array_equal(g.neighbors(0), [0])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(np.array([0]), np.array([9]), num_nodes=2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(np.array([0, 1]), np.array([1]), num_nodes=2)

    def test_to_edges_round_trip(self):
        g = small_graph()
        src, dst = g.to_edges()
        g2 = CSRGraph.from_edges(src, dst, g.num_nodes, dedup=False)
        np.testing.assert_array_equal(g2.indptr, g.indptr)
        np.testing.assert_array_equal(g2.indices, g.indices)


@settings(max_examples=40, deadline=None)
@given(
    num_nodes=st.integers(min_value=1, max_value=40),
    edges=st.lists(
        st.tuples(st.integers(0, 39), st.integers(0, 39)),
        max_size=150,
    ),
)
def test_from_edges_invariants(num_nodes, edges):
    """Property: from_edges always yields a structurally valid CSR whose
    edge set equals the (deduped, loop-free, clipped) input."""
    src = np.array([min(a, num_nodes - 1) for a, _ in edges], dtype=np.int64)
    dst = np.array([min(b, num_nodes - 1) for _, b in edges], dtype=np.int64)
    g = CSRGraph.from_edges(src, dst, num_nodes)
    # Invariants checked by the constructor; re-derive the edge set.
    expected = {(a, b) for a, b in zip(src, dst) if a != b}
    got_src, got_dst = g.to_edges()
    got = set(zip(got_src.tolist(), got_dst.tolist()))
    assert got == expected
    # Rows are sorted.
    for u in range(g.num_nodes):
        row = g.neighbors(u)
        assert np.all(np.diff(row) > 0)
