"""Fleet routing, autoscaling and cache-tier behavior.

Three Hypothesis properties pin the fleet's load-bearing claims:

* **affinity dominance** — on overlapping user streams, match-affinity
  routing never produces a worse mean device cache-hit rate than
  round-robin (the FastGL Match insight survives the lift from batching
  to routing);
* **JSQ scaling** — p99 is monotone non-increasing in replica count at
  a fixed arrival rate (singleton batching, so queueing is the only
  effect);
* **no flapping** — the autoscaler's hysteresis + cooldown never emit a
  scale action within one cooldown window of the previous one,
  whatever occupancy signal it observes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_spec
from repro.config import RunConfig
from repro.graph.datasets import Dataset
from repro.serve import (
    Autoscaler,
    AutoscalerConfig,
    CacheTier,
    CacheTierConfig,
    FleetSpec,
    InferenceRequest,
    JoinShortestQueueRouter,
    MatchAffinityRouter,
    RoundRobinRouter,
    ServeConfig,
    build_router,
    simulate_fleet,
)


@pytest.fixture(scope="module")
def fleet_dataset() -> Dataset:
    spec = make_spec(name="fleet-prop", num_nodes=800, avg_degree=8.0,
                     feature_dim=16, num_classes=4, train_fraction=0.3)
    return Dataset(spec, seed=3)


def _run_config() -> RunConfig:
    return RunConfig(num_gpus=1, fanouts=(3, 3), seed=3)


# -- routers (unit) ----------------------------------------------------------
class FakeReplica:
    def __init__(self, index, load=0, resident=()):
        self.replica_id = index
        self.load = load
        self.resident_nodes = np.asarray(resident, dtype=np.int64)


def _request(seeds):
    return InferenceRequest(req_id=0, arrival=0.0,
                            seeds=np.asarray(seeds, dtype=np.int64),
                            deadline=float("inf"))


def test_round_robin_cycles_in_index_order():
    router = RoundRobinRouter()
    replicas = [FakeReplica(i) for i in range(3)]
    picks = [router.choose(replicas, _request([1])).replica_id
             for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_jsq_picks_shortest_then_lowest_index():
    router = JoinShortestQueueRouter()
    replicas = [FakeReplica(0, load=5), FakeReplica(1, load=2),
                FakeReplica(2, load=2)]
    assert router.choose(replicas, _request([1])).replica_id == 1


def test_match_affinity_routes_to_best_overlap():
    router = MatchAffinityRouter(threshold=0.25)
    replicas = [FakeReplica(0, resident=[100, 101]),
                FakeReplica(1, resident=[1, 2, 3, 4]),
                FakeReplica(2, resident=[1, 2])]
    # Seeds overlap replica 1 and 2 equally in count, but match degree
    # normalizes by the smaller set — tie broken by lowest index.
    assert router.choose(replicas, _request([1, 2])).replica_id == 1


def test_match_affinity_falls_back_to_jsq_below_threshold():
    router = MatchAffinityRouter(threshold=0.5)
    replicas = [FakeReplica(0, load=4, resident=[100]),
                FakeReplica(1, load=1, resident=[200])]
    # No replica clears the threshold for these seeds -> JSQ.
    assert router.choose(replicas, _request([1, 2, 3, 4])).replica_id == 1


def test_match_affinity_bounded_load_guard():
    router = MatchAffinityRouter(threshold=0.1, load_slack=2)
    hot = FakeReplica(0, load=10, resident=[1, 2, 3, 4])
    cold = FakeReplica(1, load=0, resident=[99])
    # Perfect overlap with the hot replica, but it is load_slack past
    # the shortest queue -> affinity may not pick it.
    assert router.choose([hot, cold], _request([1, 2])).replica_id == 1


def test_build_router_rejects_unknown_policy():
    with pytest.raises(ValueError, match="unknown routing policy"):
        build_router("consistent-hash")


# -- cache tier (unit) -------------------------------------------------------
def test_cache_tier_ttl_split():
    tier = CacheTier(CacheTierConfig(enabled=True, capacity_rows=8,
                                     row_bytes=32, ttl_s=1.0))
    tier.insert(np.array([1, 2, 3]), now=0.0)
    hits, stale, missed = tier.lookup(np.array([1, 2, 3, 4]), now=0.5)
    assert hits.tolist() == [1, 2, 3] and missed.tolist() == [4]
    hits, stale, missed = tier.lookup(np.array([1, 2]), now=2.0)
    assert hits.tolist() == [] and stale.tolist() == [1, 2]
    assert tier.stats.hits == 3 and tier.stats.stale == 2
    assert tier.stats.misses == 1
    tier.close()


def test_cache_tier_fifo_eviction_is_deterministic():
    tier = CacheTier(CacheTierConfig(enabled=True, capacity_rows=2,
                                     row_bytes=16, ttl_s=0.0))
    tier.insert(np.array([10]), now=0.0)
    tier.insert(np.array([20]), now=0.1)
    assert tier.insert(np.array([30]), now=0.2) == 1  # evicts 10
    hits, _, missed = tier.lookup(np.array([10, 20, 30]), now=0.3)
    assert missed.tolist() == [10] and hits.tolist() == [20, 30]
    tier.close()


def test_cache_tier_shm_and_fallback_agree():
    cfg = CacheTierConfig(enabled=True, capacity_rows=4, row_bytes=16,
                          ttl_s=0.5)
    shm_tier = CacheTier(cfg)
    plain = CacheTier(cfg, arena=None)
    plain._arena, plain._owns_arena = None, False
    plain._slab = np.zeros(cfg.capacity_rows * cfg.row_bytes,
                           dtype=np.uint8)
    for tier in (shm_tier, plain):
        tier.insert(np.array([1, 2, 3, 4, 5]), now=0.0)
        hits, stale, missed = tier.lookup(np.arange(1, 7), now=0.2)
    assert shm_tier.stats == plain.stats
    shm_tier.close()
    plain.close()


# -- hypothesis properties ---------------------------------------------------
@settings(max_examples=5, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=50),
       users=st.sampled_from([8, 16, 32]))
def test_affinity_hit_rate_dominates_round_robin(fleet_dataset, seed,
                                                 users):
    """Match-affinity never yields a worse mean device cache-hit rate
    than round-robin on overlapping user streams."""
    cfg = ServeConfig(rate=2_000.0, num_requests=150,
                      seeds_per_request=8, max_batch=4,
                      batch_window_s=0.002, queue_capacity=256,
                      slo_s=10.0, seed=seed, num_users=users)
    rates = {}
    for policy in ("round-robin", "match-affinity"):
        report = simulate_fleet(
            "fastgl", fleet_dataset, run_config=_run_config(),
            serve_config=cfg,
            fleet=FleetSpec(num_replicas=4, router=policy))
        rates[policy] = report.device_hit_rate
    assert rates["match-affinity"] >= rates["round-robin"] - 1e-9


@settings(max_examples=5, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=50),
       rate=st.sampled_from([3_000.0, 8_000.0]))
def test_jsq_p99_monotone_in_replica_count(fleet_dataset, seed, rate):
    """At a fixed arrival rate, adding JSQ replicas never makes p99
    worse (singleton batching isolates the queueing effect)."""
    cfg = ServeConfig(rate=rate, num_requests=150, seeds_per_request=4,
                      max_batch=1, batch_window_s=0.0,
                      queue_capacity=256, slo_s=10.0, seed=seed)
    p99s = []
    for replicas in (1, 2, 4):
        report = simulate_fleet(
            "dgl", fleet_dataset, run_config=_run_config(),
            serve_config=cfg,
            fleet=FleetSpec(num_replicas=replicas, router="jsq"))
        p99s.append(report.p99)
    assert p99s[1] <= p99s[0] + 1e-9
    assert p99s[2] <= p99s[1] + 1e-9


@settings(max_examples=50, deadline=None, derandomize=True)
@given(samples=st.lists(st.floats(min_value=0.0, max_value=1.0),
                        min_size=2, max_size=60),
       cooldown=st.floats(min_value=0.01, max_value=0.2))
def test_autoscaler_never_flaps(samples, cooldown):
    """Whatever occupancy signal arrives, hysteresis + cooldown forbid
    a scale action within one cooldown window of the previous one."""
    scaler = Autoscaler(AutoscalerConfig(
        enabled=True, add_occupancy=0.6, drain_occupancy=0.2,
        interval_s=0.01, cooldown_s=cooldown, min_replicas=1,
        max_replicas=8))
    live = 2
    for i, sample in enumerate(samples):
        now = i * 0.01
        scaler.observe_occupancy(sample)
        action = scaler.decide(now, live)
        if action == "add":
            live += 1
        elif action == "drain":
            live -= 1
    events = scaler.events
    for prev, cur in zip(events, events[1:]):
        assert cur.time - prev.time >= cooldown - 1e-12
        if prev.action == "add":
            # An add is never immediately reversed inside the window.
            assert not (cur.action == "drain"
                        and cur.time - prev.time < cooldown)


def test_autoscaler_hysteresis_requires_dead_band():
    with pytest.raises(ValueError, match="hysteresis"):
        AutoscalerConfig(enabled=True, add_occupancy=0.3,
                         drain_occupancy=0.3)


# -- autoscaler end-to-end ---------------------------------------------------
def test_autoscaler_adds_replicas_under_load(fleet_dataset):
    cfg = ServeConfig(rate=50_000.0, num_requests=300,
                      seeds_per_request=8, max_batch=2,
                      batch_window_s=0.001, queue_capacity=64,
                      slo_s=10.0, seed=1)
    report = simulate_fleet(
        "dgl", fleet_dataset, run_config=_run_config(),
        serve_config=cfg,
        fleet=FleetSpec(num_replicas=1, router="jsq",
                        autoscaler=AutoscalerConfig(
                            enabled=True, add_occupancy=0.2,
                            drain_occupancy=0.05, interval_s=0.002,
                            cooldown_s=0.01, max_replicas=4)))
    adds = [e for e in report.scale_events if e.action == "add"]
    assert adds, "saturated single replica must trigger scale-up"
    assert len(report.replicas) > 1
    assert report.reconciles(1e-6)


def test_fleet_spec_validation():
    with pytest.raises(ValueError, match="num_replicas"):
        FleetSpec(num_replicas=0)
    with pytest.raises(ValueError, match="unknown router"):
        FleetSpec(router="random")
