"""Tests for the Prometheus/JSON exporters and the Chrome-trace round-trip."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    flatten_snapshot,
    spans_from_chrome_events,
    to_prometheus,
    to_snapshot,
    write_snapshot,
)


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("repro_hits_total", "Hit count").labels(
        framework="fastgl", phase="sample").inc(7)
    registry.gauge("repro_ratio", "A ratio").set(0.25)
    hist = registry.histogram("repro_latency_seconds", "Latency",
                              buckets=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.005, 0.005, 0.05, 5.0):
        hist.labels(op="read").observe(value)
    return registry


class TestPrometheus:
    def test_help_and_type_lines(self, registry):
        text = to_prometheus(registry)
        assert "# HELP repro_hits_total Hit count\n" in text
        assert "# TYPE repro_hits_total counter\n" in text
        assert "# TYPE repro_latency_seconds histogram\n" in text
        assert text.endswith("\n")

    def test_counter_sample_with_sorted_labels(self, registry):
        text = to_prometheus(registry)
        # Label names are emitted in sorted order regardless of call order.
        assert 'repro_hits_total{framework="fastgl",phase="sample"} 7' in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c").labels(path='a\\b\n"q"').inc()
        text = to_prometheus(registry)
        assert 'c{path="a\\\\b\\n\\"q\\""} 1' in text

    def test_help_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", "line one\nline two")
        assert "# HELP c line one\\nline two\n" in to_prometheus(registry)

    def test_histogram_buckets_cumulative_with_inf(self, registry):
        lines = [l for l in to_prometheus(registry).splitlines()
                 if l.startswith("repro_latency_seconds")]
        buckets = [l for l in lines if "_bucket" in l]
        assert buckets == [
            'repro_latency_seconds_bucket{op="read",le="0.001"} 1',
            'repro_latency_seconds_bucket{op="read",le="0.01"} 3',
            'repro_latency_seconds_bucket{op="read",le="0.1"} 4',
            'repro_latency_seconds_bucket{op="read",le="+Inf"} 5',
        ]
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts)  # cumulative => monotone
        assert 'repro_latency_seconds_count{op="read"} 5' in lines
        sum_line, = (l for l in lines if l.startswith(
            "repro_latency_seconds_sum"))
        assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(5.0605)

    def test_large_integers_render_exactly(self):
        registry = MetricsRegistry()
        registry.counter("bytes_total").inc(123_456_789_012)
        assert "bytes_total 123456789012\n" in to_prometheus(registry)

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestSnapshot:
    def test_structure_and_flatten(self, registry):
        snapshot = to_snapshot(registry)
        assert snapshot["version"] == 1
        by_name = {m["name"]: m for m in snapshot["metrics"]}
        hist_sample = by_name["repro_latency_seconds"]["samples"][0]
        assert hist_sample["buckets"][-1] == ["+Inf", 5]
        assert hist_sample["count"] == 5
        assert {"p50", "p95", "p99"} <= set(hist_sample)

        flat = flatten_snapshot(snapshot)
        assert flat['repro_hits_total{framework="fastgl",phase="sample"}'] == 7
        assert flat["repro_ratio"] == 0.25
        assert flat['repro_latency_seconds_count{op="read"}'] == 5
        assert flat['repro_latency_seconds_sum{op="read"}'] == pytest.approx(
            5.0605)

    def test_snapshot_is_json_roundtrippable(self, registry, tmp_path):
        path = tmp_path / "snap.json"
        written = write_snapshot(path, registry)
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded == written
        assert flatten_snapshot(loaded) == flatten_snapshot(written)


class TestTracerRoundTrip:
    def test_nested_spans_survive_chrome_roundtrip(self):
        ticks = iter([0.0, 1.0, 2.0, 5.0, 6.0, 9.0, 10.0, 20.0])
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("epoch", category="compute", lane="gpu0"):
            with tracer.span("batch0", lane="gpu0", batch=0):
                pass  # 1.0 .. 2.0
            with tracer.span("batch1", lane="gpu0", batch=1):
                pass  # 5.0 .. 6.0
        with tracer.span("io", category="memory_io", lane="gpu1"):
            pass  # 10.0 .. 20.0

        events = tracer.to_chrome_events(pid="test")
        payload = json.loads(json.dumps({"traceEvents": events}))
        spans = spans_from_chrome_events(payload["traceEvents"])

        by_name = {s.name: s for s in spans}
        assert by_name["epoch"].depth == 0
        assert by_name["batch0"].depth == 1
        assert by_name["batch1"].depth == 1
        assert by_name["batch0"].args == {"batch": 0}
        assert by_name["epoch"].start == pytest.approx(0.0)
        assert by_name["epoch"].duration == pytest.approx(9.0)
        assert by_name["io"].lane == "gpu1"
        assert by_name["io"].category == "memory_io"

        # Sorted order: lanes grouped, parents before their children.
        names = [s.name for s in spans]
        assert names == ["epoch", "batch0", "batch1", "io"]

    def test_modeled_spans_and_lane_totals(self):
        tracer = Tracer()
        tracer.add_span("a", start=0.0, duration=2.0, lane="gpu0",
                        category="sample")
        tracer.add_span("b", start=2.0, duration=3.0, lane="gpu0",
                        category="compute")
        tracer.add_span("c", start=0.0, duration=4.0, lane="gpu1",
                        category="compute")
        assert tracer.lane_totals() == {"gpu0": 5.0, "gpu1": 4.0}
        events = tracer.to_chrome_events()
        assert [e["ts"] for e in events] == [0.0, 2e6, 0.0]
        assert all(e["ph"] == "X" for e in events)

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            pass
        tracer.add_span("y", start=0.0, duration=1.0)
        assert tracer.spans == []
        assert tracer.to_chrome_events() == []

    def test_write_chrome_trace(self, tmp_path):
        tracer = Tracer()
        tracer.add_span("a", start=0.0, duration=1.0, lane="gpu0",
                        category="sample")
        path = tmp_path / "trace.json"
        count = tracer.write_chrome_trace(path, pid="p",
                                          other_data={"k": "v"})
        assert count == 1
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["otherData"] == {"k": "v"}
        assert payload["traceEvents"][0]["pid"] == "p"
