"""End-to-end tests: instrumented epochs populate the metrics registry."""

import pytest

from repro.config import RunConfig
from repro.frameworks import FRAMEWORKS
from repro.obs import (
    MetricsRegistry,
    instrumented,
    set_registry,
    to_prometheus,
    to_snapshot,
    flatten_snapshot,
)


def _config(**overrides):
    defaults = dict(batch_size=64, fanouts=(3, 4), num_gpus=2,
                    hidden_dim=8, reorder_window=4)
    defaults.update(overrides)
    return RunConfig(**defaults)


def _family_names(registry):
    return {family.name for family in registry.collect()}


@pytest.fixture(scope="module")
def fastgl_registry(tiny_dataset):
    """One instrumented FastGL epoch, shared read-only by the tests."""
    with instrumented() as registry:
        FRAMEWORKS["fastgl"]().run_epoch(tiny_dataset, _config())
    return registry


@pytest.fixture(scope="module")
def ooc_registry(tiny_dataset):
    """One instrumented out-of-core FastGL epoch."""
    with instrumented() as registry:
        FRAMEWORKS["fastgl-ooc"]().run_epoch(tiny_dataset, _config())
    return registry


class TestEpochInstrumentation:
    def test_phase_histograms_per_phase(self, fastgl_registry):
        flat = flatten_snapshot(to_snapshot(fastgl_registry))
        batches = flat['repro_batches_total{framework="fastgl"}']
        assert batches > 0
        for phase in ("sample", "idmap", "memory_io", "compute"):
            key = ('repro_phase_seconds_count'
                   f'{{framework="fastgl",phase="{phase}"}}')
            assert flat[key] == batches
            assert flat[key.replace("_count", "_sum")] > 0
        # Gradient sync is observed once per epoch, not per batch.
        key = 'repro_phase_seconds_count{framework="fastgl",phase="allreduce"}'
        assert flat[key] == 1

    def test_idmap_counters(self, fastgl_registry):
        flat = flatten_snapshot(to_snapshot(fastgl_registry))
        assert flat['repro_idmap_ids_total{idmap="fused"}'] > 0
        assert flat['repro_idmap_cas_ops_total{idmap="fused"}'] > 0
        assert flat['repro_idmap_sync_events_total{idmap="fused"}'] == 0
        assert flat['repro_idmap_probe_length_count{idmap="fused"}'] > 0

    def test_transfer_counters(self, fastgl_registry):
        flat = flatten_snapshot(to_snapshot(fastgl_registry))
        labels = '{loader="MatchLoader"}'
        assert flat[f"repro_transfer_structure_bytes_total{labels}"] > 0
        assert flat[f"repro_transfer_rows_wanted_total{labels}"] > 0
        assert (flat[f"repro_transfer_rows_loaded_total{labels}"]
                <= flat[f"repro_transfer_rows_wanted_total{labels}"])
        # On the tiny dataset the cache holds the whole table, so Match +
        # cache serve every row without PCIe traffic — exactly what the
        # counters should make visible.
        served = (flat[f"repro_transfer_rows_reused_total{labels}"]
                  + flat[f"repro_transfer_cache_hits_total{labels}"])
        assert served > 0

    def test_reorder_gain_is_observed(self, fastgl_registry):
        families = {f.name: f for f in fastgl_registry.collect()}
        family = families["repro_reorder_match_degree"]
        totals = {labels["order"]: child.sum
                  for labels, child in family.samples()}
        assert set(totals) == {"arrival", "reordered"}
        # Greedy Reorder exists to raise consecutive match degree.
        assert totals["reordered"] >= totals["arrival"]

    def test_baseline_idmap_labelled_separately(self, tiny_dataset):
        with instrumented() as registry:
            FRAMEWORKS["dgl"]().run_epoch(tiny_dataset, _config())
        flat = flatten_snapshot(to_snapshot(registry))
        assert flat['repro_idmap_sync_events_total{idmap="baseline"}'] > 0

    def test_prometheus_dump_has_required_families(self, fastgl_registry):
        text = to_prometheus(fastgl_registry)
        assert "# TYPE repro_phase_seconds histogram" in text
        for phase in ("sample", "idmap", "memory_io", "compute"):
            assert f'phase="{phase}"' in text
        assert 'le="+Inf"' in text
        assert "# TYPE repro_batches_total counter" in text


class TestStorageInstrumentation:
    def test_page_and_ssd_counters(self, ooc_registry):
        flat = flatten_snapshot(to_snapshot(ooc_registry))
        labels = '{policy="PartitionAwarePageCache"}'
        hits = flat[f"repro_storage_page_hits_total{labels}"]
        misses = flat[f"repro_storage_page_misses_total{labels}"]
        assert hits + misses > 0
        assert flat[f"repro_storage_ssd_requests_total{labels}"] > 0
        assert flat[f"repro_storage_ssd_bytes_total{labels}"] > 0
        # Coalescing: pages per SSD command is at least one on average.
        num = flat["repro_storage_coalesce_pages_per_command_count"
                   + labels]
        total = flat["repro_storage_coalesce_pages_per_command_sum"
                     + labels]
        assert num > 0 and total / num >= 1.0

    def test_page_cache_gauges(self, ooc_registry):
        flat = flatten_snapshot(to_snapshot(ooc_registry))
        labels = '{policy="PartitionAwarePageCache"}'
        assert 0.0 <= flat[f"repro_page_cache_hit_rate{labels}"] <= 1.0
        assert flat[f"repro_page_cache_resident_pages{labels}"] >= 0

    def test_pipeline_stalls_and_queue(self, ooc_registry):
        names = _family_names(ooc_registry)
        assert "repro_storage_queue_occupancy" in names
        assert "repro_pipeline_stall_seconds_total" in names
        flat = flatten_snapshot(to_snapshot(ooc_registry))
        occupancy = flat[
            'repro_storage_queue_occupancy_count{pipeline="storage"}']
        assert occupancy > 0


class TestTwoStageStallAccounting:
    def test_stalls_reported(self):
        from repro.sim.pipeline import two_stage_makespan

        with instrumented() as registry:
            # Slow producer: the consumer starves between items.
            two_stage_makespan([2.0, 2.0, 2.0], [0.5, 0.5, 0.5])
        flat = flatten_snapshot(to_snapshot(registry))
        starved = flat['repro_pipeline_stall_seconds_total'
                       '{pipeline="two_stage",stage="consumer"}']
        assert starved == pytest.approx(3.0)  # two 1.5s gaps after fill


class TestDisabledOverhead:
    def test_disabled_registry_stays_empty_through_epoch(self, tiny_dataset):
        registry = MetricsRegistry(enabled=False)
        previous = set_registry(registry)
        try:
            FRAMEWORKS["fastgl"]().run_epoch(tiny_dataset, _config())
        finally:
            set_registry(previous)
        assert registry.collect() == []
        assert to_prometheus(registry) == ""


class TestReportCache:
    def test_cache_info_and_counters(self, tiny_dataset, monkeypatch):
        from repro.experiments import runner

        monkeypatch.setattr(runner, "get_dataset",
                            lambda name, seed=0: tiny_dataset)
        runner.clear_report_cache()
        assert runner.cache_info() == {"hits": 0, "misses": 0, "currsize": 0}
        config = _config()
        try:
            with instrumented() as registry:
                # dataset= bypasses the memo entirely: a recorded miss.
                runner.epoch_report("dgl", "tiny", config,
                                    dataset=tiny_dataset)
                first = runner.epoch_report("dgl", "tiny", config)
                again = runner.epoch_report("dgl", "tiny", config)
            assert again is first
            info = runner.cache_info()
            assert info == {"hits": 1, "misses": 2, "currsize": 1}
            flat = flatten_snapshot(to_snapshot(registry))
            assert flat[
                'repro_experiment_report_cache_total{outcome="hit"}'] == 1
            assert flat[
                'repro_experiment_report_cache_total{outcome="miss"}'] == 2
        finally:
            runner.clear_report_cache()
