"""No in-repo caller may use the deprecated compatibility shims.

The shims (``api.run(spec=/cluster=)``, ``run_epoch(jobs=/cluster=)``)
exist for *external* callers mid-migration; everything inside this
repository must already speak :class:`~repro.pipeline.ExecutionSpec`.
CI runs this module explicitly in the pipeline-smoke job so a stray
reintroduction fails loudly, not just as a runtime warning.
"""

from __future__ import annotations

import pathlib
import re

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: Files allowed to mention shimmed keywords: the shim definitions
#: themselves and their documentation.
ALLOWED = {
    SRC / "repro" / "api.py",
    SRC / "repro" / "frameworks" / "base.py",
    SRC / "repro" / "frameworks" / "registry.py",
    SRC / "repro" / "pipeline" / "spec.py",
}

def _strip_comment(line: str) -> str:
    return line.split("#", 1)[0]


def _multiline_calls(text: str, callee: str):
    """Yield the argument text of every ``callee(...)`` call, matching
    across line breaks (call sites wrap arguments freely)."""
    for match in re.finditer(rf"\b{callee}\s*\(", text):
        depth = 1
        start = match.end()
        pos = start
        while pos < len(text) and depth:
            if text[pos] == "(":
                depth += 1
            elif text[pos] == ")":
                depth -= 1
            pos += 1
        yield text[start:pos - 1]


def _without_nested_specs(args: str) -> str:
    """Blank out nested ``ExecutionSpec(...)``/``ClusterSpec(...)``
    bodies: ``cluster=`` *inside a spec constructor* is the migrated
    form, not the shim."""
    for ctor in ("ExecutionSpec", "ClusterSpec", "_exec", "_spec"):
        while True:
            bodies = list(_multiline_calls(args, ctor))
            if not bodies:
                break
            for body in bodies:
                args = args.replace(f"{ctor}({body}", f"{ctor}(", 1)
            if not any(bodies):
                break
    return args


def test_no_deprecated_callers_in_src():
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        text = path.read_text()
        stripped = "\n".join(_strip_comment(ln) for ln in
                             text.splitlines())
        if re.search(r"\bget_framework\s*\(", stripped):
            violations.append(f"{path.relative_to(REPO)}: get_framework")
        for callee in ("run_epoch", "epoch_report"):
            for args in _multiline_calls(stripped, callee):
                args = _without_nested_specs(args)
                if re.search(r"\b(jobs|cluster)\s*=", args):
                    violations.append(
                        f"{path.relative_to(REPO)}: "
                        f"{callee} legacy kwarg")
        for args in _multiline_calls(stripped, r"(?:api\.)?run"):
            args = _without_nested_specs(args)
            if re.search(r"(?<!gpu_)\bspec\s*=", args) or \
                    re.search(r"\bcluster\s*=", args):
                # api.run(spec=...) / run(cluster=...) shims.
                violations.append(
                    f"{path.relative_to(REPO)}: api.run legacy kwarg")
    assert not violations, (
        "deprecated shim usage inside src/ — migrate these call sites "
        "to ExecutionSpec:\n" + "\n".join(violations)
    )


def test_shims_still_exist_for_external_callers():
    """The inverse guard: the shims this test bans internally must keep
    working externally until the next major version."""
    import inspect

    from repro import api
    from repro.frameworks.base import Framework

    run_params = inspect.signature(api.run).parameters
    assert "spec" in run_params and "cluster" in run_params
    epoch_params = inspect.signature(Framework.run_epoch).parameters
    assert "jobs" in epoch_params and "cluster" in epoch_params
