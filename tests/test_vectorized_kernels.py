"""Property tests: the vectorized hot-path kernels against their oracles.

The vectorized ``match_degree_matrix`` must be element-wise identical to
the legacy ``np.intersect1d`` loop, and ``VectorOpenAddressTable``'s
batch insert must build the same map as the exact per-operation
``ExactOpenAddressTable`` — same global->local mapping, same insert and
duplicate counters. Hypothesis drives both over adversarial inputs:
empty sets, duplicate-heavy sets, negative IDs, near-full tables.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reorder import match_degree_matrix, match_degree_matrix_legacy
from repro.sampling.idmap.hash_table import (
    EMPTY,
    ExactOpenAddressTable,
    VectorOpenAddressTable,
    table_capacity,
)


@st.composite
def node_sets(draw):
    """Mini-batch node sets: possibly empty, duplicate-heavy, offset."""
    num_sets = draw(st.integers(0, 8))
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    id_low = draw(st.integers(-50, 0))
    id_high = draw(st.integers(5, 400))
    sets = []
    for _ in range(num_sets):
        size = draw(st.integers(0, 60))
        values = rng.integers(id_low, id_high, size=size)
        if size and draw(st.booleans()):
            # duplicate-heavy: repeat a random prefix
            values = np.concatenate(
                [values, values[: draw(st.integers(0, size))]]
            )
        sets.append(values)
    return sets


@settings(max_examples=80, deadline=None)
@given(sets=node_sets())
def test_match_degree_matrix_matches_legacy(sets):
    fast = match_degree_matrix(sets)
    legacy = match_degree_matrix_legacy(sets)
    np.testing.assert_array_equal(fast, legacy)
    assert fast.dtype == np.float64


@settings(max_examples=50, deadline=None)
@given(sets=node_sets())
def test_match_degree_matrix_assume_unique(sets):
    """With pre-deduplicated inputs, ``assume_unique`` is a pure
    optimisation: same matrix, bit for bit."""
    unique_sets = [np.unique(s) for s in sets]
    fast = match_degree_matrix(unique_sets, assume_unique=True)
    np.testing.assert_array_equal(
        fast, match_degree_matrix_legacy(unique_sets)
    )


def test_match_degree_matrix_empty_and_degenerate():
    assert match_degree_matrix([]).shape == (0, 0)
    np.testing.assert_array_equal(
        match_degree_matrix([np.array([], dtype=np.int64)]),
        np.zeros((1, 1)),
    )
    # one empty set among populated ones: its row/column stays zero
    sets = [np.array([1, 2, 3]), np.array([], dtype=np.int64),
            np.array([2, 3, 4])]
    matrix = match_degree_matrix(sets)
    assert matrix[1].sum() == 0 and matrix[:, 1].sum() == 0
    np.testing.assert_array_equal(matrix, match_degree_matrix_legacy(sets))


@st.composite
def insert_workload(draw):
    """IDs to insert plus a table capacity that always fits them."""
    size = draw(st.integers(0, 200))
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    id_space = draw(st.integers(1, 300))
    ids = rng.integers(0, id_space, size=size)
    capacity = table_capacity(
        len(np.unique(ids)), load_factor=draw(st.sampled_from([0.5, 0.9]))
    )
    return ids, capacity


@settings(max_examples=80, deadline=None)
@given(workload=insert_workload())
def test_batch_insert_matches_exact_oracle(workload):
    """Batch insert builds the same fused map as the sequential oracle:
    identical mapping, local-ID assignment order, and insert/duplicate/
    add counters (the equivalence contract; slot layout may differ, like
    GPU atomics under a different thread interleaving)."""
    ids, capacity = workload
    exact = ExactOpenAddressTable(capacity)
    for gid in ids:
        exact.fused_map_insert(int(gid))
    vector = VectorOpenAddressTable(capacity)
    vector.fused_map_insert_batch(ids)

    assert vector.mapping() == exact.mapping()
    assert vector.local_id == exact.local_id
    assert vector.stats.inserts == exact.stats.inserts
    assert vector.stats.duplicate_hits == exact.stats.duplicate_hits
    assert vector.add_ops == exact.add_ops

    # every key is reachable from its home slot with no EMPTY gap, and
    # lookups agree with the oracle
    lookups = vector.lookup_batch(ids)
    for gid, local in zip(ids, lookups):
        assert exact.lookup(int(gid)) == int(local)


@settings(max_examples=30, deadline=None)
@given(workload=insert_workload(), split=st.integers(0, 200))
def test_batch_insert_is_incremental(workload, split):
    """Splitting one batch into two consecutive calls changes nothing:
    the table is a running map across mini-batches."""
    ids, capacity = workload
    split = min(split, len(ids))
    one_shot = VectorOpenAddressTable(capacity)
    one_shot.fused_map_insert_batch(ids)
    two_calls = VectorOpenAddressTable(capacity)
    two_calls.fused_map_insert_batch(ids[:split])
    two_calls.fused_map_insert_batch(ids[split:])
    assert two_calls.mapping() == one_shot.mapping()
    assert two_calls.local_id == one_shot.local_id


def test_batch_insert_edge_cases():
    table = VectorOpenAddressTable(8)
    table.fused_map_insert_batch(np.array([], dtype=np.int64))
    assert table.local_id == 0 and table.mapping() == {}

    # all-duplicates batch: one insert, rest hits
    table.fused_map_insert_batch(np.full(50, 7, dtype=np.int64))
    assert table.local_id == 1
    assert table.stats.inserts == 1
    assert table.stats.duplicate_hits == 49

    with np.testing.assert_raises(ValueError):
        table.fused_map_insert_batch(np.array([-1]))

    full = VectorOpenAddressTable(4)
    with np.testing.assert_raises(RuntimeError):
        full.fused_map_insert_batch(np.arange(5))

    # exactly-full table still works
    snug = VectorOpenAddressTable(4)
    snug.fused_map_insert_batch(np.arange(4))
    assert snug.local_id == 4
    assert np.count_nonzero(snug.keys == EMPTY) == 0
