"""Tests for the metrics registry: metric kinds, labels, disabled mode."""

import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    get_registry,
    instrumented,
    set_registry,
)
from repro.obs.registry import Counter, Gauge, Histogram


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0


class TestHistogram:
    def test_bucket_counts(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 1, 1]  # last is the +Inf bucket
        assert hist.cumulative_counts() == [1, 3, 4, 5]
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.5)

    def test_boundary_value_lands_in_le_bucket(self):
        # Prometheus buckets are `le` (inclusive upper bounds).
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.counts == [1, 0, 0]

    def test_quantiles_interpolate(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 2.5, 3.5):
            hist.observe(value)
        # p50 falls at the boundary of the second bucket (rank 2 of 4).
        assert hist.quantile(0.5) == pytest.approx(2.0)
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == pytest.approx(4.0)
        summary = hist.summary()
        assert set(summary) == {"p50", "p95", "p99"}

    def test_quantile_of_empty_is_zero(self):
        assert Histogram(buckets=(1.0,)).quantile(0.5) == 0.0

    def test_overflow_quantile_clamps_to_top_bound(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.quantile(0.99) == 2.0

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0,)).quantile(1.5)


class TestFamilies:
    def test_labels_create_children(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", "help")
        family.labels(kind="a").inc()
        family.labels(kind="a").inc()
        family.labels(kind="b").inc(3)
        values = {tuple(labels.items()): child.value
                  for labels, child in family.samples()}
        assert values == {(("kind", "a"),): 2.0, (("kind", "b"),): 3.0}

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        family = registry.counter("c")
        family.labels(a="1", b="2").inc()
        family.labels(b="2", a="1").inc()
        assert len(family.samples()) == 1

    def test_labelless_proxy(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        values = {f.name: f.samples()[0][1] for f in registry.collect()}
        assert values["c"].value == 2.0
        assert values["g"].value == 5.0
        assert values["h"].count == 1

    def test_idempotent_and_kind_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("m")
        assert registry.counter("m") is first
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_collect_sorted_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("z")
        registry.counter("a")
        assert [f.name for f in registry.collect()] == ["a", "z"]
        registry.reset()
        assert registry.collect() == []

    def test_thread_safety(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total")

        def worker():
            for _ in range(1000):
                family.labels(worker="shared").inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        (_, child), = family.samples()
        assert child.value == 8000.0


class TestDisabledRegistry:
    def test_hands_out_shared_noop_singletons(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("c") is NULL_COUNTER
        assert registry.gauge("g") is NULL_GAUGE
        assert registry.histogram("h") is NULL_HISTOGRAM
        # labels() chains back to the same singleton: the hot path never
        # allocates per call.
        assert NULL_COUNTER.labels(framework="fastgl") is NULL_COUNTER
        NULL_COUNTER.inc()
        NULL_GAUGE.set(3)
        NULL_HISTOGRAM.observe(0.1)
        assert registry.collect() == []

    def test_enable_disable_toggle(self):
        registry = MetricsRegistry(enabled=False)
        registry.enable()
        assert registry.counter("c") is not NULL_COUNTER
        registry.disable()
        assert registry.counter("c2") is NULL_COUNTER


class TestDefaultRegistry:
    def test_default_starts_disabled(self):
        assert get_registry().enabled is False

    def test_instrumented_scopes_and_restores(self):
        before = get_registry()
        with instrumented() as registry:
            assert get_registry() is registry
            assert registry.enabled
            registry.counter("scoped_total").inc()
        assert get_registry() is before

    def test_instrumented_accepts_existing_registry(self):
        mine = MetricsRegistry(enabled=False)
        with instrumented(mine) as registry:
            assert registry is mine
            assert mine.enabled

    def test_set_registry_returns_previous(self):
        before = get_registry()
        mine = MetricsRegistry()
        try:
            assert set_registry(mine) is before
            assert get_registry() is mine
        finally:
            set_registry(before)


class TestMerge:
    """Per-kind semantics of folding a worker snapshot into a registry."""

    @staticmethod
    def _snapshot(build):
        from repro.obs.exporters import to_snapshot

        registry = MetricsRegistry()
        build(registry)
        return to_snapshot(registry)

    def test_counters_add(self):
        snap = self._snapshot(
            lambda r: r.counter("merge_work_total").inc(5)
        )
        parent = MetricsRegistry()
        parent.counter("merge_work_total").inc(2)
        parent.merge(snap)
        parent.merge(snap)
        assert parent.counter("merge_work_total").labels().value == 12.0

    def test_labeled_counters_merge_per_child(self):
        snap = self._snapshot(
            lambda r: r.counter("merge_lane_total").labels(lane="a").inc(3)
        )
        parent = MetricsRegistry()
        parent.counter("merge_lane_total").labels(lane="b").inc(1)
        parent.merge(snap)
        family = parent.counter("merge_lane_total")
        assert family.labels(lane="a").value == 3.0
        assert family.labels(lane="b").value == 1.0

    def test_gauge_last_write_wins(self):
        snap = self._snapshot(lambda r: r.gauge("merge_depth").set(7))
        parent = MetricsRegistry()
        parent.gauge("merge_depth").set(3)
        parent.merge(snap)
        assert parent.gauge("merge_depth").labels().value == 7.0

    def test_histogram_buckets_add_noncumulatively(self):
        def build(registry):
            hist = registry.histogram("merge_lat", buckets=(1.0, 2.0))
            for value in (0.5, 1.5, 9.0):
                hist.observe(value)

        snap = self._snapshot(build)
        parent = MetricsRegistry()
        parent.merge(snap)
        parent.merge(snap)
        hist = parent.histogram("merge_lat", buckets=(1.0, 2.0)).labels()
        assert hist.counts == [2, 2, 2]
        assert hist.count == 6
        assert hist.sum == pytest.approx(22.0)
        assert hist.cumulative_counts() == [2, 4, 6]

    def test_histogram_bounds_conflict_raises(self):
        snap = self._snapshot(
            lambda r: r.histogram("merge_lat2", buckets=(1.0, 2.0))
            .observe(0.5)
        )
        parent = MetricsRegistry()
        parent.histogram("merge_lat2", buckets=(5.0, 6.0)).observe(0.1)
        with pytest.raises(ValueError):
            parent.merge(snap)

    def test_kind_conflict_raises(self):
        snap = self._snapshot(lambda r: r.counter("merge_kind").inc())
        parent = MetricsRegistry()
        parent.gauge("merge_kind").set(1)
        with pytest.raises(ValueError):
            parent.merge(snap)

    def test_disabled_registry_ignores_merge(self):
        snap = self._snapshot(lambda r: r.counter("merge_noop").inc())
        parent = MetricsRegistry(enabled=False)
        parent.merge(snap)
        assert parent.collect() == []

    def test_merge_roundtrip_equals_direct(self):
        """Observing in a worker then merging == observing directly."""
        from repro.obs.exporters import flatten_snapshot, to_snapshot

        def observe(registry):
            registry.counter("merge_rt_total").inc(4)
            registry.histogram("merge_rt_s").observe(0.25)
            registry.gauge("merge_rt_depth").set(2)

        direct = MetricsRegistry()
        observe(direct)
        merged = MetricsRegistry()
        merged.merge(to_snapshot(direct))
        assert (flatten_snapshot(to_snapshot(merged))
                == flatten_snapshot(to_snapshot(direct)))
