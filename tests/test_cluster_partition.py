"""Property tests for the cluster partitioners and partition accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.partitioner import (
    greedy_partition,
    hash_partition,
    partition_graph,
    random_partition,
)
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.generators import community_graph
from repro.graph.partition import partition_stats, validate_assignment


@st.composite
def graph_and_parts(draw):
    num_nodes = draw(st.integers(min_value=60, max_value=240))
    avg_degree = draw(st.floats(min_value=3.0, max_value=8.0))
    num_parts = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    graph, _ = community_graph(num_nodes, avg_degree,
                               num_communities=num_parts, rng=seed)
    return graph, num_parts, seed


class TestPartitionerProperties:
    @settings(max_examples=30, deadline=None)
    @given(graph_and_parts())
    def test_every_node_assigned_exactly_once(self, case):
        graph, num_parts, seed = case
        for method in ("greedy", "random", "hash"):
            assignment = partition_graph(graph, num_parts, method=method,
                                         seed=seed)
            assert len(assignment) == graph.num_nodes
            assert assignment.min() >= 0
            assert assignment.max() < num_parts
            # validate_assignment accepts what the partitioners emit.
            validate_assignment(assignment, graph.num_nodes, num_parts)

    @settings(max_examples=30, deadline=None)
    @given(graph_and_parts())
    def test_greedy_respects_balance_slack(self, case):
        graph, num_parts, seed = case
        slack = 0.05
        assignment = greedy_partition(graph, num_parts,
                                      balance_slack=slack)
        sizes = np.bincount(assignment, minlength=num_parts)
        ideal = graph.num_nodes / num_parts
        capacity = max(int(np.ceil(ideal)),
                       int(np.ceil(ideal * (1.0 + slack))))
        assert sizes.max() <= capacity

    @settings(max_examples=30, deadline=None)
    @given(graph_and_parts())
    def test_greedy_cut_never_worse_than_random(self, case):
        graph, num_parts, seed = case
        greedy = partition_stats(
            graph, greedy_partition(graph, num_parts), num_parts)
        random = partition_stats(
            graph, random_partition(graph.num_nodes, num_parts, seed=seed),
            num_parts)
        assert greedy.edge_cut <= random.edge_cut


class TestBaselinePartitioners:
    def test_random_is_balanced(self):
        assignment = random_partition(1001, 4, seed=3)
        sizes = np.bincount(assignment, minlength=4)
        assert sizes.max() - sizes.min() <= 1

    def test_random_is_seeded(self):
        a = random_partition(500, 4, seed=7)
        b = random_partition(500, 4, seed=7)
        c = random_partition(500, 4, seed=8)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_hash_is_round_robin(self):
        assignment = hash_partition(10, 3)
        np.testing.assert_array_equal(assignment,
                                      np.arange(10, dtype=np.int64) % 3)

    def test_unknown_method_rejected(self):
        graph, _ = community_graph(100, 4.0, num_communities=2, rng=0)
        with pytest.raises(ConfigError):
            partition_graph(graph, 2, method="metis-real")


class TestPartitionStats:
    def _path_graph(self):
        # 0-1-2-3: three undirected edges stored both ways.
        indptr = np.array([0, 1, 3, 5, 6])
        indices = np.array([1, 0, 2, 1, 3, 2])
        return CSRGraph(indptr=indptr, indices=indices)

    def test_handmade_cut_and_halo(self):
        graph = self._path_graph()
        assignment = np.array([0, 0, 1, 1])
        stats = partition_stats(graph, assignment, num_parts=2)
        # Only the 1-2 edge crosses, stored in both directions.
        assert stats.edge_cut == 2
        assert stats.cut_fraction == pytest.approx(2 / 6)
        assert stats.sizes == (2, 2)
        assert stats.balance == pytest.approx(1.0)
        # Partition 0 must import node 2; partition 1 must import node 1.
        assert stats.halo_nodes == (1, 1)

    def test_single_partition_has_no_cut(self):
        graph = self._path_graph()
        stats = partition_stats(graph, np.zeros(4, dtype=np.int64),
                                num_parts=1)
        assert stats.edge_cut == 0
        assert stats.halo_nodes == (0,)

    def test_validate_rejects_wrong_length(self):
        with pytest.raises(ConfigError):
            validate_assignment(np.zeros(3, dtype=np.int64), num_nodes=4)

    def test_validate_rejects_negative_and_out_of_range(self):
        with pytest.raises(ConfigError):
            validate_assignment(np.array([0, -1, 0]), num_nodes=3)
        with pytest.raises(ConfigError):
            validate_assignment(np.array([0, 2, 0]), num_nodes=3,
                                num_parts=2)

    def test_validate_rejects_non_integral(self):
        with pytest.raises(ConfigError):
            validate_assignment(np.array([0.0, 1.0]), num_nodes=2)
