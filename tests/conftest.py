"""Shared test fixtures.

Unit tests run on purpose-built small graphs (seconds, not minutes); the
registry-scale datasets are exercised by the benchmark suite. Non-fixture
helpers live in ``helpers.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_spec
from repro.graph.csr import CSRGraph
from repro.graph.datasets import Dataset


@pytest.fixture(scope="session")
def tiny_dataset() -> Dataset:
    """A 2k-node dataset shared (read-only) across the whole test run."""
    return Dataset(make_spec(), seed=7)


@pytest.fixture(scope="session")
def tiny_graph(tiny_dataset) -> CSRGraph:
    return tiny_dataset.graph


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(123)
