"""Chaos tests for the supervised worker pool.

Injected ``worker_crash`` faults kill forked workers mid-map (via
``os._exit``, the moral equivalent of an OOM kill); the supervisor must
detect the loss, respawn, and reassign the chunk — producing results
bit-identical to a crash-free serial run, because chunks are pure
functions of ``(chunk_index, seed)``.
"""

import numpy as np
import pytest

from repro.config import RunConfig
from repro.errors import WorkerCrashError
from repro.faults import FaultPlan, FaultSpec, fault_scope, set_fault_plan
from repro.frameworks import FastGLFramework
from repro.obs import get_registry, set_registry
from repro.obs.exporters import flatten_snapshot, to_snapshot
from repro.obs.registry import MetricsRegistry
from repro.parallel import ParallelExecutor, fork_available
from repro.pipeline import ExecutionSpec

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="requires fork start method")


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    set_fault_plan(None)
    yield
    set_fault_plan(None)


def _crash_plan(max_failures=1):
    """Every chunk's first ``max_failures`` attempts crash the worker."""
    return FaultPlan(seed=0, sites={
        "worker_crash": FaultSpec(probability=1.0,
                                  max_failures=max_failures),
    })


def _draw(index, rng):
    return rng.integers(0, 1 << 30, 3).tolist()


class TestCrashRecovery:
    @needs_fork
    def test_reassigned_chunks_match_serial(self):
        serial = ParallelExecutor(jobs=1).map(_draw, range(6), seed=11)
        with fault_scope(_crash_plan()) as plan:
            forked = ParallelExecutor(jobs=2).map(_draw, range(6), seed=11)
            # Every chunk lost a worker exactly once and was recomputed.
            assert plan.fired("worker_crash") == 6
        assert forked == serial

    @needs_fork
    def test_crash_budget_exhaustion_raises(self):
        with fault_scope(_crash_plan(max_failures=5)):
            with pytest.raises(WorkerCrashError) as excinfo:
                ParallelExecutor(jobs=2, max_crashes=2).map(
                    _draw, range(4), seed=0)
        assert excinfo.value.crashes > 2
        assert "chunk" in str(excinfo.value)

    @needs_fork
    def test_crashes_counted_in_metrics(self):
        registry = MetricsRegistry()
        previous = get_registry()
        set_registry(registry)
        try:
            with fault_scope(_crash_plan()):
                ParallelExecutor(jobs=2).map(_draw, range(4), seed=3)
        finally:
            set_registry(previous)
        flat = flatten_snapshot(to_snapshot(registry))
        assert flat["repro_parallel_worker_crashes_total"] == 4.0

    def test_serial_path_ignores_crash_site(self):
        """The crash site models worker-process loss; the serial path has
        no workers to lose and must stay fault-free."""
        with fault_scope(_crash_plan()) as plan:
            out = ParallelExecutor(jobs=1).map(_draw, range(4), seed=11)
        assert plan.fired("worker_crash") == 0
        assert out == ParallelExecutor(jobs=1).map(_draw, range(4), seed=11)

    def test_max_crashes_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=1, max_crashes=0)


class TestEpochChaosDeterminism:
    """The headline chaos property: a forked epoch whose workers crash
    and are reassigned is bit-for-bit the serial epoch."""

    def _run(self, tiny_dataset, jobs, plan=None):
        config = RunConfig(batch_size=64, fanouts=(3, 4), num_gpus=2,
                           hidden_dim=8, seed=3, train_model=True)
        parent = MetricsRegistry()
        previous = get_registry()
        set_registry(parent)
        try:
            report = FastGLFramework().run_epoch(
                tiny_dataset, config,
                execution=ExecutionSpec(jobs=jobs, faults=plan))
        finally:
            set_registry(previous)
        return report, flatten_snapshot(to_snapshot(parent))

    @needs_fork
    def test_epoch_under_worker_crashes_is_bit_identical(self, tiny_dataset):
        serial, serial_metrics = self._run(tiny_dataset, jobs=1)
        plan = _crash_plan()
        chaos, chaos_metrics = self._run(tiny_dataset, jobs=2, plan=plan)
        assert plan.fired("worker_crash") > 0

        assert chaos.losses == serial.losses
        assert chaos.epoch_time == serial.epoch_time
        assert chaos.phases == serial.phases
        assert chaos.memory_peak_bytes == serial.memory_peak_bytes
        assert chaos.transfer.feature_bytes == serial.transfer.feature_bytes
        for expected, actual in zip(serial.extras["final_params"],
                                    chaos.extras["final_params"]):
            np.testing.assert_array_equal(expected, actual)

        # Merged metrics agree except the crash bookkeeping and the
        # transport byte counters (jobs-dependent by design).
        crash_keys = {
            key for key in chaos_metrics
            if key.startswith(("repro_parallel_worker_crashes_total",
                               "repro_faults_injected_total",
                               "repro_parallel_ipc_bytes_total",
                               "repro_parallel_shm_bytes_total"))
        }
        trimmed = {key: value for key, value in chaos_metrics.items()
                   if key not in crash_keys}
        assert trimmed == serial_metrics
        assert any("worker_crashes" in key for key in crash_keys)
