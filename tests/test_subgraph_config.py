"""Tests for the SampledSubgraph structure and run configuration."""

import numpy as np
import pytest

from repro.config import CostModelConfig, DEFAULT_COST_MODEL, RunConfig
from repro.sampling.idmap.base import IdMapReport
from repro.sampling.subgraph import LayerBlock, SampledSubgraph


def block(dst, src, edge_src, edge_dst) -> LayerBlock:
    return LayerBlock(
        dst_global=np.asarray(dst, dtype=np.int64),
        src_global=np.asarray(src, dtype=np.int64),
        edge_src=np.asarray(edge_src, dtype=np.int64),
        edge_dst=np.asarray(edge_dst, dtype=np.int64),
    )


class TestLayerBlock:
    def test_counts(self):
        b = block([1, 2], [1, 2, 5], [2, 2], [0, 1])
        assert b.num_dst == 2
        assert b.num_src == 3
        assert b.num_edges == 2

    def test_in_degrees(self):
        b = block([1, 2], [1, 2, 5, 9], [2, 3, 2], [0, 0, 1])
        np.testing.assert_array_equal(b.in_degrees(), [2, 1])

    def test_validate_catches_bad_edges(self):
        b = block([1], [1, 2], [5], [0])  # edge_src out of range
        with pytest.raises(AssertionError):
            b.validate()

    def test_validate_targets_lead_sources(self):
        b = block([1, 2], [2, 1, 5], [2], [0])  # sources don't start w/ dst
        with pytest.raises(AssertionError):
            b.validate()

    def test_structure_bytes(self):
        b = block([1], [1, 2], [1], [0])
        assert b.structure_bytes() == 8 * (2 * 1 + 2 + 1)


class TestSampledSubgraph:
    def make(self):
        b1 = block([7], [7, 3], [1], [0])
        b2 = block([7, 3], [7, 3, 9], [2, 2], [0, 1])
        return SampledSubgraph(
            seeds=np.array([7]),
            layers=[b1, b2],
            idmap_report=IdMapReport(num_input_ids=5, num_unique=3),
        )

    def test_input_nodes_deepest_sources(self):
        sg = self.make()
        np.testing.assert_array_equal(sg.input_nodes, [7, 3, 9])
        assert sg.num_nodes == 3

    def test_edge_and_byte_totals(self):
        sg = self.make()
        assert sg.num_edges == 3
        assert sg.structure_bytes() == (
            sg.layers[0].structure_bytes() + sg.layers[1].structure_bytes()
        )

    def test_validate_checks_chain(self):
        sg = self.make()
        sg.validate()
        sg.layers[1] = block([7, 9], [7, 9], [], [])  # breaks the chain
        with pytest.raises(AssertionError):
            sg.validate()

    def test_no_layers_input_is_seeds(self):
        sg = SampledSubgraph(seeds=np.array([1, 2]), layers=[],
                             idmap_report=IdMapReport())
        np.testing.assert_array_equal(sg.input_nodes, [1, 2])


class TestRunConfig:
    def test_defaults_match_paper_setup(self):
        config = RunConfig()
        assert config.fanouts == (5, 10, 15)
        assert config.num_layers == 3
        assert config.hidden_dim == 64

    def test_frozen(self):
        config = RunConfig()
        with pytest.raises(Exception):
            config.batch_size = 1

    def test_hashable_for_memoization(self):
        a = RunConfig()
        b = RunConfig()
        assert hash(a) == hash(b)
        assert a == b
        assert hash(RunConfig(batch_size=1)) != hash(a) or (
            RunConfig(batch_size=1) != a
        )


class TestCostModelConfig:
    def test_scaled_override(self):
        cost = DEFAULT_COST_MODEL.scaled(atomic_ops_per_s=1e6)
        assert cost.atomic_ops_per_s == 1e6
        assert cost.gpu_sample_edges_per_s == (
            DEFAULT_COST_MODEL.gpu_sample_edges_per_s
        )

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.atomic_ops_per_s = 1.0

    def test_gather_faster_than_pcie(self):
        """The Section 7.3 premise: transfer, not gather, dominates today."""
        from repro.gpu.spec import RTX3090

        assert (DEFAULT_COST_MODEL.host_gather_bytes_per_s
                > RTX3090.pcie_bw)

    def test_cost_model_is_default_instance(self):
        assert CostModelConfig() == DEFAULT_COST_MODEL
