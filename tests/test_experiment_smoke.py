"""Smoke tests: every experiment driver runs end-to-end at reduced size.

The benchmark suite runs the full-scale versions with shape assertions;
these tests guarantee ``pytest tests/`` alone exercises each driver's
code path (with the smallest/fastest parameters each accepts).
"""

import pytest

from repro.config import RunConfig

SMALL = ("products",)
QUICK = RunConfig(batch_size=128, num_gpus=2)


class TestEvaluationDrivers:
    def test_fig01(self):
        from repro.experiments import fig01_breakdown

        result = fig01_breakdown.run(datasets=SMALL,
                                     frameworks=("dgl",), config=QUICK)
        assert len(result.rows) == 1

    def test_fig03(self):
        from repro.experiments import fig03_stepwise

        result = fig03_stepwise.run(models=("gcn",), config=QUICK)
        assert len(result.rows) == 4

    def test_tab01(self):
        from repro.experiments import tab01_left_memory

        result = tab01_left_memory.run(datasets=SMALL)
        assert result.rows[0][0] == "PR"

    def test_tab02(self):
        from repro.experiments import tab02_cache_hits

        result = tab02_cache_hits.run(datasets=SMALL, config=QUICK,
                                      max_edges=2000)
        assert 0.0 <= result.rows[0][1] <= 1.0

    def test_tab04(self):
        from repro.experiments import tab04_match_degree

        result = tab04_match_degree.run(datasets=SMALL, config=QUICK,
                                        num_batches=4)
        assert 0.0 < result.rows[0][1] <= 1.0

    def test_fig09(self):
        from repro.experiments import fig09_overall

        result = fig09_overall.run(
            datasets=SMALL, models=("gcn",),
            frameworks=("dgl", "fastgl"), include_pyg=False, config=QUICK,
        )
        assert result.rows[0][-1] > 0  # speedup column

    def test_fig10_sweep(self):
        from repro.experiments import fig10_memory_io

        result = fig10_memory_io.run_sweep(ratios=(0.0, 1.0), config=QUICK)
        assert len(result.rows) == 2

    def test_fig10_reorder(self):
        from repro.experiments import fig10_memory_io

        result = fig10_memory_io.run_reorder(
            datasets=SMALL, config=RunConfig(batch_size=128, num_gpus=1)
        )
        assert result.rows[0][2] <= result.rows[0][1]

    def test_tab07(self):
        from repro.experiments import tab07_random_walk

        result = tab07_random_walk.run(
            datasets=SMALL,
            config=RunConfig(batch_size=128, num_gpus=1, fanouts=(5,)),
            num_walks=4,
        )
        assert result.rows[0][1] > 0

    def test_fig11(self):
        from repro.experiments import fig11_compute

        result = fig11_compute.run(datasets=SMALL,
                                   frameworks=("dgl", "gnnadvisor",
                                               "fastgl"),
                                   config=QUICK)
        assert len(result.rows) == 1

    def test_fig12(self):
        from repro.experiments import fig12_roofline

        result = fig12_roofline.run(config=QUICK)
        assert {row[0] for row in result.rows} == {
            "dgl", "gnnadvisor", "fastgl"
        }

    def test_fig13(self):
        from repro.experiments import fig13_sample_time

        result = fig13_sample_time.run(datasets=SMALL,
                                       frameworks=("pyg", "dgl", "gnnlab",
                                                   "fastgl"),
                                       config=QUICK)
        assert result.rows[0][5] > 1  # x_pyg

    def test_tab08(self):
        from repro.experiments import tab08_idmap

        result = tab08_idmap.run(datasets=SMALL,
                                 config=RunConfig(batch_size=128,
                                                  num_gpus=1))
        assert result.rows[0][3] > 1.0

    def test_fig15(self):
        from repro.experiments import fig15_ablation

        result = fig15_ablation.run(datasets=SMALL, config=QUICK)
        assert result.rows[-1][1] > result.rows[0][1]

    def test_tab09(self):
        from repro.experiments import tab09_memory

        result = tab09_memory.run(datasets=SMALL,
                                  config=RunConfig(batch_size=128,
                                                   num_gpus=1))
        assert result.rows[0][1] > 0


class TestExtensionDrivers:
    def test_grace_hopper(self):
        from repro.experiments import ext_future

        result = ext_future.run_grace_hopper("products", config=QUICK)
        assert len(result.rows) == 4

    def test_multimachine(self):
        from repro.experiments import ext_future

        result = ext_future.run_multimachine("products", machines=(1, 2),
                                             config=QUICK)
        assert result.rows[0][3] > 1.0

    def test_sampler_generality(self):
        from repro.experiments import ext_future

        result = ext_future.run_sampler_generality(
            "products", config=RunConfig(batch_size=64, num_gpus=1)
        )
        assert len(result.rows) == 3


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out and "tab08" in out

    def test_unknown_experiment_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_run_one_writes_output(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["tab03", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "tab03.txt").exists()
        assert "RTX 3090" in capsys.readouterr().out
