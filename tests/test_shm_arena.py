"""Property and integration tests for the shared-memory arena substrate.

The arena is a *transport*: whatever moves through it must come back
bit-identical to what a pipe (or the serial path) would have produced.
These suites pin that contract — descriptor round-trips over random
dtypes/shapes, structure-walking swizzle/unswizzle, slab reset/overflow
spill, the executor's arena-vs-pipes determinism (including under
injected worker crashes mid-write), the env-var toggle, and the page
store's shared buffer pool.
"""

import collections
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, FaultSpec, fault_scope, set_fault_plan
from repro.graph.features import HashFeatureStore
from repro.parallel import (
    ARENA_ENV_VAR,
    ArenaRef,
    BumpAllocator,
    ParallelExecutor,
    SharedArena,
    arena_enabled_default,
    fork_available,
    swizzle,
    unswizzle,
)
from repro.parallel.shm import _ALIGN
from repro.storage import PageStore

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="requires fork start method")

_DTYPES = ["<f4", "<f8", "<i4", "<i8", "<u2", "|u1", "?"]


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    set_fault_plan(None)
    yield
    set_fault_plan(None)


def _random_array(data: st.DataObject, max_elems: int = 4096) -> np.ndarray:
    dtype = np.dtype(data.draw(st.sampled_from(_DTYPES), label="dtype"))
    ndim = data.draw(st.integers(0, 3), label="ndim")
    shape = tuple(
        data.draw(st.integers(0, 16), label=f"dim{i}") for i in range(ndim)
    )
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if count > max_elems:
        shape = (min(max_elems, 8),) * min(ndim, 1)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    seed = data.draw(st.integers(0, 2**31 - 1), label="seed")
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, 256, size=count, dtype=np.int64)
    if dtype.kind == "f":
        return (raw.astype(dtype) / 8).reshape(shape)
    if dtype.kind == "b":
        return (raw % 2 == 0).reshape(shape)
    return raw.astype(dtype).reshape(shape)


class TestArenaRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_random_arrays_round_trip(self, data):
        """put -> view returns bit-identical contents for any dtype,
        shape (including 0-d and zero-length), and byte pattern."""
        arrays = [
            _random_array(data)
            for _ in range(data.draw(st.integers(1, 5), label="count"))
        ]
        total = sum(a.nbytes for a in arrays) + _ALIGN * (len(arrays) + 1)
        with SharedArena(max(total, 1)) as arena:
            allocator = arena.allocator()
            refs = [allocator.put(a) for a in arrays]
            assert all(ref is not None for ref in refs)
            for array, ref in zip(arrays, refs):
                assert ref.nbytes == array.nbytes
                got = arena.view(ref, copy=True)
                assert got.dtype == array.dtype
                assert got.shape == array.shape
                np.testing.assert_array_equal(got, array)

    def test_attach_by_name_sees_same_bytes(self):
        payload = np.arange(100, dtype=np.float64)
        with SharedArena(payload.nbytes) as arena:
            ref = arena.put(payload, 0)
            other = SharedArena.attach(arena.name)
            try:
                np.testing.assert_array_equal(other.view(ref), payload)
            finally:
                other.close()

    def test_view_aliasing_vs_copy(self):
        """copy=False views share the arena bytes (writes are visible
        through other views); copy=True detaches."""
        payload = np.zeros(32, dtype=np.int64)
        with SharedArena(payload.nbytes) as arena:
            ref = arena.put(payload, 0)
            alias = arena.view(ref, copy=False)
            detached = arena.view(ref, copy=True)
            alias[0] = 99
            assert arena.view(ref, copy=False)[0] == 99
            assert detached[0] == 0

    def test_put_rejects_object_dtype_and_out_of_bounds(self):
        with SharedArena(64) as arena:
            with pytest.raises(TypeError):
                arena.put(np.array([object()]), 0)
            with pytest.raises(ValueError):
                arena.put(np.zeros(64, dtype=np.int8), 1)
            with pytest.raises(ValueError):
                arena.view(ArenaRef(0, (65,), "|i1"))

    def test_close_is_idempotent_and_attachments_survive_nonowner_close(self):
        arena = SharedArena(128)
        ref = arena.put(np.arange(4, dtype=np.int32), 0)
        attached = SharedArena.attach(arena.name)
        attached.close()
        attached.close()  # idempotent, and must not unlink the segment
        np.testing.assert_array_equal(
            arena.view(ref), np.arange(4, dtype=np.int32))
        arena.close()


class TestBumpAllocator:
    def test_alignment_reset_and_overflow_spill(self):
        with SharedArena(4 * _ALIGN) as arena:
            slab = arena.allocator()
            first = slab.put(np.zeros(3, dtype=np.int8))
            second = slab.put(np.zeros(3, dtype=np.int8))
            assert first.offset % _ALIGN == 0
            assert second.offset % _ALIGN == 0
            assert second.offset > first.offset
            # Slab full -> None, never an exception.
            assert slab.put(np.zeros(8 * _ALIGN, dtype=np.int8)) is None
            used_before = slab.used
            assert used_before > 0
            slab.reset()
            assert slab.used == 0
            # After reset the same offsets are handed out again.
            assert slab.put(np.zeros(3, dtype=np.int8)).offset == first.offset

    def test_disjoint_slabs_do_not_overlap(self):
        with SharedArena(4 * _ALIGN) as arena:
            left = arena.allocator(0, 2 * _ALIGN)
            right = arena.allocator(2 * _ALIGN, 2 * _ALIGN)
            a = left.put(np.full(_ALIGN, 1, dtype=np.uint8))
            b = right.put(np.full(_ALIGN, 2, dtype=np.uint8))
            assert a.offset + a.nbytes <= b.offset
            np.testing.assert_array_equal(arena.view(a), 1)
            np.testing.assert_array_equal(arena.view(b), 2)

    def test_slab_bounds_validated(self):
        with SharedArena(64) as arena:
            with pytest.raises(ValueError):
                BumpAllocator(arena, 0, 128)
            with pytest.raises(ValueError):
                BumpAllocator(arena, -1, 8)


_Point = collections.namedtuple("_Point", ["ids", "label"])


class TestSwizzle:
    def test_structure_walk_round_trips(self):
        big = np.arange(2048, dtype=np.float32)
        small = np.arange(4, dtype=np.int64)
        objects = np.array([{"k": 1}], dtype=object)
        payload = {
            "nested": [(big, small), {"deep": big * 2}],
            "point": _Point(ids=big.astype(np.int64), label="p"),
            "objects": objects,
            "scalar": 7,
        }
        with SharedArena(1 << 20) as arena:
            slab = arena.allocator()
            swizzled, moved, spilled = swizzle(payload, slab)
            assert spilled == 0
            assert moved == big.nbytes * 2 + big.astype(np.int64).nbytes
            # Large arrays became descriptors; small/object stayed inline.
            assert isinstance(swizzled["nested"][0][0], ArenaRef)
            assert isinstance(swizzled["nested"][0][1], np.ndarray)
            assert isinstance(swizzled["point"].ids, ArenaRef)
            assert swizzled["objects"] is objects
            assert swizzled["scalar"] == 7
            back = unswizzle(swizzled, arena)
            assert isinstance(back["point"], _Point)
            np.testing.assert_array_equal(back["nested"][0][0], big)
            np.testing.assert_array_equal(back["nested"][0][1], small)
            np.testing.assert_array_equal(back["nested"][1]["deep"], big * 2)
            np.testing.assert_array_equal(back["point"].ids,
                                          big.astype(np.int64))

    def test_full_slab_spills_inline(self):
        big = np.arange(2048, dtype=np.float64)
        with SharedArena(256) as arena:
            slab = arena.allocator()
            swizzled, moved, spilled = swizzle([big, big], slab)
            assert moved == 0
            assert spilled == 2 * big.nbytes
            np.testing.assert_array_equal(swizzled[0], big)

    def test_unswizzle_copy_detaches_from_slab_reuse(self):
        """The executor's copy=True unswizzle must survive the slab
        being reset and overwritten afterwards (chunk N+1 reuse)."""
        big = np.arange(2048, dtype=np.int32)
        with SharedArena(1 << 16) as arena:
            slab = arena.allocator()
            swizzled, _, _ = swizzle({"x": big}, slab)
            result = unswizzle(swizzled, arena, copy=True)
            slab.reset()
            slab.put(np.zeros_like(big))
            np.testing.assert_array_equal(result["x"], big)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_swizzle_round_trip_random_structures(self, data):
        arrays = [_random_array(data) for _ in range(3)]
        payload = {"a": arrays[0], "b": [arrays[1], (arrays[2], "tag")]}
        with SharedArena(1 << 20) as arena:
            slab = arena.allocator()
            swizzled, _, spilled = swizzle(payload, slab, min_bytes=1)
            assert spilled == 0
            back = unswizzle(swizzled, arena)
            np.testing.assert_array_equal(back["a"], arrays[0])
            np.testing.assert_array_equal(back["b"][0], arrays[1])
            np.testing.assert_array_equal(back["b"][1][0], arrays[2])
            assert back["b"][1][1] == "tag"


def _feature_task(index, rng):
    """A chunk body with a payload big enough to ride the arena."""
    return {
        "features": rng.standard_normal((64, 32)).astype(np.float32),
        "ids": rng.integers(0, 1 << 40, 64),
        "loss": float(rng.random()),
    }


def _oversize_task(index, rng):
    """~128 KiB of features — larger than the executor's 64 KiB slab
    floor, so it cannot fit the arena and must spill to the pipe."""
    return {"features": rng.standard_normal((256, 128)).astype(np.float32)}


def _assert_results_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.keys() == b.keys()
        np.testing.assert_array_equal(a["features"], b["features"])
        np.testing.assert_array_equal(a["ids"], b["ids"])
        assert a["loss"] == b["loss"]


class TestExecutorTransports:
    @needs_fork
    def test_arena_pipes_and_serial_agree(self):
        serial = ParallelExecutor(jobs=1).map(_feature_task, range(6), seed=5)
        pipes_exec = ParallelExecutor(jobs=2, use_arena=False)
        pipes = pipes_exec.map(_feature_task, range(6), seed=5)
        arena_exec = ParallelExecutor(jobs=2, use_arena=True)
        arena = arena_exec.map(_feature_task, range(6), seed=5)
        _assert_results_equal(serial, pipes)
        _assert_results_equal(serial, arena)
        assert pipes_exec.last_transport.mode == "pipes"
        assert arena_exec.last_transport.mode == "arena"
        # The point of the substrate: payload bytes left the pipes.
        assert arena_exec.last_transport.ipc_bytes * 10 \
            < pipes_exec.last_transport.ipc_bytes
        assert arena_exec.last_transport.shm_bytes > 0

    @needs_fork
    def test_tiny_slab_spills_but_stays_correct(self):
        """A payload bigger than the (floored, 64 KiB) slab must spill
        to the pipe inline — degraded transport, identical results."""
        serial = ParallelExecutor(jobs=1).map(_oversize_task, range(4),
                                              seed=9)
        spilling = ParallelExecutor(jobs=2, use_arena=True,
                                    arena_bytes=2 * (1 << 16))
        got = spilling.map(_oversize_task, range(4), seed=9)
        assert len(got) == len(serial)
        for a, b in zip(got, serial):
            np.testing.assert_array_equal(a["features"], b["features"])
        assert spilling.last_transport.spilled_bytes > 0

    @needs_fork
    def test_worker_crash_mid_write_arena_results_match_serial(self):
        """A worker killed after its slab writes began must leave the
        parent's view consistent: the chunk is reassigned and the final
        results are bit-identical to a crash-free serial run."""
        plan = FaultPlan(seed=0, sites={
            "worker_crash": FaultSpec(probability=1.0, max_failures=1),
        })
        serial = ParallelExecutor(jobs=1).map(_feature_task, range(6), seed=3)
        with fault_scope(plan) as active:
            crashed = ParallelExecutor(jobs=2, use_arena=True).map(
                _feature_task, range(6), seed=3)
            assert active.fired("worker_crash") == 6
        _assert_results_equal(serial, crashed)

    def test_env_var_toggle(self, monkeypatch):
        monkeypatch.delenv(ARENA_ENV_VAR, raising=False)
        assert arena_enabled_default() is True
        assert ParallelExecutor(jobs=2).use_arena is True
        for off in ("0", "off", "FALSE", "no"):
            monkeypatch.setenv(ARENA_ENV_VAR, off)
            assert arena_enabled_default() is False
            assert ParallelExecutor(jobs=2).use_arena is False
        monkeypatch.setenv(ARENA_ENV_VAR, "1")
        assert arena_enabled_default() is True
        # Explicit argument always beats the environment.
        monkeypatch.setenv(ARENA_ENV_VAR, "off")
        assert ParallelExecutor(jobs=2, use_arena=True).use_arena is True


class TestPageStorePool:
    def test_pooled_reads_are_arena_views_and_bit_identical(self):
        backing = HashFeatureStore(96, 8, seed=4)
        plain = PageStore(backing, page_bytes=256)
        with SharedArena(1 << 20) as arena:
            pooled = PageStore(backing, page_bytes=256,
                               pool=arena.allocator())
            for page_id in range(pooled.num_pages):
                expected = plain.read_page(page_id)
                got = pooled.read_page(page_id)
                np.testing.assert_array_equal(got, expected)
                # Zero-copy: the rows live in the arena, not a private
                # buffer.
                assert got.base is not None
            assert pooled.pool_bytes > 0
            assert pooled.pool_spill_bytes == 0

    def test_pool_overflow_spills_to_private_arrays(self):
        backing = HashFeatureStore(96, 8, seed=4)
        with SharedArena(max(_ALIGN, 64)) as arena:
            pooled = PageStore(backing, page_bytes=4096,
                               pool=arena.allocator())
            rows = pooled.read_page(0)
            assert rows is not None
            assert pooled.pool_spill_bytes > 0
            np.testing.assert_array_equal(
                rows, PageStore(backing, page_bytes=4096).read_page(0))

    def test_two_stores_share_one_pool(self):
        backing = HashFeatureStore(64, 8, seed=2)
        with SharedArena(1 << 20) as arena:
            pool = arena.allocator()
            first = PageStore(backing, page_bytes=256, pool=pool)
            second = PageStore(backing, page_bytes=256, pool=pool)
            a = first.read_page(0)
            b = second.read_page(1)
            assert a.base is not None and b.base is not None
            assert pool.used >= a.nbytes + b.nbytes
