"""Fleet conformance: a one-replica fleet IS the single server.

For every registered framework's serving profile, a fleet of one
replica behind round-robin routing with the autoscaler and cache tier
off must reproduce the plain :class:`ServerSim` run **bit-identically**:
same per-request outcomes and latencies, same report aggregates, same
modeled timeline span-for-span, and both timelines reconciling with
their makespans to ``1e-6``. This pins the ``ReplicaEngine`` extraction:
the fleet abstraction may add capability, never drift.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np
import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from helpers import make_spec  # noqa: E402
from repro.config import RunConfig  # noqa: E402
from repro.frameworks.registry import available_frameworks  # noqa: E402
from repro.graph.datasets import Dataset  # noqa: E402
from repro.serve import (  # noqa: E402
    FleetSpec,
    ServeConfig,
    simulate,
    simulate_fleet,
)

RECONCILE_TOL = 1e-6

FRAMEWORKS = list(available_frameworks())


@pytest.fixture(scope="module")
def serve_dataset() -> Dataset:
    spec = make_spec(
        name="fleet-conformance",
        num_nodes=800,
        avg_degree=8.0,
        feature_dim=16,
        num_classes=4,
        train_fraction=0.3,
    )
    return Dataset(spec, seed=7)


def _serve_config() -> ServeConfig:
    # High enough rate that batching, backlog reorder, shed and
    # deadline-drop paths all exercise.
    return ServeConfig(rate=20_000.0, num_requests=120,
                       seeds_per_request=6, max_batch=8,
                       batch_window_s=0.002, queue_capacity=32,
                       slo_s=0.05, seed=13)


def _run_config() -> RunConfig:
    return RunConfig(num_gpus=1, fanouts=(3, 3), seed=13)


@pytest.mark.parametrize("framework", FRAMEWORKS)
def test_one_replica_fleet_is_bit_identical(framework, serve_dataset):
    single = simulate(framework, serve_dataset,
                      run_config=_run_config(),
                      serve_config=_serve_config())
    fleet = simulate_fleet(framework, serve_dataset,
                           run_config=_run_config(),
                           serve_config=_serve_config(),
                           fleet=FleetSpec(num_replicas=1,
                                           router="round-robin"))
    assert len(fleet.replicas) == 1
    replica = fleet.replicas[0]

    # Same clock: the fleet makespan and the replica's lifetime are the
    # single server's makespan exactly.
    assert fleet.makespan == single.makespan
    assert replica.makespan == single.makespan

    # Per-request journeys: identical outcomes and latencies.
    single_by_id = {r.req_id: r for r in single.requests}
    fleet_by_id = {r.req_id: r for r in fleet.requests}
    assert single_by_id.keys() == fleet_by_id.keys()
    for req_id, ours in single_by_id.items():
        theirs = fleet_by_id[req_id]
        assert ours.outcome == theirs.outcome, req_id
        assert ours.arrival == theirs.arrival, req_id
        assert ours.completion == theirs.completion, req_id

    # Report aggregates field-for-field.
    assert replica.num_completed == single.num_completed
    assert replica.num_shed == single.num_shed
    assert replica.num_dropped == single.num_dropped
    assert replica.phase_busy == single.phase_busy
    assert replica.mean_batch_size == single.mean_batch_size
    np.testing.assert_array_equal(
        np.sort(replica.latencies), np.sort(single.latencies))
    if single.transfer is not None:
        assert replica.transfer.num_wanted == single.transfer.num_wanted
        assert replica.transfer.num_reused == single.transfer.num_reused

    # The modeled timeline, span for span.
    assert replica.timeline == single.timeline

    # Both reconcile to tolerance.
    assert single.reconciles(RECONCILE_TOL)
    assert replica.reconciles(RECONCILE_TOL)
    assert fleet.reconciles(RECONCILE_TOL)

    # Fleet bookkeeping is quiet: nothing rerouted, no outage, no
    # scaling, no crashes.
    assert fleet.rerouted == 0
    assert fleet.outage_shed == 0
    assert fleet.scale_events == []
    assert fleet.crash_events == []
