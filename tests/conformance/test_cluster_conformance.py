"""Cluster conformance: one simulated node must be a perfect no-op.

Every registered framework runs the same seeded epoch twice — once with
no cluster, once with ``ClusterSpec(num_nodes=1)``. The contract is
bit-identity: per-batch losses, final model parameters, the modeled
epoch time, and the timeline extent must all be exactly equal, because
a one-node cluster has no partitions, no halo, and no inter-node sync.

At two nodes the run changes (owner-compute batch placement, halo
exchange, hierarchical allreduce) but the accounting contract holds:
the network phase is populated, the detailed fractions still sum to 1,
and the timeline still reconciles with the modeled epoch time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.config import RunConfig
from repro.frameworks import create
from repro.frameworks.registry import available_frameworks
from repro.pipeline import ExecutionSpec

RECONCILE_TOL = 1e-6


def _run_config() -> RunConfig:
    return RunConfig(
        batch_size=64,
        fanouts=(3, 3),
        num_gpus=2,
        hidden_dim=8,
        seed=5,
        train_model=True,
    )


@pytest.mark.parametrize("name", available_frameworks())
class TestOneNodeIsIdentity:
    def test_bit_identical_to_no_cluster(self, name, conformance_dataset):
        config = _run_config()
        plain = create(name).run_epoch(conformance_dataset, config,
                                       model_name="gcn")
        one_node = create(name).run_epoch(
            conformance_dataset, config, model_name="gcn",
            execution=ExecutionSpec(cluster=ClusterSpec(num_nodes=1)),
        )
        assert one_node.epoch_time == plain.epoch_time
        assert one_node.losses == plain.losses
        assert one_node.extras["iterations"] == plain.extras["iterations"]
        for ours, theirs in zip(one_node.extras["final_params"],
                                plain.extras["final_params"]):
            np.testing.assert_array_equal(ours, theirs)
        assert one_node.phases.network == 0.0
        ours = one_node.timeline()
        theirs = plain.timeline()
        assert len(ours) == len(theirs)
        assert max(s.end for s in ours) == max(s.end for s in theirs)

    def test_one_node_summary_has_no_partition(self, name,
                                               conformance_dataset):
        report = create(name).run_epoch(
            conformance_dataset, _run_config(), model_name="gcn",
            execution=ExecutionSpec(cluster=ClusterSpec(num_nodes=1)),
        )
        cluster = report.extras["cluster"]
        assert cluster["num_nodes"] == 1
        assert "partition" not in cluster
        assert "halo" not in cluster


_TWO_NODE_REPORTS: dict = {}


@pytest.mark.parametrize("name", available_frameworks())
class TestTwoNodeAccounting:
    @pytest.fixture()
    def report(self, name, conformance_dataset):
        if name not in _TWO_NODE_REPORTS:
            _TWO_NODE_REPORTS[name] = create(name).run_epoch(
                conformance_dataset, _run_config(), model_name="gcn",
                execution=ExecutionSpec(cluster=ClusterSpec(num_nodes=2)),
            )
        return _TWO_NODE_REPORTS[name]

    def test_network_lane_populated(self, report):
        assert report.phases.network > 0.0
        detail = report.phases.fractions(detail=True)
        assert detail["network"] > 0.0
        assert sum(detail.values()) == pytest.approx(1.0)

    def test_timeline_reconciles(self, report):
        extent = max(span.end for span in report.timeline())
        assert abs(extent - report.epoch_time) <= RECONCILE_TOL

    def test_halo_accounting_conserved(self, report):
        halo = report.extras["cluster"]["halo"]
        assert halo["fetched_rows"] == (halo["requested_rows"]
                                        - halo["cache_hits"])
        assert halo["bytes_moved"] > 0
