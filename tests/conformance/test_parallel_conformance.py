"""Transport conformance: ``jobs`` and the arena are throughput knobs.

Every registered framework runs the same seeded epoch three ways —
serial (``jobs=1``), forked over pipes (``jobs=2``, arena disabled via
:data:`repro.parallel.ARENA_ENV_VAR`), and forked over the shared-memory
arena (``jobs=2``, arena on) — and all three must agree bit for bit on
everything the model and the cost model can observe: per-batch losses,
modeled epoch time and phase breakdown, the iteration log, and the
final parameters.

The *only* admissible differences are the transport byte counters
(:data:`repro.parallel.TRANSPORT_METRICS`) and the ``parallel_transport``
extras entry — physical bookkeeping of how results moved between
processes, explicitly excluded from the determinism contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RunConfig
from repro.frameworks import create
from repro.frameworks.registry import available_frameworks
from repro.parallel import ARENA_ENV_VAR, fork_available
from repro.pipeline import ExecutionSpec

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="requires fork start method")


def _run_config() -> RunConfig:
    return RunConfig(
        batch_size=64,
        fanouts=(3, 3),
        num_gpus=2,
        hidden_dim=8,
        seed=5,
        train_model=True,
    )


def _run(name, dataset, jobs: int, arena: bool, monkeypatch):
    if arena:
        monkeypatch.delenv(ARENA_ENV_VAR, raising=False)
    else:
        monkeypatch.setenv(ARENA_ENV_VAR, "off")
    return create(name).run_epoch(dataset, _run_config(),
                                  execution=ExecutionSpec(jobs=jobs))


def _assert_reports_identical(baseline, candidate):
    assert candidate.losses == baseline.losses
    assert candidate.epoch_time == baseline.epoch_time
    assert candidate.phases == baseline.phases
    assert candidate.num_batches == baseline.num_batches
    assert candidate.memory_peak_bytes == baseline.memory_peak_bytes
    assert (candidate.transfer.feature_bytes
            == baseline.transfer.feature_bytes)
    assert (candidate.extras["iterations"]
            == baseline.extras["iterations"])
    base_params = baseline.extras["final_params"]
    cand_params = candidate.extras["final_params"]
    assert len(base_params) == len(cand_params) > 0
    for expected, actual in zip(base_params, cand_params):
        np.testing.assert_array_equal(expected, actual)


@needs_fork
@pytest.mark.parametrize("name", available_frameworks())
class TestTransportConformance:
    def test_jobs_and_arena_are_bit_identical(self, name,
                                              conformance_dataset,
                                              monkeypatch):
        serial = _run(name, conformance_dataset, jobs=1, arena=True,
                      monkeypatch=monkeypatch)
        pipes = _run(name, conformance_dataset, jobs=2, arena=False,
                     monkeypatch=monkeypatch)
        arena = _run(name, conformance_dataset, jobs=2, arena=True,
                     monkeypatch=monkeypatch)
        _assert_reports_identical(serial, pipes)
        _assert_reports_identical(serial, arena)

        # The excluded bookkeeping exists and tells the transports
        # apart: when a framework actually forked its lanes, the mode
        # and byte counters reflect the transport used. (A framework
        # with a single lane legitimately stays serial at any ``jobs``.)
        for report, mode in ((pipes, "pipes"), (arena, "arena")):
            transport = report.extras.get("parallel_transport")
            if transport is None or transport["mode"] == "serial":
                continue
            assert transport["mode"] == mode
            assert transport["ipc_bytes"] > 0
