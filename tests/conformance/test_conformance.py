"""Differential conformance: faults must be invisible to model state.

Every framework in the registry runs the same seeded epoch twice:

* **baseline** — fault injection disabled;
* **chaos-recovered** — storage-read and PCIe-stall failures plus NVMe
  latency outliers injected, but every failure count stays inside the
  retry budget (``max_failures=2 < RetryPolicy.max_attempts=4``), so the
  resilience layer absorbs all of it.

The contract: recovered faults may only cost *modeled time*. Model
state — per-batch losses and the final parameters — must be
bit-identical, and both runs' timelines must still reconcile with their
modeled epoch time (retry spans are nested inside the memory-IO
intervals, never extending them).

``REPRO_CHAOS_SEED`` selects the fault seed (CI pins it; the default
matches the chaos-smoke job).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.config import RunConfig
from repro.faults import FaultPlan, FaultSpec, fault_scope
from repro.faults.retry import DEFAULT_RETRY_POLICY
from repro.frameworks import create
from repro.frameworks.registry import available_frameworks

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "99"))

#: Failure sites fire often but always recover: the consecutive-failure
#: cap stays strictly below the retry budget.
RECOVERED_MAX_FAILURES = 2
assert RECOVERED_MAX_FAILURES < DEFAULT_RETRY_POLICY.max_attempts


def _run_config() -> RunConfig:
    return RunConfig(
        batch_size=64,
        fanouts=(3, 3),
        num_gpus=2,
        hidden_dim=8,
        seed=5,
        train_model=True,
    )


def _recovered_plan() -> FaultPlan:
    """Faults on, but every one recoverable by the retry layer."""
    return FaultPlan(seed=CHAOS_SEED, sites={
        "storage_read": FaultSpec(probability=0.5,
                                  max_failures=RECOVERED_MAX_FAILURES),
        "pcie_stall": FaultSpec(probability=0.3,
                                max_failures=RECOVERED_MAX_FAILURES),
        "storage_slow": FaultSpec(probability=0.5, delay_s=1e-4),
    })


def _timeline_extent(report) -> float:
    spans = report.timeline()
    assert spans, "epoch produced no timeline"
    return max(span.end for span in spans)


@pytest.mark.parametrize("name", available_frameworks())
class TestConformance:
    def test_faults_recovered_is_bit_identical(self, name,
                                               conformance_dataset):
        config = _run_config()
        baseline = create(name).run_epoch(conformance_dataset, config)
        plan = _recovered_plan()
        with fault_scope(plan):
            faulted = create(name).run_epoch(conformance_dataset, config)

        # Model state: losses and final parameters, bit for bit.
        assert faulted.losses == baseline.losses
        assert len(baseline.losses) == baseline.num_batches
        base_params = baseline.extras["final_params"]
        fault_params = faulted.extras["final_params"]
        assert len(base_params) == len(fault_params) > 0
        for expected, actual in zip(base_params, fault_params):
            np.testing.assert_array_equal(expected, actual)

        # Functional accounting that faults must not disturb.
        assert faulted.num_batches == baseline.num_batches
        assert (faulted.transfer.feature_bytes
                == baseline.transfer.feature_bytes)

        # Recovered faults cost modeled time, never less than baseline.
        assert faulted.epoch_time >= baseline.epoch_time
        assert faulted.transfer.num_retries >= 0

        # Timelines reconcile in both runs.
        assert abs(_timeline_extent(baseline)
                   - baseline.epoch_time) < 1e-9
        assert abs(_timeline_extent(faulted)
                   - faulted.epoch_time) < 1e-9

        # Retry work is visible: when a failure site fired and backoff
        # was paid, the timeline carries nested retry spans and the
        # transfer report counts the retries.
        failures = [e for e in plan.trace() if e.kind == "fail"]
        if failures:
            assert faulted.transfer.num_retries > 0
            retry_spans = [s for s in faulted.timeline()
                           if s.category == "retry"]
            assert retry_spans
            for span in retry_spans:
                assert span.depth == 1
                assert span.args.get("retries", 0) > 0
        else:
            assert faulted.transfer.num_retries == 0

    def test_chaos_trace_is_deterministic(self, name, conformance_dataset):
        """Same plan seed, same call sequence -> same fault trace."""
        config = _run_config()
        traces = []
        for _ in range(2):
            plan = _recovered_plan()
            with fault_scope(plan):
                create(name).run_epoch(conformance_dataset, config)
            traces.append(plan.trace())
        assert traces[0] == traces[1]
