"""Differential conformance for the pipelined epoch engine.

Two contracts, both over every framework in the registry:

* ``pipeline="off"`` is the seed driver, bit for bit: passing an
  explicit default :class:`ExecutionSpec` must equal not passing one —
  epoch time, losses, final parameters, iteration log, and timeline.
* ``pipeline="pipelined"`` only reschedules modeled time: model state
  stays bit-identical to sequential, the timeline still reconciles with
  the epoch time, and the makespan lands between the bottleneck-stage
  lower bound and the serial sum of the stage totals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RunConfig
from repro.frameworks import create
from repro.frameworks.registry import available_frameworks
from repro.pipeline import ExecutionSpec, PipelineSpec

RECONCILE_TOL = 1e-6


def _run_config() -> RunConfig:
    # Small batches so every framework runs several rounds per epoch —
    # otherwise there is nothing for the pipeline to overlap.
    return RunConfig(
        batch_size=32,
        fanouts=(3, 3),
        num_gpus=2,
        hidden_dim=8,
        seed=5,
        train_model=True,
    )


def _assert_same_model_state(ours, theirs):
    assert ours.losses == theirs.losses
    assert len(ours.extras["final_params"]) == \
        len(theirs.extras["final_params"])
    for a, b in zip(ours.extras["final_params"],
                    theirs.extras["final_params"]):
        np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("name", available_frameworks())
class TestPipelineOffIsSeedDriver:
    def test_off_mode_is_bit_identical(self, name, conformance_dataset):
        config = _run_config()
        seed = create(name).run_epoch(conformance_dataset, config)
        off = create(name).run_epoch(
            conformance_dataset, config,
            execution=ExecutionSpec(pipeline="off"),
        )
        assert off.epoch_time == seed.epoch_time
        assert off.phases == seed.phases
        assert off.extras["iterations"] == seed.extras["iterations"]
        _assert_same_model_state(off, seed)
        ours = off.timeline()
        theirs = seed.timeline()
        assert len(ours) == len(theirs)
        assert max(s.end for s in ours) == max(s.end for s in theirs)
        assert "pipeline" not in off.extras


@pytest.mark.parametrize("name", available_frameworks())
class TestPipelinedConformance:
    @pytest.fixture()
    def reports(self, name, conformance_dataset):
        config = _run_config()
        sequential = create(name).run_epoch(conformance_dataset, config)
        pipelined = create(name).run_epoch(
            conformance_dataset, config,
            execution=ExecutionSpec(pipeline="pipelined"),
        )
        return sequential, pipelined

    def test_model_state_identical(self, reports):
        sequential, pipelined = reports
        _assert_same_model_state(pipelined, sequential)
        assert pipelined.num_batches == sequential.num_batches

    def test_timeline_reconciles(self, reports):
        _, pipelined = reports
        extent = max(span.end for span in pipelined.timeline())
        assert abs(extent - pipelined.epoch_time) <= RECONCILE_TOL

    def test_stage_accounting_bounds_epoch(self, reports):
        _, pipelined = reports
        info = pipelined.extras["pipeline"]
        assert info["mode"] == "pipelined"
        bottleneck = max(info["stage_totals"].values())
        assert pipelined.epoch_time >= bottleneck - 1e-9
        assert pipelined.epoch_time <= info["serial_seconds"] + 1e-9
        assert pipelined.epoch_time == \
            pytest.approx(info["epoch_seconds"], abs=1e-12)

    def test_stall_lane_inside_epoch(self, reports):
        _, pipelined = reports
        stalls = [s for s in pipelined.timeline() if s.lane == "stalls"]
        for span in stalls:
            assert span.end <= pipelined.epoch_time + RECONCILE_TOL


@pytest.mark.parametrize("name", available_frameworks())
def test_staleness_never_slower(name, conformance_dataset):
    """Syncing every k+1 rounds can only remove allreduce time from the
    train stage — and model state is still untouched."""
    config = _run_config()
    every = create(name).run_epoch(
        conformance_dataset, config,
        execution=ExecutionSpec(pipeline="pipelined"),
    )
    sparse = create(name).run_epoch(
        conformance_dataset, config,
        execution=ExecutionSpec(
            pipeline=PipelineSpec(mode="pipelined", staleness=3)),
    )
    assert sparse.epoch_time <= every.epoch_time + 1e-12
    assert sparse.extras["pipeline"]["num_syncs"] <= \
        every.extras["pipeline"]["num_syncs"]
    _assert_same_model_state(sparse, every)
