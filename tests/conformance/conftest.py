"""Fixtures for the differential conformance harness.

The harness runs every registered framework through the same seeded
epoch twice — faults off, then faults on with every failure inside the
retry budget — so the dataset here is deliberately small (a handful of
mini-batches) while still exercising real training.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

# tests/ is rootdir-style (no packages); make the shared helpers
# importable from this subdirectory too.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from helpers import make_spec  # noqa: E402
from repro.graph.datasets import Dataset  # noqa: E402


@pytest.fixture(scope="session")
def conformance_dataset() -> Dataset:
    """A small, fully deterministic dataset shared by all frameworks."""
    spec = make_spec(
        name="conformance",
        num_nodes=600,
        avg_degree=6.0,
        feature_dim=8,
        num_classes=4,
        train_fraction=0.3,
    )
    return Dataset(spec, seed=11)
