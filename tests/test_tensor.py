"""Tests for the autograd engine (numerical gradient checks)."""

import numpy as np
import pytest

from helpers import assert_grad_close, numerical_gradient
from repro.nn.tensor import Tensor, no_grad


def check_unary(op, x0, **kwargs):
    """Gradient-check a scalar-reduced unary op at x0."""
    x = Tensor(x0, requires_grad=True)
    out = op(x, **kwargs).sum()
    out.backward()

    def f(arr):
        return float(op(Tensor(arr), **kwargs).sum().data)

    assert_grad_close(x.grad, numerical_gradient(f, x0))


class TestArithmetic:
    def test_add_backward(self, rng):
        a0 = rng.random((3, 4), dtype=np.float32)
        b0 = rng.random((3, 4), dtype=np.float32)
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.ones((3, 4)))

    def test_mul_backward(self, rng):
        a0 = rng.random((3, 4), dtype=np.float32)
        b0 = rng.random((3, 4), dtype=np.float32)
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b0, rtol=1e-6)
        np.testing.assert_allclose(b.grad, a0, rtol=1e-6)

    def test_broadcast_add(self, rng):
        a = Tensor(rng.random((3, 4), dtype=np.float32), requires_grad=True)
        bias = Tensor(rng.random(4, dtype=np.float32), requires_grad=True)
        (a + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 3.0))

    def test_scalar_coercion(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        out = (2.0 * a + 1.0 - a / 2.0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 1.5))

    def test_sub_and_neg(self, rng):
        a0 = rng.random((2, 3), dtype=np.float32)
        check_unary(lambda x: -x + 3.0, a0)
        check_unary(lambda x: 5.0 - x, a0)

    def test_pow(self, rng):
        a0 = rng.random((2, 3), dtype=np.float32) + 0.5
        check_unary(lambda x: x**3.0, a0)

    def test_div_by_tensor(self, rng):
        a0 = rng.random((2, 2), dtype=np.float32) + 1.0
        b0 = rng.random((2, 2), dtype=np.float32) + 1.0
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1 / b0, rtol=1e-5)

    def test_matmul(self, rng):
        a0 = rng.random((3, 4), dtype=np.float32)
        b0 = rng.random((4, 2), dtype=np.float32)
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        (a @ b).sum().backward()

        def fa(arr):
            return float((Tensor(arr) @ Tensor(b0)).sum().data)

        def fb(arr):
            return float((Tensor(a0) @ Tensor(arr)).sum().data)

        assert_grad_close(a.grad, numerical_gradient(fa, a0))
        assert_grad_close(b.grad, numerical_gradient(fb, b0))


class TestShapesAndReductions:
    def test_reshape(self, rng):
        x0 = rng.random((2, 6), dtype=np.float32)
        check_unary(lambda x: x.reshape(3, 4) * 2.0, x0)

    def test_transpose(self, rng):
        x0 = rng.random((2, 3), dtype=np.float32)
        x = Tensor(x0, requires_grad=True)
        (x.transpose() * Tensor(np.ones((3, 2)))).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_slice_rows(self, rng):
        x0 = rng.random((5, 3), dtype=np.float32)
        x = Tensor(x0, requires_grad=True)
        x.slice_rows(2).sum().backward()
        expected = np.zeros((5, 3))
        expected[:2] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_slice_rows_out_of_range(self):
        with pytest.raises(IndexError):
            Tensor(np.zeros((2, 2))).slice_rows(3)

    def test_concat_cols(self, rng):
        a = Tensor(rng.random((2, 3), dtype=np.float32), requires_grad=True)
        b = Tensor(rng.random((2, 2), dtype=np.float32), requires_grad=True)
        out = a.concat_cols(b)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 2), 2.0))

    def test_sum_axis(self, rng):
        x0 = rng.random((3, 4), dtype=np.float32)
        check_unary(lambda x: x.sum(axis=1) * 2.0, x0)
        check_unary(lambda x: x.sum(axis=0, keepdims=True), x0)

    def test_mean(self, rng):
        x = Tensor(rng.random((4, 2), dtype=np.float32), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((4, 2), 1 / 8))

    def test_exp_log(self, rng):
        x0 = rng.random((2, 3), dtype=np.float32) + 0.5
        check_unary(lambda x: x.exp(), x0)
        check_unary(lambda x: x.log(), x0)


class TestEngine:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x * x).backward()  # d(x^2)/dx = 2x = 4
        np.testing.assert_allclose(x.grad, [4.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * 2.0
        z = y + y  # both branches through y
        z.backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_backward_without_grad_flag(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_no_grad_context(self):
        with no_grad():
            x = Tensor(np.ones(3), requires_grad=True)
            y = x * 2.0
        assert not x.requires_grad  # creation inside no_grad disables it
        assert not y.requires_grad

    def test_no_grad_restores(self):
        with no_grad():
            pass
        x = Tensor(np.ones(2), requires_grad=True)
        assert x.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 3.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_custom_seed_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).backward(grad=np.array([1.0, 0.0, 2.0]))
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 4.0])

    def test_float32_storage(self):
        x = Tensor(np.ones(3, dtype=np.float64))
        assert x.data.dtype == np.float32
