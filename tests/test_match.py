"""Tests for the Match process (core/match.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.match import MatchState, match_degree, match_split


class TestMatchDegree:
    def test_paper_definition(self):
        # N_o = 2, min(N_i, N_j) = 3 -> 2/3.
        a = np.array([1, 2, 3])
        b = np.array([2, 3, 4, 5])
        assert match_degree(a, b) == pytest.approx(2 / 3)

    def test_symmetric(self):
        a = np.array([1, 2, 3, 9])
        b = np.array([3, 9, 10])
        assert match_degree(a, b) == match_degree(b, a)

    def test_identical_sets(self):
        a = np.array([4, 5, 6])
        assert match_degree(a, a) == 1.0

    def test_disjoint_sets(self):
        assert match_degree(np.array([1]), np.array([2])) == 0.0

    def test_empty(self):
        assert match_degree(np.array([]), np.array([1])) == 0.0

    def test_duplicates_tolerated(self):
        assert match_degree(np.array([1, 1, 2]), np.array([1, 2, 2])) == 1.0


class TestMatchSplit:
    def test_partition(self):
        resident = np.array([1, 3, 5, 7])
        wanted = np.array([5, 2, 7, 8])
        result = match_split(resident, wanted)
        np.testing.assert_array_equal(np.sort(result.overlap_ids), [5, 7])
        np.testing.assert_array_equal(np.sort(result.load_ids), [2, 8])
        assert result.num_reused == 2
        assert result.num_loaded == 2
        assert result.reuse_fraction == pytest.approx(0.5)

    def test_empty_resident_loads_all(self):
        wanted = np.array([4, 9])
        result = match_split(np.array([], dtype=np.int64), wanted)
        assert result.num_reused == 0
        np.testing.assert_array_equal(result.load_ids, wanted)

    def test_all_resident(self):
        result = match_split(np.array([1, 2, 3]), np.array([2, 3]))
        assert result.num_loaded == 0
        assert result.reuse_fraction == 1.0

    def test_empty_wanted(self):
        result = match_split(np.array([1]), np.array([], dtype=np.int64))
        assert result.num_loaded == 0
        assert result.reuse_fraction == 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        resident=st.lists(st.integers(0, 200), max_size=100),
        wanted=st.lists(st.integers(0, 200), max_size=100, unique=True),
    )
    def test_partition_property(self, resident, wanted):
        """Property: overlap + load partitions wanted; overlap subset of
        resident; load disjoint from resident."""
        resident_arr = np.unique(np.array(resident, dtype=np.int64))
        wanted_arr = np.array(wanted, dtype=np.int64)
        result = match_split(resident_arr, wanted_arr)
        combined = np.sort(
            np.concatenate([result.overlap_ids, result.load_ids])
        )
        np.testing.assert_array_equal(combined, np.sort(wanted_arr))
        assert set(result.overlap_ids) <= set(resident_arr.tolist())
        assert not set(result.load_ids) & set(resident_arr.tolist())


class TestMatchState:
    def test_first_step_loads_everything(self):
        state = MatchState()
        result = state.step(np.array([3, 1, 4]))
        assert result.num_loaded == 3
        assert result.num_reused == 0

    def test_second_step_reuses_overlap(self):
        state = MatchState()
        state.step(np.array([1, 2, 3]))
        result = state.step(np.array([2, 3, 4]))
        assert result.num_reused == 2
        np.testing.assert_array_equal(result.load_ids, [4])

    def test_residency_is_last_batch_only(self):
        """Match reuses only the previous batch's buffer (no extra GPU
        memory) — node 1 from two batches ago must be reloaded."""
        state = MatchState()
        state.step(np.array([1, 2]))
        state.step(np.array([3, 4]))
        result = state.step(np.array([1, 3]))
        np.testing.assert_array_equal(np.sort(result.overlap_ids), [3])
        np.testing.assert_array_equal(np.sort(result.load_ids), [1])

    def test_reset(self):
        state = MatchState()
        state.step(np.array([1, 2]))
        state.reset()
        result = state.step(np.array([1, 2]))
        assert result.num_reused == 0
