"""Tests for train splits and mini-batch planning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.graph.partition import MinibatchPlan, train_split


class TestTrainSplit:
    def test_size(self):
        ids = train_split(1000, 0.25, rng=0)
        assert len(ids) == 250
        assert np.all(np.diff(ids) > 0)

    def test_bounds(self):
        ids = train_split(100, 0.5, rng=1)
        assert ids.min() >= 0 and ids.max() < 100

    def test_invalid_fraction(self):
        with pytest.raises(ConfigError):
            train_split(10, 0.0)
        with pytest.raises(ConfigError):
            train_split(10, 1.5)


class TestMinibatchPlan:
    def test_covers_all_ids_exactly_once(self):
        ids = np.arange(0, 1000, 3)
        plan = MinibatchPlan(ids, batch_size=64)
        batches = plan.batches(rng=0)
        joined = np.concatenate(batches)
        np.testing.assert_array_equal(np.sort(joined), ids)

    def test_num_batches(self):
        plan = MinibatchPlan(np.arange(100), batch_size=30)
        assert plan.num_batches == 4
        assert len(plan.batches(rng=0)) == 4

    def test_drop_last(self):
        plan = MinibatchPlan(np.arange(100), batch_size=30, drop_last=True)
        assert plan.num_batches == 3
        batches = plan.batches(rng=0)
        assert all(len(b) == 30 for b in batches)

    def test_reshuffles_per_call(self):
        plan = MinibatchPlan(np.arange(256), batch_size=64)
        rng = np.random.default_rng(0)
        a = plan.batches(rng)[0]
        b = plan.batches(rng)[0]
        assert not np.array_equal(a, b)

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            MinibatchPlan(np.arange(10), batch_size=0)
        with pytest.raises(ConfigError):
            MinibatchPlan(np.array([]), batch_size=4)
        with pytest.raises(ConfigError):
            MinibatchPlan(np.arange(10), batch_size=4, locality=1.5)

    def test_locality_partition_is_exact(self):
        ids = np.arange(0, 2000, 2)
        plan = MinibatchPlan(ids, batch_size=128, locality=0.7)
        batches = plan.batches(rng=3)
        joined = np.concatenate(batches)
        assert len(joined) == len(ids)
        np.testing.assert_array_equal(np.sort(joined), ids)

    def test_locality_concentrates_batches(self):
        """Higher locality -> narrower within-batch ID ranges on average."""
        ids = np.arange(4096)

        def mean_spread(locality):
            plan = MinibatchPlan(ids, batch_size=128, locality=locality)
            batches = plan.batches(rng=5)
            return np.mean([np.ptp(b) for b in batches])

        assert mean_spread(0.9) < mean_spread(0.0)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=500),
    batch=st.integers(min_value=1, max_value=100),
    locality=st.sampled_from([0.0, 0.3, 0.6, 1.0]),
    seed=st.integers(min_value=0, max_value=10),
)
def test_batches_partition_property(n, batch, locality, seed):
    """Property: batches always partition the training IDs exactly."""
    ids = np.random.default_rng(n).choice(10 * n, size=n, replace=False)
    plan = MinibatchPlan(ids, batch_size=batch, locality=locality)
    batches = plan.batches(rng=seed)
    joined = np.concatenate(batches)
    assert len(joined) == n
    np.testing.assert_array_equal(np.sort(joined), np.sort(ids))
    # No batch exceeds ~2x the nominal size (locality filling is balanced).
    assert all(len(b) <= 2 * batch + 1 for b in batches)
