"""Tests for dataset/graph serialization and the val/test splits."""

import numpy as np
import pytest

from helpers import make_spec
from repro.graph.datasets import Dataset
from repro.graph.io import load_dataset, load_graph, save_dataset, save_graph


class TestSplits:
    def test_splits_are_disjoint_and_cover(self, tiny_dataset):
        ds = tiny_dataset
        combined = np.concatenate([ds.train_ids, ds.val_ids, ds.test_ids])
        assert len(combined) == ds.num_nodes
        assert len(np.unique(combined)) == ds.num_nodes

    def test_val_test_roughly_even(self, tiny_dataset):
        ds = tiny_dataset
        assert abs(len(ds.val_ids) - len(ds.test_ids)) <= 1


class TestGraphRoundTrip:
    def test_save_load_graph(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_graph(path, tiny_graph)
        loaded = load_graph(path)
        np.testing.assert_array_equal(loaded.indptr, tiny_graph.indptr)
        np.testing.assert_array_equal(loaded.indices, tiny_graph.indices)


class TestDatasetRoundTrip:
    @pytest.fixture()
    def small(self):
        return Dataset(make_spec(num_nodes=400, feature_dim=8), seed=11)

    def test_round_trip_arrays(self, small, tmp_path):
        path = tmp_path / "dataset.npz"
        save_dataset(path, small)
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.graph.indices,
                                      small.graph.indices)
        np.testing.assert_array_equal(loaded.labels, small.labels)
        np.testing.assert_array_equal(loaded.train_ids, small.train_ids)
        np.testing.assert_array_equal(loaded.val_ids, small.val_ids)
        np.testing.assert_array_equal(loaded.test_ids, small.test_ids)

    def test_round_trip_features_materialized(self, small, tmp_path):
        path = tmp_path / "dataset.npz"
        reference = small.features.gather(np.arange(50))
        save_dataset(path, small)
        loaded = load_dataset(path)
        np.testing.assert_allclose(loaded.features.gather(np.arange(50)),
                                   reference, rtol=1e-6)

    def test_round_trip_spec(self, small, tmp_path):
        path = tmp_path / "dataset.npz"
        save_dataset(path, small)
        loaded = load_dataset(path)
        assert loaded.spec == small.spec
        assert loaded.seed == small.seed
        assert loaded.cache_budget_bytes() == small.cache_budget_bytes()

    def test_loaded_dataset_trains(self, small, tmp_path):
        """A reloaded dataset runs through a framework unchanged."""
        from repro.config import RunConfig
        from repro.frameworks import FastGLFramework

        path = tmp_path / "dataset.npz"
        save_dataset(path, small)
        loaded = load_dataset(path)
        config = RunConfig(batch_size=32, fanouts=(3,), hidden_dim=8,
                           num_gpus=1)
        report = FastGLFramework().run_epoch(loaded, config)
        assert report.epoch_time > 0

    def test_version_guard(self, small, tmp_path):
        import json

        path = tmp_path / "dataset.npz"
        save_dataset(path, small)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["meta"].tobytes()).decode())
        meta["version"] = 99
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(),
                                       dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_dataset(path)
