"""Tests for feature caches and loaders (the memory-IO strategies)."""

import numpy as np
import pytest

from repro.config import DEFAULT_COST_MODEL
from repro.gpu.pcie import PCIeLink
from repro.sampling import NeighborSampler
from repro.transfer.cache import (
    DegreeCachePolicy,
    PresampleCachePolicy,
    StaticFeatureCache,
)
from repro.transfer.loader import (
    CachedLoader,
    MatchLoader,
    NaiveLoader,
    TransferReport,
)


@pytest.fixture()
def sampler(tiny_graph):
    return NeighborSampler(tiny_graph, (3, 4), rng=0)


@pytest.fixture()
def subgraphs(sampler, tiny_dataset):
    ids = tiny_dataset.train_ids
    return [sampler.sample(ids[i * 50:(i + 1) * 50]) for i in range(3)]


class TestStaticFeatureCache:
    def test_partition(self):
        cache = StaticFeatureCache(np.array([2, 4, 6]), bytes_per_node=8)
        hits, misses = cache.partition(np.array([1, 2, 3, 4]))
        np.testing.assert_array_equal(hits, [2, 4])
        np.testing.assert_array_equal(misses, [1, 3])
        assert cache.hits == 2 and cache.misses == 2
        assert cache.hit_rate == 0.5

    def test_empty_cache_all_miss(self):
        cache = StaticFeatureCache(np.array([], dtype=np.int64), 4)
        hits, misses = cache.partition(np.array([1, 2]))
        assert len(hits) == 0 and len(misses) == 2

    def test_capacity_bytes(self):
        cache = StaticFeatureCache(np.array([1, 2, 3]), bytes_per_node=100)
        assert cache.capacity_bytes == 300

    def test_reset_stats(self):
        cache = StaticFeatureCache(np.array([1]), 4)
        cache.partition(np.array([1, 2]))
        cache.reset_stats()
        assert cache.hits == 0 and cache.hit_rate == 0.0


class TestPolicies:
    def test_degree_policy_picks_hubs(self, tiny_graph, tiny_dataset):
        store = tiny_dataset.features
        budget = 50 * store.bytes_per_node
        cache = DegreeCachePolicy.build(tiny_graph, store, budget)
        assert cache.num_cached == 50
        threshold = np.sort(tiny_graph.degrees)[-50]
        assert tiny_graph.degrees[cache.cached_ids].min() >= threshold - 1

    def test_degree_policy_zero_budget(self, tiny_graph, tiny_dataset):
        cache = DegreeCachePolicy.build(tiny_graph, tiny_dataset.features, 0)
        assert cache.num_cached == 0

    def test_presample_policy_budget(self, sampler, tiny_dataset):
        store = tiny_dataset.features
        budget = 64 * store.bytes_per_node
        cache = PresampleCachePolicy.build(
            sampler, tiny_dataset.train_ids, store, budget, rng=0
        )
        assert cache.num_cached == 64
        assert cache.capacity_bytes <= budget

    def test_presample_policy_prefers_visited(self, sampler, tiny_dataset):
        """Cached nodes should be hit far more often than random ones."""
        store = tiny_dataset.features
        budget = 200 * store.bytes_per_node
        cache = PresampleCachePolicy.build(
            sampler, tiny_dataset.train_ids, store, budget, rng=0
        )
        sg = sampler.sample(tiny_dataset.train_ids[:50])
        hits, _ = cache.partition(sg.input_nodes)
        random_cache = StaticFeatureCache(
            np.random.default_rng(1).choice(tiny_dataset.num_nodes, 200,
                                            replace=False),
            store.bytes_per_node,
        )
        rhits, _ = random_cache.partition(sg.input_nodes)
        assert len(hits) > len(rhits)


class TestNaiveLoader:
    def test_loads_everything(self, subgraphs, tiny_dataset):
        loader = NaiveLoader(tiny_dataset.features)
        report = loader.plan(subgraphs[0])
        assert report.num_loaded == subgraphs[0].num_nodes
        assert report.feature_bytes == (
            subgraphs[0].num_nodes * tiny_dataset.features.bytes_per_node
        )
        assert report.structure_bytes == subgraphs[0].structure_bytes()

    def test_load_returns_features(self, subgraphs, tiny_dataset):
        loader = NaiveLoader(tiny_dataset.features)
        features, report = loader.load(subgraphs[0])
        assert features.shape == (subgraphs[0].num_nodes,
                                  tiny_dataset.feature_dim)
        assert report.num_loaded == subgraphs[0].num_nodes


class TestCachedLoader:
    def test_loads_only_misses(self, subgraphs, tiny_dataset):
        sg = subgraphs[0]
        cache = StaticFeatureCache(sg.input_nodes[:100],
                                   tiny_dataset.features.bytes_per_node)
        loader = CachedLoader(tiny_dataset.features, cache)
        report = loader.plan(sg)
        assert report.num_cache_hits == 100
        assert report.num_loaded == sg.num_nodes - 100


class TestMatchLoader:
    def test_reuses_previous_batch(self, subgraphs, tiny_dataset):
        loader = MatchLoader(tiny_dataset.features)
        first = loader.plan(subgraphs[0])
        second = loader.plan(subgraphs[1])
        assert first.num_reused == 0
        assert second.num_reused > 0
        assert second.num_loaded == subgraphs[1].num_nodes - second.num_reused

    def test_reset_epoch_clears_residency(self, subgraphs, tiny_dataset):
        loader = MatchLoader(tiny_dataset.features)
        loader.plan(subgraphs[0])
        loader.reset_epoch()
        report = loader.plan(subgraphs[0])
        assert report.num_reused == 0

    def test_cache_catches_non_resident(self, subgraphs, tiny_dataset):
        sg0, sg1 = subgraphs[0], subgraphs[1]
        full_cache = StaticFeatureCache(
            np.arange(tiny_dataset.num_nodes),
            tiny_dataset.features.bytes_per_node,
        )
        loader = MatchLoader(tiny_dataset.features, cache=full_cache)
        loader.plan(sg0)
        report = loader.plan(sg1)
        assert report.num_loaded == 0
        assert report.num_reused + report.num_cache_hits == sg1.num_nodes

    def test_never_loads_more_than_naive(self, subgraphs, tiny_dataset):
        naive = NaiveLoader(tiny_dataset.features)
        match = MatchLoader(tiny_dataset.features)
        for sg in subgraphs:
            assert match.plan(sg).num_loaded <= naive.plan(sg).num_loaded


class TestTransferReport:
    def test_merge(self):
        a = TransferReport(num_wanted=5, num_loaded=3, feature_bytes=300,
                           structure_bytes=10, num_transfers=1)
        b = TransferReport(num_wanted=4, num_loaded=4, feature_bytes=400,
                           structure_bytes=20, num_transfers=1)
        a.merge(b)
        assert a.num_wanted == 9
        assert a.total_bytes == 730
        assert a.num_transfers == 2

    def test_modeled_time_components(self):
        report = TransferReport(feature_bytes=32_000_000,
                                structure_bytes=0, num_transfers=1)
        link = PCIeLink(bandwidth=32e9, latency_s=1e-5)
        cost = DEFAULT_COST_MODEL
        expected = (32e6 / cost.host_gather_bytes_per_s + 1e-5
                    + 32e6 / 32e9)
        assert report.modeled_time(link, cost) == pytest.approx(expected)

    def test_zero_bytes_zero_time(self):
        assert TransferReport().modeled_time(PCIeLink()) == 0.0

    def test_contention_slows_transfer(self):
        report = TransferReport(feature_bytes=10**8, num_transfers=1)
        link = PCIeLink(bandwidth=32e9, host_aggregate=80e9)
        assert (report.modeled_time(link, concurrent_links=8)
                > report.modeled_time(link, concurrent_links=1))
