"""Tests for graph statistics and the analytic size estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.stats import (
    DegreeStats,
    estimate_subgraph_size,
    expected_unique,
)


class TestExpectedUnique:
    def test_zero_cases(self):
        assert expected_unique(0, 10) == 0.0
        assert expected_unique(10, 0) == 0.0

    def test_small_draws_nearly_all_unique(self):
        assert expected_unique(1e9, 100) == pytest.approx(100, rel=1e-4)

    def test_saturates_at_pool(self):
        assert expected_unique(100, 1e6) == pytest.approx(100, rel=1e-3)

    @settings(max_examples=50, deadline=None)
    @given(pool=st.floats(1, 1e6), draws=st.floats(1, 1e6))
    def test_bounds_property(self, pool, draws):
        u = expected_unique(pool, draws)
        assert 0 < u <= min(pool, draws) + 1e-6

    def test_monotone_in_draws(self):
        values = [expected_unique(1000, d) for d in (10, 100, 1000, 10000)]
        assert values == sorted(values)


class TestEstimateSubgraphSize:
    def test_frontier_growth(self):
        est = estimate_subgraph_size(1e6, 20, batch_size=100,
                                     fanouts=(5, 10, 15))
        assert len(est.frontiers) == 4
        assert est.frontiers[0] == 100
        # Frontiers grow until saturation.
        assert est.frontiers[1] > est.frontiers[0]
        assert est.frontiers[2] > est.frontiers[1]

    def test_fanout_capped_by_degree(self):
        sparse = estimate_subgraph_size(1e6, 3, batch_size=100,
                                        fanouts=(15,))
        assert sparse.edges_per_hop[0] == pytest.approx(300)

    def test_input_nodes_bounded_by_pool(self):
        est = estimate_subgraph_size(1000, 50, batch_size=500,
                                     fanouts=(15, 15, 15),
                                     hub_concentration=1.0)
        assert est.frontiers[-1] <= 1000

    def test_hub_concentration_shrinks_uniques(self):
        loose = estimate_subgraph_size(1e6, 20, 1000, (10, 10),
                                       hub_concentration=1.0)
        tight = estimate_subgraph_size(1e6, 20, 1000, (10, 10),
                                       hub_concentration=0.2)
        assert tight.frontiers[-1] < loose.frontiers[-1]

    def test_num_edges_is_sum(self):
        est = estimate_subgraph_size(1e5, 10, 100, (5, 5))
        assert est.num_edges == pytest.approx(sum(est.edges_per_hop))


class TestDegreeStats:
    def test_from_graph(self, tiny_graph):
        stats = DegreeStats.from_graph(tiny_graph)
        assert stats.num_nodes == tiny_graph.num_nodes
        assert stats.num_edges == tiny_graph.num_edges
        assert stats.max_degree >= stats.avg_degree
        assert 0.0 <= stats.gini <= 1.0

    def test_gini_zero_for_regular(self):
        from repro.graph.csr import CSRGraph

        # A 4-cycle: every node degree 2.
        g = CSRGraph.from_edges(
            np.array([0, 1, 2, 3]), np.array([1, 2, 3, 0]), 4,
            symmetrize=True,
        )
        stats = DegreeStats.from_graph(g)
        assert stats.gini == pytest.approx(0.0, abs=1e-9)

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph(indptr=np.array([0]), indices=np.array([], dtype=int))
        stats = DegreeStats.from_graph(g)
        assert stats.num_nodes == 0
        assert stats.gini == 0.0
