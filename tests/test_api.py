"""The public facade (repro.api), the framework registry, and the typed
EpochReport surface."""

import warnings

import numpy as np
import pytest

from repro import api
from repro.config import RunConfig
from repro.frameworks import (
    DGLFramework,
    FastGLFramework,
    available_frameworks,
    create,
    register,
    resolve,
    unregister,
)
from repro.frameworks import registry as registry_module
from repro.frameworks.base import CacheStats
from repro.graph.datasets import Dataset
from repro.obs.trace import Span
from repro.serve import ServeReport

from helpers import make_spec


@pytest.fixture(scope="module")
def dataset():
    return Dataset(make_spec(name="api-test", num_nodes=800,
                             avg_degree=6.0), seed=0)


@pytest.fixture(scope="module")
def config():
    # two GPUs so factored-sampler frameworks (GNNLab) run too
    return RunConfig(num_gpus=2, fanouts=(3, 5), batch_size=64, seed=0)


class TestRegistry:
    def test_round_trip_every_registered_framework(self, dataset, config):
        """ACCEPTANCE: create(name) for every available_frameworks() entry
        produces a framework whose run_epoch works."""
        names = available_frameworks()
        assert len(names) >= 8
        for name in names:
            framework = create(name)
            assert framework.name  # strategy bundles self-describe
            report = framework.run_epoch(dataset, config)
            assert report.epoch_time > 0
            assert report.num_batches > 0

    def test_create_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="fastgl"):
            create("definitely-not-a-framework")

    def test_register_decorator_and_unregister(self):
        @register("test-double")
        class Double(DGLFramework):
            name = "test-double"

        try:
            assert "test-double" in available_frameworks()
            assert isinstance(create("test-double"), Double)
        finally:
            unregister("test-double")
        assert "test-double" not in available_frameworks()

    def test_resolve_accepts_name_class_instance(self):
        by_name = resolve("fastgl")
        by_class = resolve(FastGLFramework)
        instance = FastGLFramework()
        assert isinstance(by_name, FastGLFramework)
        assert isinstance(by_class, FastGLFramework)
        assert resolve(instance) is instance

    def test_get_framework_shim_removed(self):
        import repro
        import repro.frameworks as frameworks_module

        assert not hasattr(frameworks_module, "get_framework")
        assert not hasattr(repro, "get_framework")

    def test_run_cluster_kwarg_shim_warns_once(self, dataset, config):
        from repro.cluster.spec import ClusterSpec

        registry_module._DEPRECATION_WARNED.discard("api.run(cluster=...)")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = api.run("dgl", dataset, config=config,
                             cluster=ClusterSpec(num_nodes=1))
            api.run("dgl", dataset, config=config,
                    cluster=ClusterSpec(num_nodes=1))
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "ExecutionSpec" in str(deprecations[0].message)
        via_exec = api.run(
            "dgl", dataset, config=config,
            exec=api.ExecutionSpec(cluster=ClusterSpec(num_nodes=1)),
        )
        assert legacy.epoch_time == via_exec.epoch_time

    def test_run_rejects_exec_plus_legacy_kwargs(self, dataset, config):
        from repro.cluster.spec import ClusterSpec

        with pytest.raises(TypeError, match="ExecutionSpec"):
            api.run("dgl", dataset, config=config,
                    exec=api.ExecutionSpec(),
                    cluster=ClusterSpec(num_nodes=1))

    def test_run_epoch_jobs_kwarg_shim_warns_once(self, dataset, config):
        registry_module._DEPRECATION_WARNED.discard(
            "Framework.run_epoch(jobs=...)")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            create("dgl").run_epoch(dataset, config, jobs=1)
            create("dgl").run_epoch(dataset, config, jobs=1)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "ExecutionSpec" in str(deprecations[0].message)


class TestRunFacade:
    def test_run_matches_direct_run_epoch(self, dataset, config):
        via_api = api.run("fastgl", dataset, config=config)
        direct = create("fastgl").run_epoch(dataset, config)
        assert via_api.epoch_time == direct.epoch_time
        assert via_api.num_batches == direct.num_batches

    def test_run_accepts_class_and_instance(self, dataset, config):
        by_class = api.run(DGLFramework, dataset, config=config)
        by_instance = api.run(DGLFramework(), dataset, config=config)
        assert by_class.epoch_time == by_instance.epoch_time

    def test_run_config_is_keyword_only(self, dataset, config):
        with pytest.raises(TypeError):
            api.run("fastgl", dataset, config)  # noqa: intentional misuse

    def test_run_default_config(self, dataset):
        report = api.run("dgl", dataset)
        assert report.epoch_time > 0


class TestServeFacade:
    def test_serve_returns_serve_report(self, dataset, config):
        report = api.serve(
            "fastgl", dataset,
            run_config=RunConfig(num_gpus=1, fanouts=(3, 5), seed=0),
            serve_config=api.ServeConfig(rate=2000.0, num_requests=40),
        )
        assert isinstance(report, ServeReport)
        assert report.num_completed > 0
        assert report.reconciles(1e-6)

    def test_serve_defaults(self, dataset):
        report = api.serve("dgl", dataset,
                           serve_config=api.ServeConfig(num_requests=20))
        assert report.framework == "dgl"
        assert len(report.requests) == 20


class TestEpochReportSurface:
    @pytest.fixture(scope="class")
    def report(self, dataset, config):
        return api.run("fastgl", dataset, config=config)

    def test_timeline_returns_spans(self, report):
        spans = report.timeline()
        assert spans
        assert all(isinstance(span, Span) for span in spans)
        extent = max(span.end for span in spans)
        assert extent == pytest.approx(report.epoch_time, abs=1e-9)

    def test_timeline_spans_carry_batch_args(self, report):
        gpu_spans = [s for s in report.timeline()
                     if s.lane.startswith("gpu")]
        assert gpu_spans
        assert all("batch" in span.args for span in gpu_spans)

    def test_cache_stats_partitions_wanted(self, report):
        stats = report.cache_stats()
        assert isinstance(stats, CacheStats)
        assert stats.wanted == stats.loaded + stats.reused + stats.hits
        assert 0.0 <= stats.hit_rate <= 1.0
        assert stats.hit_rate <= stats.resident_rate <= 1.0

    def test_num_trainers(self, report, config):
        assert report.num_trainers == config.num_gpus


class TestPhaseFractions:
    def test_same_keys_zero_and_nonzero(self, dataset, config):
        from repro.frameworks.base import PhaseTimes

        nonzero = api.run("dgl", dataset, config=config).phases
        zero = PhaseTimes()
        for detail in (False, True):
            keys_nonzero = set(nonzero.fractions(detail=detail))
            keys_zero = set(zero.fractions(detail=detail))
            assert keys_nonzero == keys_zero
            assert all(v == 0.0 for v in
                       zero.fractions(detail=detail).values())
            assert sum(nonzero.fractions(detail=detail).values()) \
                == pytest.approx(1.0)

    def test_detail_refines_coarse(self, dataset, config):
        phases = api.run("fastgl", dataset, config=config).phases
        coarse = phases.fractions()
        detail = phases.fractions(detail=True)
        assert coarse["sample"] == pytest.approx(
            detail["sample"] + detail["idmap"])
