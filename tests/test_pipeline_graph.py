"""The stage-graph pipeline engine and the pipelined epoch layout.

Oracles: the two-stage closed form (:func:`two_stage_makespan`) for
``S=2`` and the N-stage recurrence (:func:`stage_graph_reference`) for
everything else; properties over random stage-time vectors (zeros
included) pin the engine between ``max(stage totals)`` and the serial
sum.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import (
    DEFAULT_EXECUTION,
    ExecutionSpec,
    PipelineSpec,
    pipelined_epoch_layout,
    stage_graph_makespan,
    stage_graph_reference,
    sync_round_flags,
)
from repro.sim.pipeline import two_stage_makespan

#: Zero-length service times are drawn often: all-hit IO stages and
#: empty halos are the common real-world degenerate cases.
_seconds = st.one_of(st.just(0.0), st.floats(0.01, 5.0))

_depths = st.one_of(st.none(), st.integers(1, 4))


def _stage_vectors(num_stages=st.integers(1, 4), num_items=st.integers(0, 10)):
    return num_stages.flatmap(
        lambda s: num_items.flatmap(
            lambda n: st.lists(
                st.lists(_seconds, min_size=n, max_size=n),
                min_size=s, max_size=s,
            )
        )
    )


class TestStageGraphEngine:
    def test_requires_a_stage(self):
        with pytest.raises(ValueError):
            stage_graph_makespan([])

    def test_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            stage_graph_makespan([[1.0, 2.0], [1.0]])

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            stage_graph_makespan([[1.0]], queue_depth=0)

    def test_no_items_is_zero(self):
        assert stage_graph_makespan([[], [], []]) == 0.0

    def test_single_stage_is_serial(self):
        assert stage_graph_makespan([[1.0, 2.0, 3.0]]) == pytest.approx(6.0)

    def test_three_stage_overlap(self):
        # Balanced stages: steady state is bottleneck-rate, plus fill.
        times = [[1.0] * 5, [1.0] * 5, [1.0] * 5]
        assert stage_graph_makespan(times) == pytest.approx(7.0)

    def test_records_cover_every_interval(self):
        records = []
        span = stage_graph_makespan(
            [[1.0, 2.0], [3.0, 1.0]],
            names=["sample", "train"],
            record=records.append,
        )
        assert {name for name, *_ in records} == {"sample", "train"}
        assert len(records) == 4
        assert max(end for *_, end in records) == pytest.approx(span)
        for _, _, start, end in records:
            assert 0.0 <= start <= end <= span + 1e-12

    def test_stall_records_stay_inside_makespan(self):
        stalls = []
        span = stage_graph_makespan(
            [[3.0, 3.0], [0.5, 0.5]],
            stall_record=stalls.append,
        )
        assert stalls  # the fast consumer starves
        for _, _, start, end in stalls:
            assert 0.0 <= start < end <= span + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(
        times=st.lists(st.tuples(_seconds, _seconds), min_size=1,
                       max_size=10),
        depth=_depths,
    )
    def test_two_stage_oracle_agreement(self, times, depth):
        """For S=2 the engine IS two_stage_makespan."""
        produce = [p for p, _ in times]
        consume = [c for _, c in times]
        ours = stage_graph_makespan([produce, consume], queue_depth=depth)
        oracle = two_stage_makespan(produce, consume, queue_depth=depth)
        assert ours == pytest.approx(oracle, rel=1e-9, abs=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(times=_stage_vectors(), depth=_depths)
    def test_reference_recurrence_agreement(self, times, depth):
        ours = stage_graph_makespan(times, queue_depth=depth)
        oracle = stage_graph_reference(times, queue_depth=depth)
        assert ours == pytest.approx(oracle, rel=1e-9, abs=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(times=_stage_vectors(num_items=st.integers(1, 10)))
    def test_pipelined_between_bounds(self, times):
        """Property: overlap never beats the bottleneck stage and never
        loses to fully serial execution."""
        span = stage_graph_makespan(times)
        serial = sum(sum(stage) for stage in times)
        bottleneck = max(sum(stage) for stage in times)
        assert span <= serial + 1e-9
        assert span >= bottleneck - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        times=_stage_vectors(num_items=st.integers(1, 8)),
        depth=st.integers(1, 3),
    )
    def test_deeper_queue_never_slower(self, times, depth):
        shallow = stage_graph_makespan(times, queue_depth=depth)
        deeper = stage_graph_makespan(times, queue_depth=depth + 1)
        unbounded = stage_graph_makespan(times)
        assert deeper <= shallow + 1e-9
        assert unbounded <= deeper + 1e-9


class TestSyncRoundFlags:
    def test_zero_staleness_syncs_every_round(self):
        assert sync_round_flags(4, 0) == [True] * 4

    def test_staleness_period(self):
        assert sync_round_flags(6, 1) == [False, True, False, True,
                                          False, True]

    def test_final_round_always_syncs(self):
        assert sync_round_flags(5, 2)[-1] is True
        assert sync_round_flags(1, 10) == [True]

    def test_empty(self):
        assert sync_round_flags(0, 3) == []


class TestPipelinedEpochLayout:
    def _layout(self, **kwargs):
        defaults = dict(
            samples=[1.0, 1.0, 1.0],
            ios=[0.5, 0.5, 0.5],
            nets=[0.0, 0.0, 0.0],
            computes=[2.0, 2.0, 2.0],
            sync=0.25,
            net_sync=0.0,
            pipeline=PipelineSpec(mode="pipelined"),
        )
        defaults.update(kwargs)
        return pipelined_epoch_layout(**defaults)

    def test_reconciles(self):
        span, spans, info = self._layout()
        extent = max(s["start"] + s["dur"] for s in spans)
        assert extent == pytest.approx(span, abs=1e-12)

    def test_zero_net_omits_network_stage(self):
        _, spans, info = self._layout()
        assert "network" not in info["stage_totals"]
        assert not any(s["lane"] == "network" for s in spans)

    def test_network_stage_present_on_cluster(self):
        span, spans, info = self._layout(nets=[0.3, 0.3, 0.3])
        assert info["stage_totals"]["network"] == pytest.approx(0.9)
        assert any(s["lane"] == "network" for s in spans)
        extent = max(s["start"] + s["dur"] for s in spans)
        assert extent == pytest.approx(span, abs=1e-12)

    def test_train_interval_carves_compute_and_syncs(self):
        _, spans, _ = self._layout(net_sync=0.125)
        cats = {s["cat"] for s in spans if s["lane"] == "trainers"}
        assert cats == {"compute", "allreduce", "network"}

    def test_stall_spans_report_stage(self):
        _, spans, info = self._layout(samples=[3.0, 3.0, 3.0],
                                      computes=[0.5, 0.5, 0.5])
        stalls = [s for s in spans if s["cat"] == "stall"]
        assert stalls and all(s["lane"] == "stalls" for s in stalls)
        assert all(s["stage"] in info["stall_seconds"] for s in stalls)
        assert sum(info["stall_seconds"].values()) > 0

    def test_staleness_reduces_sync_count(self):
        every, _, info0 = self._layout()
        sparse, _, info2 = self._layout(
            pipeline=PipelineSpec(mode="pipelined", staleness=2))
        assert info0["num_syncs"] == 3
        assert info2["num_syncs"] == 1  # round 2 only (final round)
        assert sparse <= every + 1e-12

    def test_bound_accounting(self):
        span, _, info = self._layout()
        assert info["bound_seconds"] == pytest.approx(
            info["stage_totals"]["train"] + 1.0 + 0.5)  # fill: sample+io
        assert span >= info["bound_seconds"] - 1e-9
        assert span <= info["serial_seconds"] + 1e-9


class TestSpecs:
    def test_pipeline_mode_validated(self):
        with pytest.raises(ValueError, match="mode"):
            PipelineSpec(mode="warp")

    def test_queue_depth_validated(self):
        with pytest.raises(ValueError):
            PipelineSpec(queue_depth=0)

    def test_staleness_validated(self):
        with pytest.raises(ValueError):
            PipelineSpec(staleness=-1)

    def test_execution_promotes_mode_string(self):
        spec = ExecutionSpec(pipeline="pipelined")
        assert isinstance(spec.pipeline, PipelineSpec)
        assert spec.pipeline.enabled

    def test_execution_rejects_non_spec_pipeline(self):
        with pytest.raises(TypeError):
            ExecutionSpec(pipeline=2)

    def test_execution_rejects_negative_jobs(self):
        with pytest.raises(ValueError):
            ExecutionSpec(jobs=-1)

    def test_frozen_and_hashable(self):
        spec = ExecutionSpec(pipeline="pipelined")
        with pytest.raises(AttributeError):
            spec.jobs = 2
        assert ExecutionSpec(pipeline="pipelined") == spec
        assert hash(ExecutionSpec(pipeline="pipelined")) == hash(spec)
        assert DEFAULT_EXECUTION != spec
        assert {spec: 1}[ExecutionSpec(pipeline="pipelined")] == 1
