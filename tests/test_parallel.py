"""Tests for the parallel execution engine and its determinism contract.

The engine's promise is that ``jobs`` is a throughput knob, never a
semantics knob: any job count produces bit-identical results and merged
metrics. That is checked at all three integration points — the raw
executor, the experiment suite sharding, and the epoch driver's
per-trainer lanes.
"""

import numpy as np
import pytest

from repro.config import RunConfig
from repro.frameworks import FastGLFramework
from repro.obs import get_registry, set_registry
from repro.obs.exporters import flatten_snapshot, to_snapshot
from repro.obs.registry import MetricsRegistry
from repro.pipeline import ExecutionSpec
from repro.parallel import (
    ParallelExecutor,
    ParallelTaskError,
    fork_available,
    parallel_map,
    resolve_jobs,
    strip_transport_metrics,
    task_rng,
)

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="requires fork start method")


def _square(x):
    return x * x


class TestExecutor:
    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_map_preserves_order_serial(self):
        ex = ParallelExecutor(jobs=1)
        assert ex.map(_square, range(10)) == [x * x for x in range(10)]

    @needs_fork
    def test_map_preserves_order_forked(self):
        ex = ParallelExecutor(jobs=4, chunk_size=3)
        assert ex.map(_square, range(23)) == [x * x for x in range(23)]

    def test_empty_items(self):
        assert ParallelExecutor(jobs=4).map(_square, []) == []

    def test_task_rng_is_per_index(self):
        a = task_rng(7, 0).integers(0, 1 << 30, 4)
        b = task_rng(7, 0).integers(0, 1 << 30, 4)
        c = task_rng(7, 1).integers(0, 1 << 30, 4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_seeded_map_identical_across_job_counts(self):
        def draw(index, rng):
            return rng.integers(0, 1 << 30, 3).tolist()

        serial = ParallelExecutor(jobs=1).map(draw, range(8), seed=11)
        if fork_available():
            forked = ParallelExecutor(jobs=3).map(draw, range(8), seed=11)
            assert serial == forked

    @needs_fork
    def test_worker_error_propagates(self):
        def boom(x):
            if x == 3:
                raise ValueError("worker exploded")
            return x

        with pytest.raises(RuntimeError, match="worker exploded"):
            ParallelExecutor(jobs=2).map(boom, range(6))

    @needs_fork
    def test_worker_error_carries_task_index_and_seed(self):
        def boom(x, rng):
            if x == 4:
                raise ValueError("chunk died")
            return x

        with pytest.raises(ParallelTaskError, match=r"task 4 \(seed=11\)"):
            ParallelExecutor(jobs=2).map(boom, range(6), seed=11)

    def test_serial_error_same_type_as_forked(self):
        """The serial fallback raises the identical typed error, with the
        failing task index and seed in the message and the original
        exception chained."""
        def boom(x, rng):
            if x == 2:
                raise KeyError("native")
            return x

        with pytest.raises(ParallelTaskError, match=r"task 2 \(seed=5\)") \
                as excinfo:
            ParallelExecutor(jobs=1).map(boom, range(4), seed=5)
        assert excinfo.value.task_index == 2
        assert excinfo.value.seed == 5
        assert isinstance(excinfo.value.__cause__, KeyError)


class TestMetricsMerging:
    def _counting_task(self, x):
        get_registry().counter("parallel_test_work_total").inc(x)
        get_registry().histogram("parallel_test_size").observe(float(x))
        return x

    def _run(self, jobs):
        parent = MetricsRegistry()
        previous = get_registry()
        set_registry(parent)
        try:
            out = parallel_map(self._counting_task, range(1, 21), jobs=jobs)
        finally:
            set_registry(previous)
        return out, flatten_snapshot(to_snapshot(parent))

    def test_metrics_identical_serial_vs_forked(self):
        serial_out, serial_metrics = self._run(jobs=1)
        assert serial_metrics["parallel_test_work_total"] == 210.0
        assert serial_metrics["parallel_test_size_count"] == 20.0
        if fork_available():
            forked_out, forked_metrics = self._run(jobs=4)
            assert forked_out == serial_out
            # The transport byte counters measure the transport itself
            # (zero under the serial fallback, real bytes when forked);
            # everything the tasks recorded must fold bit-identically.
            assert strip_transport_metrics(forked_metrics) == serial_metrics
            assert forked_metrics["repro_parallel_ipc_bytes_total"] > 0


class TestSuiteDeterminism:
    """``python -m repro.experiments --jobs N`` shards experiments without
    changing a single row."""

    EXPERIMENTS = ("tab04", "tab01")

    def _render(self, jobs):
        from repro.experiments.__main__ import run_suite

        return {
            exp_id: result.render()
            for exp_id, result, _ in run_suite(self.EXPERIMENTS, jobs=jobs)
        }

    @needs_fork
    def test_suite_rows_identical(self):
        assert self._render(jobs=1) == self._render(jobs=2)


class TestEpochLaneDeterminism:
    """Per-trainer lanes in forked workers reproduce the serial epoch
    bit for bit: report, iteration log, and merged metrics."""

    def _run(self, tiny_dataset, jobs):
        config = RunConfig(batch_size=64, fanouts=(3, 4), num_gpus=2,
                           hidden_dim=8, seed=3, num_epochs=2)
        parent = MetricsRegistry()
        previous = get_registry()
        set_registry(parent)
        try:
            report = FastGLFramework().run_epoch(
                tiny_dataset, config,
                execution=ExecutionSpec(jobs=jobs))
        finally:
            set_registry(previous)
        return report, flatten_snapshot(to_snapshot(parent))

    @needs_fork
    def test_epoch_identical(self, tiny_dataset):
        serial, serial_metrics = self._run(tiny_dataset, jobs=1)
        forked, forked_metrics = self._run(tiny_dataset, jobs=2)
        assert forked.epoch_time == serial.epoch_time
        assert forked.phases == serial.phases
        assert forked.memory_peak_bytes == serial.memory_peak_bytes
        assert forked.num_batches == serial.num_batches
        assert forked.losses == serial.losses
        assert forked.transfer.feature_bytes == serial.transfer.feature_bytes
        assert (strip_transport_metrics(forked_metrics)
                == strip_transport_metrics(serial_metrics))
