"""Numerical gradient checks through whole GNN layers.

The op-level gradchecks live in test_functional.py; these push a scalar
loss through each *conv layer* (gather + attention + aggregation + GEMM
composed) and compare every parameter's gradient against central
differences — the strongest correctness statement the numpy autograd can
make about Eq. 5's implementation.
"""

import numpy as np
import pytest

from helpers import assert_grad_close, numerical_gradient
from repro.nn import Tensor
from repro.nn.conv import GATConv, GCNConv, GINConv
from repro.sampling.subgraph import LayerBlock


@pytest.fixture()
def block(rng):
    num_dst, num_src, num_edges = 3, 6, 8
    dst = np.arange(num_dst, dtype=np.int64) * 10
    src = np.concatenate([dst, 100 + np.arange(num_src - num_dst)])
    return LayerBlock(
        dst_global=dst,
        src_global=src,
        edge_src=rng.integers(0, num_src, num_edges),
        edge_dst=rng.integers(0, num_dst, num_edges),
    )


@pytest.fixture()
def x_data(rng):
    return rng.normal(size=(6, 4)).astype(np.float32)


def check_layer_param_grads(make_conv, block, x_data, params_of):
    """Gradcheck every parameter of ``make_conv()`` plus the input."""
    conv = make_conv()
    x = Tensor(x_data, requires_grad=True)
    (conv(block, x) ** 2.0).sum().backward()

    # Input gradient.
    def f_input(arr):
        fresh = make_conv()
        return float((fresh(block, Tensor(arr)) ** 2.0).sum().data)

    assert_grad_close(x.grad, numerical_gradient(f_input, x_data, eps=5e-3),
                      rtol=8e-2, atol=1e-2)

    # Parameter gradients (perturb one parameter array at a time).
    for index, param in enumerate(params_of(conv)):
        original = param.data.copy()

        def f_param(arr, index=index):
            fresh = make_conv()
            params_of(fresh)[index].data = arr
            return float((fresh(block, Tensor(x_data)) ** 2.0).sum().data)

        numeric = numerical_gradient(f_param, original, eps=5e-3)
        assert_grad_close(param.grad, numeric, rtol=8e-2, atol=1e-2)


class TestGCNConvGradients:
    def test_all_gradients(self, block, x_data):
        check_layer_param_grads(
            lambda: GCNConv(4, 3, rng=0),
            block, x_data,
            params_of=lambda c: c.parameters(),
        )


class TestGINConvGradients:
    def test_all_gradients(self, block, x_data):
        check_layer_param_grads(
            lambda: GINConv(4, 3, hidden_dim=5, rng=0),
            block, x_data,
            params_of=lambda c: c.parameters(),
        )

    def test_eps_gradient_direction(self, block, x_data):
        """eps scales the self term; its gradient must be the dot of the
        upstream gradient with the target features."""
        conv = GINConv(4, 4, rng=1)
        x = Tensor(x_data, requires_grad=True)
        conv(block, x).sum().backward()
        assert conv.eps.grad is not None
        assert np.isfinite(conv.eps.grad).all()


class TestGATConvGradients:
    def test_all_gradients_single_head(self, block, x_data):
        check_layer_param_grads(
            lambda: GATConv(4, head_dim=3, num_heads=1, rng=0),
            block, x_data,
            params_of=lambda c: c.parameters(),
        )

    def test_two_heads(self, block, x_data):
        check_layer_param_grads(
            lambda: GATConv(4, head_dim=2, num_heads=2, rng=2),
            block, x_data,
            params_of=lambda c: c.parameters(),
        )
