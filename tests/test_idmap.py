"""Tests for the ID-map strategies (baseline, fused, CPU) and the
simulated-concurrency harness for Algorithm 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_COST_MODEL
from repro.sampling.idmap import (
    BaselineIdMap,
    CpuIdMap,
    FusedIdMap,
    IdMapReport,
)
from repro.sampling.idmap.base import first_occurrence_unique
from repro.sampling.idmap.fused import simulate_concurrent_fused_map

ALL_MAPS = [BaselineIdMap(), FusedIdMap(), CpuIdMap()]


class TestFirstOccurrenceUnique:
    def test_order(self):
        ids = np.array([7, 3, 7, 9, 3, 1])
        unique, inverse = first_occurrence_unique(ids)
        np.testing.assert_array_equal(unique, [7, 3, 9, 1])
        np.testing.assert_array_equal(unique[inverse], ids)

    def test_already_unique(self):
        ids = np.array([5, 2, 8])
        unique, inverse = first_occurrence_unique(ids)
        np.testing.assert_array_equal(unique, ids)
        np.testing.assert_array_equal(inverse, [0, 1, 2])


@pytest.mark.parametrize("idmap", ALL_MAPS, ids=lambda m: type(m).__name__)
class TestMappingCorrectness:
    def test_bijection(self, idmap):
        ids = np.array([4, 4, 9, 0, 9, 9, 17])
        result = idmap.map(ids)
        assert len(result.unique_globals) == 4
        np.testing.assert_array_equal(
            result.unique_globals[result.locals_of_input], ids
        )

    def test_local_ids_consecutive(self, idmap):
        ids = np.random.default_rng(0).integers(0, 50, size=200)
        result = idmap.map(ids)
        n = len(result.unique_globals)
        assert set(result.locals_of_input) == set(range(n))

    def test_report_counts(self, idmap):
        ids = np.array([1, 1, 2, 3, 3, 3])
        report = idmap.map(ids).report
        assert report.num_input_ids == 6
        assert report.num_unique == 3


class TestDeviceWorkAccounting:
    def test_baseline_syncs_per_unique(self):
        report = BaselineIdMap().map(np.array([5, 5, 6, 7])).report
        assert report.sync_events == 3
        assert report.add_ops == 0
        assert report.kernel_launches == 3

    def test_fused_has_no_syncs(self):
        report = FusedIdMap().map(np.array([5, 5, 6, 7])).report
        assert report.sync_events == 0
        assert report.add_ops == 3  # one atomicAdd per fresh local ID
        assert report.kernel_launches == 2

    def test_cpu_device(self):
        report = CpuIdMap().map(np.array([1, 2])).report
        assert report.device == "cpu"

    def test_fused_faster_than_baseline(self):
        ids = np.random.default_rng(1).integers(0, 30_000, size=100_000)
        t_base = BaselineIdMap().map(ids).report.modeled_time()
        t_fused = FusedIdMap().map(ids).report.modeled_time()
        assert t_fused < t_base
        # Paper band: roughly 2-3x on realistic batches.
        assert 1.3 < t_base / t_fused < 4.0

    def test_report_addition(self):
        a = FusedIdMap().map(np.array([1, 2])).report
        b = FusedIdMap().map(np.array([2, 3, 3])).report
        total = a + b
        assert total.num_input_ids == 5
        assert total.cas_ops == a.cas_ops + b.cas_ops

    def test_report_addition_device_mismatch(self):
        a = FusedIdMap().map(np.array([1])).report
        b = CpuIdMap().map(np.array([1])).report
        with pytest.raises(ValueError):
            a + b

    def test_modeled_time_components(self):
        report = IdMapReport(num_input_ids=10, num_unique=5, cas_ops=10,
                             probe_retries=2, add_ops=5, sync_events=0,
                             lookups=10, kernel_launches=2, device="gpu")
        cost = DEFAULT_COST_MODEL
        expected = (2 * cost.kernel_launch_s
                    + 17 / cost.atomic_ops_per_s
                    + 10 / cost.table_lookups_per_s)
        assert report.modeled_time() == pytest.approx(expected)

    def test_invalid_load_factor(self):
        with pytest.raises(ValueError):
            FusedIdMap(load_factor=0.0)
        with pytest.raises(ValueError):
            BaselineIdMap(load_factor=0.95)


class TestConcurrentFusedMap:
    """The lock-free invariants of Algorithm 2 under interleavings."""

    def test_invariants_hold(self):
        ids = np.array([3, 7, 3, 3, 12, 7, 99, 3, 12])
        table = simulate_concurrent_fused_map(ids, num_threads=4, rng=0)
        mapping = table.mapping()
        assert set(mapping.keys()) == {3, 7, 12, 99}
        assert sorted(mapping.values()) == [0, 1, 2, 3]
        assert table.local_id == 4

    @settings(max_examples=25, deadline=None)
    @given(
        ids=st.lists(st.integers(0, 40), min_size=1, max_size=60),
        threads=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    def test_invariants_property(self, ids, threads, seed):
        """Any interleaving yields a bijection with consecutive local IDs
        — the property the paper's synchronization-free design claims."""
        ids = np.array(ids)
        table = simulate_concurrent_fused_map(ids, num_threads=threads,
                                              rng=seed)
        mapping = table.mapping()
        distinct = set(int(i) for i in ids)
        assert set(mapping.keys()) == distinct
        assert sorted(mapping.values()) == list(range(len(distinct)))
        assert table.local_id == len(distinct)

    def test_lookup_after_concurrent_build(self):
        ids = np.random.default_rng(5).integers(0, 100, size=300)
        table = simulate_concurrent_fused_map(ids, num_threads=6, rng=2)
        mapping = table.mapping()
        for gid in np.unique(ids):
            assert table.lookup(int(gid)) == mapping[int(gid)]
