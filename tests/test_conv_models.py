"""Tests for GNN convolutions and the three evaluation models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import (
    Adam,
    GAT,
    GCN,
    GIN,
    Tensor,
    build_model,
    cross_entropy,
)
from repro.nn.conv import GATConv, GCNConv, GINConv
from repro.sampling import NeighborSampler
from repro.sampling.subgraph import LayerBlock


def toy_block() -> LayerBlock:
    """2 targets, 4 sources (targets first), 3 neighbor edges."""
    return LayerBlock(
        dst_global=np.array([10, 20]),
        src_global=np.array([10, 20, 30, 40]),
        edge_src=np.array([2, 3, 2]),
        edge_dst=np.array([0, 0, 1]),
    )


class TestGCNConv:
    def test_mean_with_self(self):
        conv = GCNConv(2, 2, rng=0)
        conv.linear.weight.data = np.eye(2, dtype=np.float32)
        conv.linear.bias.data = np.zeros(2, dtype=np.float32)
        x = Tensor(np.array([[1, 0], [0, 1], [4, 4], [2, 2]],
                            dtype=np.float32))
        out = conv(toy_block(), x)
        # Target 0: (x10 + x30 + x40) / 3; target 1: (x20 + x30) / 2.
        np.testing.assert_allclose(out.data[0], [7 / 3, 2.0], rtol=1e-5)
        np.testing.assert_allclose(out.data[1], [2.0, 2.5], rtol=1e-5)

    def test_output_shape(self):
        conv = GCNConv(2, 7, rng=1)
        out = conv(toy_block(), Tensor(np.ones((4, 2), dtype=np.float32)))
        assert out.shape == (2, 7)


class TestGINConv:
    def test_eps_zero_sums(self):
        conv = GINConv(2, 2, rng=0)
        x = Tensor(np.array([[1, 1], [2, 2], [3, 3], [4, 4]],
                            dtype=np.float32))
        block = toy_block()
        # Check the pre-MLP combination via the MLP input gradient trick:
        # instead, verify forward runs and differs from pure neighbor sum.
        out = conv(block, x)
        assert out.shape == (2, 2)

    def test_eps_is_trainable(self):
        conv = GINConv(2, 2, rng=0)
        params = conv.parameters()
        assert any(p is conv.eps for p in params)


class TestGATConv:
    def test_multi_head_concat_shape(self):
        conv = GATConv(3, head_dim=4, num_heads=5, rng=0)
        out = conv(toy_block(), Tensor(np.ones((4, 3), dtype=np.float32)))
        assert out.shape == (2, 20)

    def test_attention_is_convex_combination(self):
        """With identical source features, attention output equals the
        (transformed) feature regardless of weights: coefficients sum to 1."""
        conv = GATConv(2, head_dim=3, num_heads=1, rng=1)
        x_data = np.tile(np.array([[1.0, 2.0]], dtype=np.float32), (4, 1))
        out = conv(toy_block(), Tensor(x_data))
        z = x_data[0] @ conv.heads[0].weight.data
        np.testing.assert_allclose(out.data, np.tile(z, (2, 1)), rtol=1e-4)

    def test_invalid_heads(self):
        with pytest.raises(ValueError):
            GATConv(2, 2, num_heads=0)


@pytest.fixture()
def training_setup(tiny_graph, tiny_dataset):
    sampler = NeighborSampler(tiny_graph, (3, 4, 5), rng=0)
    seeds = tiny_dataset.train_ids[:64]
    subgraph = sampler.sample(seeds)
    features = tiny_dataset.features.gather(subgraph.input_nodes)
    labels = tiny_dataset.labels[seeds]
    return subgraph, features, labels


@pytest.mark.parametrize("name,cls", [("gcn", GCN), ("gin", GIN),
                                      ("gat", GAT)])
class TestModels:
    def test_factory_and_forward(self, name, cls, training_setup,
                                 tiny_dataset):
        subgraph, features, labels = training_setup
        model = build_model(name, tiny_dataset.feature_dim,
                            tiny_dataset.num_classes, hidden_dim=16)
        assert isinstance(model, cls)
        logits = model(subgraph, Tensor(features))
        assert logits.shape == (64, tiny_dataset.num_classes)

    def test_loss_decreases(self, name, cls, training_setup, tiny_dataset):
        subgraph, features, labels = training_setup
        model = build_model(name, tiny_dataset.feature_dim,
                            tiny_dataset.num_classes, hidden_dim=16, seed=1)
        opt = Adam(model.parameters(), lr=5e-3)
        losses = []
        for _ in range(8):
            logits = model(subgraph, Tensor(features))
            loss = cross_entropy(logits, labels)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0]

    def test_gradients_reach_all_params(self, name, cls, training_setup,
                                        tiny_dataset):
        subgraph, features, labels = training_setup
        model = build_model(name, tiny_dataset.feature_dim,
                            tiny_dataset.num_classes, hidden_dim=16)
        loss = cross_entropy(model(subgraph, Tensor(features)), labels)
        loss.backward()
        for p in model.parameters():
            assert p.grad is not None


class TestModelErrors:
    def test_layer_mismatch(self, training_setup, tiny_dataset):
        subgraph, features, _ = training_setup
        model = build_model("gcn", tiny_dataset.feature_dim,
                            tiny_dataset.num_classes, num_layers=2)
        with pytest.raises(ConfigError, match="hops"):
            model(subgraph, Tensor(features))

    def test_unknown_model(self):
        with pytest.raises(ConfigError):
            build_model("mlp", 4, 2)

    def test_deterministic_init(self, tiny_dataset):
        a = build_model("gcn", 8, 3, seed=5)
        b = build_model("gcn", 8, 3, seed=5)
        np.testing.assert_array_equal(a.convs[0].linear.weight.data,
                                      b.convs[0].linear.weight.data)
