"""Tests for the perf-regression gate (repro.obs.regress)."""

import copy
import json
import pathlib

import pytest

from repro.obs import regress

BASELINE_PATH = (pathlib.Path(__file__).resolve().parent.parent
                 / "benchmarks" / "results" / "baseline.json")


@pytest.fixture(scope="module")
def snapshot():
    """One run of the deterministic suite, shared by all tests here."""
    return regress.collect_benchmark_metrics()


class TestSuite:
    def test_snapshot_covers_every_subsystem(self, snapshot):
        names = {m["name"] for m in snapshot["metrics"]}
        assert "repro_phase_seconds" in names          # epoch driver
        assert "repro_idmap_cas_ops_total" in names    # sampling
        assert "repro_transfer_feature_bytes_total" in names  # transfer
        assert "repro_storage_page_hits_total" in names       # storage
        assert "repro_pipeline_stall_seconds_total" in names  # sim

    def test_suite_is_deterministic(self, snapshot):
        again = regress.collect_benchmark_metrics()
        assert (regress.flatten_snapshot(again)
                == regress.flatten_snapshot(snapshot))


class TestCommittedBaseline:
    def test_current_run_passes_committed_baseline(self, snapshot):
        """The gate itself: HEAD must match benchmarks/results/baseline.json."""
        with open(BASELINE_PATH) as handle:
            baseline = json.load(handle)
        violations = regress.check(snapshot, baseline)
        assert violations == [], "\n".join(
            regress.format_violation(v) for v in violations)


class TestCheck:
    def test_fresh_baseline_has_no_violations(self, snapshot):
        baseline = regress.build_baseline(snapshot)
        assert baseline["metrics"]
        assert regress.check(snapshot, baseline) == []

    def test_perturbation_beyond_tolerance_fails(self, snapshot):
        baseline = regress.build_baseline(snapshot, default_tolerance=0.05)
        name, entry = next(
            (n, e) for n, e in baseline["metrics"].items()
            if e["value"] > 0)
        tampered = copy.deepcopy(baseline)
        tampered["metrics"][name]["value"] = entry["value"] * 1.5
        violations = regress.check(snapshot, tampered)
        assert len(violations) == 1
        assert violations[0]["metric"] == name
        assert violations[0]["reason"] == "drift"
        assert "DRIFT" in regress.format_violation(violations[0])

    def test_perturbation_within_tolerance_passes(self, snapshot):
        baseline = regress.build_baseline(snapshot, default_tolerance=0.05)
        name, entry = next(
            (n, e) for n, e in baseline["metrics"].items()
            if e["value"] > 0)
        baseline["metrics"][name]["value"] = entry["value"] * 1.01
        assert regress.check(snapshot, baseline) == []

    def test_per_metric_tolerance_overrides_default(self, snapshot):
        baseline = regress.build_baseline(snapshot, default_tolerance=0.05)
        name, entry = next(
            (n, e) for n, e in baseline["metrics"].items()
            if e["value"] > 0)
        entry["value"] *= 1.2
        entry["tolerance"] = 0.5
        assert regress.check(snapshot, baseline) == []

    def test_missing_metric_is_a_violation(self, snapshot):
        baseline = regress.build_baseline(snapshot)
        baseline["metrics"]["made_up_metric_total"] = {"value": 42.0}
        violations = regress.check(snapshot, baseline)
        assert len(violations) == 1
        assert violations[0]["reason"] == "missing"
        assert "MISSING" in regress.format_violation(violations[0])

    def test_new_metrics_in_snapshot_are_not_violations(self, snapshot):
        baseline = regress.build_baseline(snapshot)
        del baseline["metrics"][next(iter(baseline["metrics"]))]
        assert regress.check(snapshot, baseline) == []


class TestCli:
    @pytest.fixture(autouse=True)
    def _stub_suite(self, snapshot, monkeypatch):
        # The CLI re-runs the suite; reuse the module fixture's result.
        monkeypatch.setattr(regress, "collect_benchmark_metrics",
                            lambda: copy.deepcopy(snapshot))

    def test_write_then_check(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert regress.main(["--baseline", str(baseline), "--write"]) == 0
        assert baseline.exists()
        assert regress.main(["--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "within tolerance" in out

    def test_check_fails_on_drift(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        regress.main(["--baseline", str(baseline_path), "--write"])
        with open(baseline_path) as handle:
            baseline = json.load(handle)
        name, entry = next(
            (n, e) for n, e in baseline["metrics"].items()
            if e["value"] > 0)
        entry["value"] *= 2
        with open(baseline_path, "w") as handle:
            json.dump(baseline, handle)
        assert regress.main(["--baseline", str(baseline_path)]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_missing_baseline_file(self, tmp_path, capsys):
        assert regress.main(
            ["--baseline", str(tmp_path / "nope.json")]) == 2
        assert "--write" in capsys.readouterr().err

    def test_snapshot_side_output(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        out = tmp_path / "snap.json"
        code = regress.main(["--baseline", str(baseline), "--write",
                             "--snapshot", str(out)])
        assert code == 0
        with open(out) as handle:
            written = json.load(handle)
        assert written["metrics"]
