"""Tests for the dataset registry and scaling logic."""

import numpy as np
import pytest

from repro.graph.datasets import DATASETS, Dataset, get_dataset
from helpers import make_spec


class TestRegistry:
    def test_all_five_paper_datasets_present(self):
        assert set(DATASETS) == {
            "reddit", "products", "mag", "igb", "papers100m"
        }

    def test_feature_dims_match_table6(self):
        dims = {name: spec.feature_dim for name, spec in DATASETS.items()}
        assert dims == {
            "reddit": 602, "products": 200, "mag": 100,
            "igb": 1024, "papers100m": 128,
        }

    def test_class_counts_match_table6(self):
        classes = {name: spec.num_classes for name, spec in DATASETS.items()}
        assert classes == {
            "reddit": 41, "products": 47, "mag": 8,
            "igb": 19, "papers100m": 172,
        }

    def test_get_dataset_memoized(self):
        a = get_dataset("reddit", seed=0)
        b = get_dataset("reddit", seed=0)
        assert a is b

    def test_get_dataset_unknown(self):
        with pytest.raises(KeyError, match="available"):
            get_dataset("nope")


class TestDataset:
    def test_construction(self, tiny_dataset):
        ds = tiny_dataset
        assert ds.num_nodes == 2000
        assert ds.feature_dim == 16
        assert len(ds.labels) == ds.num_nodes
        assert len(ds.train_ids) == 600
        assert np.all(np.diff(ds.train_ids) > 0)  # sorted unique

    def test_labels_are_communities(self, tiny_dataset):
        assert set(np.unique(tiny_dataset.labels)) <= set(range(5))

    def test_cache_budget_preserves_left_ratio(self):
        ds = Dataset(make_spec(left_memory_bytes=0), seed=0)
        assert ds.cache_budget_bytes() == 0
        ds2 = Dataset(make_spec(left_memory_bytes=10**15), seed=0)
        # Capped at the full table.
        assert ds2.cache_budget_bytes() == ds2.feature_table_bytes()

    def test_cache_budget_ratio_math(self, tiny_dataset):
        ratio = tiny_dataset.left_memory_ratio()
        expected = (tiny_dataset.spec.paper.left_memory_bytes
                    / tiny_dataset.paper_feature_table_bytes())
        assert ratio == pytest.approx(expected)

    def test_with_feature_dim(self, tiny_dataset):
        wide = tiny_dataset.with_feature_dim(64)
        assert wide.feature_dim == 64
        assert wide.graph is tiny_dataset.graph
        np.testing.assert_array_equal(wide.labels, tiny_dataset.labels)
        assert tiny_dataset.feature_dim == 16  # original untouched

    def test_materialize_features(self):
        ds = Dataset(make_spec(num_nodes=300), seed=1)
        before = ds.features.gather(np.arange(10))
        ds.materialize_features()
        after = ds.features.gather(np.arange(10))
        np.testing.assert_allclose(before, after)

    def test_same_seed_reproducible(self):
        a = Dataset(make_spec(), seed=3)
        b = Dataset(make_spec(), seed=3)
        np.testing.assert_array_equal(a.graph.indices, b.graph.indices)
        np.testing.assert_array_equal(a.train_ids, b.train_ids)

    def test_scale_property(self, tiny_dataset):
        assert tiny_dataset.spec.scale == pytest.approx(1 / 100)
