"""Tests for modules (Linear/MLP) and optimizers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, MLP, Tensor
from repro.nn.modules import Module


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(6, 3, rng=rng)
        out = layer(Tensor(np.ones((5, 6), dtype=np.float32)))
        assert out.shape == (5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_glorot_scale(self):
        layer = Linear(100, 100, rng=0)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= bound + 1e-6

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 4)


class TestModule:
    def test_parameters_recursion(self, rng):
        mlp = MLP(4, 8, 2, rng=rng)
        params = mlp.parameters()
        assert len(params) == 4  # two weights + two biases
        assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2
        assert mlp.parameter_bytes() == mlp.num_parameters() * 4

    def test_parameters_deduplicated(self):
        class Shared(Module):
            def __init__(self):
                self.a = Tensor(np.ones(2), requires_grad=True)
                self.b = self.a

        assert len(Shared().parameters()) == 1

    def test_parameters_in_lists(self, rng):
        class Stack(Module):
            def __init__(self):
                self.layers = [Linear(2, 2, rng=rng) for _ in range(3)]

        assert len(Stack().parameters()) == 6

    def test_train_eval_propagates(self, rng):
        class Outer(Module):
            def __init__(self):
                self.inner = MLP(2, 2, 2, rng=rng)

        model = Outer()
        model.eval()
        assert not model.inner.training
        model.train()
        assert model.inner.training

    def test_zero_grad(self, rng):
        mlp = MLP(3, 4, 2, rng=rng)
        out = mlp(Tensor(np.ones((2, 3), dtype=np.float32)))
        out.sum().backward()
        assert mlp.fc1.weight.grad is not None
        mlp.zero_grad()
        assert mlp.fc1.weight.grad is None


def quadratic_problem():
    """Minimize ||x - t||^2 from a fixed start."""
    target = np.array([1.0, -2.0, 0.5], dtype=np.float32)
    x = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)

    def loss_fn():
        diff = x - Tensor(target)
        return (diff * diff).sum()

    return x, target, loss_fn


class TestSGD:
    def test_converges(self):
        x, target, loss_fn = quadratic_problem()
        opt = SGD([x], lr=0.1)
        for _ in range(100):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(x.data, target, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            x, _, loss_fn = quadratic_problem()
            opt = SGD([x], lr=0.02, momentum=momentum)
            for _ in range(30):
                loss = loss_fn()
                opt.zero_grad()
                loss.backward()
                opt.step()
            return float(loss_fn().data)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        x = Tensor(np.ones(2, dtype=np.float32) * 10, requires_grad=True)
        opt = SGD([x], lr=0.1, weight_decay=1.0)
        x.grad = np.zeros(2, dtype=np.float32)
        opt.step()
        assert np.all(np.abs(x.data) < 10)

    def test_skips_none_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        SGD([x], lr=0.1).step()  # no grad: no-op, no crash
        np.testing.assert_allclose(x.data, 1.0)

    def test_invalid_lr(self):
        x = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([x], lr=0.0)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges(self):
        x, target, loss_fn = quadratic_problem()
        opt = Adam([x], lr=0.1)
        for _ in range(200):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(x.data, target, atol=1e-2)

    def test_state_bytes(self):
        x = Tensor(np.ones(10, dtype=np.float32), requires_grad=True)
        opt = Adam([x])
        assert opt.state_bytes() == 2 * 40

    def test_bias_correction_first_step(self):
        x = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        opt = Adam([x], lr=0.5)
        x.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        # First Adam step moves ~lr regardless of gradient scale.
        assert abs(x.data[0] + 0.5) < 1e-4
