"""Tests for the chrome-trace exporter and iteration logging."""

import json

import pytest

from repro.config import RunConfig
from repro.frameworks import DGLFramework
from repro.metrics.trace import PHASES, epoch_trace_events, write_chrome_trace


@pytest.fixture()
def report(tiny_dataset):
    config = RunConfig(batch_size=64, fanouts=(3, 4), num_gpus=2,
                       hidden_dim=8)
    return DGLFramework().run_epoch(tiny_dataset, config)


class TestIterationLog:
    def test_recorded_per_trainer(self, report):
        iterations = report.extras["iterations"]
        assert len(iterations) == report.extras["num_trainers"] == 2
        assert sum(len(lane) for lane in iterations) == report.num_batches

    def test_phase_sums_match_report(self, report):
        iterations = report.extras["iterations"]
        total_sample = sum(t[0] for lane in iterations for t in lane)
        total_io = sum(t[1] for lane in iterations for t in lane)
        total_compute = sum(t[2] for lane in iterations for t in lane)
        assert total_sample == pytest.approx(report.phases.sample)
        assert total_io == pytest.approx(report.phases.memory_io)
        assert total_compute == pytest.approx(report.phases.compute)


class TestTraceEvents:
    def test_event_fields(self, report):
        events = epoch_trace_events(report)
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] > 0
            assert event["cat"] in PHASES
            assert event["tid"].startswith("gpu")

    def test_lanes_do_not_overlap(self, report):
        events = epoch_trace_events(report)
        by_lane = {}
        for event in events:
            by_lane.setdefault(event["tid"], []).append(event)
        for lane_events in by_lane.values():
            lane_events.sort(key=lambda e: e["ts"])
            for a, b in zip(lane_events, lane_events[1:]):
                assert a["ts"] + a["dur"] <= b["ts"] + 1e-6

    def test_total_duration_matches_phases(self, report):
        events = epoch_trace_events(report)
        total = sum(e["dur"] for e in events) / 1e6
        # Allreduce is a collective: every trainer lane carries a span for
        # each sync, while phases.allreduce counts each sync once.
        trainers = report.extras["num_trainers"]
        expected = (report.phases.sample + report.phases.memory_io
                    + report.phases.compute
                    + trainers * report.phases.allreduce)
        assert total == pytest.approx(expected, rel=1e-6)

    def test_allreduce_spans_present(self, report):
        assert report.phases.allreduce > 0
        events = [e for e in epoch_trace_events(report)
                  if e["cat"] == "allreduce"]
        assert events
        lanes = {e["tid"] for e in events}
        assert lanes == {f"gpu{t}"
                         for t in range(report.extras["num_trainers"])}
        total = sum(e["dur"] for e in events) / 1e6
        expected = report.extras["num_trainers"] * report.phases.allreduce
        assert total == pytest.approx(expected, rel=1e-6)

    def test_empty_report(self):
        from repro.frameworks.base import EpochReport, PhaseTimes
        from repro.core.memory_aware import ComputeReport
        from repro.transfer.loader import TransferReport

        empty = EpochReport(
            framework="x", dataset="d", model="gcn", num_batches=0,
            phases=PhaseTimes(), epoch_time=0.0,
            transfer=TransferReport(), compute=ComputeReport(),
        )
        assert epoch_trace_events(empty) == []


class TestTimelineReconciles:
    """Every framework's trace must account for its modeled epoch time:
    the latest span end equals ``epoch_time`` and no lane exceeds it."""

    def _assert_reconciles(self, report):
        events = epoch_trace_events(report)
        assert events
        ends_by_lane = {}
        for event in events:
            end = (event["ts"] + event["dur"]) / 1e6
            lane = event["tid"]
            ends_by_lane[lane] = max(ends_by_lane.get(lane, 0.0), end)
        latest = max(ends_by_lane.values())
        assert latest == pytest.approx(report.epoch_time, abs=1e-6)
        for lane_end in ends_by_lane.values():
            assert lane_end <= report.epoch_time + 1e-6
        return ends_by_lane

    def test_lockstep_lanes_end_at_epoch_time(self, report):
        # Lockstep data parallelism: every trainer attends every sync, so
        # each lane's final span ends exactly at the epoch makespan.
        ends = self._assert_reconciles(report)
        for lane_end in ends.values():
            assert lane_end == pytest.approx(report.epoch_time, abs=1e-6)

    def test_gnnlab_pipeline_reconciles(self, tiny_dataset):
        from repro.frameworks import GNNLabFramework

        config = RunConfig(batch_size=64, fanouts=(3, 4), num_gpus=3,
                           hidden_dim=8)
        report = GNNLabFramework().run_epoch(tiny_dataset, config)
        ends = self._assert_reconciles(report)
        # The factored sampler gets its own lane that finishes early
        # (production runs ahead of consumption).
        assert "sampler" in ends
        assert ends["sampler"] < report.epoch_time

    def test_out_of_core_pipeline_reconciles(self, tiny_dataset):
        from repro.frameworks import FRAMEWORKS

        config = RunConfig(batch_size=64, fanouts=(3, 4), num_gpus=2,
                           hidden_dim=8)
        report = FRAMEWORKS["fastgl-ooc"]().run_epoch(tiny_dataset, config)
        ends = self._assert_reconciles(report)
        assert {"sampler", "nvme", "trainers"} <= set(ends)


class TestWriteTrace:
    def test_writes_valid_json(self, report, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, report)
        assert count > 0
        with open(path) as handle:
            payload = json.load(handle)
        assert len(payload["traceEvents"]) == count
        assert payload["otherData"]["framework"] == "dgl"
