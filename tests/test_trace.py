"""Tests for the chrome-trace exporter and iteration logging."""

import json

import pytest

from repro.config import RunConfig
from repro.frameworks import DGLFramework
from repro.metrics.trace import PHASES, epoch_trace_events, write_chrome_trace


@pytest.fixture()
def report(tiny_dataset):
    config = RunConfig(batch_size=64, fanouts=(3, 4), num_gpus=2,
                       hidden_dim=8)
    return DGLFramework().run_epoch(tiny_dataset, config)


class TestIterationLog:
    def test_recorded_per_trainer(self, report):
        iterations = report.extras["iterations"]
        assert len(iterations) == report.extras["num_trainers"] == 2
        assert sum(len(lane) for lane in iterations) == report.num_batches

    def test_phase_sums_match_report(self, report):
        iterations = report.extras["iterations"]
        total_sample = sum(t[0] for lane in iterations for t in lane)
        total_io = sum(t[1] for lane in iterations for t in lane)
        total_compute = sum(t[2] for lane in iterations for t in lane)
        assert total_sample == pytest.approx(report.phases.sample)
        assert total_io == pytest.approx(report.phases.memory_io)
        assert total_compute == pytest.approx(report.phases.compute)


class TestTraceEvents:
    def test_event_fields(self, report):
        events = epoch_trace_events(report)
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] > 0
            assert event["cat"] in PHASES
            assert event["tid"].startswith("gpu")

    def test_lanes_do_not_overlap(self, report):
        events = epoch_trace_events(report)
        by_lane = {}
        for event in events:
            by_lane.setdefault(event["tid"], []).append(event)
        for lane_events in by_lane.values():
            lane_events.sort(key=lambda e: e["ts"])
            for a, b in zip(lane_events, lane_events[1:]):
                assert a["ts"] + a["dur"] <= b["ts"] + 1e-6

    def test_total_duration_matches_phases(self, report):
        events = epoch_trace_events(report)
        total = sum(e["dur"] for e in events) / 1e6
        expected = (report.phases.sample + report.phases.memory_io
                    + report.phases.compute)
        assert total == pytest.approx(expected, rel=1e-6)

    def test_empty_report(self):
        from repro.frameworks.base import EpochReport, PhaseTimes
        from repro.core.memory_aware import ComputeReport
        from repro.transfer.loader import TransferReport

        empty = EpochReport(
            framework="x", dataset="d", model="gcn", num_batches=0,
            phases=PhaseTimes(), epoch_time=0.0,
            transfer=TransferReport(), compute=ComputeReport(),
        )
        assert epoch_trace_events(empty) == []


class TestWriteTrace:
    def test_writes_valid_json(self, report, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, report)
        assert count > 0
        with open(path) as handle:
            payload = json.load(handle)
        assert len(payload["traceEvents"]) == count
        assert payload["otherData"]["framework"] == "dgl"
