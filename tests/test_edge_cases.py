"""Edge-case and worked-example tests across the stack."""

import numpy as np
import pytest

from repro.config import RunConfig
from repro.core.match import MatchState
from repro.nn import Tensor, a3_aggregate, cross_entropy
from repro.sampling import NeighborSampler


class TestPaperFig6Example:
    """The paper's Fig. 6 Match walk-through: after training SubG_1 with
    nodes {0, 3, 4, 5, 7}, loading SubG_2 = {0, 3, 4, 10, 12} moves only
    nodes 10 and 12 over PCIe, reusing 0, 3 and 4."""

    def test_match_walkthrough(self):
        state = MatchState()
        state.step(np.array([0, 3, 4, 5, 7]))
        result = state.step(np.array([0, 3, 4, 10, 12]))
        np.testing.assert_array_equal(np.sort(result.overlap_ids),
                                      [0, 3, 4])
        np.testing.assert_array_equal(np.sort(result.load_ids), [10, 12])


class TestZeroEdgeAggregation:
    def test_a3_with_no_edges(self):
        x = Tensor(np.ones((3, 4), dtype=np.float32), requires_grad=True)
        w = Tensor(np.zeros(0, dtype=np.float32))
        out = a3_aggregate(x, np.zeros(0, dtype=np.int64),
                           np.zeros(0, dtype=np.int64), w, num_dst=2)
        np.testing.assert_array_equal(out.data, np.zeros((2, 4)))
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, np.zeros((3, 4)))

    def test_model_on_isolated_seeds(self):
        """Seeds with zero degree still produce logits (self edges)."""
        from repro.graph.csr import CSRGraph
        from repro.nn import build_model

        graph = CSRGraph(indptr=np.zeros(6, dtype=np.int64),
                         indices=np.array([], dtype=np.int64))
        sampler = NeighborSampler(graph, (3,), rng=0)
        sg = sampler.sample(np.array([0, 2, 4]))
        model = build_model("gcn", 4, 2, hidden_dim=4, num_layers=1)
        logits = model(sg, Tensor(np.ones((sg.num_nodes, 4),
                                          dtype=np.float32)))
        assert logits.shape == (3, 2)
        assert np.isfinite(logits.data).all()


class TestSingleClassLoss:
    def test_one_class_dataset(self):
        logits = Tensor(np.zeros((4, 1), dtype=np.float32),
                        requires_grad=True)
        loss = cross_entropy(logits, np.zeros(4, dtype=np.int64))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-6)


class TestEightGpuRuns:
    def test_gnnlab_two_samplers_end_to_end(self, tiny_dataset):
        from repro.frameworks import GNNLabFramework

        config = RunConfig(batch_size=64, fanouts=(3, 4), num_gpus=8,
                           hidden_dim=8)
        report = GNNLabFramework().run_epoch(tiny_dataset, config)
        assert report.epoch_time > 0
        # 8 GPUs -> 2 samplers, 6 trainers.
        assert report.extras["num_trainers"] == 6

    def test_dgl_eight_gpus_faster_than_two(self, tiny_dataset):
        from repro.frameworks import DGLFramework

        two = DGLFramework().run_epoch(
            tiny_dataset, RunConfig(batch_size=64, fanouts=(3, 4),
                                    num_gpus=2, hidden_dim=8))
        eight = DGLFramework().run_epoch(
            tiny_dataset, RunConfig(batch_size=64, fanouts=(3, 4),
                                    num_gpus=8, hidden_dim=8))
        assert eight.epoch_time < two.epoch_time


class TestBatchLargerThanTrainSet:
    def test_single_giant_batch(self, tiny_dataset):
        from repro.frameworks import FastGLFramework

        config = RunConfig(batch_size=10_000, fanouts=(3,), hidden_dim=8,
                           num_gpus=1)
        report = FastGLFramework().run_epoch(tiny_dataset, config)
        assert report.num_batches == 1


class TestHugeGlobalIds:
    """The paper's §4.3 discussion: 64-bit atomics support up to 2^64
    nodes. The ID map must handle IDs far beyond int32."""

    def test_fused_map_with_2_pow_40_ids(self):
        from repro.sampling import FusedIdMap

        base = np.int64(1) << 40
        ids = np.array([base + 5, base + 9, base + 5, base + 123456789],
                       dtype=np.int64)
        result = FusedIdMap().map(ids)
        assert len(result.unique_globals) == 3
        np.testing.assert_array_equal(
            result.unique_globals[result.locals_of_input], ids
        )

    def test_exact_table_with_huge_ids(self):
        from repro.sampling.idmap.hash_table import ExactOpenAddressTable

        table = ExactOpenAddressTable(8)
        huge = (1 << 40) + 3
        table.fused_map_insert(huge)
        table.fused_map_insert(huge)
        assert table.mapping() == {huge: 0}
