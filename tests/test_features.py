"""Tests for the feature stores."""

import numpy as np
import pytest

from repro.graph.features import (
    HashFeatureStore,
    MaterializedFeatureStore,
    PlantedFeatureStore,
)


class TestHashFeatureStore:
    def test_deterministic(self):
        store = HashFeatureStore(100, 8, seed=3)
        a = store.gather(np.array([5, 9]))
        b = store.gather(np.array([5, 9]))
        np.testing.assert_array_equal(a, b)

    def test_rows_differ(self):
        store = HashFeatureStore(100, 8, seed=3)
        rows = store.gather(np.arange(50))
        assert len(np.unique(rows.round(6), axis=0)) == 50

    def test_bounded_and_centered(self):
        store = HashFeatureStore(1000, 32, seed=1)
        rows = store.gather(np.arange(1000))
        assert rows.min() >= -0.5 and rows.max() <= 0.5
        assert abs(rows.mean()) < 0.02

    def test_bytes_accounting(self):
        store = HashFeatureStore(10, 16)
        assert store.bytes_per_node == 64
        assert store.total_bytes == 640

    def test_out_of_range(self):
        store = HashFeatureStore(10, 4)
        with pytest.raises(IndexError):
            store.gather(np.array([10]))
        with pytest.raises(IndexError):
            store.gather(np.array([-1]))

    def test_seed_changes_features(self):
        a = HashFeatureStore(10, 4, seed=0).gather(np.arange(10))
        b = HashFeatureStore(10, 4, seed=1).gather(np.arange(10))
        assert not np.allclose(a, b)


class TestMaterializedFeatureStore:
    def test_gather_is_table_rows(self):
        table = np.arange(12, dtype=np.float32).reshape(4, 3)
        store = MaterializedFeatureStore(table)
        np.testing.assert_array_equal(store.gather(np.array([2, 0])),
                                      table[[2, 0]])

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            MaterializedFeatureStore(np.zeros(5))

    def test_preserves_float16(self):
        table = np.arange(12, dtype=np.float16).reshape(4, 3)
        store = MaterializedFeatureStore(table)
        assert store.dtype == np.float16
        assert store.bytes_per_node == 3 * 2
        assert store.gather(np.array([1])).dtype == np.float16

    def test_promotes_non_float(self):
        store = MaterializedFeatureStore(np.arange(12).reshape(4, 3))
        assert store.dtype == np.float32


class TestMaterializeDtype:
    def test_float16_round_trip(self):
        """materialize() must honor the store's dtype, not force float32."""
        store = HashFeatureStore(64, 8, seed=7, dtype=np.float16)
        assert store.dtype == np.float16
        mat = store.materialize(chunk=10)
        assert mat.dtype == np.float16
        assert mat.table.dtype == np.float16
        ids = np.array([0, 63, 5, 5, 31])
        np.testing.assert_array_equal(mat.gather(ids), store.gather(ids))
        # Halved row bytes flow into the byte accounting.
        assert mat.bytes_per_node == store.bytes_per_node == 8 * 2

    def test_float32_default_unchanged(self):
        store = HashFeatureStore(16, 4, seed=1)
        assert store.materialize().dtype == np.float32


class TestPlantedFeatureStore:
    def test_label_correlation(self):
        """Same-class rows are closer to their centroid than other
        centroids on average — the learnable signal."""
        labels = np.repeat(np.arange(4), 50)
        store = PlantedFeatureStore(labels, dim=16, noise=0.5, seed=0)
        rows = store.gather(np.arange(200))
        dists = np.linalg.norm(
            rows[:, None, :] - store.centroids[None, :, :], axis=2
        )
        own = dists[np.arange(200), labels]
        other = (dists.sum(axis=1) - own) / 3
        assert (own < other).mean() > 0.8

    def test_deterministic(self):
        labels = np.zeros(10, dtype=np.int64)
        a = PlantedFeatureStore(labels, 8, seed=2).gather(np.arange(10))
        b = PlantedFeatureStore(labels, 8, seed=2).gather(np.arange(10))
        np.testing.assert_array_equal(a, b)

    def test_materialize_equals_gather(self):
        labels = np.array([0, 1, 1, 2])
        store = PlantedFeatureStore(labels, 6, seed=5)
        mat = store.materialize(chunk=3)
        np.testing.assert_allclose(mat.gather(np.arange(4)),
                                   store.gather(np.arange(4)))

    def test_noise_scales_spread(self):
        labels = np.zeros(100, dtype=np.int64)
        quiet = PlantedFeatureStore(labels, 8, noise=0.1, seed=1)
        loud = PlantedFeatureStore(labels, 8, noise=2.0, seed=1)
        sq = quiet.gather(np.arange(100)).std()
        sl = loud.gather(np.arange(100)).std()
        assert sl > 3 * sq
