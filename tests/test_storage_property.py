"""Property test: the storage tier is a transparent view of the table.

Whatever the page size, cache policy, or request order, gathering through
:class:`StorageBackedFeatureStore` must return bit-identical rows to
gathering straight from the in-memory table — paging and caching may only
change *when* bytes move, never *which* values arrive.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.features import HashFeatureStore
from repro.storage import (
    LRUPageCache,
    PartitionAwarePageCache,
    StorageBackedFeatureStore,
    partition_page_hotness,
)

NUM_NODES = 96
DIM = 6


def _backing(seed: int) -> HashFeatureStore:
    return HashFeatureStore(NUM_NODES, DIM, seed=seed)


@settings(max_examples=60, deadline=None)
@given(
    ids=st.lists(st.integers(0, NUM_NODES - 1), min_size=0, max_size=200),
    page_bytes=st.sampled_from([1, 32, 64, 256, 1024, 65536]),
    seed=st.integers(0, 3),
)
def test_gather_matches_materialized(ids, page_bytes, seed):
    backing = _backing(seed)
    store = StorageBackedFeatureStore(backing, page_bytes=page_bytes)
    expected = backing.materialize().gather(np.array(ids, dtype=np.int64))
    got = store.gather(np.array(ids, dtype=np.int64))
    np.testing.assert_array_equal(got, expected)
    assert got.dtype == expected.dtype


@settings(max_examples=30, deadline=None)
@given(
    batches=st.lists(
        st.lists(st.integers(0, NUM_NODES - 1), min_size=1, max_size=50),
        min_size=1, max_size=8,
    ),
    capacity=st.integers(1, 8),
    partition_aware=st.booleans(),
)
def test_gather_correct_under_tiny_cache(batches, capacity, partition_aware):
    """Eviction pressure and pinning must never corrupt the returned rows."""
    backing = _backing(0)
    store = StorageBackedFeatureStore(backing, page_bytes=64)
    if partition_aware:
        hotness = partition_page_hotness(
            store.page_store,
            partition_of_node=np.arange(NUM_NODES) % 4,
            train_ids=np.arange(0, NUM_NODES, 3),
        )
        store.attach_cache(PartitionAwarePageCache(capacity, hotness))
    else:
        store.attach_cache(LRUPageCache(capacity))
    table = backing.materialize()
    for ids in batches:
        ids = np.array(ids, dtype=np.int64)
        np.testing.assert_array_equal(store.gather(ids), table.gather(ids))
