"""Tests for the Greedy Reorder strategy (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reorder import (
    chain_match_score,
    greedy_reorder,
    match_degree_matrix,
    optimal_reorder,
)


def random_matrix(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = rng.random((n, n))
    m = (m + m.T) / 2
    np.fill_diagonal(m, 0.0)
    return m


class TestMatchDegreeMatrix:
    def test_symmetric_zero_diagonal(self):
        sets = [np.array([1, 2, 3]), np.array([2, 3, 4]), np.array([9])]
        m = match_degree_matrix(sets)
        np.testing.assert_allclose(m, m.T)
        np.testing.assert_array_equal(np.diag(m), 0.0)

    def test_values(self):
        sets = [np.array([1, 2, 3]), np.array([2, 3, 4, 5])]
        m = match_degree_matrix(sets)
        assert m[0, 1] == pytest.approx(2 / 3)

    def test_empty_set_entry(self):
        sets = [np.array([], dtype=np.int64), np.array([1])]
        m = match_degree_matrix(sets)
        assert m[0, 1] == 0.0


class TestGreedyReorder:
    def test_is_permutation_anchored_at_zero(self):
        m = random_matrix(7, seed=0)
        order = greedy_reorder(m)
        assert sorted(order) == list(range(7))
        assert order[0] == 0

    def test_greedy_invariant(self):
        """Each placed batch has the max match degree to its predecessor
        among the then-remaining batches (Algorithm 1, line 7)."""
        m = random_matrix(8, seed=1)
        order = greedy_reorder(m)
        remaining = set(range(1, 8))
        z = 0
        for nxt in order[1:]:
            best = max(remaining, key=lambda k: m[z, k])
            assert m[z, nxt] == pytest.approx(m[z, best])
            remaining.remove(nxt)
            z = nxt

    def test_known_example(self):
        """The paper's Fig. 6 situation: m13 > m12 -> SubG3 runs second."""
        m = np.zeros((3, 3))
        m[0, 1] = m[1, 0] = 0.4   # m12
        m[0, 2] = m[2, 0] = 0.8   # m13
        m[1, 2] = m[2, 1] = 0.5
        assert greedy_reorder(m) == [0, 2, 1]

    def test_trivial_sizes(self):
        assert greedy_reorder(np.zeros((0, 0))) == []
        assert greedy_reorder(np.zeros((1, 1))) == [0]
        assert greedy_reorder(np.zeros((2, 2))) == [0, 1]

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            greedy_reorder(np.zeros((2, 3)))

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(3, 7), seed=st.integers(0, 100))
    def test_greedy_at_most_optimal(self, n, seed):
        """Property: greedy's chain score never exceeds the exhaustive
        optimum, and both are valid permutations anchored at 0."""
        m = random_matrix(n, seed)
        greedy = greedy_reorder(m)
        best = optimal_reorder(m)
        assert chain_match_score(m, greedy) <= (
            chain_match_score(m, best) + 1e-12
        )
        assert sorted(best) == list(range(n)) and best[0] == 0

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(3, 8), seed=st.integers(0, 100))
    def test_greedy_first_hop_is_best(self, n, seed):
        m = random_matrix(n, seed)
        order = greedy_reorder(m)
        assert m[0, order[1]] == pytest.approx(m[0].max())


class TestChainScoreAndOptimal:
    def test_chain_score(self):
        m = random_matrix(4, seed=3)
        order = [0, 2, 1, 3]
        expected = m[0, 2] + m[2, 1] + m[1, 3]
        assert chain_match_score(m, order) == pytest.approx(expected)

    def test_optimal_beats_identity(self):
        m = random_matrix(6, seed=4)
        assert chain_match_score(m, optimal_reorder(m)) >= (
            chain_match_score(m, list(range(6)))
        )

    def test_optimal_unanchored_at_least_anchored(self):
        m = random_matrix(5, seed=5)
        anchored = chain_match_score(m, optimal_reorder(m, fix_first=True))
        free = chain_match_score(m, optimal_reorder(m, fix_first=False))
        assert free >= anchored - 1e-12

    def test_optimal_size_guard(self):
        with pytest.raises(ValueError):
            optimal_reorder(np.zeros((11, 11)))

    def test_optimal_empty(self):
        assert optimal_reorder(np.zeros((0, 0))) == []
