"""Tests for the Greedy Reorder strategy (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reorder import (
    chain_match_score,
    greedy_reorder,
    greedy_reorder_legacy,
    match_degree_matrix,
    match_degree_matrix_legacy,
    optimal_reorder,
)


def random_matrix(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = rng.random((n, n))
    m = (m + m.T) / 2
    np.fill_diagonal(m, 0.0)
    return m


class TestMatchDegreeMatrix:
    def test_symmetric_zero_diagonal(self):
        sets = [np.array([1, 2, 3]), np.array([2, 3, 4]), np.array([9])]
        m = match_degree_matrix(sets)
        np.testing.assert_allclose(m, m.T)
        np.testing.assert_array_equal(np.diag(m), 0.0)

    def test_values(self):
        sets = [np.array([1, 2, 3]), np.array([2, 3, 4, 5])]
        m = match_degree_matrix(sets)
        assert m[0, 1] == pytest.approx(2 / 3)

    def test_empty_set_entry(self):
        sets = [np.array([], dtype=np.int64), np.array([1])]
        m = match_degree_matrix(sets)
        assert m[0, 1] == 0.0


class TestGreedyReorder:
    def test_is_permutation_anchored_at_zero(self):
        m = random_matrix(7, seed=0)
        order = greedy_reorder(m)
        assert sorted(order) == list(range(7))
        assert order[0] == 0

    def test_greedy_invariant(self):
        """Each placed batch has the max match degree to its predecessor
        among the then-remaining batches (Algorithm 1, line 7)."""
        m = random_matrix(8, seed=1)
        order = greedy_reorder(m)
        remaining = set(range(1, 8))
        z = 0
        for nxt in order[1:]:
            best = max(remaining, key=lambda k: m[z, k])
            assert m[z, nxt] == pytest.approx(m[z, best])
            remaining.remove(nxt)
            z = nxt

    def test_known_example(self):
        """The paper's Fig. 6 situation: m13 > m12 -> SubG3 runs second."""
        m = np.zeros((3, 3))
        m[0, 1] = m[1, 0] = 0.4   # m12
        m[0, 2] = m[2, 0] = 0.8   # m13
        m[1, 2] = m[2, 1] = 0.5
        assert greedy_reorder(m) == [0, 2, 1]

    def test_trivial_sizes(self):
        assert greedy_reorder(np.zeros((0, 0))) == []
        assert greedy_reorder(np.zeros((1, 1))) == [0]
        assert greedy_reorder(np.zeros((2, 2))) == [0, 1]

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            greedy_reorder(np.zeros((2, 3)))

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(3, 7), seed=st.integers(0, 100))
    def test_greedy_at_most_optimal(self, n, seed):
        """Property: greedy's chain score never exceeds the exhaustive
        optimum, and both are valid permutations anchored at 0."""
        m = random_matrix(n, seed)
        greedy = greedy_reorder(m)
        best = optimal_reorder(m)
        assert chain_match_score(m, greedy) <= (
            chain_match_score(m, best) + 1e-12
        )
        assert sorted(best) == list(range(n)) and best[0] == 0

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(3, 8), seed=st.integers(0, 100))
    def test_greedy_first_hop_is_best(self, n, seed):
        m = random_matrix(n, seed)
        order = greedy_reorder(m)
        assert m[0, order[1]] == pytest.approx(m[0].max())


def _random_node_sets(count: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 500, size=rng.integers(0, 40))
            for _ in range(count)]


class TestTieBreaking:
    """The documented tie rule: the lowest batch index wins every tie.

    This is ``np.argmax`` semantics (first occurrence of the maximum)
    and both the blocked top-k walk and the kept legacy sweep must
    reproduce it exactly — it is what makes reorders reproducible
    across machines and transports.
    """

    def test_constructed_tie_lowest_index_wins(self):
        # Batches 1, 2 and 3 all tie for the first hop from batch 0;
        # index 1 must be chosen, then 2, then 3.
        m = np.zeros((4, 4))
        for i in (1, 2, 3):
            m[0, i] = m[i, 0] = 0.5
        assert greedy_reorder(m) == [0, 1, 2, 3]
        assert greedy_reorder_legacy(m) == [0, 1, 2, 3]

    def test_all_equal_matrix_is_identity_order(self):
        m = np.full((6, 6), 0.25)
        np.fill_diagonal(m, 0.0)
        expected = list(range(6))
        assert greedy_reorder(m) == expected
        assert greedy_reorder_legacy(m) == expected

    def test_tie_consistent_with_optimal_oracle(self):
        """On a tie-heavy matrix the greedy chain must score exactly
        what the exhaustive oracle scores for the greedy's own order —
        i.e. the pinned tie-break picks a well-defined chain, and the
        same one as the legacy sweep."""
        rng = np.random.default_rng(7)
        for n in range(2, 9):
            m = rng.integers(0, 3, size=(n, n)).astype(float)
            m = (m + m.T) / 2
            np.fill_diagonal(m, 0.0)
            blocked = greedy_reorder(m)
            legacy = greedy_reorder_legacy(m)
            assert blocked == legacy
            best = optimal_reorder(m)
            assert chain_match_score(m, blocked) <= (
                chain_match_score(m, best) + 1e-12
            )

    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(0, 24), seed=st.integers(0, 500),
           levels=st.sampled_from([2, 3, 1000]))
    def test_blocked_equals_legacy_random_matrices(self, n, seed, levels):
        """Property: the blocked top-k walk is bit-identical to the kept
        O(n^2) sweep — ties included (small ``levels`` forces many)."""
        rng = np.random.default_rng(seed)
        m = rng.integers(0, levels, size=(n, n)).astype(float) / levels
        m = (m + m.T) / 2
        if n:
            np.fill_diagonal(m, 0.0)
        assert greedy_reorder(m) == greedy_reorder_legacy(m)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(2, 20), seed=st.integers(0, 200),
           block=st.sampled_from([1, 2, 3, 8, 64]))
    def test_block_size_never_changes_the_order(self, n, seed, block):
        m = random_matrix(n, seed)
        assert greedy_reorder(m, block=block) == greedy_reorder_legacy(m)


class TestLegacyOracles:
    def test_legacy_node_set_path_matches_blocked(self):
        sets = _random_node_sets(12, seed=3)
        assert greedy_reorder_legacy(sets) == greedy_reorder(sets)

    def test_matrix_kernels_bit_identical(self):
        sets = _random_node_sets(20, seed=5)
        np.testing.assert_array_equal(match_degree_matrix(sets),
                                      match_degree_matrix_legacy(sets))

    @settings(max_examples=40, deadline=None)
    @given(count=st.integers(0, 15), seed=st.integers(0, 300))
    def test_matrix_kernels_bit_identical_property(self, count, seed):
        sets = _random_node_sets(count, seed)
        np.testing.assert_array_equal(match_degree_matrix(sets),
                                      match_degree_matrix_legacy(sets))


class TestChainScoreAndOptimal:
    def test_chain_score(self):
        m = random_matrix(4, seed=3)
        order = [0, 2, 1, 3]
        expected = m[0, 2] + m[2, 1] + m[1, 3]
        assert chain_match_score(m, order) == pytest.approx(expected)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(0, 12), seed=st.integers(0, 100))
    def test_chain_score_matches_python_loop(self, n, seed):
        """The vectorized fancy-index sum equals the definitional
        Python loop over consecutive pairs."""
        m = random_matrix(max(n, 0), seed)
        order = list(np.random.default_rng(seed).permutation(n))
        expected = sum(
            m[order[i], order[i + 1]] for i in range(len(order) - 1)
        ) if len(order) >= 2 else 0.0
        assert chain_match_score(m, order) == pytest.approx(float(expected))

    def test_chain_score_short_chains_are_zero(self):
        m = random_matrix(3, seed=0)
        assert chain_match_score(m, []) == 0.0
        assert chain_match_score(m, [1]) == 0.0

    def test_optimal_beats_identity(self):
        m = random_matrix(6, seed=4)
        assert chain_match_score(m, optimal_reorder(m)) >= (
            chain_match_score(m, list(range(6)))
        )

    def test_optimal_unanchored_at_least_anchored(self):
        m = random_matrix(5, seed=5)
        anchored = chain_match_score(m, optimal_reorder(m, fix_first=True))
        free = chain_match_score(m, optimal_reorder(m, fix_first=False))
        assert free >= anchored - 1e-12

    def test_optimal_size_guard(self):
        with pytest.raises(ValueError):
            optimal_reorder(np.zeros((11, 11)))

    def test_optimal_empty(self):
        assert optimal_reorder(np.zeros((0, 0))) == []
