"""Tests for thread-block planning, occupancy and the GEMM model."""

import pytest

from repro.errors import ConfigError
from repro.gpu.kernels import (
    ThreadBlockConfig,
    aggregation_kernel_plan,
    gemm_time,
)
from repro.gpu.spec import RTX3090


class TestThreadBlockConfig:
    def test_paper_default(self):
        config = ThreadBlockConfig()
        assert config.x_nodes == 8 and config.y_dims == 32
        assert config.threads_per_block == 256
        config.validate(RTX3090)

    def test_thread_limit_enforced(self):
        config = ThreadBlockConfig(x_nodes=64, y_dims=32)  # 2048 threads
        with pytest.raises(ConfigError, match="1024"):
            config.validate(RTX3090)

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigError):
            ThreadBlockConfig(x_nodes=0, y_dims=8).validate(RTX3090)

    def test_shared_bytes_formula(self):
        """Paper Section 4.2: 4XY + 4X|N(u)| bytes per block."""
        config = ThreadBlockConfig(x_nodes=8, y_dims=32)
        assert config.shared_bytes(avg_degree=10) == 4 * 8 * 32 + 4 * 8 * 10


class TestKernelPlan:
    def test_block_count(self):
        plan = aggregation_kernel_plan(
            num_target_nodes=100, feature_dim=64, avg_degree=10,
            spec=RTX3090,
        )
        # ceil(100/8) * ceil(64/32) = 13 * 2 blocks.
        assert plan.num_blocks == 26

    def test_occupancy_in_unit_range(self):
        plan = aggregation_kernel_plan(1000, 256, 15, RTX3090)
        assert 0.0 < plan.occupancy <= 1.0
        assert plan.fits

    def test_huge_degree_exceeds_shared(self):
        with pytest.raises(ConfigError, match="shared memory"):
            aggregation_kernel_plan(
                100, 64, avg_degree=50_000, spec=RTX3090,
            )

    def test_occupancy_drops_with_shared_pressure(self):
        light = aggregation_kernel_plan(100, 32, 5, RTX3090)
        heavy = aggregation_kernel_plan(
            100, 32, 2000, RTX3090,
            config=ThreadBlockConfig(x_nodes=8, y_dims=32),
        )
        assert heavy.shared_bytes_per_block > light.shared_bytes_per_block
        assert heavy.blocks_per_sm <= light.blocks_per_sm


class TestGemmTime:
    def test_formula(self):
        t = gemm_time(100, 64, 200, RTX3090, efficiency=0.5)
        expected = 2 * 100 * 64 * 200 / (RTX3090.peak_flops * 0.5)
        assert t == pytest.approx(expected)

    def test_degenerate_dims(self):
        assert gemm_time(0, 64, 64, RTX3090) == 0.0

    def test_monotone_in_size(self):
        assert gemm_time(200, 64, 64, RTX3090) > gemm_time(100, 64, 64,
                                                           RTX3090)
