"""Tests for model state dicts / checkpointing and trainer validation."""

import numpy as np
import pytest

from repro.config import RunConfig
from repro.core.pipeline import FastGLTrainer
from repro.nn import MLP, Tensor, build_model


class TestStateDict:
    def test_named_parameters_paths(self):
        mlp = MLP(4, 8, 2, rng=0)
        names = [name for name, _ in mlp.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_nested_list_paths(self):
        model = build_model("gcn", 8, 3, hidden_dim=4, num_layers=2)
        names = [name for name, _ in model.named_parameters()]
        assert "convs.0.linear.weight" in names
        assert "convs.1.linear.bias" in names

    def test_round_trip(self):
        a = MLP(4, 8, 2, rng=0)
        b = MLP(4, 8, 2, rng=1)
        assert not np.allclose(a.fc1.weight.data, b.fc1.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.fc1.weight.data, b.fc1.weight.data)

    def test_state_dict_is_a_copy(self):
        mlp = MLP(2, 2, 2, rng=0)
        state = mlp.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not np.allclose(mlp.fc1.weight.data, 0.0)

    def test_strict_key_matching(self):
        mlp = MLP(2, 2, 2, rng=0)
        state = mlp.state_dict()
        del state["fc1.bias"]
        with pytest.raises(ValueError, match="missing"):
            mlp.load_state_dict(state)
        state = mlp.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(ValueError, match="unexpected"):
            mlp.load_state_dict(state)

    def test_shape_mismatch(self):
        mlp = MLP(2, 2, 2, rng=0)
        state = mlp.state_dict()
        state["fc1.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape"):
            mlp.load_state_dict(state)

    def test_save_load_file(self, tmp_path):
        a = build_model("gat", 6, 3, num_layers=2, seed=0)
        path = tmp_path / "model.npz"
        a.save(path)
        b = build_model("gat", 6, 3, num_layers=2, seed=9)
        b.load(path)
        for (_, pa), (_, pb) in zip(a.named_parameters(),
                                    b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_loaded_model_same_outputs(self, tmp_path, tiny_dataset):
        from repro.sampling import NeighborSampler

        sampler = NeighborSampler(tiny_dataset.graph, (3, 3), rng=0)
        sg = sampler.sample(tiny_dataset.train_ids[:16])
        x = Tensor(tiny_dataset.features.gather(sg.input_nodes))
        a = build_model("gcn", tiny_dataset.feature_dim, 5, hidden_dim=8,
                        seed=0, num_layers=2)
        path = tmp_path / "gcn.npz"
        a.save(path)
        b = build_model("gcn", tiny_dataset.feature_dim, 5, hidden_dim=8,
                        seed=3, num_layers=2)
        b.load(path)
        np.testing.assert_allclose(a(sg, x).data, b(sg, x).data, rtol=1e-6)


class TestTrainerValidation:
    def test_val_accuracy_tracked(self, tiny_dataset):
        config = RunConfig(batch_size=64, fanouts=(3, 4), hidden_dim=8)
        trainer = FastGLTrainer(tiny_dataset, "gcn", config)
        history = trainer.train(num_epochs=2, validate=True)
        assert len(history.val_accuracies) == 2
        assert all(0.0 <= acc <= 1.0 for acc in history.val_accuracies)

    def test_validation_improves_with_training(self, tiny_dataset):
        config = RunConfig(batch_size=64, fanouts=(3, 4), hidden_dim=8,
                           seed=4)
        trainer = FastGLTrainer(tiny_dataset, "gcn", config)
        history = trainer.train(num_epochs=5, validate=True)
        chance = 1.0 / tiny_dataset.num_classes
        assert history.val_accuracies[-1] > 1.5 * chance
