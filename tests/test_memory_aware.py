"""Tests for the Memory-Aware computation model (Eqs. 3-4) and A3 API."""

import numpy as np
import pytest

from repro.config import DEFAULT_COST_MODEL
from repro.core.memory_aware import (
    A3,
    ComputeCostModel,
    model_profile,
)
from repro.errors import ConfigError
from repro.nn import Tensor
from repro.sampling import NeighborSampler


@pytest.fixture()
def subgraph(tiny_graph, tiny_dataset):
    sampler = NeighborSampler(tiny_graph, (3, 5), rng=0)
    return sampler.sample(tiny_dataset.train_ids[:64])


class TestAggregationCost:
    def test_eq3_byte_count(self):
        """Naive traffic per Eq. 3 summed over targets: 4d(3E - D)."""
        model = ComputeCostModel(mode="naive")
        cost = model.aggregation_cost(num_dst=10, num_edges=100,
                                      feature_dim=64)
        assert cost.bytes_global == pytest.approx(4 * 64 * (300 - 10))
        assert cost.bytes_shared == 0.0

    def test_eq4_byte_split(self):
        """MA traffic per Eq. 4: hot streams shared, features global."""
        model = ComputeCostModel(mode="memory_aware")
        e, d, dim = 100, 10, 64
        cost = model.aggregation_cost(d, e, dim)
        assert cost.bytes_shared == pytest.approx(
            4 * dim * (e - d) + 4 * (dim - 1) * e
        )
        assert cost.bytes_global == pytest.approx(4 * dim * e + 4 * e)

    def test_memory_aware_faster_than_naive(self):
        """The paper's headline: t_m << t_n given B_s >> B_g."""
        naive = ComputeCostModel(mode="naive")
        ma = ComputeCostModel(mode="memory_aware")
        t_n = naive.aggregation_cost(1000, 10_000, 256).time
        t_m = ma.aggregation_cost(1000, 10_000, 256).time
        assert t_m < t_n
        assert 1.5 < t_n / t_m < 12.0

    def test_advisor_between_naive_and_ma(self):
        naive = ComputeCostModel(mode="naive")
        advisor = ComputeCostModel(mode="advisor")
        ma = ComputeCostModel(mode="memory_aware")
        args = (1000, 10_000, 128)
        t_n = naive.aggregation_cost(*args).time
        t_a = advisor.aggregation_cost(*args).time
        t_m = ma.aggregation_cost(*args).time
        assert t_m < t_a < t_n

    def test_flops_per_edge_dim(self):
        model = ComputeCostModel(mode="naive")
        cost = model.aggregation_cost(10, 100, 32)
        assert cost.flops == pytest.approx(2 * 100 * 32)

    def test_dram_bytes_below_requested(self):
        model = ComputeCostModel(mode="naive")
        cost = model.aggregation_cost(10, 100, 32)
        assert cost.dram_bytes < cost.bytes_global

    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            ComputeCostModel(mode="turbo")


class TestModelProfile:
    def test_gcn(self):
        p = model_profile("gcn", 100, 10, hidden_dim=64, num_layers=3)
        assert p.layer_dims == ((100, 64), (64, 64), (64, 10))
        assert p.gemms_per_layer == 1
        assert p.attention_heads == 0

    def test_gin_double_gemm(self):
        p = model_profile("gin", 100, 10)
        assert p.gemms_per_layer == 2

    def test_gat_heads_and_src_gemm(self):
        p = model_profile("gat", 100, 10)
        assert p.attention_heads == 8
        assert p.gemm_on_src

    def test_unknown(self):
        with pytest.raises(ConfigError):
            model_profile("transformer", 8, 2)


class TestSubgraphReport:
    def test_accumulates_layers(self, subgraph):
        model = ComputeCostModel(mode="naive")
        profile = model_profile("gcn", 16, 5, hidden_dim=8, num_layers=2)
        report = model.subgraph_report(subgraph, profile)
        assert report.agg_time > 0
        assert report.gemm_time > 0
        assert report.total_time >= report.agg_time + report.gemm_time

    def test_layer_count_mismatch(self, subgraph):
        model = ComputeCostModel(mode="naive")
        profile = model_profile("gcn", 16, 5, num_layers=3)
        with pytest.raises(ConfigError, match="layers"):
            model.subgraph_report(subgraph, profile)

    def test_backward_roughly_doubles(self, subgraph):
        model = ComputeCostModel(mode="memory_aware")
        profile = model_profile("gcn", 16, 5, hidden_dim=8, num_layers=2)
        fwd = model.subgraph_report(subgraph, profile,
                                    include_backward=False)
        both = model.subgraph_report(subgraph, profile,
                                     include_backward=True)
        assert both.agg_time == pytest.approx(2 * fwd.agg_time)
        assert both.gemm_time == pytest.approx(3 * fwd.gemm_time)

    def test_advisor_adds_preprocess(self, subgraph):
        advisor = ComputeCostModel(mode="advisor")
        profile = model_profile("gcn", 16, 5, hidden_dim=8, num_layers=2)
        report = advisor.subgraph_report(subgraph, profile)
        expected = ((subgraph.num_nodes + subgraph.num_edges)
                    * DEFAULT_COST_MODEL.advisor_preprocess_s_per_elem)
        assert report.preprocess_time == pytest.approx(expected)

    def test_gat_attention_overhead(self, subgraph):
        model = ComputeCostModel(mode="memory_aware")
        gcn = model.subgraph_report(
            subgraph, model_profile("gcn", 16, 5, hidden_dim=64,
                                    num_layers=2))
        gat = model.subgraph_report(
            subgraph, model_profile("gat", 16, 5, hidden_dim=64,
                                    num_layers=2))
        assert gat.total_time > 0 and gcn.total_time > 0


class TestA3:
    def test_forward_matches_manual(self):
        a3 = A3()
        x = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        edge_src = np.array([0, 1, 2, 3])
        edge_dst = np.array([0, 0, 1, 1])
        w = Tensor(np.array([1.0, 2.0, 0.5, 1.0], dtype=np.float32))
        out = a3.forward(x, edge_src, edge_dst, w, num_dst=2)
        expected = np.stack([
            x.data[0] * 1.0 + x.data[1] * 2.0,
            x.data[2] * 0.5 + x.data[3] * 1.0,
        ])
        np.testing.assert_allclose(out.data, expected)
        assert a3.last_cost is not None
        assert a3.last_cost.flops == pytest.approx(2 * 4 * 3)

    def test_backward_runs_eq5(self):
        a3 = A3()
        x = Tensor(np.random.default_rng(0).random((5, 4),
                                                   dtype=np.float32),
                   requires_grad=True)
        w = Tensor(np.ones(6, dtype=np.float32), requires_grad=True)
        edge_src = np.array([0, 1, 2, 3, 4, 0])
        edge_dst = np.array([0, 0, 1, 1, 2, 2])
        out = a3.forward(x, edge_src, edge_dst, w, num_dst=3)
        A3.backward(out.sum())
        # Eq. 5: dL/dx_v = sum_u w_uv * dL/dh_u; with unit grads and
        # weights, each source's grad counts its outgoing edges.
        counts = np.bincount(edge_src, minlength=5).astype(np.float32)
        np.testing.assert_allclose(x.grad, counts[:, None] * np.ones((5, 4)))
