"""Setup shim.

The offline environment has no `wheel` package, so PEP-517 editable installs
(`pip install -e .` with build isolation) cannot build. This shim lets
`python setup.py develop` / legacy editable installs work; all metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
