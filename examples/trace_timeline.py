"""Export chrome-trace timelines of one epoch, DGL vs FastGL.

Writes ``trace_dgl.json`` and ``trace_fastgl.json`` (open in
``chrome://tracing`` or https://ui.perfetto.dev) showing, per trainer GPU,
where each mini-batch's modeled time goes — the visual counterpart of the
paper's Fig. 1/Fig. 3 stacked bars.

Usage::

    python examples/trace_timeline.py [dataset] [out_dir]
"""

import pathlib
import sys

from repro import RunConfig, get_dataset, get_framework
from repro.metrics.trace import write_chrome_trace


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "products"
    out_dir = pathlib.Path(sys.argv[2]) if len(sys.argv) > 2 else (
        pathlib.Path(".")
    )
    dataset = get_dataset(dataset_name)
    config = RunConfig(num_gpus=2)
    for name in ("dgl", "fastgl"):
        report = get_framework(name).run_epoch(dataset, config)
        path = out_dir / f"trace_{name}.json"
        events = write_chrome_trace(path, report)
        print(f"{name}: wrote {events} spans to {path} "
              f"(modeled epoch {report.epoch_time:.4g}s)")
    print("\nopen the two files in chrome://tracing and compare the width "
          "of the memory_io spans — that's Match-Reorder at work.")


if __name__ == "__main__":
    main()
