"""Extending FastGL: plug a custom sampling algorithm into the pipeline.

The paper's Section 7 argues Fused-Map (and Match-Reorder) apply to any
sampling algorithm, because every sampler needs the global->local ID map.
This example implements a *top-degree* sampler — each node keeps its
highest-degree neighbors, a deterministic PinSAGE-flavored heuristic —
using the package's Sampler protocol, then runs the full FastGL framework
over it and compares against DGL.

Usage::

    python examples/custom_sampler.py
"""

import numpy as np

from repro import RunConfig, get_dataset
from repro.frameworks import DGLFramework, FastGLFramework
from repro.sampling import BaselineIdMap, FusedIdMap
from repro.sampling.base import Sampler
from repro.sampling.subgraph import LayerBlock, SampledSubgraph
from repro.utils import format_seconds


class TopDegreeSampler(Sampler):
    """Keeps each frontier node's ``fanout`` highest-degree neighbors."""

    device = "gpu"

    def __init__(self, graph, fanouts, idmap=None):
        self.graph = graph
        self.fanouts = tuple(fanouts)
        self.idmap = idmap if idmap is not None else FusedIdMap()

    def sample(self, seeds):
        seeds = np.asarray(seeds, dtype=np.int64)
        frontier = seeds
        layers = []
        report = None
        draws = 0
        for fanout in self.fanouts:
            edge_dst, edge_src_global = [], []
            for position, node in enumerate(frontier):
                neighbors = self.graph.neighbors(int(node))
                if len(neighbors) > fanout:
                    by_degree = np.argsort(self.graph.degrees[neighbors])
                    neighbors = neighbors[by_degree[-fanout:]]
                edge_dst.append(np.full(len(neighbors), position))
                edge_src_global.append(neighbors)
            edge_dst = np.concatenate(edge_dst).astype(np.int64)
            drawn = np.concatenate(edge_src_global).astype(np.int64)
            draws += len(drawn)
            result = self.idmap.map(np.concatenate([frontier, drawn]))
            report = (result.report if report is None
                      else report + result.report)
            layers.append(LayerBlock(
                dst_global=frontier,
                src_global=result.unique_globals,
                edge_src=result.locals_of_input[len(frontier):],
                edge_dst=edge_dst,
            ))
            frontier = result.unique_globals
        return SampledSubgraph(seeds=seeds, layers=layers,
                               idmap_report=report, num_sampled_edges=draws)


def main() -> None:
    dataset = get_dataset("products")
    config = RunConfig(batch_size=128, fanouts=(3, 5), num_gpus=2)
    print("custom top-degree sampler under both frameworks "
          f"({dataset.name}, fanouts {config.fanouts})")
    for framework, idmap in ((DGLFramework(), BaselineIdMap()),
                             (FastGLFramework(), FusedIdMap())):
        sampler = TopDegreeSampler(dataset.graph, config.fanouts, idmap)
        report = framework.run_epoch(dataset, config, sampler=sampler)
        print(f"  {framework.name:7s}: epoch "
              f"{format_seconds(report.epoch_time)}, "
              f"rows loaded {report.transfer.num_loaded}, "
              f"reused {report.transfer.num_reused}")
    print("\nbecause top-degree sampling concentrates on hubs, "
          "inter-batch overlap is extreme and Match reuses almost "
          "everything — the mechanism of the paper's Table 7 argument.")


if __name__ == "__main__":
    main()
