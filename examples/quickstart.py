"""Quickstart: train one epoch with FastGL and compare against DGL.

Runs both frameworks on the scaled Products dataset, prints the modeled
phase breakdown (the paper's Fig. 1 view) and the headline speedup.

Usage::

    python examples/quickstart.py [dataset]
"""

import sys

from repro import RunConfig, get_dataset, get_framework
from repro.utils import format_bytes, format_seconds


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "products"
    print(f"building dataset {dataset_name!r} (scaled synthetic analogue)")
    dataset = get_dataset(dataset_name)
    print(f"  {dataset}")
    print(f"  feature table: {format_bytes(dataset.feature_table_bytes())}, "
          f"cache budget: {format_bytes(dataset.cache_budget_bytes())}")

    config = RunConfig(num_gpus=2)
    reports = {}
    for name in ("dgl", "fastgl"):
        framework = get_framework(name)
        report = framework.run_epoch(dataset, config)
        reports[name] = report
        fractions = report.phases.fractions()
        print(f"\n{name}: modeled epoch {format_seconds(report.epoch_time)}")
        print(f"  sample    {fractions['sample']:6.1%} "
              f"({format_seconds(report.phases.sample)})")
        print(f"  memory IO {fractions['memory_io']:6.1%} "
              f"({format_seconds(report.phases.memory_io)}) — "
              f"{report.transfer.num_loaded} rows loaded, "
              f"{report.transfer.num_reused} reused, "
              f"{report.transfer.num_cache_hits} cache hits")
        print(f"  compute   {fractions['compute']:6.1%} "
              f"({format_seconds(report.phases.compute)})")

    speedup = reports["dgl"].epoch_time / reports["fastgl"].epoch_time
    print(f"\nFastGL speedup over DGL: {speedup:.2f}x "
          "(paper band on 2 GPUs: 1.7-5.1x)")


if __name__ == "__main__":
    main()
