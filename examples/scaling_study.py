"""Multi-GPU scaling study (the paper's Fig. 14a, as a script).

Sweeps GPU counts for DGL, GNNLab and FastGL on one dataset and prints
each framework's self-speedup and the cross-framework gap, illustrating
why IO-heavy baselines stop scaling: all GPUs pull features through the
same host memory.

Usage::

    python examples/scaling_study.py [dataset]
"""

import sys
from dataclasses import replace

from repro import RunConfig, get_dataset, get_framework
from repro.gpu.cluster import effective_pcie_bandwidth
from repro.utils import format_seconds, format_si


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "products"
    dataset = get_dataset(dataset_name)
    base = RunConfig()
    print(f"scaling study on {dataset.name}")
    print("per-GPU host-link bandwidth under contention:")
    for gpus in (1, 2, 4, 8):
        bw = effective_pcie_bandwidth(32e9, gpus)
        print(f"  {gpus} GPUs: {format_si(bw, 'B/s')}")

    print(f"\n{'gpus':>4} {'dgl':>10} {'gnnlab':>10} {'fastgl':>10} "
          f"{'fastgl/dgl':>11}")
    baselines = {}
    for gpus in (1, 2, 4, 8):
        config = replace(base, num_gpus=gpus)
        times = {}
        for name in ("dgl", "gnnlab", "fastgl"):
            if name == "gnnlab" and gpus < 2:
                times[name] = float("nan")
                continue
            report = get_framework(name).run_epoch(dataset, config)
            times[name] = report.epoch_time
        if gpus == 1:
            baselines = dict(times)
        print(f"{gpus:>4} {format_seconds(times['dgl']):>10} "
              f"{format_seconds(times['gnnlab']):>10} "
              f"{format_seconds(times['fastgl']):>10} "
              f"{times['dgl'] / times['fastgl']:>10.2f}x")

    print("\nself-speedup at 8 GPUs vs 1 GPU "
          "(paper: DGL 3.36x, FastGL 5.93x):")
    config = replace(base, num_gpus=8)
    for name in ("dgl", "fastgl"):
        time8 = get_framework(name).run_epoch(dataset, config).epoch_time
        print(f"  {name}: {baselines[name] / time8:.2f}x")


if __name__ == "__main__":
    main()
