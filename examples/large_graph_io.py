"""Deep dive: why Match-Reorder beats caching on large graphs.

Walks through the paper's Section 4.1 mechanics on the Papers100M
analogue, where almost no device memory is left for a feature cache
(Table 1):

1. measure inter-subgraph overlap (match degrees, Table 4),
2. compare loaded bytes: naive vs GNNLab-style cache vs Match vs
   Match+Reorder,
3. show the greedy reorder schedule for one window.

Usage::

    python examples/large_graph_io.py [dataset]
"""

import sys

import numpy as np

from repro import RunConfig, get_dataset
from repro.core.match import MatchState
from repro.core.reorder import (
    chain_match_score,
    greedy_reorder,
    match_degree_matrix,
)
from repro.graph.partition import MinibatchPlan
from repro.sampling import NeighborSampler
from repro.transfer.cache import PresampleCachePolicy
from repro.utils import format_bytes


def loaded_bytes_for_order(node_sets, order, bytes_per_node, cache=None):
    state = MatchState()
    total = 0
    for index in order:
        result = state.step(node_sets[index])
        to_load = result.load_ids
        if cache is not None:
            _, to_load = cache.partition(to_load)
        total += len(to_load) * bytes_per_node
    return total


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "papers100m"
    dataset = get_dataset(dataset_name)
    config = RunConfig()
    print(f"{dataset}")
    print(f"leftover-memory ratio (paper Table 1 derived): "
          f"{dataset.left_memory_ratio():.3f} of the feature table\n")

    sampler = NeighborSampler(dataset.graph, config.fanouts, rng=0)
    plan = MinibatchPlan(dataset.train_ids, config.batch_size,
                         locality=config.batch_locality)
    batches = plan.batches(rng=1)[:12]
    node_sets = [sampler.sample(batch).input_nodes for batch in batches]
    bytes_per_node = dataset.features.bytes_per_node

    matrix = match_degree_matrix(node_sets)
    upper = matrix[np.triu_indices(len(node_sets), k=1)]
    print(f"match degrees across {len(node_sets)} mini-batches: "
          f"avg {upper.mean():.3f}, min {upper.min():.3f}, "
          f"max {upper.max():.3f}")

    naive = sum(len(s) for s in node_sets) * bytes_per_node
    cache = PresampleCachePolicy.build(
        sampler, dataset.train_ids, dataset.features,
        dataset.cache_budget_bytes(), rng=2,
    )
    cached = 0
    for s in node_sets:
        _, misses = cache.partition(s)
        cached += len(misses) * bytes_per_node
    identity = list(range(len(node_sets)))
    match_only = loaded_bytes_for_order(node_sets, identity, bytes_per_node)
    order = greedy_reorder(matrix)
    match_reorder = loaded_bytes_for_order(node_sets, order, bytes_per_node)

    print("\nfeature bytes over PCIe for the window:")
    print(f"  naive (DGL)          {format_bytes(naive)}")
    print(f"  cache (GNNLab-style) {format_bytes(cached)}  "
          f"(cache: {cache.num_cached} rows, "
          f"hit rate {cache.hit_rate:.1%})")
    print(f"  Match                {format_bytes(match_only)}")
    print(f"  Match + Reorder      {format_bytes(match_reorder)}")

    print(f"\ngreedy reorder schedule: {order}")
    print(f"  consecutive match-degree sum: identity "
          f"{chain_match_score(matrix, identity):.3f} -> greedy "
          f"{chain_match_score(matrix, order):.3f}")


if __name__ == "__main__":
    main()
