"""Train a real GCN with FastGL and verify convergence + accuracy.

FastGL's optimizations are exactness-preserving, so the model must learn
just as well as under the DGL baseline (the paper's Fig. 16). This example
(1) trains a numpy GCN with both frameworks and compares their loss
curves, then (2) uses the library's high-level :class:`FastGLTrainer`
(the paper's Fig. 5 pipeline) to train with validation tracking and a
final accuracy readout.

Usage::

    python examples/train_convergence.py [epochs]
"""

import sys
from dataclasses import replace

import numpy as np

from repro import FastGLTrainer, RunConfig, get_dataset
from repro.frameworks import DGLFramework, FastGLFramework


def main() -> None:
    epochs = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    dataset = get_dataset("reddit")
    dataset.materialize_features()
    config = RunConfig(batch_size=512, fanouts=(5, 5, 5), num_gpus=2,
                       train_model=True, num_epochs=epochs)

    print(f"1) framework comparison: GCN on {dataset.name}, "
          f"{epochs} epoch(s)")
    for framework in (DGLFramework(), FastGLFramework()):
        report = framework.run_epoch(dataset, config, model_name="gcn")
        n = max(1, len(report.losses) // epochs)
        print(f"   {framework.name:7s}: loss {report.losses[0]:.3f} -> "
              f"{np.mean(report.losses[-n:]):.3f} "
              f"(epoch modeled time {report.epoch_time:.3g}s)")

    print("\n2) FastGLTrainer (Fig. 5 pipeline) with validation tracking")
    trainer_config = replace(config, train_model=False, num_epochs=1)
    trainer = FastGLTrainer(dataset, "gcn", trainer_config)
    history = trainer.train(num_epochs=epochs, validate=True)
    print(f"   epoch mean losses: "
          f"{[round(v, 3) for v in history.epoch_mean_losses(epochs)]}")
    print(f"   validation accuracy per epoch: "
          f"{[round(a, 3) for a in history.val_accuracies]}")
    print(f"   rows loaded {history.rows_loaded}, "
          f"reused {history.rows_reused} "
          f"(Match kept {history.rows_reused / max(1, history.rows_loaded + history.rows_reused):.0%} on device)")

    test_accuracy = trainer.evaluate(dataset.test_ids[:1024])
    chance = 1.0 / dataset.num_classes
    print(f"\ntest accuracy: {test_accuracy:.1%} (chance {chance:.1%})")


if __name__ == "__main__":
    main()
