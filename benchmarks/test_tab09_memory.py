"""Regenerates Table 9: GPU memory usage, DGL vs FastGL."""

from repro.experiments import tab09_memory


def test_tab09_memory(run_experiment):
    result = run_experiment(tab09_memory.run)
    for row in result.rows:
        dataset, ratio = row[0], row[3]
        # Usage is comparable; FastGL never uses more (paper shape).
        assert 0.5 < ratio <= 1.02, dataset
        # Paper-scale model agrees: FastGL's footprint <= DGL's.
        assert row[5] <= row[4] * 1.02, dataset
    # IGB (1024-dim features) is the heaviest dataset in both systems.
    scaled = {row[0]: row[1] for row in result.rows}
    assert scaled["IGB"] == max(scaled.values())
