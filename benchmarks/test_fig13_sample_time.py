"""Regenerates Figure 13: sample-phase time per epoch."""

from repro.experiments import fig13_sample_time


def test_fig13_sample_time(run_experiment):
    result = run_experiment(fig13_sample_time.run)
    for row in result.rows:
        dataset = row[0]
        pyg_t, dgl_t, fastgl_t = row[1], row[2], row[4]
        x_pyg, x_dgl = row[5], row[6]
        # CPU sampling is more than an order of magnitude slower.
        assert x_pyg > 10, dataset
        # Fused-Map beats the synchronizing ID map (paper: 2.0-2.5x on the
        # whole sample phase; the draw component dilutes it here).
        assert 1.2 < x_dgl < 3.0, dataset
        assert fastgl_t < dgl_t < pyg_t, dataset
