"""Ablations of FastGL's design constants (DESIGN.md §5).

The paper fixes three constants with little sensitivity analysis: the
thread-block shape X=8/Y=32 (Section 4.2), the hash table's load factor,
and the reorder window n. These benches sweep each and check the chosen
values are on the flat/good part of the curve.
"""

import numpy as np
import pytest

from repro.config import RunConfig
from repro.core.memory_aware import ComputeCostModel
from repro.core.reorder import (
    chain_match_score,
    greedy_reorder,
    match_degree_matrix,
)
from repro.gpu.kernels import ThreadBlockConfig
from repro.graph import get_dataset
from repro.sampling import NeighborSampler
from repro.sampling.idmap.hash_table import estimate_probe_stats


@pytest.fixture(scope="module")
def subgraph():
    dataset = get_dataset("products")
    sampler = NeighborSampler(dataset.graph, (5, 10, 15), rng=0)
    return dataset, sampler.sample(dataset.train_ids[:256])


def test_thread_block_shape_ablation(benchmark, subgraph, record):
    """Sweep (X, Y); the paper's (8, 32) should be near-optimal."""
    dataset, sg = subgraph
    block = sg.layers[-1]
    shapes = [(4, 32), (8, 32), (16, 32), (8, 64), (8, 128), (32, 32)]

    def sweep():
        times = {}
        for x, y in shapes:
            model = ComputeCostModel(
                mode="memory_aware", tb_config=ThreadBlockConfig(x, y)
            )
            cost = model.aggregation_cost(block.num_dst, block.num_edges,
                                          dataset.feature_dim)
            times[(x, y)] = cost.time
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    best = min(times.values())
    from repro.experiments.runner import ExperimentResult
    result = ExperimentResult(
        exp_id="ablation_tb",
        title="Thread-block shape ablation (Memory-Aware aggregation)",
        headers=["X", "Y", "modeled_s", "vs_best"],
        rows=[[x, y, t, round(t / best, 3)]
              for (x, y), t in sorted(times.items())],
    )
    record(result)
    # The paper's choice is within 10% of the best swept configuration.
    assert times[(8, 32)] <= best * 1.10


def test_hash_load_factor_ablation(benchmark, record):
    """Probe counts vs load factor; 0.5 keeps probing negligible."""
    rng = np.random.default_rng(0)
    unique = np.unique(rng.integers(0, 10_000_000, size=60_000))

    def sweep():
        out = {}
        for load in (0.25, 0.5, 0.75, 0.9):
            # Exact capacity (not the runtime's power-of-two rounding, which
            # would alias neighboring load factors onto one table size).
            capacity = int(np.ceil(len(unique) / load))
            stats = estimate_probe_stats(unique, num_duplicates=0,
                                         capacity=capacity)
            out[load] = stats.avg_probes
        return out

    probes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.experiments.runner import ExperimentResult
    record(ExperimentResult(
        exp_id="ablation_hash",
        title="Hash-table load-factor ablation (avg linear probes/insert)",
        headers=["load_factor", "avg_probes"],
        rows=[[k, round(v, 4)] for k, v in sorted(probes.items())],
    ))
    assert probes[0.25] <= probes[0.5] <= probes[0.9]
    assert probes[0.5] < 1.0  # near-free probing at the default


def test_reorder_window_ablation(benchmark, record):
    """Chain match score vs window size; larger windows help, saturating."""
    config = RunConfig()
    dataset = get_dataset("mag")
    sampler = NeighborSampler(dataset.graph, config.fanouts, rng=3)
    from repro.graph.partition import MinibatchPlan

    plan = MinibatchPlan(dataset.train_ids, config.batch_size,
                         locality=config.batch_locality)
    batches = plan.batches(np.random.default_rng(5))[:32]
    sets = [sampler.sample(b).input_nodes for b in batches]
    matrix = match_degree_matrix(sets)

    def sweep():
        scores = {}
        n = len(sets)
        for window in (2, 4, 8, 16, 32):
            order = []
            for start in range(0, n, window):
                group = list(range(start, min(start + window, n)))
                if len(group) > 2:
                    sub = matrix[np.ix_(group, group)]
                    group = [group[i] for i in greedy_reorder(sub)]
                order.extend(group)
            scores[window] = chain_match_score(matrix, order) / (n - 1)
        return scores

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.experiments.runner import ExperimentResult
    record(ExperimentResult(
        exp_id="ablation_window",
        title="Reorder-window ablation (mean consecutive match degree, MAG)",
        headers=["window", "mean_consecutive_M"],
        rows=[[k, round(v, 4)] for k, v in sorted(scores.items())],
    ))
    # Bigger windows give the greedy chain more freedom.
    assert scores[32] >= scores[2]
