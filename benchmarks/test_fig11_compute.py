"""Regenerates Figure 11: computation-phase comparison."""

from repro.experiments import fig11_compute


def test_fig11_compute(run_experiment):
    result = run_experiment(fig11_compute.run)
    for row in result.rows:
        dataset = row[0]
        pyg_t, dgl_t, advisor_t, fastgl_t = row[1], row[2], row[3], row[4]
        preprocess_frac = row[6]

        # Memory-Aware beats the naive kernels (paper: 1.1-6.7x).
        assert fastgl_t < dgl_t, dataset
        assert 1.05 < dgl_t / fastgl_t < 7.0, dataset
        # GNNAdvisor's per-iteration preprocessing makes it a net loss.
        assert advisor_t > dgl_t, dataset
        assert preprocess_frac > 0.3, dataset
    # Preprocessing reaches the paper's "up to 75%" regime somewhere.
    assert max(row[6] for row in result.rows) > 0.6
