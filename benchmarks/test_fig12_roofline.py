"""Regenerates Figure 12: roofline analysis of the aggregation phase."""

from repro.experiments import fig12_roofline


def test_fig12_roofline(run_experiment):
    result = run_experiment(fig12_roofline.run)
    rows = {row[0]: row for row in result.rows}

    # Every kernel is memory-bound and sits under (or at) its roof.
    for name, row in rows.items():
        assert row[4] <= 1.05, name          # achieved <= roof (5% slack)
        assert row[1] < 5.0, name            # OI far left of the ridge
    # FastGL achieves the highest performance (paper: up to 4.2x DGL).
    assert rows["fastgl"][2] > rows["gnnadvisor"][2] > rows["dgl"][2]
    assert rows["fastgl"][2] / rows["dgl"][2] > 1.5
