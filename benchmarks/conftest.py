"""Benchmark-suite plumbing.

Every benchmark regenerates one paper table/figure: it runs the experiment
under the ``benchmark`` fixture (so ``--benchmark-only`` executes it),
asserts the paper's *shape* claims, saves the rendered table under
``benchmarks/results/``, and queues it for the terminal summary so the
regenerated tables appear in the pytest output itself.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_RENDERED: list = []


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RENDERED:
        return
    terminalreporter.section("regenerated paper tables/figures")
    for text in _RENDERED:
        terminalreporter.write_line(text)
        terminalreporter.write_line("")


@pytest.fixture()
def record():
    """Save an ExperimentResult's rendering to disk and the summary."""

    def _record(result) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{result.exp_id}.txt").write_text(text + "\n")
        _RENDERED.append(text)

    return _record


@pytest.fixture()
def run_experiment(benchmark, record):
    """Run ``module.run(**kwargs)`` once under the benchmark fixture,
    record its rendering, and return the result for shape assertions."""

    def _run(run_fn, **kwargs):
        result = benchmark.pedantic(
            lambda: run_fn(**kwargs), rounds=1, iterations=1
        )
        record(result)
        return result

    return _run
