"""Pipelined-epoch benches: the overlap the stage graph must deliver.

The tentpole gate: on the Papers100M-shaped configuration, the
pipelined epoch lands within 15% of ``max(sample, IO, compute) + fill``
— the lower bound a perfect overlap achieves — for every compared
framework, while never losing to the sequential driver.
"""

from repro.experiments import ext_pipeline

#: The tentpole tolerance: achieved epoch vs the overlap lower bound.
BOUND_SLACK = 1.15


def test_overlap_approaches_stage_bound(run_experiment):
    result = run_experiment(ext_pipeline.run_overlap)
    assert len(result.rows) == len(ext_pipeline.OVERLAP_FRAMEWORKS)
    for name, seq_s, piped_s, bound_s, overlap, vs_bound, *_ in result.rows:
        # Never slower than the phase-sequential driver...
        assert piped_s <= seq_s + 1e-9, name
        # ...and within 15% of max(stage totals) + fill.
        assert piped_s <= bound_s * BOUND_SLACK, (name, piped_s, bound_s)
        # The estimate's fill term uses first-round times, so it can
        # slightly overstate the true optimum when rounds vary.
        assert piped_s >= bound_s * 0.98 - 1e-9, (name, piped_s, bound_s)


def test_overlap_widest_where_stages_balance(run_experiment):
    result = run_experiment(ext_pipeline.run_overlap)
    rows = result.row_dict()
    # DGL pays sampling + IO + compute serially; the graph hides most
    # of it. FastGL already hides IO by design, so its gap is smaller.
    dgl_gain = rows["dgl"][1] / rows["dgl"][2]
    assert dgl_gain > 1.5
    # The out-of-core driver is intrinsically pipelined: the stage
    # graph must match it, not beat it (its sequential IS the graph).
    ooc = rows["fastgl-ooc"]
    assert ooc[2] <= ooc[1] + 1e-9


def test_queue_depth_monotone_and_saturating(run_experiment):
    result = run_experiment(ext_pipeline.run_queue_depths)
    times = [row[1] for row in result.rows]
    stalls = [row[3] for row in result.rows]
    # Deeper buffers never slow the epoch...
    assert times == sorted(times, reverse=True)
    # ...and double buffering already achieves the deep-queue epoch.
    assert times[1] <= times[-1] * 1.02
    # Backpressure stalls shrink as the buffers deepen.
    assert stalls[-1] <= stalls[0]


def test_staleness_sheds_sync_time(run_experiment):
    result = run_experiment(ext_pipeline.run_staleness)
    syncs = [row[1] for row in result.rows]
    epochs = [row[2] for row in result.rows]
    allreduce = [row[3] for row in result.rows]
    network = [row[4] for row in result.rows]
    assert syncs == sorted(syncs, reverse=True)
    assert syncs[-1] < syncs[0]
    # Fewer barriers can only remove modeled time.
    assert all(b <= a + 1e-12 for a, b in zip(epochs, epochs[1:]))
    assert all(b <= a + 1e-12 for a, b in zip(allreduce, allreduce[1:]))
    assert all(b <= a + 1e-12 for a, b in zip(network, network[1:]))
