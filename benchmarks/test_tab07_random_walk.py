"""Regenerates Table 7: memory IO under the random-walk sampler."""

from repro.experiments import tab07_random_walk


def test_tab07_random_walk(run_experiment):
    result = run_experiment(tab07_random_walk.run)
    for row in result.rows:
        dataset, dgl_io, ng_io, full_io = row[0], row[1], row[2], row[3]
        # Match helps even under random-walk sampling (paper: 1.1-2.6x)...
        assert ng_io < dgl_io, dataset
        # ...and the full stack is at least as good (noise tolerance 2%).
        assert full_io < ng_io * 1.02, dataset
    # The dense graph (Reddit) benefits most — overlap is largest there.
    by_ds = {row[0]: row[1] / row[3] for row in result.rows}
    assert by_ds["RD"] == max(by_ds.values())
