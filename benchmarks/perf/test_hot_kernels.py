"""pytest-benchmark suite over the five named hot kernels.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/perf --benchmark-only

Unlike ``python -m repro.bench`` (which writes ``BENCH_repro.json`` and
gates the baseline), this suite gives statistically robust per-kernel
distributions — min/median/stddev over many rounds — for local perf work
and A/B comparison via ``--benchmark-compare``. Each benchmark reuses
the exact workloads from :mod:`repro.bench.kernels` at the ``small``
size, so numbers line up with the ``--quick`` CLI run; the two
vectorized kernels also assert equivalence with their kept reference
implementations once per session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.kernels import SIZES, _bench_dataset, _node_sets
from repro.core.reorder import (
    greedy_reorder,
    match_degree_matrix,
    match_degree_matrix_legacy,
)
from repro.graph.features import MaterializedFeatureStore
from repro.sampling import FusedIdMap, NeighborSampler
from repro.sampling.idmap.hash_table import (
    ExactOpenAddressTable,
    VectorOpenAddressTable,
    table_capacity,
)

SEED = 0


@pytest.fixture(scope="module")
def match_sets():
    return _node_sets(SIZES["match_degree_matrix"]["small"], SEED)


def test_match_degree_matrix(benchmark, match_sets):
    matrix = benchmark(match_degree_matrix, match_sets)
    assert np.array_equal(matrix, match_degree_matrix_legacy(match_sets))


def test_match_degree_matrix_legacy_reference(benchmark, match_sets):
    benchmark(match_degree_matrix_legacy, match_sets)


def test_greedy_reorder(benchmark):
    node_sets = _node_sets(SIZES["greedy_reorder"]["small"], SEED)
    order = benchmark(greedy_reorder, node_sets)
    assert sorted(order) == list(range(len(node_sets)))


def test_fused_map_insert(benchmark):
    params = SIZES["fused_map_insert"]["small"]
    rng = np.random.default_rng(SEED)
    ids = rng.integers(0, params["id_space"], size=params["num_ids"],
                       dtype=np.int64)
    capacity = table_capacity(len(np.unique(ids)))

    def run():
        table = VectorOpenAddressTable(capacity)
        table.fused_map_insert_batch(ids)
        return table

    table = benchmark(run)
    exact = ExactOpenAddressTable(capacity)
    for gid in ids:
        exact.fused_map_insert(int(gid))
    assert table.mapping() == exact.mapping()


def test_neighbor_sampling(benchmark):
    params = SIZES["neighbor_sampling"]["small"]
    dataset = _bench_dataset(params["num_nodes"], SEED)
    batch_rng = np.random.default_rng(SEED + 1)
    batches = [
        batch_rng.choice(dataset.train_ids, size=params["batch_size"],
                         replace=False)
        for _ in range(params["batches"])
    ]

    def run():
        sampler = NeighborSampler(
            dataset.graph, params["fanouts"], idmap=FusedIdMap(),
            rng=np.random.default_rng(SEED + 2),
        )
        return [sampler.sample(batch) for batch in batches]

    subgraphs = benchmark(run)
    assert len(subgraphs) == params["batches"]


def test_feature_gather(benchmark):
    params = SIZES["feature_gather"]["small"]
    rng = np.random.default_rng(SEED)
    store = MaterializedFeatureStore(
        rng.standard_normal(
            (params["num_nodes"], params["dim"])
        ).astype(np.float32)
    )
    requests = [
        rng.choice(params["num_nodes"], size=params["rows"], replace=False)
        for _ in range(params["gathers"])
    ]

    def run():
        return sum(len(store.gather(request)) for request in requests)

    total = benchmark(run)
    assert total == params["gathers"] * params["rows"]
