"""Regenerates Figure 16: training-loss convergence, FastGL vs DGL."""

from repro.experiments import fig16_convergence


def test_fig16_convergence(run_experiment):
    result = run_experiment(fig16_convergence.run)
    rows = {(row[0], row[1]): row for row in result.rows}
    for model in ("gcn", "gin"):
        dgl = rows[(model, "dgl")]
        fastgl = rows[(model, "fastgl")]
        # Both train: final loss far below the initial loss.
        assert dgl[3] < 0.5 * dgl[2], model
        assert fastgl[3] < 0.5 * fastgl[2], model
        # FastGL converges to (approximately) the same loss as DGL.
        ratio = fastgl[4] / dgl[4]
        assert 0.6 < ratio < 1.7, (model, ratio)
