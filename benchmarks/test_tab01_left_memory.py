"""Regenerates Table 1: remaining GPU memory at paper scale."""

from repro.experiments import tab01_left_memory


def test_tab01_left_memory(run_experiment):
    result = run_experiment(tab01_left_memory.run)
    left = {row[0]: row[2] for row in result.rows}

    # Paper shape: the small graphs leave plenty of device memory; the
    # 100M-node graphs leave little or none.
    assert left["RD"] > left["MAG"] > left["PA"]
    assert left["PR"] > left["MAG"]
    assert left["PA"] < 1.0 and left["IGB"] < 1.0  # < 1 GB remaining
    assert left["RD"] > 8.0 and left["PR"] > 4.0   # ample headroom
