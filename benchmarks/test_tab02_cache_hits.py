"""Regenerates Table 2: cache hit rates + achieved GFLOP/s (naive)."""

from repro.experiments import tab02_cache_hits
from repro.gpu.spec import RTX3090


def test_tab02_cache_hits(run_experiment):
    result = run_experiment(tab02_cache_hits.run)
    peak_gflops = RTX3090.peak_flops / 1e9
    for row in result.rows:
        _, l1, l2, gflops = row[0], row[1], row[2], row[3]
        # Paper shape: terrible L1 (3-5%), modest L2 (15-25%).
        assert l1 < 0.10, row
        assert l2 < 0.60, row
        # Achieved performance is 1-2 orders below the 29.2 TFLOP/s peak.
        assert gflops < 0.05 * peak_gflops, row
        assert gflops > 50, row
