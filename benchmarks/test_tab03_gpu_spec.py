"""Regenerates Table 3: RTX 3090 memory-level statistics."""

from repro.experiments import tab03_gpu_spec


def test_tab03_gpu_spec(run_experiment):
    result = run_experiment(tab03_gpu_spec.run)
    rows = {row[0]: row for row in result.rows}
    assert rows["L1 Cache"][1] == "12TB/s"
    assert rows["Shared Memory"][1] == "12TB/s"
    assert rows["L2 Cache"][2] == "6MB"
    assert rows["Global Memory"][1] == "938GB/s"
    assert rows["Global Memory"][2] == "24GB"
