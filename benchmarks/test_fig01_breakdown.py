"""Regenerates Figure 1: per-framework training-time breakdown."""

from repro.experiments import fig01_breakdown


def test_fig01_breakdown(run_experiment):
    result = run_experiment(fig01_breakdown.run)
    rows = {(r[0], r[1]): r for r in result.rows}

    # PyG is sample-dominated on the citation-scale graphs (paper: to 97%).
    assert rows[("MAG", "pyg")][2] > 0.5
    assert rows[("PA", "pyg")][2] > 0.5
    # DGL is memory-IO dominated on every large graph (paper: up to 77%).
    for dataset in ("PR", "MAG", "IGB", "PA"):
        assert rows[(dataset, "dgl")][3] > 0.45, dataset
    # PyG's epoch is far slower than DGL's everywhere.
    for dataset in ("RD", "PR", "MAG", "IGB", "PA"):
        assert rows[(dataset, "pyg")][5] > 1.4 * rows[(dataset, "dgl")][5]
