"""Regenerates Figure 9: overall training speed, 3 models x 5 datasets."""

from repro.experiments import fig09_overall


def test_fig09_overall(run_experiment):
    result = run_experiment(fig09_overall.run)
    speed_cols = {name: 6 + i for i, name in
                  enumerate(("dgl", "gnnadvisor", "gnnlab"))}
    for row in result.rows:
        model, dataset = row[0], row[1]
        # FastGL is the fastest framework on every (model, dataset) pair.
        for name, col in speed_cols.items():
            assert row[col] > 1.0, (model, dataset, name)
        # Speedups over DGL fall in (a relaxed version of) the paper band.
        assert 1.2 < row[speed_cols["dgl"]] < 8.0, (model, dataset)
        # GNNAdvisor never beats DGL (per-iteration preprocessing).
        assert row[speed_cols["gnnadvisor"]] >= row[speed_cols["dgl"]], (
            model, dataset)
