"""Regenerates Figure 14: scalability sweeps (GPUs, batch, dim, fanouts)."""

import math

from repro.experiments import fig14_scalability


def test_fig14a_gpus(run_experiment):
    result = run_experiment(fig14_scalability.run_gpus)
    rows = {row[0]: row for row in result.rows}
    # FastGL is fastest at every GPU count.
    for gpus, row in rows.items():
        assert row[4] > 1.0, gpus  # x_dgl
    # FastGL scales better than DGL at 8 GPUs (paper: 5.93x vs 3.36x).
    assert rows[8][6] > rows[8][5]
    # Both gain from more GPUs.
    assert rows[8][5] > rows[2][5] and rows[8][6] > rows[2][6]


def test_fig14b_batch_size(run_experiment):
    result = run_experiment(fig14_scalability.run_batch_size)
    x_gnnlab = [row[5] for row in result.rows]
    # FastGL wins everywhere and its edge over GNNLab grows with batch size.
    assert all(x > 1.0 for x in x_gnnlab)
    assert x_gnnlab[-1] > x_gnnlab[0]
    assert all(row[4] > 1.0 for row in result.rows)  # x_dgl


def test_fig14c_feature_dim(run_experiment):
    result = run_experiment(fig14_scalability.run_feature_dim)
    for row in result.rows:
        assert row[3] > 1.0, row  # overall win at every dimension
        assert row[4] > 1.0, row  # compute win at every dimension
    # Wider features mean more IO to save: the advantage grows.
    assert result.rows[-1][3] > result.rows[0][3]


def test_fig14d_fanouts(run_experiment):
    result = run_experiment(fig14_scalability.run_fanouts)
    for row in result.rows:
        assert row[4] > 1.0, row  # x_dgl at every fanout config
        assert not math.isnan(row[3])
    # Deeper sampling -> more sample-phase time for everyone.
    fastgl_sample = [row[5] for row in result.rows]
    assert fastgl_sample == sorted(fastgl_sample)
