"""Regenerates Table 8: ID-map time, DGL vs Fused-Map."""

from repro.experiments import tab08_idmap


def test_tab08_idmap(run_experiment):
    result = run_experiment(tab08_idmap.run)
    for row in result.rows:
        dataset, dgl_t, fused_t, ratio = row[0], row[1], row[2], row[3]
        assert fused_t < dgl_t, dataset
        # Paper band: 2.1-2.7x (relaxed to 1.5-3.5 for scale effects).
        assert 1.5 < ratio < 3.5, dataset
    # The larger graphs see the bigger ratios (more unique IDs per batch).
    ratios = {row[0]: row[3] for row in result.rows}
    assert ratios["MAG"] > ratios["RD"]
    assert ratios["PA"] > ratios["PR"]
