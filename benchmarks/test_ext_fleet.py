"""Serving-fleet benches: what match-affinity routing must deliver.

The tentpole gate: on the locality-skewed fleet workload at four
replicas, match-affinity routing beats BOTH round-robin and JSQ on p99
latency AND device cache-hit rate simultaneously — the paper's
inter-batch overlap insight must pay at the fleet layer, not just trade
locality for queueing.
"""

from repro.experiments import ext_fleet


def test_match_affinity_beats_both_baselines(run_experiment):
    result = run_experiment(ext_fleet.run_routing)
    rows = {row[0]: row for row in result.rows}
    assert set(rows) == {"round-robin", "jsq", "match-affinity"}
    affinity = rows["match-affinity"]
    for baseline in ("round-robin", "jsq"):
        other = rows[baseline]
        # Strictly better tail latency...
        assert affinity[2] < other[2], (baseline, affinity[2], other[2])
        # ...and strictly better device cache-hit rate.
        assert affinity[4] > other[4], (baseline, affinity[4], other[4])
    # Nothing crashed in this sweep: clean availability everywhere.
    for row in rows.values():
        assert row[5] == 1.0
        assert row[6] == 0


def test_jsq_p99_scales_down_with_replicas(run_experiment):
    result = run_experiment(ext_fleet.run_scaling)
    replicas = [row[0] for row in result.rows]
    p99s = [row[2] for row in result.rows]
    assert replicas == [1, 2, 4, 8]
    assert all(b <= a + 1e-9 for a, b in zip(p99s, p99s[1:]))
    # The shared tier runs warm, and TTL expiry shows up as stale hits.
    for row in result.rows:
        assert row[4] > 0.5, "tier hit rate collapsed"
        assert 0.0 <= row[5] < 0.5


def test_chaos_ledger_stays_exact(run_experiment):
    result = run_experiment(ext_fleet.run_chaos)
    by_prob = {row[0]: row for row in result.rows}
    assert by_prob[0.0][1] == 0 and by_prob[0.0][2] == 0
    # At certainty every original replica dies...
    assert by_prob[1.0][1] >= 4
    # ...yet recovery re-routes the stranded work and the autoscaler
    # restores capacity: availability never dips below 99%.
    assert by_prob[1.0][6] >= 1
    for row in result.rows:
        assert row[4] >= 0.99, row
