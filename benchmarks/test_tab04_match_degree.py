"""Regenerates Table 4: match degrees between sampled mini-batches."""

from repro.experiments import tab04_match_degree


def test_tab04_match_degree(run_experiment):
    result = run_experiment(tab04_match_degree.run)
    avg = {row[0]: row[1] for row in result.rows}
    spread = {row[0]: row[2] for row in result.rows}

    # Paper shape: Reddit >> Products > MAG/Papers100M.
    assert avg["RD"] > avg["PR"] > avg["MAG"]
    assert avg["RD"] > avg["PA"]
    assert avg["RD"] > 0.85          # Reddit overlap is extreme (93%+)
    assert avg["PA"] < 0.75          # large graphs overlap far less
    # Every pair overlaps substantially (the Match opportunity exists).
    assert all(v > 0.2 for v in avg.values())
    # The spread is non-zero — the Reorder headroom.
    assert all(v > 0 for v in spread.values())
