"""Regenerates Figure 15: cumulative-technique ablation."""

from repro.experiments import fig15_ablation


def test_fig15_ablation(run_experiment):
    result = run_experiment(fig15_ablation.run)
    stacks = {row[0]: row[1] for row in result.rows}

    # Cumulative stacks strictly improve the average speedup.
    assert (stacks["DGL"] < stacks["+MR"] < stacks["+MR+MA"]
            < stacks["+MR+MA+FM"])
    # MR's increment dominates (memory IO was the biggest bottleneck);
    # FM's is the smallest (sampling is the smallest phase).
    gain_mr = stacks["+MR"] / stacks["DGL"]
    gain_ma = stacks["+MR+MA"] / stacks["+MR"]
    gain_fm = stacks["+MR+MA+FM"] / stacks["+MR+MA"]
    assert gain_mr > gain_ma > 1.0
    assert gain_fm > 1.0
    # Full FastGL lands in the paper's average-speedup neighborhood (2.2x).
    assert 1.5 < stacks["+MR+MA+FM"] < 3.5
