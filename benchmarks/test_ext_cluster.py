"""Cluster-tier benches: the shapes multi-node scaling must reproduce.

The cluster tentpole claim: edge-cut-aware partitioning (greedy,
METIS-style) plus frequency caching of hot remote rows beats random
placement with no cache on modeled epoch time at every cluster size —
because owner-compute training keeps each node's sampling frontier
mostly local, and the residual boundary traffic is what the fabric
charges for.
"""

from repro.experiments import ext_cluster


def test_strong_scaling_informed_beats_uninformed(run_experiment):
    result = run_experiment(ext_cluster.run_strong_scaling)
    rows = {(row[0], row[1]): row for row in result.rows}
    for nodes in (4, 8, 16):
        informed = rows[(nodes, "greedy+freq")]
        uninformed = rows[(nodes, "random+none")]
        # The informed cluster is faster at every size...
        assert informed[2] < uninformed[2], nodes
        # ...because it cuts far fewer edges...
        assert float(informed[5].rstrip("%")) < 0.5 * float(
            uninformed[5].rstrip("%")), nodes
        # ...and the network lane takes a smaller share of the epoch.
        assert float(informed[7].rstrip("%")) < float(
            uninformed[7].rstrip("%")), nodes
        # Both ablations land between the bundle and the floor.
        assert informed[2] <= rows[(nodes, "greedy+none")][2], nodes
        assert rows[(nodes, "random+freq")][2] <= uninformed[2], nodes


def test_strong_scaling_speedup_grows_with_nodes(run_experiment):
    result = run_experiment(ext_cluster.run_strong_scaling)
    speedups = [row[3] for row in result.rows if row[1] == "greedy+freq"]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 2.0  # 16 nodes beat one node clearly


def test_weak_scaling_shapes(run_experiment):
    result = run_experiment(ext_cluster.run_weak_scaling)
    for nodes in (4, 8, 16):
        at_size = {row[1]: row for row in result.rows if row[0] == nodes}
        # Informed beats uninformed on epoch time at constant work/node.
        assert at_size["greedy+freq"][3] < at_size["random+none"][3]
    # Efficiency decays as the boundary widens with the cluster.
    efficiency = [row[4] for row in result.rows
                  if row[1] == "greedy+freq"]
    assert efficiency == sorted(efficiency, reverse=True)


def test_partitioner_quality(run_experiment):
    result = run_experiment(ext_cluster.run_partitioners)
    rows = result.row_dict()
    greedy, random_, hash_ = rows["greedy"], rows["random"], rows["hash"]
    # Greedy cuts a fraction of the edges the baselines cut...
    assert float(greedy[1].rstrip("%")) < 0.5 * float(
        random_[1].rstrip("%"))
    # ...within its balance slack...
    assert greedy[2] <= 1.05 + 1e-9
    # ...with a smaller halo front and fewer bytes on the wire...
    assert greedy[3] < random_[3]
    assert greedy[4] < random_[4]
    # ...and the fastest modeled epoch of the three.
    assert greedy[6] < random_[6]
    assert greedy[6] < hash_[6]
