"""Wall-clock microbenchmarks of the substrate's hot kernels.

Unlike the experiment benches (which report *modeled* GPU seconds), these
measure the real Python/numpy implementations — useful for keeping the
simulator itself fast.
"""

import numpy as np
import pytest

from repro.core.match import match_split
from repro.core.reorder import greedy_reorder, match_degree_matrix
from repro.graph import get_dataset
from repro.nn import Tensor, a3_aggregate
from repro.sampling import FusedIdMap, NeighborSampler


@pytest.fixture(scope="module")
def products():
    return get_dataset("products")


@pytest.fixture(scope="module")
def subgraph(products):
    sampler = NeighborSampler(products.graph, (5, 10, 15), rng=0)
    return sampler.sample(products.train_ids[:256])


def test_bench_neighbor_sampler(benchmark, products):
    sampler = NeighborSampler(products.graph, (5, 10, 15), rng=0)
    seeds = products.train_ids[:256]
    benchmark(sampler.sample, seeds)


def test_bench_fused_idmap(benchmark):
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 500_000, size=200_000)
    idmap = FusedIdMap()
    benchmark(idmap.map, ids)


def test_bench_match_split(benchmark):
    rng = np.random.default_rng(1)
    resident = np.unique(rng.integers(0, 300_000, size=80_000))
    wanted = np.unique(rng.integers(0, 300_000, size=80_000))
    benchmark(match_split, resident, wanted)


def test_bench_greedy_reorder(benchmark, products):
    sampler = NeighborSampler(products.graph, (5, 10, 15), rng=2)
    sets = [
        sampler.sample(products.train_ids[i * 256:(i + 1) * 256]).input_nodes
        for i in range(8)
    ]
    matrix = match_degree_matrix(sets)
    benchmark(greedy_reorder, matrix)


def test_bench_a3_forward(benchmark, subgraph):
    block = subgraph.layers[-1]
    x = Tensor(np.random.default_rng(3).random((block.num_src, 64),
                                                dtype=np.float32))
    weight = Tensor(np.ones(block.num_edges, dtype=np.float32))
    benchmark(a3_aggregate, x, block.edge_src, block.edge_dst, weight,
              block.num_dst)


def test_bench_cache_sim(benchmark):
    from repro.gpu.memory import CacheSim

    rng = np.random.default_rng(5)
    addresses = rng.integers(0, 50_000_000, size=50_000) * 4

    def run():
        cache = CacheSim(128 * 1024)
        cache.access(addresses)
        return cache.stats.hit_rate

    benchmark(run)


def test_bench_a3_backward(benchmark, subgraph):
    block = subgraph.layers[-1]
    rng = np.random.default_rng(4)

    def run():
        x = Tensor(rng.random((block.num_src, 64), dtype=np.float32),
                   requires_grad=True)
        weight = Tensor(np.ones(block.num_edges, dtype=np.float32),
                        requires_grad=True)
        out = a3_aggregate(x, block.edge_src, block.edge_dst, weight,
                           block.num_dst)
        out.sum().backward()

    benchmark(run)
