"""Regenerates Figure 10: memory-IO cache-ratio sweep + Reorder ablation."""

from repro.experiments import fig10_memory_io


def test_fig10a_cache_ratio_sweep(run_experiment):
    result = run_experiment(fig10_memory_io.run_sweep)
    gnnlab = dict(zip(result.series[0][1], result.series[0][2]))
    fastgl = dict(zip(result.series[1][1], result.series[1][2]))

    # FastGL's memory IO beats GNNLab's at every cache ratio...
    for ratio in gnnlab:
        assert fastgl[ratio] <= gnnlab[ratio], ratio
    # ...with the biggest advantage in the cache-starved regime.
    assert gnnlab[0.0] / fastgl[0.0] > 2.0
    # More cache monotonically helps GNNLab.
    ordered = [gnnlab[r] for r in sorted(gnnlab)]
    assert all(a >= b * 0.999 for a, b in zip(ordered, ordered[1:]))


def test_fig10b_reorder(run_experiment):
    result = run_experiment(fig10_memory_io.run_reorder)
    for row in result.rows:
        dataset, dgl_io, wo_io, w_io, gain = row[0], row[1], row[2], row[3], row[4]
        # Match alone clearly beats DGL's naive loading.
        assert wo_io < 0.7 * dgl_io, dataset
        # Reorder never hurts (allowing sub-percent noise) and helps where
        # batches are heterogeneous.
        assert gain > 0.99, dataset
    gains = [row[4] for row in result.rows]
    assert max(gains) > 1.02  # a visible reorder win on at least one graph
