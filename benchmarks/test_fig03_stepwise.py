"""Regenerates Figure 3: Naive -> +MR -> +MR+MA -> FastGL breakdown."""

from repro.experiments import fig03_stepwise


def test_fig03_stepwise(run_experiment):
    result = run_experiment(fig03_stepwise.run)
    for model in ("gcn", "gin"):
        rows = {r[1]: r for r in result.rows if r[0] == model}
        naive, mr = rows["Naive"], rows["Naive+MR"]
        mr_ma, fastgl = rows["Naive+MR+MA"], rows["FastGL"]

        # Memory IO dominates the naive baseline...
        assert naive[3] > naive[2] and naive[3] > naive[4]
        # ...and MR removes most of it.
        assert mr[3] < 0.25 * naive[3]
        # MA then cuts compute.
        assert mr_ma[4] < 0.95 * mr[4]
        # After MR+MA the sample phase is the (co-)dominant bottleneck...
        assert mr_ma[6] > 0.4
        # ...which Fused-Map reduces.
        assert fastgl[2] < 0.85 * mr_ma[2]
        # Each stack strictly improves the total.
        assert naive[5] > mr[5] > mr_ma[5] > fastgl[5]
