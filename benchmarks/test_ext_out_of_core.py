"""Out-of-core storage-tier benches: the shapes the tier must reproduce.

GIDS (arXiv:2306.16384): GPU-initiated direct storage access beats the
bounce buffer. BGL (arXiv:2112.08541): partition-aware caching beats
recency-only at the small cache ratios of out-of-core training. FastGL:
Match composes with the tier — overlap cuts SSD reads, not just PCIe
bytes.
"""

from repro.experiments import ext_out_of_core


def test_direct_access_beats_bounce_buffer(run_experiment):
    result = run_experiment(ext_out_of_core.run_access_paths)
    rows = {(row[0], row[1]): row for row in result.rows}
    for framework in ("dgl-ooc", "fastgl-ooc"):
        direct = rows[(framework, "direct")]
        bounce = rows[(framework, "bounce")]
        # Direct access bypasses host DRAM entirely...
        assert direct[3] == 0
        assert bounce[3] > 0
        # ...reads the same pages off the drive...
        assert direct[5] == bounce[5]
        # ...and finishes the IO phase faster.
        assert direct[2] < bounce[2]


def test_partition_cache_beats_lru_when_memory_is_scarce(run_experiment):
    result = run_experiment(ext_out_of_core.run_cache_policies)
    low_ratio_rows = [row for row in result.rows if row[0] <= 0.1]
    assert low_ratio_rows, "sweep must cover the scarce-memory regime"
    for row in low_ratio_rows:
        ratio, lru_hit, partition_hit = row[0], row[1], row[2]
        # The BGL-style cache wins clearly, not marginally.
        assert partition_hit > 1.2 * lru_hit, ratio
        # Higher hit rate must show up as less SSD traffic.
        assert row[5] < row[4], ratio


def test_page_size_tradeoff(run_experiment):
    result = run_experiment(ext_out_of_core.run_page_sizes)
    ssd_bytes = [row[1] for row in result.rows]
    requests = [row[3] for row in result.rows]
    # Larger pages: more read amplification, fewer NVMe commands.
    assert ssd_bytes == sorted(ssd_bytes)
    assert requests == sorted(requests, reverse=True)
    # The modeled IO time is non-monotonic: tiny pages pay per-command
    # overhead, huge pages pay amplification.
    times = [row[4] for row in result.rows]
    assert min(times) < times[0] and min(times) < times[-1]


def test_match_cuts_ssd_traffic(run_experiment):
    result = run_experiment(ext_out_of_core.run_match_ssd)
    rows = {row[0]: row for row in result.rows}
    dgl, fastgl = rows["dgl-ooc"], rows["fastgl-ooc"]
    # Match keeps the previous batch's rows resident, so FastGL issues
    # strictly fewer page reads per epoch than the naive OOC baseline...
    assert fastgl[3] > 0  # rows genuinely reused
    assert fastgl[1] < dgl[1]
    assert fastgl[2] < dgl[2]
    # ...and the prefetch pipeline makes the epoch faster end to end.
    assert fastgl[5] < dgl[5]


def test_end_to_end_under_host_budget(run_experiment):
    result = run_experiment(ext_out_of_core.run_end_to_end)
    assert {row[0] for row in result.rows} == {"dgl-ooc", "fastgl-ooc"}
    for row in result.rows:
        name, table_mb, budget_mb, cache_mb, epoch_s, batches = row
        # The budget is genuinely smaller than the feature table, the
        # page cache stays inside it, and the epoch completes.
        assert budget_mb < 0.1 * table_mb
        assert cache_mb <= budget_mb + 1e-9
        assert epoch_s > 0
        assert batches > 0
