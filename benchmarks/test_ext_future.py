"""Extension benches for the paper's Section 7 discussion claims."""

from repro.experiments import ext_future


def test_grace_hopper_bottleneck_shift(run_experiment):
    result = run_experiment(ext_future.run_grace_hopper)
    rows = {row[0]: row for row in result.rows}
    # At PCIe 4.0 the transfer dominates IO...
    assert rows[32.0][3] > rows[32.0][2]
    # ...at Grace-Hopper bandwidth the host-side gather dominates.
    assert rows[900.0][2] > rows[900.0][3]
    # IO time shrinks monotonically with bandwidth.
    ios = [rows[bw][1] for bw in sorted(rows)]
    assert ios == sorted(ios, reverse=True)


def test_multimachine_gap_preserved(run_experiment):
    result = run_experiment(ext_future.run_multimachine)
    speedups = [row[3] for row in result.rows]
    # FastGL stays ahead at every machine count...
    assert all(x > 1.3 for x in speedups)
    # ...and the gap is roughly machine-count-agnostic (within 50%).
    assert max(speedups) / min(speedups) < 1.5
    # More machines never slow the epoch down.
    for col in (1, 2):
        times = [row[col] for row in result.rows]
        assert times == sorted(times, reverse=True)


def test_cache_policy_collapse(run_experiment):
    result = run_experiment(ext_future.run_cache_policies)
    rows = {row[0]: row for row in result.rows}
    # With ample memory (Products) any policy caches everything...
    assert rows["products"][2] > 0.9 and rows["products"][3] > 0.9
    # ...but on the large graphs both static policies collapse
    # (paper: PaGraph under 20% on MAG at true scale).
    assert rows["mag"][2] < 0.45
    assert rows["papers100m"][2] < 0.15
    # Match's reuse beats both caches wherever memory is scarce.
    for dataset in ("mag", "papers100m"):
        assert rows[dataset][4] > rows[dataset][2]
        assert rows[dataset][4] > rows[dataset][3]


def test_gpu_sensitivity(run_experiment):
    result = run_experiment(ext_future.run_gpu_sensitivity)
    rows = {row[0]: row for row in result.rows}
    # FastGL wins on both cards by a comparable factor...
    for name, row in rows.items():
        assert row[3] > 1.5, name
    ratios = [row[3] for row in rows.values()]
    assert max(ratios) / min(ratios) < 1.25
    # ...the A100's faster DRAM shrinks compute and *raises* the IO share.
    assert rows["A100 80GB"][5] < rows["RTX 3090"][5]
    assert rows["A100 80GB"][4] >= rows["RTX 3090"][4]


def test_sampler_generality(run_experiment):
    result = run_experiment(ext_future.run_sampler_generality)
    for row in result.rows:
        kind, ratio = row[0], row[3]
        assert ratio > 1.3, kind  # Fused-Map wins under every sampler
    kinds = {row[0] for row in result.rows}
    assert kinds == {"node-wise", "random-walk", "layer-wise"}
