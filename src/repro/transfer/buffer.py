"""Functional device feature buffer for the Match process.

:class:`ResidentFeatureBuffer` emulates the GPU-resident feature buffer
the Match strategy reuses: across consecutive mini-batches it keeps the
previous batch's rows and *fetches from the host only the difference set*,
assembling the new batch's feature matrix from reused + freshly-gathered
rows. This is the functional counterpart of the byte accounting in
:class:`~repro.transfer.loader.MatchLoader` — tests assert the assembled
matrix is bit-identical to a direct gather, i.e. Match is
exactness-preserving (the premise of the paper's Fig. 16).
"""

from __future__ import annotations

import numpy as np

from repro.core.match import MatchState
from repro.graph.features import FeatureStore


class ResidentFeatureBuffer:
    """Keeps the last mini-batch's feature rows 'on device'."""

    def __init__(self, store: FeatureStore) -> None:
        self.store = store
        self._state = MatchState()
        #: Resident rows, keyed by global node ID.
        self._rows: dict = {}
        self.host_rows_fetched = 0
        self.rows_reused = 0

    def reset(self) -> None:
        """Flush residency (epoch boundary)."""
        self._state.reset()
        self._rows = {}

    def fetch(self, input_nodes: np.ndarray) -> np.ndarray:
        """Feature matrix for ``input_nodes`` (in their given order),
        reusing resident rows and fetching only the difference set."""
        input_nodes = np.asarray(input_nodes, dtype=np.int64)
        result = self._state.step(input_nodes)
        fresh = {}
        if len(result.load_ids):
            fetched = self.store.gather(result.load_ids)
            fresh = {
                int(node): fetched[i]
                for i, node in enumerate(result.load_ids)
            }
        self.host_rows_fetched += len(result.load_ids)
        self.rows_reused += result.num_reused

        out = np.empty((len(input_nodes), self.store.dim), dtype=np.float32)
        next_rows = {}
        for i, node in enumerate(input_nodes):
            node = int(node)
            row = fresh.get(node)
            if row is None:
                row = self._rows[node]
            out[i] = row
            next_rows[node] = out[i]
        # The new batch's buffer replaces the old one (same memory the
        # previous batch needed — no extra device cost).
        self._rows = next_rows
        return out
