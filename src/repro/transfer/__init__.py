"""Memory-IO phase: feature caches and loaders.

The paper's baselines reduce host->device traffic with software caches
(PaGraph: degree-ranked; GNNLab: presample-ranked); FastGL uses the Match
process instead (plus a cache when memory remains). This subpackage
implements all of those strategies over one byte-accounted interface.
"""

from repro.transfer.cache import (
    DegreeCachePolicy,
    PresampleCachePolicy,
    StaticFeatureCache,
)
from repro.transfer.loader import (
    CachedLoader,
    FeatureLoader,
    MatchLoader,
    NaiveLoader,
    TransferReport,
)
from repro.transfer.storage_loader import (
    StorageBackedLoader,
    StorageTransferReport,
    build_storage_loader,
)

__all__ = [
    "DegreeCachePolicy",
    "PresampleCachePolicy",
    "StaticFeatureCache",
    "CachedLoader",
    "FeatureLoader",
    "MatchLoader",
    "NaiveLoader",
    "TransferReport",
    "StorageBackedLoader",
    "StorageTransferReport",
    "build_storage_loader",
]
