"""Storage-backed feature loading — the out-of-core memory-IO phase.

Per mini-batch the loader decides which feature *rows* must come off the
SSD (all input nodes, or only the Match difference for FastGL), routes
them through the page cache as page requests, and accounts two access
paths:

* **bounce buffer** — pages DMA into host DRAM, the CPU gathers the
  wanted rows into a staging buffer, and the rows cross PCIe; every page
  byte transits host memory twice-ish (in as pages, out as rows).
* **direct access** (GIDS-style) — GPU threads issue the NVMe reads and
  pages land in device memory peer-to-peer; the host link carries
  nothing, and the page cache lives in (and is charged to) GPU memory.

Match composes with both: rows resident from the previous batch are never
requested, so Match now cuts *SSD reads*, not just PCIe bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CostModelConfig, DEFAULT_COST_MODEL
from repro.core.match import MatchState
from repro.gpu.pcie import PCIeLink
from repro.sampling.subgraph import SampledSubgraph
from repro.storage.feature_store import StorageBackedFeatureStore
from repro.storage.nvme import NVMeLink
from repro.transfer.loader import FeatureLoader, TransferReport


@dataclass
class StorageTransferReport(TransferReport):
    """Transfer accounting extended with the SSD tier's counters."""

    page_hits: int = 0
    page_misses: int = 0
    #: Pages actually read off the drive (= cache misses).
    ssd_pages: int = 0
    #: NVMe commands after coalescing.
    ssd_requests: int = 0
    #: Bytes off the drive (full pages — the read amplification).
    ssd_bytes: int = 0
    #: Bytes transiting host DRAM (0 on the direct-access path).
    host_bounce_bytes: int = 0
    #: "direct" or "bounce".
    access: str = "direct"
    nvme: NVMeLink | None = None
    host_queue_depth: int = 32
    gpu_queue_depth: int = 4096

    @property
    def page_hit_rate(self) -> float:
        total = self.page_hits + self.page_misses
        if total == 0:
            return 0.0
        return self.page_hits / total

    def merge(self, other: TransferReport) -> "StorageTransferReport":
        super().merge(other)
        for field in ("page_hits", "page_misses", "ssd_pages",
                      "ssd_requests", "ssd_bytes", "host_bounce_bytes"):
            setattr(self, field,
                    getattr(self, field) + getattr(other, field, 0))
        if self.nvme is None:
            self.nvme = getattr(other, "nvme", None)
            self.access = getattr(other, "access", self.access)
            self.host_queue_depth = getattr(other, "host_queue_depth",
                                            self.host_queue_depth)
            self.gpu_queue_depth = getattr(other, "gpu_queue_depth",
                                           self.gpu_queue_depth)
        return self

    def modeled_time(
        self,
        link: PCIeLink,
        cost: CostModelConfig = DEFAULT_COST_MODEL,
        concurrent_links: int = 1,
    ) -> float:
        """Seconds of memory IO including the NVMe stage."""
        if self.nvme is None:
            return super().modeled_time(link, cost, concurrent_links)
        bw = link.effective_bandwidth(concurrent_links)
        if self.access == "direct":
            # Pages stream SSD -> PCIe switch -> GPU in one DMA, bounded
            # by the slower of the two links; GPU-initiated submission
            # keeps the device queues deep. Topology still comes from the
            # host over the ordinary link.
            read = self.nvme.read_time(
                self.ssd_requests, self.ssd_bytes,
                queue_depth=self.gpu_queue_depth, bandwidth_cap=bw,
            )
            structure = 0.0
            if self.structure_bytes:
                structure = (self.num_transfers * link.latency_s
                             + self.structure_bytes / bw)
            return read + structure + self.retry_delay_s
        read = self.nvme.read_time(
            self.ssd_requests, self.ssd_bytes,
            queue_depth=self.host_queue_depth,
        )
        gather = self.feature_bytes / cost.host_gather_bytes_per_s
        out = (self.num_transfers * link.latency_s
               + (self.feature_bytes + self.structure_bytes) / bw)
        return read + gather + out + self.retry_delay_s


class StorageBackedLoader(FeatureLoader):
    """Feature loader whose misses are served by the SSD tier.

    ``use_match=True`` applies FastGL's Match first: rows resident on the
    GPU from the previous mini-batch are excluded before any page request
    is formed, so overlap reduces SSD traffic at the source.
    """

    #: The page cache stays warm across epochs, so multi-epoch runs must
    #: keep this loader's lane in the parent process (see the epoch
    #: driver's jobs handling).
    carries_state_across_epochs = True

    def __init__(
        self,
        store: StorageBackedFeatureStore,
        nvme: NVMeLink,
        access: str = "direct",
        use_match: bool = False,
        host_queue_depth: int = 32,
        gpu_queue_depth: int = 4096,
    ) -> None:
        if access not in ("direct", "bounce"):
            raise ValueError(f"unknown storage access path {access!r}")
        super().__init__(store)
        self.nvme = nvme
        self.access = access
        self.host_queue_depth = int(host_queue_depth)
        self.gpu_queue_depth = int(gpu_queue_depth)
        self._state = MatchState() if use_match else None

    @property
    def cache(self):
        return self.store.cache

    def reset_epoch(self) -> None:
        if self._state is not None:
            self._state.reset()

    def _on_load_failure(self, subgraph: SampledSubgraph) -> None:
        # An unrecovered NVMe read or a stalled transfer: Match's step()
        # already promised this batch's rows as resident, but the bytes
        # never (fully) arrived — invalidate so no later batch reuses a
        # row from the failed load.
        if self._state is not None:
            self._state.invalidate()

    def _plan(self, subgraph: SampledSubgraph) -> StorageTransferReport:
        report = StorageTransferReport(
            num_wanted=subgraph.num_nodes,
            structure_bytes=subgraph.structure_bytes(),
            num_transfers=1,
            access=self.access,
            nvme=self.nvme,
            host_queue_depth=self.host_queue_depth,
            gpu_queue_depth=self.gpu_queue_depth,
        )
        wanted = subgraph.input_nodes
        if self._state is not None:
            result = self._state.step(
                wanted, sorted_wanted=subgraph.unique_input_nodes()
            )
            report.num_reused = result.num_reused
            to_fetch = result.load_ids
        else:
            to_fetch = wanted
        plan, _ = self.store.scheduler.submit(to_fetch, fetch=False)
        report.num_loaded = len(to_fetch)
        report.page_hits = plan.page_hits
        report.page_misses = plan.page_misses
        report.ssd_pages = plan.page_misses
        report.ssd_requests = plan.ssd_requests
        report.ssd_bytes = plan.ssd_bytes
        report.num_retries = plan.num_retries
        report.retry_delay_s = plan.fault_delay_s
        row_bytes = len(to_fetch) * self.store.bytes_per_node
        if self.access == "direct":
            # Missed pages cross PCIe peer-to-peer; cache hits are already
            # device-resident and move nothing.
            report.feature_bytes = plan.ssd_bytes
        else:
            report.feature_bytes = row_bytes
            report.host_bounce_bytes = plan.ssd_bytes + row_bytes
        return report

    def load(self, subgraph: SampledSubgraph) -> tuple:
        """Plan through the storage tier, gather rows from the backing
        table (the pages just planned hold exactly these rows — fetching
        them again through the cache would double-count the SSD reads)."""
        report = self.plan(subgraph)
        features = self.store.backing.gather(subgraph.input_nodes)
        return features, report


def page_cache_budget_bytes(dataset, config) -> int:
    """Memory the page cache may occupy: the configured host budget, or
    10% of the feature table (the large-graph regime the tier targets)."""
    if config.host_memory_bytes is not None:
        return max(0, int(config.host_memory_bytes))
    return int(0.1 * dataset.features.total_bytes)


def build_storage_loader(dataset, config, use_match: bool = False,
                         ) -> StorageBackedLoader:
    """Assemble the full stack for ``dataset`` under ``config``:
    page store -> page cache (policy + budget from config) -> scheduler ->
    storage-backed store -> loader."""
    from repro.storage.cache import build_page_cache
    from repro.storage.nvme import nvme_from_cost

    cost = config.cost
    store = StorageBackedFeatureStore(dataset.features,
                                      page_bytes=config.page_bytes)
    budget = page_cache_budget_bytes(dataset, config)
    capacity_pages = budget // store.page_store.page_bytes
    cache = build_page_cache(
        config.page_cache_policy,
        capacity_pages,
        page_store=store.page_store,
        partition_of_node=dataset.labels,
        train_ids=dataset.train_ids,
        degrees=dataset.graph.degrees,
    )
    store.attach_cache(cache)
    return StorageBackedLoader(
        store,
        nvme_from_cost(cost),
        access=config.storage_access,
        use_match=use_match,
        host_queue_depth=cost.nvme_host_queue_depth,
        gpu_queue_depth=cost.nvme_gpu_queue_depth,
    )
