"""Static GPU feature caches and their admission policies.

Both compared systems pin a *static* set of feature rows on the device:

* **PaGraph** ranks nodes by degree (high-degree nodes are sampled most
  often);
* **GNNLab** ranks by visit frequency observed in a pre-sampling pass,
  which tracks the actual sampler/train-set distribution.

A cache is sized in bytes; hits cost nothing on PCIe, misses are loaded.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.features import FeatureStore
from repro.utils.rng import ensure_rng


class StaticFeatureCache:
    """A pinned set of node IDs whose features live on the device."""

    def __init__(self, cached_ids: np.ndarray, bytes_per_node: int) -> None:
        self.cached_ids = np.unique(np.asarray(cached_ids, dtype=np.int64))
        self.bytes_per_node = int(bytes_per_node)
        self.hits = 0
        self.misses = 0

    @property
    def num_cached(self) -> int:
        return len(self.cached_ids)

    @property
    def capacity_bytes(self) -> int:
        return self.num_cached * self.bytes_per_node

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def partition(self, wanted: np.ndarray) -> tuple:
        """Split ``wanted`` into (cached, uncached); updates hit counters."""
        wanted = np.asarray(wanted, dtype=np.int64)
        if self.num_cached == 0:
            self.misses += len(wanted)
            return np.empty(0, dtype=np.int64), wanted.copy()
        pos = np.searchsorted(self.cached_ids, wanted)
        pos = np.minimum(pos, self.num_cached - 1)
        hit = self.cached_ids[pos] == wanted
        self.hits += int(hit.sum())
        self.misses += int((~hit).sum())
        return wanted[hit], wanted[~hit]


class DegreeCachePolicy:
    """PaGraph-style: cache the highest-degree nodes that fit."""

    @staticmethod
    def build(graph: CSRGraph, store: FeatureStore,
              capacity_bytes: int) -> StaticFeatureCache:
        slots = max(0, int(capacity_bytes // store.bytes_per_node))
        slots = min(slots, graph.num_nodes)
        if slots == 0:
            ids = np.empty(0, dtype=np.int64)
        else:
            ids = np.argpartition(graph.degrees, -slots)[-slots:]
        return StaticFeatureCache(ids, store.bytes_per_node)


class PresampleCachePolicy:
    """GNNLab-style: cache the nodes most visited by a pre-sampling pass."""

    @staticmethod
    def build(
        sampler,
        train_ids: np.ndarray,
        store: FeatureStore,
        capacity_bytes: int,
        batch_size: int = 256,
        num_batches: int = 6,
        rng=None,
    ) -> StaticFeatureCache:
        """Run ``num_batches`` sample draws and rank nodes by visit count.

        Ties (nodes visited equally often — common for the long tail) are
        broken by degree, which tracks future visit probability; GNNLab's
        hotness metric behaves the same way in expectation.
        """
        slots = max(0, int(capacity_bytes // store.bytes_per_node))
        slots = min(slots, store.num_nodes)
        if slots == 0:
            return StaticFeatureCache(np.empty(0, dtype=np.int64),
                                      store.bytes_per_node)
        rng = ensure_rng(rng)
        counts = np.zeros(store.num_nodes, dtype=np.float64)
        for _ in range(num_batches):
            size = min(batch_size, len(train_ids))
            seeds = rng.choice(train_ids, size=size, replace=False)
            subgraph = sampler.sample(seeds)
            counts[subgraph.input_nodes] += 1
        graph = getattr(sampler, "graph", None)
        if graph is not None:
            deg = graph.degrees.astype(np.float64)
            counts += deg / (deg.max() + 1.0)  # sub-integer tiebreak
        ranked = np.argsort(counts, kind="stable")[::-1][:slots]
        return StaticFeatureCache(ranked, store.bytes_per_node)
