"""Feature loaders — the memory-IO phase strategies.

Every loader answers the same question per mini-batch: *which feature rows
cross PCIe?* The answers:

* :class:`NaiveLoader` — all input nodes (PyG/DGL).
* :class:`CachedLoader` — cache misses only (PaGraph/GNNLab).
* :class:`MatchLoader` — rows not resident from the previous batch
  (FastGL's Match), optionally consulting a cache for the remainder
  (FastGL when spare memory exists, Section 5 of the paper).

Loaders count bytes; the PCIe link model converts bytes to seconds. When a
framework actually trains (Fig. 16) the loader also gathers the real
feature values.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.config import CostModelConfig, DEFAULT_COST_MODEL
from repro.core.match import MatchState
from repro.errors import FaultError, TransferStallError
from repro.faults import call_with_faults, get_fault_plan
from repro.faults.retry import DEFAULT_RETRY_POLICY
from repro.gpu.pcie import PCIeLink
from repro.graph.features import FeatureStore
from repro.obs import get_registry
from repro.sampling.subgraph import SampledSubgraph
from repro.transfer.cache import StaticFeatureCache


@dataclass
class TransferReport:
    """Byte accounting of one mini-batch's memory-IO phase."""

    num_wanted: int = 0
    num_loaded: int = 0
    num_reused: int = 0
    num_cache_hits: int = 0
    feature_bytes: int = 0
    structure_bytes: int = 0
    #: Number of discrete host->device transfers (latency accounting).
    num_transfers: int = 0
    #: Transfer/read retries absorbed by the resilience layer.
    num_retries: int = 0
    #: Modeled seconds of retry backoff + injected stalls (part of IO).
    retry_delay_s: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.feature_bytes + self.structure_bytes

    def merge(self, other: "TransferReport") -> "TransferReport":
        self.num_wanted += other.num_wanted
        self.num_loaded += other.num_loaded
        self.num_reused += other.num_reused
        self.num_cache_hits += other.num_cache_hits
        self.feature_bytes += other.feature_bytes
        self.structure_bytes += other.structure_bytes
        self.num_transfers += other.num_transfers
        self.num_retries += getattr(other, "num_retries", 0)
        self.retry_delay_s += getattr(other, "retry_delay_s", 0.0)
        return self

    def modeled_time(
        self,
        link: PCIeLink,
        cost: CostModelConfig = DEFAULT_COST_MODEL,
        concurrent_links: int = 1,
    ) -> float:
        """Seconds on the host link (gather + DMA) for this report."""
        if self.total_bytes == 0:
            return self.retry_delay_s
        gather = self.feature_bytes / cost.host_gather_bytes_per_s
        bw = link.effective_bandwidth(concurrent_links)
        return (gather + self.num_transfers * link.latency_s
                + self.total_bytes / bw + self.retry_delay_s)


class FeatureLoader(ABC):
    """Per-mini-batch feature-loading strategy."""

    #: Whether state survives :meth:`reset_epoch` (e.g. a warm page
    #: cache). The epoch driver only runs trainer lanes in forked workers
    #: when this is False or the run is single-epoch — otherwise the
    #: parent's loader would miss the state evolved inside the fork.
    carries_state_across_epochs = False

    def __init__(self, store: FeatureStore) -> None:
        self.store = store

    def reset_epoch(self) -> None:
        """Hook: drop any cross-batch state at epoch boundaries."""

    def plan(self, subgraph: SampledSubgraph) -> TransferReport:
        """Decide what to load for ``subgraph`` (byte accounting only).

        Template method: the strategy lives in :meth:`_plan`; this
        wrapper additionally injects ``pcie_stall`` faults (a stalled
        host->device transfer is retried with backoff; exhaustion
        invalidates any provisional residency and raises
        :class:`~repro.errors.TransferStallError`) and reports the plan's
        accounting to the metrics registry when observability is enabled.
        """
        fault_plan = get_fault_plan()
        if fault_plan.enabled:
            try:
                report, stats = call_with_faults(
                    lambda: self._plan(subgraph),
                    site="pcie_stall",
                    policy=DEFAULT_RETRY_POLICY,
                    exc_factory=lambda attempts: TransferStallError(
                        f"{type(self).__name__} feature transfer", attempts),
                    plan=fault_plan,
                )
            except FaultError:
                # Stalled transfer or an unrecovered storage read below
                # us: residency is unknown either way.
                self._on_load_failure(subgraph)
                raise
            report.num_retries += stats.num_retries
            report.retry_delay_s += stats.delay_s
        else:
            report = self._plan(subgraph)
        registry = get_registry()
        if registry.enabled:
            handles = self._obs_handles(registry)
            handles["feature_bytes"].inc(report.feature_bytes)
            handles["structure_bytes"].inc(report.structure_bytes)
            handles["rows_wanted"].inc(report.num_wanted)
            handles["rows_loaded"].inc(report.num_loaded)
            handles["rows_reused"].inc(report.num_reused)
            handles["cache_hits"].inc(report.num_cache_hits)
        return report

    @abstractmethod
    def _plan(self, subgraph: SampledSubgraph) -> TransferReport:
        """Strategy hook: the actual per-mini-batch load decision."""

    def _on_load_failure(self, subgraph: SampledSubgraph) -> None:
        """Hook: a feature load failed for good (retries exhausted).

        Loaders holding residency state must invalidate whatever this
        batch's transfer would have populated — the device buffer is in
        an unknown state and must never be reused.
        """

    def _obs_handles(self, registry) -> dict:
        """Per-loader metric handles, cached per registry instance."""
        cached = getattr(self, "_obs_cache", None)
        if cached is not None and cached[0] is registry:
            return cached[1]
        labels = {"loader": type(self).__name__}
        handles = {
            "feature_bytes": registry.counter(
                "repro_transfer_feature_bytes_total",
                "Feature bytes crossing the host link",
            ).labels(**labels),
            "structure_bytes": registry.counter(
                "repro_transfer_structure_bytes_total",
                "Subgraph-topology bytes crossing the host link",
            ).labels(**labels),
            "rows_wanted": registry.counter(
                "repro_transfer_rows_wanted_total",
                "Feature rows each mini-batch needed",
            ).labels(**labels),
            "rows_loaded": registry.counter(
                "repro_transfer_rows_loaded_total",
                "Feature rows actually transferred",
            ).labels(**labels),
            "rows_reused": registry.counter(
                "repro_transfer_rows_reused_total",
                "Rows reused from the previous batch (Match)",
            ).labels(**labels),
            "cache_hits": registry.counter(
                "repro_transfer_cache_hits_total",
                "Rows served from the device feature cache",
            ).labels(**labels),
        }
        self._obs_cache = (registry, handles)
        return handles

    def load(self, subgraph: SampledSubgraph) -> tuple:
        """Like :meth:`plan` but also gathers the real feature rows for the
        *whole* input set (training needs all rows regardless of how many
        crossed PCIe)."""
        report = self.plan(subgraph)
        features = self.store.gather(subgraph.input_nodes)
        return features, report

    def _base_report(self, subgraph: SampledSubgraph) -> TransferReport:
        return TransferReport(
            num_wanted=subgraph.num_nodes,
            structure_bytes=subgraph.structure_bytes(),
            num_transfers=1,
        )


class NaiveLoader(FeatureLoader):
    """Load every input node's features (DGL/PyG behaviour)."""

    def _plan(self, subgraph: SampledSubgraph) -> TransferReport:
        report = self._base_report(subgraph)
        report.num_loaded = subgraph.num_nodes
        report.feature_bytes = subgraph.num_nodes * self.store.bytes_per_node
        return report


class CachedLoader(FeatureLoader):
    """Load only cache misses (PaGraph / GNNLab)."""

    def __init__(self, store: FeatureStore, cache: StaticFeatureCache) -> None:
        super().__init__(store)
        self.cache = cache

    def _plan(self, subgraph: SampledSubgraph) -> TransferReport:
        report = self._base_report(subgraph)
        hits, misses = self.cache.partition(subgraph.input_nodes)
        report.num_cache_hits = len(hits)
        report.num_loaded = len(misses)
        report.feature_bytes = len(misses) * self.store.bytes_per_node
        return report


class MatchLoader(FeatureLoader):
    """FastGL's Match: reuse the previous batch's resident rows; load the
    difference. With an optional cache, rows that are neither resident nor
    cached are the only PCIe traffic."""

    def __init__(self, store: FeatureStore,
                 cache: StaticFeatureCache | None = None) -> None:
        super().__init__(store)
        self.cache = cache
        self._state = MatchState()

    def reset_epoch(self) -> None:
        self._state.reset()

    def _on_load_failure(self, subgraph: SampledSubgraph) -> None:
        # The failed DMA leaves the device buffer in an unknown state:
        # drop residency entirely so Match never serves a corrupt row.
        self._state.invalidate()

    def _plan(self, subgraph: SampledSubgraph) -> TransferReport:
        report = self._base_report(subgraph)
        result = self._state.step(subgraph.input_nodes,
                                  sorted_wanted=subgraph.unique_input_nodes())
        report.num_reused = result.num_reused
        to_load = result.load_ids
        if self.cache is not None:
            hits, to_load = self.cache.partition(to_load)
            report.num_cache_hits = len(hits)
        report.num_loaded = len(to_load)
        report.feature_bytes = len(to_load) * self.store.bytes_per_node
        return report
