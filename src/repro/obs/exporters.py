"""Registry exporters: Prometheus text exposition and JSON snapshots.

The Prometheus exporter follows the text exposition format (0.0.4):
``# HELP`` / ``# TYPE`` headers, escaped help strings and label values,
labels ordered by name, histograms expanded into cumulative ``_bucket``
samples (with the mandatory ``+Inf``) plus ``_sum`` and ``_count``.

The JSON snapshot keeps the same information machine-readably (plus the
p50/p95/p99 summaries), and :func:`flatten_snapshot` turns it into the
flat ``name{label="value"}`` -> number mapping the regression gate in
:mod:`repro.obs.regress` diffs.
"""

from __future__ import annotations

import json

from repro.obs.registry import MetricsRegistry


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (text.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value: float) -> str:
    """Exact, compact sample rendering (no %g precision loss on byte
    counters in the hundreds of millions)."""
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e17:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    return "%g" % bound


def _label_string(labels: dict, extra: list | None = None) -> str:
    """``{a="1",b="2"}`` with label names sorted; empty string if none."""
    pairs = sorted(labels.items())
    if extra:
        pairs = pairs + list(extra)  # le stays last, per convention
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in pairs
    )
    return "{" + body + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry's current state in Prometheus text format."""
    lines: list = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.samples():
            if family.kind == "histogram":
                cumulative = child.cumulative_counts()
                bounds = [_format_bound(b) for b in child.bounds] + ["+Inf"]
                for bound, count in zip(bounds, cumulative):
                    label_str = _label_string(labels, extra=[("le", bound)])
                    lines.append(
                        f"{family.name}_bucket{label_str} {count}"
                    )
                label_str = _label_string(labels)
                lines.append(
                    f"{family.name}_sum{label_str} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{label_str} {child.count}"
                )
            else:
                label_str = _label_string(labels)
                lines.append(
                    f"{family.name}{label_str} "
                    f"{_format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def to_snapshot(registry: MetricsRegistry) -> dict:
    """JSON-able snapshot of every family and child."""
    metrics = []
    for family in registry.collect():
        samples = []
        for labels, child in family.samples():
            if family.kind == "histogram":
                samples.append({
                    "labels": labels,
                    "buckets": [
                        [_format_bound(b), c]
                        for b, c in zip(child.bounds,
                                        child.cumulative_counts())
                    ] + [["+Inf", child.count]],
                    "sum": child.sum,
                    "count": child.count,
                    **child.summary(),
                })
            else:
                samples.append({"labels": labels, "value": child.value})
        metrics.append({
            "name": family.name,
            "kind": family.kind,
            "help": family.help,
            "samples": samples,
        })
    return {"version": 1, "metrics": metrics}


def write_snapshot(path, registry: MetricsRegistry) -> dict:
    """Write :func:`to_snapshot` JSON to ``path``; returns the snapshot."""
    snapshot = to_snapshot(registry)
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return snapshot


def flatten_snapshot(snapshot: dict) -> dict:
    """Flat ``name{labels}`` -> value mapping of a snapshot.

    Counters/gauges contribute one sample; histograms contribute their
    ``_sum`` and ``_count`` (the regression-stable aggregates — bucket
    shapes are diffed implicitly through them).
    """
    flat: dict = {}
    for family in snapshot.get("metrics", []):
        name = family["name"]
        for sample in family["samples"]:
            label_str = _label_string(sample.get("labels", {}))
            if family["kind"] == "histogram":
                flat[f"{name}_sum{label_str}"] = float(sample["sum"])
                flat[f"{name}_count{label_str}"] = float(sample["count"])
            else:
                flat[f"{name}{label_str}"] = float(sample["value"])
    return flat
