"""Command-line observability dumps.

``dump`` runs one instrumented epoch and writes the Prometheus text
exposition, the JSON metrics snapshot, and the Chrome/Perfetto trace for
it; ``compare`` diffs two JSON snapshots metric by metric::

    python -m repro.obs dump --framework fastgl --dataset reddit --out obs/
    python -m repro.obs compare before.json after.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.obs import flatten_snapshot, instrumented, to_prometheus, to_snapshot


def _cmd_dump(args) -> int:
    from repro.config import RunConfig
    from repro.frameworks import FRAMEWORKS
    from repro.graph.datasets import get_dataset
    from repro.metrics.trace import write_chrome_trace

    if args.framework not in FRAMEWORKS:
        print(f"unknown framework {args.framework!r}; "
              f"available: {sorted(FRAMEWORKS)}", file=sys.stderr)
        return 2
    config = RunConfig(num_gpus=args.num_gpus, seed=args.seed)
    dataset = get_dataset(args.dataset, seed=config.seed)
    with instrumented() as registry:
        report = FRAMEWORKS[args.framework]().run_epoch(
            dataset, config, model_name=args.model,
        )
        snapshot = to_snapshot(registry)
        prometheus = to_prometheus(registry)

    os.makedirs(args.out, exist_ok=True)
    stem = f"{args.framework}_{args.dataset}"
    prom_path = os.path.join(args.out, f"{stem}.prom")
    json_path = os.path.join(args.out, f"{stem}.json")
    trace_path = os.path.join(args.out, f"{stem}.trace.json")
    with open(prom_path, "w") as handle:
        handle.write(prometheus)
    with open(json_path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
    events = write_chrome_trace(trace_path, report)
    print(f"modeled epoch: {report.epoch_time:.6f}s "
          f"({args.framework} on {args.dataset})")
    print(f"wrote {prom_path}")
    print(f"wrote {json_path}")
    print(f"wrote {trace_path} ({events} events)")
    return 0


def _cmd_compare(args) -> int:
    with open(args.before) as handle:
        before = flatten_snapshot(json.load(handle))
    with open(args.after) as handle:
        after = flatten_snapshot(json.load(handle))

    names = sorted(set(before) | set(after))
    changed = 0
    for name in names:
        if name not in before:
            print(f"+ {name} = {after[name]:g}")
            changed += 1
        elif name not in after:
            print(f"- {name} (was {before[name]:g})")
            changed += 1
        elif before[name] != after[name]:
            old, new = before[name], after[name]
            rel = (new - old) / abs(old) if old else float("inf")
            print(f"~ {name}: {old:g} -> {new:g} ({rel:+.1%})")
            changed += 1
    same = len(names) - changed
    print(f"{changed} metrics differ, {same} identical")
    return 1 if changed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Dump or compare observability snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dump = sub.add_parser(
        "dump", help="run one instrumented epoch and write all exports")
    dump.add_argument("--framework", default="fastgl")
    dump.add_argument("--dataset", default="reddit")
    dump.add_argument("--model", default="gcn")
    dump.add_argument("--num-gpus", type=int, default=2)
    dump.add_argument("--seed", type=int, default=0)
    dump.add_argument("--out", default="obs-dump",
                      help="output directory (default: %(default)s)")
    dump.set_defaults(func=_cmd_dump)

    compare = sub.add_parser(
        "compare", help="diff two JSON metric snapshots")
    compare.add_argument("before")
    compare.add_argument("after")
    compare.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
