"""Span tracing: nested, timestamped spans with a Chrome-trace export.

One :class:`Tracer` collects two kinds of spans:

* **wall-clock spans** via the :meth:`Tracer.span` context manager —
  nesting is tracked per thread, so a span opened inside another becomes
  its child;
* **modeled spans** via :meth:`Tracer.add_span` — explicit start/duration
  in modeled seconds, used to lay out an epoch's simulated timeline (the
  same layout :mod:`repro.metrics.trace` exports from an
  :class:`~repro.frameworks.base.EpochReport`).

Both export to the Chrome tracing JSON format (``chrome://tracing`` /
Perfetto "complete" events), and :func:`spans_from_chrome_events` reads
that JSON back into spans so round-trips can be tested.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Chrome-trace colour names per span category.
SPAN_COLORS = {
    "sample": "thread_state_runnable",
    "idmap": "thread_state_unknown",
    "memory_io": "thread_state_iowait",
    "network": "rail_response",
    "compute": "thread_state_running",
    "allreduce": "thread_state_sleeping",
    "retry": "bad",
    "fault_stall": "terrible",
}


@dataclass
class Span:
    """One closed span on one lane."""

    name: str
    start: float
    duration: float
    lane: str = "main"
    category: str = ""
    #: Nesting depth (0 = top level); wall-clock spans track this via the
    #: per-thread stack, modeled spans may set it explicitly.
    depth: int = 0
    args: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class Tracer:
    """Collects spans; disabled tracers drop everything.

    ``clock`` is injectable so tests (and the modeled-epoch exporter) can
    drive span timestamps deterministically.
    """

    def __init__(self, enabled: bool = True, clock=time.perf_counter) -> None:
        self.enabled = bool(enabled)
        self.clock = clock
        self.spans: list = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, category: str = "", lane: str = "main",
             **args):
        """Context manager recording one wall-clock span."""
        if not self.enabled:
            yield None
            return
        stack = self._stack()
        record = Span(name=name, start=self.clock(), duration=0.0,
                      lane=lane, category=category, depth=len(stack),
                      args=dict(args))
        stack.append(record)
        try:
            yield record
        finally:
            record.duration = max(0.0, self.clock() - record.start)
            stack.pop()
            with self._lock:
                self.spans.append(record)

    def add_span(self, name: str, start: float, duration: float,
                 lane: str = "main", category: str = "", depth: int = 0,
                 **args) -> Span | None:
        """Record one modeled span with explicit timing."""
        if not self.enabled:
            return None
        record = Span(name=name, start=float(start),
                      duration=float(duration), lane=lane,
                      category=category, depth=int(depth), args=dict(args))
        with self._lock:
            self.spans.append(record)
        return record

    def sorted_spans(self) -> list:
        """Spans ordered by (lane, start, -duration): parents before
        children, stable within a lane."""
        with self._lock:
            spans = list(self.spans)
        return sorted(spans, key=lambda s: (s.lane, s.start, -s.duration))

    def lane_totals(self) -> dict:
        """Per-lane wall-clock extent: lane -> latest span end."""
        totals: dict = {}
        with self._lock:
            spans = list(self.spans)
        for span in spans:
            totals[span.lane] = max(totals.get(span.lane, 0.0), span.end)
        return totals

    def to_chrome_events(self, pid: str = "repro") -> list:
        """Chrome-trace "complete" events (timestamps in microseconds)."""
        events = []
        for span in self.sorted_spans():
            event = {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": span.lane,
                "args": dict(span.args, depth=span.depth),
            }
            color = SPAN_COLORS.get(span.category)
            if color is not None:
                event["cname"] = color
            events.append(event)
        return events

    def write_chrome_trace(self, path, pid: str = "repro",
                           other_data: dict | None = None) -> int:
        """Write the Perfetto-loadable trace JSON; returns event count."""
        events = self.to_chrome_events(pid=pid)
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": dict(other_data or {}),
        }
        with open(path, "w") as handle:
            json.dump(payload, handle)
        return len(events)


def spans_from_chrome_events(events) -> list:
    """Rebuild :class:`Span` records from Chrome-trace "X" events.

    The inverse of :meth:`Tracer.to_chrome_events` (timestamps come back
    in seconds); used to test that nesting and ordering survive the JSON
    round-trip.
    """
    spans = []
    for event in events:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        depth = int(args.pop("depth", 0))
        spans.append(Span(
            name=event["name"],
            start=event["ts"] / 1e6,
            duration=event["dur"] / 1e6,
            lane=str(event.get("tid", "main")),
            category=event.get("cat", ""),
            depth=depth,
            args=args,
        ))
    return spans
