"""Labeled metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the sink every instrumented subsystem (frameworks,
sampling, transfer, storage, sim) reports into. Design constraints:

* **Cheap when disabled.** A disabled registry hands out module-level
  no-op singletons (:data:`NULL_COUNTER` et al.); the per-batch hot path
  then performs only attribute calls on a shared object — no allocation,
  no locking, no dict lookups.
* **Thread-safe when enabled.** Family/child creation and every
  ``inc``/``set``/``observe`` are lock-protected (sampler threads and the
  epoch driver may report concurrently).
* **Prometheus-shaped.** Metrics are *families* (name, kind, help) with
  labeled children, so the exporters in :mod:`repro.obs.exporters` map
   1:1 onto the text exposition format.

Instrumentation is opt-in: the package-default registry starts disabled;
enable it with :func:`repro.obs.enable` or scope it with
:func:`repro.obs.instrumented`.
"""

from __future__ import annotations

import bisect
import threading


class NoopMetric:
    """Shared do-nothing handle returned by a disabled registry.

    All mutating methods are no-ops and ``labels`` returns ``self``, so
    instrumented code never needs to branch on whether observability is
    on. The module-level singletons below are the only instances that
    should ever exist.
    """

    __slots__ = ()

    def labels(self, **labelvalues) -> "NoopMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: The shared no-op handles (one per metric kind, for readable reprs in
#: tests; behaviourally identical).
NULL_COUNTER = NoopMetric()
NULL_GAUGE = NoopMetric()
NULL_HISTOGRAM = NoopMetric()

#: Default histogram buckets, tuned for modeled per-batch phase times
#: (tens of microseconds to single seconds).
DEFAULT_BUCKETS = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing labeled sample."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self.value += amount


class Gauge:
    """Labeled sample that can go up and down."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram with interpolated quantile summaries.

    ``buckets`` are the upper bounds of the finite buckets (ascending);
    an implicit ``+Inf`` bucket catches the overflow. ``quantile``
    linearly interpolates inside the containing bucket — the usual
    Prometheus-style estimate, good enough for p50/p95/p99 dashboards.
    """

    kind = "histogram"

    def __init__(self, buckets=DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self._lock = threading.Lock()
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; [-1] is the +Inf bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def cumulative_counts(self) -> list:
        """Cumulative counts per bound plus the +Inf bucket (last)."""
        out = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1), interpolated within buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        lower = 0.0
        for bound, count in zip(self.bounds, self.counts):
            if running + count >= rank and count > 0:
                fraction = (rank - running) / count
                return lower + fraction * (bound - lower)
            running += count
            lower = bound
        # Overflow bucket: no upper bound to interpolate against.
        return self.bounds[-1]

    def summary(self) -> dict:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one metric name (same kind, help, bucket layout)."""

    def __init__(self, name: str, kind: str, help: str = "",
                 buckets=None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: dict = {}

    def labels(self, **labelvalues):
        """The child for this label set (created on first use)."""
        key = tuple(sorted((k, str(v)) for k, v in labelvalues.items()))
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self.buckets or DEFAULT_BUCKETS)
                else:
                    child = _KINDS[self.kind]()
                self._children[key] = child
        return child

    def samples(self) -> list:
        """``(label_dict, child)`` pairs, sorted by label values."""
        with self._lock:
            items = sorted(self._children.items())
        return [(dict(key), child) for key, child in items]

    # -- label-less convenience: the family proxies its default child ------
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)


class MetricsRegistry:
    """Factory and container for metric families.

    ``counter``/``gauge``/``histogram`` are idempotent: repeated calls
    with the same name return the same family (and raise if the kind
    changed). A disabled registry returns the shared no-op singletons
    instead, so instrumented code pays a single boolean check.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._families: dict = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def _family(self, name: str, kind: str, help: str,
                buckets=None) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(name, kind, help, buckets=buckets)
                    self._families[name] = family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {kind}"
            )
        return family

    def counter(self, name: str, help: str = ""):
        if not self.enabled:
            return NULL_COUNTER
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = ""):
        if not self.enabled:
            return NULL_GAUGE
        return self._family(name, "gauge", help)

    def histogram(self, name: str, help: str = "", buckets=None):
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._family(name, "histogram", help, buckets=buckets)

    def collect(self) -> list:
        """All families, sorted by name (exporter order)."""
        with self._lock:
            families = sorted(self._families.values(),
                              key=lambda f: f.name)
        return families

    def reset(self) -> None:
        """Drop every registered family (tests, epoch boundaries)."""
        with self._lock:
            self._families.clear()

    def merge(self, snapshot: dict) -> None:
        """Fold a :func:`repro.obs.exporters.to_snapshot` dict into this
        registry (the multi-process story: each worker process has its own
        per-process registry, snapshots it, and the parent merges).

        Per-kind semantics:

        * **counter** — values add (each process counted disjoint work);
        * **gauge** — last write wins (a gauge is instantaneous state;
          summing occupancy/capacity across processes would inflate it).
          Merge snapshots in a deterministic order to get a deterministic
          final value;
        * **histogram** — per-bucket counts, ``sum`` and ``count`` all
          add. Bucket bounds must match the existing family's (bounds
          round-trip through the snapshot's ``%g`` rendering, so families
          created by a merge use the parsed bounds).

        Families/children absent from this registry are created. A kind
        conflict with an existing family raises ``ValueError``. Merging
        into a disabled registry is a no-op.
        """
        if not self.enabled:
            return
        for metric in snapshot.get("metrics", []):
            name = metric["name"]
            kind = metric["kind"]
            for sample in metric.get("samples", []):
                labels = sample.get("labels", {})
                if kind == "histogram":
                    bounds = tuple(
                        float(b) for b, _ in sample["buckets"]
                        if b != "+Inf"
                    )
                    family = self._family(name, kind, metric.get("help", ""),
                                          buckets=bounds)
                    child = family.labels(**labels)
                    if child.bounds != bounds:
                        raise ValueError(
                            f"histogram {name!r} bucket bounds differ: "
                            f"{child.bounds} vs snapshot {bounds}"
                        )
                    cumulative = [c for _, c in sample["buckets"]]
                    with child._lock:
                        previous = 0
                        for i, cum in enumerate(cumulative):
                            child.counts[i] += cum - previous
                            previous = cum
                        child.sum += float(sample["sum"])
                        child.count += int(sample["count"])
                else:
                    family = self._family(name, kind, metric.get("help", ""))
                    child = family.labels(**labels)
                    value = float(sample["value"])
                    if kind == "counter":
                        child.inc(value)
                    else:
                        child.set(value)


# -- package-default registry ------------------------------------------------
_default_registry = MetricsRegistry(enabled=False)
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (disabled until opted in)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the default; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
