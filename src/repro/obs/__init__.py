"""End-to-end observability: metrics registry, span tracing, exporters.

Every subsystem reports into the package-default
:class:`~repro.obs.registry.MetricsRegistry` — per-batch phase
histograms from the epoch driver, ID-map probe counters from sampling,
byte counters from the feature loaders, page-cache and NVMe counters
from the storage tier, stall accounting from the pipeline simulators.

Instrumentation is **opt-in**: the default registry starts disabled and
hands out shared no-op singletons, so the per-batch hot path costs
nothing until someone calls :func:`enable` (or scopes a registry with
:func:`instrumented`). Export the collected state with
:func:`~repro.obs.exporters.to_prometheus` /
:func:`~repro.obs.exporters.to_snapshot`, or from the command line::

    python -m repro.obs dump --framework fastgl --dataset reddit
    python -m repro.obs compare before.json after.json
    python -m repro.obs.regress --baseline benchmarks/results/baseline.json

``repro.obs.regress`` is the perf-regression gate: it replays a
deterministic instrumented suite and fails when any tracked metric
drifts past its tolerance against the committed baseline.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.exporters import (
    flatten_snapshot,
    to_prometheus,
    to_snapshot,
    write_snapshot,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NoopMetric,
    get_registry,
    set_registry,
)
from repro.obs.trace import Span, Tracer, spans_from_chrome_events


def enable() -> MetricsRegistry:
    """Enable the default registry (and return it)."""
    registry = get_registry()
    registry.enable()
    return registry


def disable() -> MetricsRegistry:
    """Disable the default registry (and return it)."""
    registry = get_registry()
    registry.disable()
    return registry


@contextmanager
def instrumented(registry: MetricsRegistry | None = None):
    """Scope a fresh (or given) enabled registry as the default.

    The previous default is restored on exit, so tests and CLI runs can
    collect into a private registry without leaking global state.
    """
    registry = registry if registry is not None else MetricsRegistry()
    registry.enable()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NoopMetric",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "flatten_snapshot",
    "get_registry",
    "instrumented",
    "set_registry",
    "spans_from_chrome_events",
    "to_prometheus",
    "to_snapshot",
    "write_snapshot",
]
