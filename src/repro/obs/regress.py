"""Perf-regression gate over the observability metrics.

Replays a small, fully deterministic instrumented suite — one epoch each
of the DGL baseline, FastGL, and out-of-core FastGL on a self-contained
synthetic dataset — and compares every collected metric against a
committed baseline snapshot. All tracked values are *modeled* (counted
work converted to seconds under the fixed cost model) or pure counts, so
the suite produces bit-identical numbers across runs and platforms; any
drift is a real behavioral change in sampling, caching, transfer
planning, or the cost model, not noise.

Usage::

    python -m repro.obs.regress --baseline benchmarks/results/baseline.json
    python -m repro.obs.regress --baseline ... --write   # refresh baseline

Exit status is nonzero when any metric is missing or drifts past its
tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import flatten_snapshot, instrumented, to_snapshot

#: Relative drift allowed per metric unless the baseline overrides it.
DEFAULT_TOLERANCE = 0.05

#: Frameworks the suite exercises; together they touch every
#: instrumented subsystem (sampling, ID map, transfer, storage, sim).
SUITE_FRAMEWORKS = ("dgl", "fastgl", "fastgl-ooc")


def _suite_dataset():
    """A tiny self-contained dataset; never reads the named registry."""
    from repro.graph.datasets import Dataset, DatasetSpec, PaperScale

    spec = DatasetSpec(
        name="obs-regress",
        num_nodes=3000,
        avg_degree=12.0,
        feature_dim=32,
        num_classes=8,
        train_fraction=0.2,
        # Paper-scale stand-in sized so the cache budget covers ~25% of
        # the feature table — enough for hits and misses to both occur.
        paper=PaperScale(30_000, 360_000, 1_000_000),
    )
    return Dataset(spec, seed=0)


def _suite_config():
    from repro.config import RunConfig

    return RunConfig(
        batch_size=128,
        fanouts=(5, 5),
        num_gpus=2,
        reorder_window=8,
        seed=0,
    )


def collect_benchmark_metrics():
    """Run the instrumented suite; returns the metrics snapshot (dict)."""
    from repro.frameworks import FRAMEWORKS

    dataset = _suite_dataset()
    config = _suite_config()
    with instrumented() as registry:
        for name in SUITE_FRAMEWORKS:
            FRAMEWORKS[name]().run_epoch(dataset, config, model_name="gcn")
        return to_snapshot(registry)


def build_baseline(snapshot: dict,
                   default_tolerance: float = DEFAULT_TOLERANCE) -> dict:
    """Baseline document from a snapshot: flat metric values + tolerance."""
    return {
        "suite": list(SUITE_FRAMEWORKS),
        "default_tolerance": default_tolerance,
        "metrics": {
            name: {"value": value}
            for name, value in sorted(flatten_snapshot(snapshot).items())
        },
    }


def check(snapshot: dict, baseline: dict) -> list:
    """Compare ``snapshot`` against ``baseline``; returns violations.

    Each violation is a dict with ``metric``, ``reason`` and the values
    involved. A metric violates when it is absent from the snapshot or
    its relative drift from the baseline value exceeds the metric's
    tolerance (``tolerance`` per metric, else the baseline's
    ``default_tolerance``). Metrics present only in the snapshot are
    new, not regressions, and are ignored.
    """
    current = flatten_snapshot(snapshot)
    default_tol = float(baseline.get("default_tolerance", DEFAULT_TOLERANCE))
    violations = []
    for name, entry in baseline.get("metrics", {}).items():
        expected = float(entry["value"])
        tolerance = float(entry.get("tolerance", default_tol))
        if name not in current:
            violations.append({
                "metric": name,
                "reason": "missing",
                "expected": expected,
            })
            continue
        actual = float(current[name])
        drift = abs(actual - expected) / max(abs(expected), 1e-12)
        if drift > tolerance:
            violations.append({
                "metric": name,
                "reason": "drift",
                "expected": expected,
                "actual": actual,
                "drift": drift,
                "tolerance": tolerance,
            })
    return violations


def format_violation(violation: dict) -> str:
    if violation["reason"] == "missing":
        return (f"MISSING {violation['metric']} "
                f"(baseline {violation['expected']:g})")
    return (f"DRIFT   {violation['metric']}: "
            f"{violation['expected']:g} -> {violation['actual']:g} "
            f"({violation['drift']:+.1%} vs tolerance "
            f"{violation['tolerance']:.1%})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Run the deterministic metrics suite and gate on drift "
                    "against a committed baseline.",
    )
    parser.add_argument(
        "--baseline", default="benchmarks/results/baseline.json",
        help="baseline JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="write/refresh the baseline from this run instead of checking",
    )
    parser.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="also write the raw metrics snapshot JSON to PATH",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="default relative tolerance when writing a baseline "
             "(default: %(default)s)",
    )
    args = parser.parse_args(argv)

    snapshot = collect_benchmark_metrics()
    if args.snapshot:
        with open(args.snapshot, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
        print(f"wrote snapshot: {args.snapshot}")

    if args.write:
        baseline = build_baseline(snapshot, default_tolerance=args.tolerance)
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote baseline: {args.baseline} "
              f"({len(baseline['metrics'])} metrics)")
        return 0

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; create one with --write",
              file=sys.stderr)
        return 2

    violations = check(snapshot, baseline)
    checked = len(baseline.get("metrics", {}))
    if violations:
        print(f"{len(violations)} of {checked} metrics regressed:")
        for violation in violations:
            print("  " + format_violation(violation))
        return 1
    print(f"ok: {checked} metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
