"""A minimal discrete-event simulation engine.

Processes are generators that ``yield`` either a float (sleep that many
seconds) or a :class:`Resource` request obtained from ``resource.acquire()``
(wait until granted). The loop advances virtual time through a heap of
pending events. Small by design — just enough to model producer/consumer
pipelines over exclusive resources (a sampler GPU, a PCIe link).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Generator


class Resource:
    """An exclusive-use resource with a FIFO wait queue."""

    def __init__(self, loop: "EventLoop", name: str = "") -> None:
        self._loop = loop
        self.name = name
        self._busy = False
        self._queue: deque = deque()

    @property
    def busy(self) -> bool:
        return self._busy

    def acquire(self) -> "_Acquire":
        return _Acquire(self)

    def release(self) -> None:
        if not self._busy:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        self._busy = False
        if self._queue:
            process = self._queue.popleft()
            self._busy = True
            self._loop._schedule(0.0, process)

    def _try_acquire(self, process) -> bool:
        if not self._busy:
            self._busy = True
            return True
        self._queue.append(process)
        return False


class _Acquire:
    """Yielded by processes to request a resource."""

    def __init__(self, resource: Resource) -> None:
        self.resource = resource


class EventLoop:
    """Heap-driven virtual-time event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list = []
        self._counter = 0  # tie-breaker for deterministic ordering

    def resource(self, name: str = "") -> Resource:
        return Resource(self, name)

    def spawn(self, process: Generator) -> None:
        """Register a generator process to start at the current time."""
        self._schedule(0.0, process)

    def _schedule(self, delay: float, process: Generator) -> None:
        if delay < 0:
            raise ValueError("negative delay")
        self._counter += 1
        heapq.heappush(self._heap, (self.now + delay, self._counter, process))

    def run(self, until: float | None = None) -> float:
        """Run until no events remain (or virtual time passes ``until``).

        Returns the final virtual time.
        """
        while self._heap:
            time, _, process = heapq.heappop(self._heap)
            if until is not None and time > until:
                heapq.heappush(self._heap, (time, self._counter, process))
                self.now = until
                return self.now
            self.now = time
            self._step(process)
        return self.now

    def _step(self, process: Generator) -> None:
        try:
            request = next(process)
        except StopIteration:
            return
        if isinstance(request, (int, float)):
            self._schedule(float(request), process)
        elif isinstance(request, _Acquire):
            if request.resource._try_acquire(process):
                self._schedule(0.0, process)
            # else: the resource queued the process; it resumes on release.
        else:
            raise TypeError(
                f"process yielded {type(request).__name__}; expected a "
                "delay (float) or resource.acquire()"
            )
