"""A minimal discrete-event simulation engine.

Processes are generators that ``yield`` either a float (sleep that many
seconds), a :class:`Resource` request obtained from ``resource.acquire()``
(wait until granted), or a :class:`Queue` request from ``queue.get()``
(wait until an item arrives; resumes with the item as the yield's value).
The loop advances virtual time through a heap of pending events. Small by
design — just enough to model producer/consumer pipelines over exclusive
resources (a sampler GPU, a PCIe link) and message-passing servers (the
online-serving simulator in :mod:`repro.serve`).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Generator

#: Sentinel a timed-out ``queue.get(timeout=...)`` resumes with.
TIMEOUT = object()


class Resource:
    """An exclusive-use resource with a FIFO wait queue."""

    def __init__(self, loop: "EventLoop", name: str = "") -> None:
        self._loop = loop
        self.name = name
        self._busy = False
        self._queue: deque = deque()

    @property
    def busy(self) -> bool:
        return self._busy

    def acquire(self) -> "_Acquire":
        return _Acquire(self)

    def release(self) -> None:
        if not self._busy:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        self._busy = False
        if self._queue:
            process = self._queue.popleft()
            self._busy = True
            self._loop._schedule(0.0, process)

    def _try_acquire(self, process) -> bool:
        if not self._busy:
            self._busy = True
            return True
        self._queue.append(process)
        return False


class _Acquire:
    """Yielded by processes to request a resource."""

    def __init__(self, resource: Resource) -> None:
        self.resource = resource


class Queue:
    """An unbounded FIFO message queue between processes.

    A consumer yields ``queue.get()`` and resumes with the item (or
    :data:`TIMEOUT` if a timeout was given and expired first). ``put`` is
    an ordinary call — usable from any process or callback — that either
    hands the item to the oldest waiter or buffers it.
    """

    def __init__(self, loop: "EventLoop", name: str = "") -> None:
        self._loop = loop
        self.name = name
        self._items: deque = deque()
        self._waiters: deque = deque()  # pending _Get requests

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item) -> None:
        while self._waiters:
            get = self._waiters.popleft()
            if get.done:
                continue  # expired via timeout; already resumed
            get.done = True
            self._loop._schedule(0.0, get.process, item)
            return
        self._items.append(item)

    def get(self, timeout: float | None = None) -> "_Get":
        return _Get(self, timeout)

    def get_nowait(self):
        """Pop the oldest buffered item, or :data:`TIMEOUT` if empty."""
        if self._items:
            return self._items.popleft()
        return TIMEOUT

    def drain(self) -> list:
        """Remove and return every buffered item (oldest first).

        Crash recovery: when a consumer process dies, whatever it never
        got to must be recovered by the supervisor, not stranded in the
        queue. Waiters are untouched — a dead consumer's pending ``get``
        simply never resumes.
        """
        items = list(self._items)
        self._items.clear()
        return items


class _Get:
    """Yielded by processes to request the next queue item."""

    def __init__(self, queue: Queue, timeout: float | None) -> None:
        self.queue = queue
        self.timeout = timeout
        self.process = None
        #: Set once the get was satisfied (or timed out) so the losing
        #: side of the race becomes a no-op.
        self.done = False

    def _expire(self) -> None:
        if self.done:
            return
        self.done = True
        self.queue._loop._schedule(0.0, self.process, TIMEOUT)


class EventLoop:
    """Heap-driven virtual-time event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list = []
        self._counter = 0  # tie-breaker for deterministic ordering

    def resource(self, name: str = "") -> Resource:
        return Resource(self, name)

    def queue(self, name: str = "") -> Queue:
        return Queue(self, name)

    def spawn(self, process: Generator) -> None:
        """Register a generator process to start at the current time."""
        self._schedule(0.0, process)

    def call_later(self, delay: float, callback) -> None:
        """Schedule a plain callable (no generator protocol)."""
        self._schedule(delay, callback)

    def _schedule(self, delay: float, process, value=None) -> None:
        if delay < 0:
            raise ValueError("negative delay")
        self._counter += 1
        heapq.heappush(
            self._heap, (self.now + delay, self._counter, process, value)
        )

    def run(self, until: float | None = None) -> float:
        """Run until no events remain (or virtual time passes ``until``).

        Returns the final virtual time. Expired timer callbacks that have
        nothing left to do (their ``get`` already completed) are skipped
        without advancing the clock, so stale batching-window timers never
        inflate a simulation's makespan.
        """
        while self._heap:
            time, _, process, value = heapq.heappop(self._heap)
            if isinstance(process, _Get):
                # A queue timeout firing: skip silently (clock untouched)
                # when the get already completed.
                if process.done:
                    continue
                self.now = time
                process._expire()
                continue
            if until is not None and time > until:
                self._schedule(time - self.now, process, value)
                self.now = until
                return self.now
            self.now = time
            self._step(process, value)
        return self.now

    def _step(self, process, value=None) -> None:
        if not hasattr(process, "send"):  # plain callback via call_later
            process()
            return
        try:
            request = process.send(value)
        except StopIteration:
            return
        if isinstance(request, (int, float)):
            self._schedule(float(request), process)
        elif isinstance(request, _Acquire):
            if request.resource._try_acquire(process):
                self._schedule(0.0, process)
            # else: the resource queued the process; it resumes on release.
        elif isinstance(request, _Get):
            queue = request.queue
            request.process = process
            if queue._items:
                request.done = True
                self._schedule(0.0, process, queue._items.popleft())
            else:
                queue._waiters.append(request)
                if request.timeout is not None:
                    # The heap entry *is* the timer; run() routes it to
                    # _expire (or skips it if the get completed first).
                    self._schedule(float(request.timeout), request)
        else:
            raise TypeError(
                f"process yielded {type(request).__name__}; expected a "
                "delay (float), resource.acquire() or queue.get()"
            )
