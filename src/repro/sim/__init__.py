"""Discrete-event machinery for phase pipelining.

GNNLab factors sampling and training onto different GPUs and runs them as a
producer/consumer pipeline; FastGL prefetches the next subgraph's topology
under the current batch's compute. Both overlaps are modeled here, either
with the tiny event engine (:mod:`repro.sim.events`) or the closed-form
two-stage pipeline (:mod:`repro.sim.pipeline`) — the tests check they
agree.
"""

from repro.sim.events import EventLoop
from repro.sim.pipeline import two_stage_makespan, two_stage_makespan_sim

__all__ = ["EventLoop", "two_stage_makespan", "two_stage_makespan_sim"]
