"""Two-stage pipeline makespan (GNNLab's factored sample/train design).

Stage 1 (a dedicated sampler GPU) produces mini-batches; stage 2 (trainer
GPUs) consumes them. Batch ``i`` starts training at
``max(produced_i, trainer_free)``. Both a closed-form recurrence and an
event-simulation version are provided; tests assert they agree.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs import get_registry
from repro.sim.events import EventLoop


def two_stage_makespan(
    produce_times: Sequence[float],
    consume_times: Sequence[float],
    queue_depth: int | None = None,
) -> float:
    """Closed-form recurrence for a producer/consumer pipeline.

    ``queue_depth`` bounds how far the producer may run ahead (None =
    unbounded). Returns the time the last batch finishes consuming.
    When observability is enabled, the per-stage stall time (consumer
    starved waiting for a batch; producer blocked on backpressure) is
    reported to the metrics registry.
    """
    if len(produce_times) != len(consume_times):
        raise ValueError("stage time lists must have equal length")
    n = len(produce_times)
    if n == 0:
        return 0.0
    produced_at = [0.0] * n
    consumed_at = [0.0] * n
    producer_free = 0.0
    consumer_free = 0.0
    producer_stall = 0.0
    consumer_stall = 0.0
    for i in range(n):
        start = producer_free
        if queue_depth is not None and i >= queue_depth:
            # Backpressure: slot frees when batch (i - depth) is consumed.
            start = max(start, consumed_at[i - queue_depth])
        producer_stall += start - producer_free
        produced_at[i] = start + produce_times[i]
        producer_free = produced_at[i]
        begin = max(produced_at[i], consumer_free)
        consumer_stall += begin - consumer_free if i > 0 else 0.0
        consumed_at[i] = begin + consume_times[i]
        consumer_free = consumed_at[i]
    registry = get_registry()
    if registry.enabled:
        stalls = registry.counter(
            "repro_pipeline_stall_seconds_total",
            "Modeled seconds a pipeline stage spent waiting on the other",
        )
        stalls.labels(pipeline="two_stage",
                      stage="producer").inc(producer_stall)
        stalls.labels(pipeline="two_stage",
                      stage="consumer").inc(consumer_stall)
    return consumed_at[-1]


def two_stage_makespan_sim(
    produce_times: Sequence[float],
    consume_times: Sequence[float],
    queue_depth: int | None = None,
) -> float:
    """Event-simulation version of :func:`two_stage_makespan`, used to
    cross-check the recurrence.

    A finite ``queue_depth`` is modeled as a ring of slot resources: the
    producer claims slot ``i % depth`` before producing batch ``i`` and the
    consumer releases it after consuming, so at most ``depth`` batches are
    ever in flight.
    """
    if len(produce_times) != len(consume_times):
        raise ValueError("stage time lists must have equal length")
    if queue_depth is not None and queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")
    loop = EventLoop()
    consumer_gate = loop.resource("consumer")
    slots = ([loop.resource(f"slot{j}") for j in range(queue_depth)]
             if queue_depth is not None else None)

    def producer():
        for i, t in enumerate(produce_times):
            if slots is not None:
                yield slots[i % queue_depth].acquire()
            yield float(t)
            loop.spawn(consumer(i))

    def consumer(i: int):
        yield consumer_gate.acquire()
        yield float(consume_times[i])
        consumer_gate.release()
        if slots is not None:
            slots[i % queue_depth].release()

    loop.spawn(producer())
    return loop.run()
