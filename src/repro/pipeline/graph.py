"""The dataflow stage-graph engine: N exclusive stages, bounded queues.

Generalizes the two-stage producer/consumer recurrence
(:func:`repro.sim.pipeline.two_stage_makespan`) and the three-stage
storage pipeline to an arbitrary linear stage graph on
:mod:`repro.sim.events`: every stage is an exclusive resource (the
sampler stream, the PCIe/DMA engine, the NIC, the training stream),
items flow through the stages in order, and each stage-to-stage edge is
a bounded buffer of ``queue_depth`` slots — a stage may only *start*
item ``i`` once a slot in its output buffer is free, and the slot stays
occupied until the downstream stage *finishes* the item (the buffer is
being read while the consumer works, exactly the double-buffered
transfer lane semantics). Backpressure therefore propagates upstream:
with ``queue_depth=1`` each stage runs at most one item ahead of the
next; ``None`` removes the bound entirely.

For two stages this engine reproduces ``two_stage_makespan`` exactly —
the agreement tests use the closed-form recurrence as the oracle.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.obs import get_registry
from repro.sim.events import EventLoop

#: ``record``/``stall_record`` callbacks receive these 4-tuples.
Interval = tuple  # (stage_name, item_index, start, end)


def stage_graph_makespan(
    stage_times: Sequence[Sequence[float]],
    *,
    names: Sequence[str] | None = None,
    queue_depth: int | None = None,
    record: Callable[[Interval], None] | None = None,
    stall_record: Callable[[Interval], None] | None = None,
    pipeline_label: str = "epoch",
) -> float:
    """Makespan of ``n`` items flowing through the linear stage graph.

    ``stage_times[s][i]`` is the service time of item ``i`` at stage
    ``s``; all stages see every item, in index order. ``record`` is
    called with ``(stage_name, item, start, end)`` for every *executed*
    interval — the hook the epoch timeline uses to lay out the overlap
    faithfully — and ``stall_record`` with the same shape for every
    interval a stage spent waiting (starved for input, or blocked on
    backpressure from a full output buffer). Start-up starvation (stage
    ``s`` idle until its first item arrives — the pipeline fill) counts
    as stall time.

    When observability is enabled, per-stage stall seconds go to the
    ``repro_pipeline_stall_seconds_total`` counter and the number of
    items in flight (entered the first stage, not yet out of the last)
    at each admission to the ``repro_pipeline_queue_occupancy``
    histogram, both labeled ``pipeline=pipeline_label``.
    """
    times = [list(map(float, stage)) for stage in stage_times]
    if not times:
        raise ValueError("at least one stage is required")
    n = len(times[0])
    if any(len(stage) != n for stage in times):
        raise ValueError("stage time lists must have equal length")
    if queue_depth is not None and queue_depth < 1:
        raise ValueError("queue_depth must be >= 1 or None")
    num_stages = len(times)
    if names is None:
        names = [f"stage{s}" for s in range(num_stages)]
    elif len(names) != num_stages:
        raise ValueError("one name per stage required")
    if n == 0:
        return 0.0

    loop = EventLoop()
    queues = [loop.queue(f"edge{s}") for s in range(num_stages - 1)]
    slots = None
    if queue_depth is not None:
        slots = [
            [loop.resource(f"slot{s}.{j}") for j in range(queue_depth)]
            for s in range(num_stages - 1)
        ]
    stall_totals = [0.0] * num_stages
    in_flight = [0]
    registry = get_registry()
    occupancy = registry.histogram(
        "repro_pipeline_queue_occupancy",
        "Items in flight (admitted, not yet out of the last stage) at "
        "each admission to the stage graph",
        buckets=(1, 2, 4, 8, 16, 32, 64),
    ).labels(pipeline=pipeline_label)

    def stage_proc(s: int):
        name = names[s]
        for i in range(n):
            wait_from = loop.now
            if s > 0:
                yield queues[s - 1].get()
            else:
                in_flight[0] += 1
                occupancy.observe(in_flight[0])
            if slots is not None and s + 1 < num_stages:
                # Claim the output-buffer slot before starting: a full
                # buffer stalls this stage (backpressure).
                yield slots[s][i % queue_depth].acquire()
            start = loop.now
            if start > wait_from:
                stall_totals[s] += start - wait_from
                if stall_record is not None:
                    stall_record((name, i, wait_from, start))
            yield times[s][i]
            if record is not None:
                record((name, i, start, loop.now))
            if s > 0 and slots is not None:
                # The upstream buffer slot frees only now: the item was
                # read out of the buffer for the whole service time.
                slots[s - 1][i % queue_depth].release()
            if s + 1 < num_stages:
                queues[s].put(i)
            else:
                in_flight[0] -= 1

    for s in range(num_stages):
        loop.spawn(stage_proc(s))
    makespan = loop.run()

    if registry.enabled:
        stalls = registry.counter(
            "repro_pipeline_stall_seconds_total",
            "Modeled seconds a pipeline stage spent waiting on the other",
        )
        for name, total in zip(names, stall_totals):
            if total > 0:
                stalls.labels(pipeline=pipeline_label, stage=name).inc(total)
    return makespan


def stage_graph_reference(
    stage_times: Sequence[Sequence[float]],
    queue_depth: int | None = None,
) -> float:
    """Closed-form recurrence cross-checking :func:`stage_graph_makespan`.

    ``start[s][i] = max(finish[s][i-1], finish[s-1][i],
    finish[s+1][i-depth])`` — the stage is serial, the item must have
    left the previous stage, and (with a bounded buffer) the output slot
    it reuses must have been drained by the downstream stage. For two
    stages this is exactly :func:`repro.sim.pipeline.two_stage_makespan`.
    """
    times = [list(map(float, stage)) for stage in stage_times]
    if not times:
        raise ValueError("at least one stage is required")
    n = len(times[0])
    if any(len(stage) != n for stage in times):
        raise ValueError("stage time lists must have equal length")
    if n == 0:
        return 0.0
    num_stages = len(times)
    finish = [[0.0] * n for _ in range(num_stages)]
    for i in range(n):
        for s in range(num_stages):
            start = finish[s][i - 1] if i > 0 else 0.0
            if s > 0:
                start = max(start, finish[s - 1][i])
            if (queue_depth is not None and s + 1 < num_stages
                    and i >= queue_depth):
                start = max(start, finish[s + 1][i - queue_depth])
            finish[s][i] = start + times[s][i]
    return finish[-1][-1]
