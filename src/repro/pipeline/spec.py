"""Execution specs: the one bundle of knobs a run carries.

:class:`PipelineSpec` describes *how* an epoch's phases are scheduled —
phase-sequential per mini-batch (the classic driver) or overlapped
through the bounded stage-graph pipeline of :mod:`repro.pipeline.graph`
— and :class:`ExecutionSpec` bundles every execution-environment knob
the front door used to scatter across keyword arguments (``cluster=``,
``jobs=``, ambient fault plans, GPU spec overrides) into one frozen,
hashable value that :func:`repro.api.run`, :func:`repro.api.serve` and
:meth:`repro.frameworks.base.Framework.run_epoch` all accept uniformly.

Both are frozen dataclasses: safe as dict keys (the experiment runner
memoizes on them) and safe to share across forked worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Allowed pipeline modes.
PIPELINE_MODES = ("off", "pipelined")


@dataclass(frozen=True)
class PipelineSpec:
    """How an epoch's sample/transfer/compute phases are scheduled.

    ``mode="off"`` keeps the classic driver: each framework lays its
    epoch out exactly as before (lockstep phase-sequential rounds, or
    the intrinsic producer/consumer pipelines of GNNLab and the
    out-of-core tier) — bit-identical to runs that never mention a
    pipeline. ``mode="pipelined"`` drives the epoch through the full
    stage graph instead: batch ``i+2`` samples while ``i+1`` transfers
    (a double-buffered lane at the default ``queue_depth=2``) and ``i``
    trains, with cluster halo exchange overlapping compute as its own
    stage.
    """

    #: ``"off"`` (phase-sequential, the default) or ``"pipelined"``.
    mode: str = "off"
    #: Bounded-buffer capacity of each stage-to-stage queue: how many
    #: batches one stage may run ahead of the next. 2 = double buffering.
    queue_depth: int = 2
    #: Rounds gradients may accumulate before a synchronizing allreduce
    #: (bounded staleness). 0 syncs every round; ``k`` syncs every
    #: ``k+1`` rounds (and always after the final round).
    staleness: int = 0

    def __post_init__(self) -> None:
        if self.mode not in PIPELINE_MODES:
            raise ValueError(
                f"pipeline mode must be one of {PIPELINE_MODES}, "
                f"got {self.mode!r}"
            )
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.staleness < 0:
            raise ValueError("staleness must be >= 0")

    @property
    def enabled(self) -> bool:
        """True when the overlapped stage-graph driver is selected."""
        return self.mode == "pipelined"


#: The default: classic phase-sequential scheduling.
PIPELINE_OFF = PipelineSpec()


@dataclass(frozen=True)
class ExecutionSpec:
    """Everything about *where and how* a run executes, in one value.

    Bundles the knobs that used to ride as scattered keyword arguments
    (``api.run(spec=..., cluster=...)``, ``run_epoch(..., jobs=...)``,
    fault plans installed ambiently around the call) plus the new
    pipeline controls. The model/dataset/cost knobs stay in
    :class:`~repro.config.RunConfig`; this spec is orthogonal to them —
    the same config can run sequentially on one node or pipelined
    across a simulated cluster by swapping only the ``ExecutionSpec``.
    """

    #: Optional :class:`~repro.cluster.spec.ClusterSpec` scaling the run
    #: across simulated machines (``RunConfig`` then describes one node).
    cluster: object | None = None
    #: Worker processes for the per-trainer lanes (see
    #: :mod:`repro.parallel`); 1 = in-process, 0 = all cores.
    jobs: int = 1
    #: Optional :class:`~repro.faults.FaultPlan` installed for the span
    #: of the run (replaces wrapping the call in ``fault_scope`` by
    #: hand; an ambient scope still works when this is ``None``).
    faults: object | None = None
    #: Optional :class:`~repro.gpu.spec.GPUSpec` override, applied when
    #: the framework is given by registry name or class (an already-
    #: constructed instance keeps its own spec).
    gpu_spec: object | None = None
    #: Epoch scheduling (see :class:`PipelineSpec`). A bare mode string
    #: (``"off"`` / ``"pipelined"``) is promoted to a spec.
    pipeline: PipelineSpec = field(default=PIPELINE_OFF)

    def __post_init__(self) -> None:
        if isinstance(self.pipeline, str):
            object.__setattr__(self, "pipeline",
                               PipelineSpec(mode=self.pipeline))
        elif not isinstance(self.pipeline, PipelineSpec):
            raise TypeError(
                "pipeline must be a PipelineSpec or a mode string, got "
                f"{type(self.pipeline).__name__}"
            )
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = all cores)")


#: The default execution: single node, in-process lanes, pipeline off.
DEFAULT_EXECUTION = ExecutionSpec()
