"""The asynchronous pipelined epoch engine and its execution-spec API.

Three pieces:

* :class:`PipelineSpec` / :class:`ExecutionSpec` — the frozen spec
  values the redesigned front door (``api.run(..., exec=...)``,
  ``Framework.run_epoch(..., execution=...)``) carries instead of
  scattered keyword arguments.
* :func:`stage_graph_makespan` — the generic bounded-queue dataflow
  engine on :mod:`repro.sim.events` (sample → transfer → halo → train
  as exclusive stages with backpressure).
* :func:`pipelined_epoch_layout` — one epoch's rounds laid out through
  that graph, returning a reconciling timeline with per-stage stall
  spans.

``python -m repro.pipeline`` runs the deterministic overlap smoke suite
and gates it against ``benchmarks/results/pipeline_baseline.json``.
"""

from repro.pipeline.epoch import pipelined_epoch_layout, sync_round_flags
from repro.pipeline.graph import stage_graph_makespan, stage_graph_reference
from repro.pipeline.spec import (
    DEFAULT_EXECUTION,
    PIPELINE_OFF,
    ExecutionSpec,
    PipelineSpec,
)

__all__ = [
    "DEFAULT_EXECUTION",
    "PIPELINE_OFF",
    "ExecutionSpec",
    "PipelineSpec",
    "pipelined_epoch_layout",
    "stage_graph_makespan",
    "stage_graph_reference",
    "sync_round_flags",
]
