"""Pipeline-overlap smoke gate from the command line.

Usage::

    python -m repro.pipeline                       # print the comparison
    python -m repro.pipeline --write-baseline \\
        benchmarks/results/pipeline_baseline.json  # refresh the baseline
    python -m repro.pipeline --check-baseline \\
        benchmarks/results/pipeline_baseline.json  # the CI smoke gate

Runs a deterministic mini configuration through every smoke framework
twice — the phase-sequential driver, then the bounded stage-graph
pipeline — and:

* verifies both timelines reconcile with their modeled epoch times
  (the pipelined one including the ``stalls`` lane);
* asserts the pipelined epoch never loses to the sequential driver and
  lands within the overlap tolerance of ``max(stage totals) + fill``;
* with ``--check-baseline``, gates the instrumented metrics (epoch and
  stall seconds, overlap ratio, queue occupancy) against the committed
  snapshot via :mod:`repro.obs.regress` tolerances — the regression
  floor that keeps future changes from quietly serializing the overlap.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.config import RunConfig
from repro.obs import instrumented, to_snapshot
from repro.obs.regress import build_baseline, check, format_violation
from repro.pipeline import ExecutionSpec, PipelineSpec
from repro.utils.format import ascii_table

#: Reconciliation tolerance between timeline extent and epoch time.
RECONCILE_TOL = 1e-6

#: Achieved epoch vs the ``max(stage totals) + fill`` estimate.
BOUND_SLACK = 1.15

#: Frameworks the smoke gate drives: the serial baseline (widest
#: overlap win) and the full FastGL stack (cache leaves one stage
#: dominant — the narrow case).
SMOKE_FRAMEWORKS = ("dgl", "fastgl")


def smoke_dataset():
    """A tiny self-contained dataset for the CI smoke gate (never reads
    the named dataset registry; mirrors ``repro.cluster.__main__``)."""
    from repro.graph.datasets import Dataset, DatasetSpec, PaperScale

    spec = DatasetSpec(
        name="pipeline-smoke",
        num_nodes=4000,
        avg_degree=10.0,
        feature_dim=128,
        num_classes=8,
        train_fraction=0.2,
        paper=PaperScale(300_000, 3_000_000, 1 << 30),
    )
    return Dataset(spec, seed=0)


def smoke_config() -> RunConfig:
    # Small batches so every stage runs many rounds — the pipeline
    # needs rounds in flight before overlap shows.
    return RunConfig(batch_size=32, fanouts=(5, 5), num_gpus=2,
                     num_epochs=2, seed=0)


def _publish_summary(registry, name, sequential, pipelined) -> None:
    """Expose the per-framework comparison as gauges so the baseline
    gate diffs overlap ratio and stall floors directly."""
    info = pipelined.extras["pipeline"]
    hidden = sequential.epoch_time - pipelined.epoch_time
    hideable = sequential.epoch_time - info["bound_seconds"]
    overlap = hidden / hideable if hideable > 1e-12 else 1.0
    for metric, value in (
        ("repro_pipeline_sequential_epoch_seconds",
         sequential.epoch_time),
        ("repro_pipeline_pipelined_epoch_seconds", pipelined.epoch_time),
        ("repro_pipeline_bound_seconds", info["bound_seconds"]),
        ("repro_pipeline_overlap_ratio", overlap),
        ("repro_pipeline_total_stall_seconds",
         sum(info["stall_seconds"].values())),
    ):
        registry.gauge(metric, "Pipeline smoke summary statistic").labels(
            framework=name).set(float(value))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline",
        description="Run the deterministic pipeline-overlap smoke "
                    "comparison and gate it against a committed "
                    "baseline.",
    )
    parser.add_argument("--framework", action="append", default=None,
                        metavar="NAME",
                        help="framework to run (repeatable; default: "
                             + ", ".join(SMOKE_FRAMEWORKS) + ")")
    parser.add_argument("--queue-depth", type=int, default=2,
                        help="stage-graph buffer depth "
                             "(default: %(default)s)")
    parser.add_argument("--snapshot", metavar="PATH", default=None,
                        help="also write the raw metrics snapshot here")
    parser.add_argument("--check-baseline", metavar="PATH", default=None,
                        help="gate instrumented pipeline metrics against "
                             "a committed baseline (repro.obs.regress)")
    parser.add_argument("--write-baseline", metavar="PATH", default=None,
                        help="write/refresh the baseline from this run")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="default relative tolerance when writing a "
                             "baseline (default: %(default)s)")
    args = parser.parse_args(argv)

    from repro.frameworks import FRAMEWORKS, available_frameworks

    frameworks = tuple(args.framework or SMOKE_FRAMEWORKS)
    unknown = [n for n in frameworks if n not in available_frameworks()]
    if unknown:
        parser.error(f"unknown framework(s): {unknown}; "
                     f"available: {list(available_frameworks())}")

    dataset = smoke_dataset()
    config = smoke_config()
    pipelined_exec = ExecutionSpec(pipeline=PipelineSpec(
        mode="pipelined", queue_depth=args.queue_depth))

    reports: dict = {}
    with instrumented() as registry:
        for name in frameworks:
            sequential = FRAMEWORKS[name]().run_epoch(
                dataset, config, model_name="gcn")
            pipelined = FRAMEWORKS[name]().run_epoch(
                dataset, config, model_name="gcn",
                execution=pipelined_exec)
            reports[name] = (sequential, pipelined)
            _publish_summary(registry, name, sequential, pipelined)
        snapshot = to_snapshot(registry)

    rows = []
    for name, (sequential, pipelined) in reports.items():
        info = pipelined.extras["pipeline"]
        rows.append([
            name,
            round(sequential.epoch_time * 1e3, 4),
            round(pipelined.epoch_time * 1e3, 4),
            round(info["bound_seconds"] * 1e3, 4),
            round(sum(info["stall_seconds"].values()) * 1e3, 4),
            max(info["stage_totals"], key=info["stage_totals"].get),
        ])
    print(ascii_table(
        ["framework", "seq_ms", "piped_ms", "bound_ms", "stall_ms",
         "bottleneck"],
        rows,
    ))

    failures = 0
    for name, (sequential, pipelined) in reports.items():
        for label, report in (("sequential", sequential),
                              ("pipelined", pipelined)):
            spans = report.timeline()
            extent = max((span.end for span in spans), default=0.0)
            delta = abs(extent - report.epoch_time)
            if delta > RECONCILE_TOL:
                print(f"{name}/{label}: TIMELINE MISMATCH: extent "
                      f"{extent!r} vs epoch_time {report.epoch_time!r}",
                      file=sys.stderr)
                failures += 1
        if pipelined.losses != sequential.losses:
            print(f"{name}: MODEL STATE DIVERGED between sequential and "
                  "pipelined runs", file=sys.stderr)
            failures += 1
        info = pipelined.extras["pipeline"]
        if pipelined.epoch_time > sequential.epoch_time + 1e-9:
            print(f"{name}: REGRESSION: pipelined "
                  f"({pipelined.epoch_time:.6f}s) slower than sequential "
                  f"({sequential.epoch_time:.6f}s)", file=sys.stderr)
            failures += 1
        if pipelined.epoch_time > info["bound_seconds"] * BOUND_SLACK:
            print(f"{name}: REGRESSION: pipelined epoch "
                  f"({pipelined.epoch_time:.6f}s) misses the overlap "
                  f"bound ({info['bound_seconds']:.6f}s) by more than "
                  f"{BOUND_SLACK - 1:.0%}", file=sys.stderr)
            failures += 1
        else:
            print(f"{name}: pipelined epoch within "
                  f"{pipelined.epoch_time / info['bound_seconds'] - 1:.2%}"
                  " of the overlap bound")
    if not failures:
        print(f"all {len(reports)} framework comparisons reconcile and "
              f"overlap (tolerance {RECONCILE_TOL:g}, bound slack "
              f"{BOUND_SLACK - 1:.0%})")

    if args.snapshot:
        with open(args.snapshot, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
        print(f"wrote snapshot: {args.snapshot}")

    if args.write_baseline:
        baseline = build_baseline(snapshot,
                                  default_tolerance=args.tolerance)
        baseline["suite"] = list(frameworks)
        with open(args.write_baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote baseline: {args.write_baseline} "
              f"({len(baseline['metrics'])} metrics)")
        return 0

    if args.check_baseline:
        try:
            with open(args.check_baseline) as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            print(f"no baseline at {args.check_baseline}; create one with "
                  "--write-baseline", file=sys.stderr)
            return 2
        violations = check(snapshot, baseline)
        checked = len(baseline.get("metrics", {}))
        if violations:
            print(f"{len(violations)} of {checked} pipeline metrics "
                  "regressed:")
            for violation in violations:
                print("  " + format_violation(violation))
            return 1
        print(f"ok: {checked} pipeline metrics within tolerance")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
