"""Pipelined epoch layout: rounds flowing through the stage graph.

Converts one epoch's per-round stage times (sample / memory IO / halo
exchange / train) into the overlapped timeline
:meth:`repro.frameworks.base.Framework.run_epoch` exports when
``PipelineSpec.mode == "pipelined"``: the rounds flow through
:func:`repro.pipeline.graph.stage_graph_makespan`, so round ``i+2``
samples while ``i+1`` transfers and ``i`` trains, halo exchange runs as
its own stage (overlapping the previous round's compute instead of
serializing before it), and the gradient allreduce joins the train
stage — every ``staleness + 1`` rounds when bounded-staleness
accumulation is on.

The returned spans reconcile exactly: the last executed interval ends
at the returned makespan, and the per-stage stall spans (the new
``stalls`` timeline lane) never extend past it.
"""

from __future__ import annotations

from typing import Sequence

from repro.pipeline.graph import stage_graph_makespan
from repro.pipeline.spec import PipelineSpec

#: Stage name -> timeline lane of the pipelined layout.
STAGE_LANES = {
    "sample": "sampler",
    "memory_io": "io",
    "network": "network",
    "train": "trainers",
}


def sync_round_flags(rounds: int, staleness: int) -> list:
    """Which rounds end in a synchronizing allreduce.

    ``staleness = 0`` syncs every round (today's semantics); ``k`` lets
    gradients accumulate locally for up to ``k`` extra rounds, syncing
    every ``k + 1`` rounds — and always after the final round, so the
    epoch never ends with unsynchronized gradients.
    """
    if rounds <= 0:
        return []
    period = staleness + 1
    flags = [(r + 1) % period == 0 for r in range(rounds)]
    flags[-1] = True
    return flags


def pipelined_epoch_layout(
    samples: Sequence[float],
    ios: Sequence[float],
    nets: Sequence[float],
    computes: Sequence[float],
    *,
    sync: float,
    net_sync: float,
    pipeline: PipelineSpec,
    label: str = "epoch",
) -> tuple:
    """Lay one epoch's rounds out through the stage graph.

    ``samples``/``ios``/``nets``/``computes`` are per-round stage
    seconds (already reduced across trainer lanes by the framework's
    ``_pipeline_stage_times`` hook). Returns ``(epoch_seconds, spans,
    info)`` where ``spans`` is the timeline (work spans per stage lane
    plus ``cat="stall"`` spans in the ``stalls`` lane) and ``info`` is
    the accounting dict stored under ``extras["pipeline"]``:
    per-stage totals, stall seconds, the sync-round count, and the
    ``max(stage totals) + fill`` lower-bound estimate the overlap gate
    compares against.
    """
    rounds = len(samples)
    flags = sync_round_flags(rounds, pipeline.staleness)
    sync_per_round = [(sync + net_sync) if flag else 0.0 for flag in flags]
    trains = [computes[r] + sync_per_round[r] for r in range(rounds)]

    # The halo stage only exists on cluster runs: a permanently zero-
    # length stage would silently add an extra buffer edge (more
    # run-ahead) without modeling anything.
    include_net = any(t > 0 for t in nets)
    names = ["sample", "memory_io"]
    stage_times = [list(samples), list(ios)]
    if include_net:
        names.append("network")
        stage_times.append(list(nets))
    names.append("train")
    stage_times.append(trains)

    records: list = []
    stall_records: list = []
    makespan = stage_graph_makespan(
        stage_times,
        names=names,
        queue_depth=pipeline.queue_depth,
        record=records.append,
        stall_record=stall_records.append,
        pipeline_label=label,
    )

    spans: list = []
    for stage, batch, start, end in records:
        if stage != "train":
            if end <= start:
                continue
            spans.append({
                "lane": STAGE_LANES[stage], "name": f"{stage}[{batch}]",
                "cat": stage, "start": start, "dur": end - start,
                "batch": batch,
            })
            continue
        # The train interval carries compute then the round's gradient
        # sync (intra-node allreduce, then the inter-node hop), carved
        # out of the recorded stage interval so reconciliation holds.
        cursor = start
        comp = computes[batch]
        if comp > 0:
            spans.append({
                "lane": "trainers", "name": f"compute[{batch}]",
                "cat": "compute", "start": cursor, "dur": comp,
                "batch": batch,
            })
            cursor += comp
        if flags[batch] and sync > 0:
            spans.append({
                "lane": "trainers", "name": f"allreduce[{batch}]",
                "cat": "allreduce", "start": cursor, "dur": sync,
                "batch": batch,
            })
            cursor += sync
        if flags[batch] and net_sync > 0:
            spans.append({
                "lane": "trainers", "name": f"allreduce_net[{batch}]",
                "cat": "network", "start": cursor, "dur": net_sync,
                "batch": batch,
            })
    stall_seconds = {name: 0.0 for name in names}
    for stage, batch, start, end in stall_records:
        if end <= start:
            continue
        stall_seconds[stage] += end - start
        spans.append({
            "lane": "stalls", "name": f"stall:{stage}[{batch}]",
            "cat": "stall", "start": start, "dur": end - start,
            "batch": batch, "stage": stage,
        })

    totals = {name: float(sum(t)) for name, t in zip(names, stage_times)}
    bottleneck = max(totals, key=totals.get)
    fill = sum(stage_times[s][0] for s, name in enumerate(names)
               if name != bottleneck)
    info = {
        "mode": pipeline.mode,
        "queue_depth": pipeline.queue_depth,
        "staleness": pipeline.staleness,
        "stage_totals": totals,
        "stall_seconds": stall_seconds,
        "num_syncs": int(sum(flags)),
        "serial_seconds": float(sum(totals.values())),
        "fill_seconds": float(fill),
        "bound_seconds": float(totals[bottleneck] + fill),
    }
    return makespan, spans, info
