"""The public facade: one import for training runs and serving sims.

Everything the package can do is reachable through four names::

    from repro.api import run, serve, create, available_frameworks

    report = run("fastgl", "products", config=RunConfig(num_gpus=2))
    print(report.epoch_time, report.phases.fractions())
    print(report.cache_stats().hit_rate)

    serving = serve("fastgl", "reddit", serve_config=ServeConfig(rate=800))
    print(serving.p99, serving.throughput)

``run`` executes one modeled training epoch and returns an
:class:`~repro.frameworks.base.EpochReport`; ``serve`` replays an online
inference workload through :mod:`repro.serve` and returns a
:class:`~repro.serve.server.ServeReport`. Both accept a framework as a
registry name (see :func:`available_frameworks`), a class, or an
instance, and a dataset as a registry name or a
:class:`~repro.graph.datasets.Dataset`. All tuning knobs are
keyword-only so call sites stay readable as the configs grow.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.config import RunConfig
from repro.frameworks.base import EpochReport, Framework
from repro.frameworks.registry import available_frameworks, create, resolve
from repro.graph.datasets import Dataset, get_dataset
from repro.serve.server import ServeConfig, ServeReport
from repro.serve.server import simulate as _simulate

__all__ = [
    "run",
    "serve",
    "create",
    "resolve",
    "available_frameworks",
    "RunConfig",
    "ServeConfig",
    "EpochReport",
    "ServeReport",
]

FrameworkLike = Union[str, type, Framework]
DatasetLike = Union[str, Dataset]


def _coerce_dataset(dataset: DatasetLike, seed: int) -> Dataset:
    if isinstance(dataset, str):
        return get_dataset(dataset, seed=seed)
    return dataset


def run(
    framework: FrameworkLike,
    dataset: DatasetLike,
    *,
    config: Optional[RunConfig] = None,
    model: str = "gcn",
    spec=None,
    sampler=None,
    cluster=None,
) -> EpochReport:
    """Run one modeled training epoch.

    Parameters
    ----------
    framework:
        Registry name (``"fastgl"``, ``"dgl"``, ...), a
        :class:`~repro.frameworks.base.Framework` subclass, or an
        instance.
    dataset:
        Dataset registry name or a constructed
        :class:`~repro.graph.datasets.Dataset`.
    config:
        :class:`~repro.config.RunConfig`; defaults to ``RunConfig()``.
    model:
        Model profile name (``"gcn"``, ``"gat"``, ``"graphsage"``).
    spec:
        Optional :class:`~repro.gpu.spec.GPUSpec` override, applied when
        ``framework`` is given by name or class.
    sampler:
        Optional pre-built sampler, forwarded to ``run_epoch``.
    cluster:
        Optional :class:`~repro.cluster.spec.ClusterSpec`; scales the
        epoch across simulated machines (``config`` then describes one
        node).
    """
    if config is None:
        config = RunConfig()
    instance = resolve(framework, spec=spec)
    data = _coerce_dataset(dataset, config.seed)
    return instance.run_epoch(data, config, model_name=model,
                              sampler=sampler, cluster=cluster)


def serve(
    framework: FrameworkLike,
    dataset: DatasetLike,
    *,
    run_config: Optional[RunConfig] = None,
    serve_config: Optional[ServeConfig] = None,
    model: str = "gcn",
    spec=None,
) -> ServeReport:
    """Simulate online inference serving (see :mod:`repro.serve`).

    Accepts the same ``framework``/``dataset`` forms as :func:`run`;
    ``serve_config`` (a :class:`~repro.serve.server.ServeConfig`)
    describes the request workload and micro-batching policy, and
    ``run_config`` carries the sampling fanouts, seed, and cost model.
    """
    if run_config is None:
        run_config = RunConfig(num_gpus=1)
    data = _coerce_dataset(dataset, run_config.seed)
    return _simulate(
        framework,
        data,
        run_config=run_config,
        serve_config=serve_config,
        model=model,
        spec=spec,
    )
