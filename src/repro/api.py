"""The public facade: one import for training runs and serving sims.

Everything the package can do is reachable through four names::

    from repro.api import run, serve, create, available_frameworks

    report = run("fastgl", "products", config=RunConfig(num_gpus=2))
    print(report.epoch_time, report.phases.fractions())
    print(report.cache_stats().hit_rate)

    serving = serve("fastgl", "reddit", serve_config=ServeConfig(rate=800))
    print(serving.p99, serving.throughput)

``run`` executes one modeled training epoch and returns an
:class:`~repro.frameworks.base.EpochReport`; ``serve`` replays an online
inference workload through :mod:`repro.serve` and returns a
:class:`~repro.serve.server.ServeReport`. Both accept a framework as a
registry name (see :func:`available_frameworks`), a class, or an
instance, and a dataset as a registry name or a
:class:`~repro.graph.datasets.Dataset`.

The *what to run* knobs stay individual (``config``, ``model``,
``sampler``); everything describing *where and how* execution happens —
device spec, cluster shape, worker processes, fault plan, epoch
pipelining — travels in one frozen
:class:`~repro.pipeline.ExecutionSpec` passed as ``exec``::

    report = run(
        "fastgl", "products",
        config=RunConfig(num_gpus=2),
        exec=ExecutionSpec(cluster=ClusterSpec(num_nodes=2),
                           pipeline="pipelined"),
    )

The pre-``ExecutionSpec`` keywords (``spec=``, ``cluster=``) keep
working as warn-once deprecation shims.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.config import RunConfig
from repro.frameworks.base import EpochReport, Framework
from repro.frameworks.registry import (
    available_frameworks,
    create,
    resolve,
    warn_deprecated,
)
from repro.graph.datasets import Dataset, get_dataset
from repro.pipeline import ExecutionSpec, PipelineSpec
from repro.serve.fleet import FleetReport, FleetSpec
from repro.serve.fleet import simulate_fleet as _simulate_fleet
from repro.serve.server import ServeConfig, ServeReport
from repro.serve.server import simulate as _simulate

__all__ = [
    "run",
    "serve",
    "create",
    "resolve",
    "available_frameworks",
    "ExecutionSpec",
    "PipelineSpec",
    "RunConfig",
    "ServeConfig",
    "EpochReport",
    "ServeReport",
    "FleetSpec",
    "FleetReport",
]

FrameworkLike = Union[str, type, Framework]
DatasetLike = Union[str, Dataset]


def _coerce_dataset(dataset: DatasetLike, seed: int) -> Dataset:
    if isinstance(dataset, str):
        return get_dataset(dataset, seed=seed)
    return dataset


def _coerce_execution(exec, spec, cluster, entry: str) -> ExecutionSpec:
    """Fold the deprecated ``spec=``/``cluster=`` keywords into the one
    :class:`ExecutionSpec`, warning once per shimmed keyword."""
    if spec is not None:
        warn_deprecated(f"api.{entry}(spec=...)",
                        f"api.{entry}(exec=ExecutionSpec(gpu_spec=...))")
    if cluster is not None:
        warn_deprecated(f"api.{entry}(cluster=...)",
                        f"api.{entry}(exec=ExecutionSpec(cluster=...))")
    if exec is None:
        return ExecutionSpec(cluster=cluster, gpu_spec=spec)
    if not isinstance(exec, ExecutionSpec):
        raise TypeError(f"exec must be an ExecutionSpec, got {exec!r}")
    if spec is not None or cluster is not None:
        raise TypeError(
            "pass spec/cluster through the ExecutionSpec, not as "
            "separate keyword arguments"
        )
    return exec


def run(
    framework: FrameworkLike,
    dataset: DatasetLike,
    *,
    config: Optional[RunConfig] = None,
    exec: Optional[ExecutionSpec] = None,
    model: str = "gcn",
    sampler=None,
    spec=None,
    cluster=None,
) -> EpochReport:
    """Run one modeled training epoch.

    Parameters
    ----------
    framework:
        Registry name (``"fastgl"``, ``"dgl"``, ...), a
        :class:`~repro.frameworks.base.Framework` subclass, or an
        instance.
    dataset:
        Dataset registry name or a constructed
        :class:`~repro.graph.datasets.Dataset`.
    config:
        :class:`~repro.config.RunConfig`; defaults to ``RunConfig()``.
    exec:
        :class:`~repro.pipeline.ExecutionSpec` bundling the execution
        environment: ``gpu_spec`` (device override, applied when
        ``framework`` is given by name or class), ``cluster``
        (:class:`~repro.cluster.spec.ClusterSpec` — ``config`` then
        describes one node), ``jobs`` (worker processes for the trainer
        lanes), ``faults`` (a fault plan installed for the run), and
        ``pipeline`` (``"off"`` | ``"pipelined"`` or a
        :class:`~repro.pipeline.PipelineSpec`).
    model:
        Model profile name (``"gcn"``, ``"gat"``, ``"graphsage"``).
    sampler:
        Optional pre-built sampler, forwarded to ``run_epoch``.
    spec, cluster:
        Deprecated — fold into ``exec``. Warn once, keep working.
    """
    execution = _coerce_execution(exec, spec, cluster, "run")
    if config is None:
        config = RunConfig()
    instance = resolve(framework, spec=execution.gpu_spec)
    data = _coerce_dataset(dataset, config.seed)
    return instance.run_epoch(data, config, model_name=model,
                              sampler=sampler, execution=execution)


def serve(
    framework: FrameworkLike,
    dataset: DatasetLike,
    *,
    run_config: Optional[RunConfig] = None,
    serve_config: Optional[ServeConfig] = None,
    model: str = "gcn",
    exec: Optional[ExecutionSpec] = None,
    fleet: Optional[FleetSpec] = None,
    spec=None,
) -> Union[ServeReport, FleetReport]:
    """Simulate online inference serving (see :mod:`repro.serve`).

    Accepts the same ``framework``/``dataset`` forms as :func:`run`;
    ``serve_config`` (a :class:`~repro.serve.server.ServeConfig`)
    describes the request workload and micro-batching policy, and
    ``run_config`` carries the sampling fanouts, seed, and cost model.
    ``exec`` carries the same :class:`~repro.pipeline.ExecutionSpec` as
    :func:`run`; serving uses its ``gpu_spec`` (the other fields
    describe epoch training and do not apply). ``spec=`` remains as a
    warn-once deprecation shim.

    With ``fleet=FleetSpec(...)`` the simulation runs N replicas behind
    the spec's router/autoscaler/cache-tier policies and returns a
    :class:`~repro.serve.fleet.FleetReport` instead (a one-replica
    round-robin fleet is bit-identical to the default path — the fleet
    conformance suite pins this).
    """
    execution = _coerce_execution(exec, spec, None, "serve")
    if run_config is None:
        run_config = RunConfig(num_gpus=1)
    data = _coerce_dataset(dataset, run_config.seed)
    if fleet is not None:
        return _simulate_fleet(
            framework,
            data,
            run_config=run_config,
            serve_config=serve_config,
            fleet=fleet,
            model=model,
            spec=execution.gpu_spec,
        )
    return _simulate(
        framework,
        data,
        run_config=run_config,
        serve_config=serve_config,
        model=model,
        spec=execution.gpu_spec,
    )
