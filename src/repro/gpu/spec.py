"""GPU hardware specifications (the paper's Table 3).

``RTX3090`` reproduces the memory-level statistics the paper reports for the
NVIDIA GeForce RTX 3090 used in its evaluation: per-level bandwidths and
capacities, SM count, and the peak FP32 throughput the paper quotes
(29155 GFLOP/s).
"""

from __future__ import annotations

from dataclasses import dataclass

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass(frozen=True)
class GPUSpec:
    """Datasheet-level description of one GPU."""

    name: str
    #: Global (device) memory capacity in bytes.
    global_mem_bytes: int
    #: Global memory bandwidth, bytes/second.
    global_bw: float
    #: L2 cache capacity in bytes and bandwidth in bytes/second.
    l2_bytes: int
    l2_bw: float
    #: L1 cache / shared memory: capacity per SM (they share the same
    #: 128 KiB array on Ampere) and bandwidth, bytes/second (aggregate).
    l1_bytes_per_sm: int
    l1_bw: float
    shared_bw: float
    #: Number of streaming multiprocessors.
    num_sms: int
    #: Peak FP32 throughput, FLOP/second.
    peak_flops: float
    #: Maximum threads per thread block.
    max_threads_per_block: int = 1024
    #: Maximum resident threads per SM.
    max_threads_per_sm: int = 1536
    #: Shared memory usable per thread block (bytes). Ampere reserves part
    #: of the 128 KiB array for L1; 100 KiB is the per-block limit.
    max_shared_per_block: int = 100 * KIB
    #: Cache line size used by L1/L2 (bytes).
    cache_line_bytes: int = 128
    warp_size: int = 32
    #: Host link bandwidth (PCIe 4.0 x16 as in the paper), bytes/second.
    pcie_bw: float = 32e9

    @property
    def total_l1_bytes(self) -> int:
        """Aggregate L1 capacity across all SMs."""
        return self.l1_bytes_per_sm * self.num_sms

    def spec_table_rows(self) -> list:
        """Rows reproducing the paper's Table 3 for this GPU."""
        return [
            ("L1 Cache", f"{self.l1_bw / 1e12:.0f}TB/s",
             f"{self.l1_bytes_per_sm // KIB}KB (per SM)"),
            ("Shared Memory", f"{self.shared_bw / 1e12:.0f}TB/s",
             f"{self.l1_bytes_per_sm // KIB}KB (per SM)"),
            ("L2 Cache", f"{self.l2_bw / 1e12:.0f}TB/s",
             f"{self.l2_bytes // MIB}MB"),
            ("Global Memory", f"{self.global_bw / 1e9:.0f}GB/s",
             f"{self.global_mem_bytes // GIB}GB"),
        ]


#: The evaluation GPU of the paper: NVIDIA GeForce RTX 3090, 24 GB.
RTX3090 = GPUSpec(
    name="RTX 3090",
    global_mem_bytes=24 * GIB,
    global_bw=938e9,
    l2_bytes=6 * MIB,
    l2_bw=4e12,
    l1_bytes_per_sm=128 * KIB,
    l1_bw=12e12,
    shared_bw=12e12,
    num_sms=82,
    peak_flops=29_155e9,
)

#: NVIDIA A100-SXM4 80 GB — used by the GPU-sensitivity extension study to
#: show the cost model (and FastGL's advantage) is parametric in the
#: hardware, not fitted to one card.
A100 = GPUSpec(
    name="A100 80GB",
    global_mem_bytes=80 * GIB,
    global_bw=2_039e9,
    l2_bytes=40 * MIB,
    l2_bw=7e12,
    l1_bytes_per_sm=192 * KIB,
    l1_bw=19e12,
    shared_bw=19e12,
    num_sms=108,
    peak_flops=19_500e9,
    max_shared_per_block=164 * KIB,
    max_threads_per_sm=2048,
    pcie_bw=32e9,
)
