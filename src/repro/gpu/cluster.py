"""Multi-GPU data-parallel model.

The paper trains data-parallel on up to 8 GPUs in one machine, with NCCL
gradient all-reduce (Section 5). Two effects shape Fig. 14a:

* ring all-reduce moves ``2*(M-1)/M`` times the gradient bytes per GPU, and
* all GPUs pull features over PCIe from the *same* host memory, so per-GPU
  transfer bandwidth degrades with GPU count (see
  :meth:`repro.gpu.pcie.PCIeLink.effective_bandwidth`).

IO-heavy baselines (DGL) are hurt by the second effect much more than
FastGL, whose Match strategy moves fewer bytes — reproducing the paper's
observation that FastGL's scaling (5.93x at 8 GPUs) beats DGL's (3.36x).
"""

from __future__ import annotations

from repro.config import CostModelConfig, DEFAULT_COST_MODEL


def allreduce_time(
    grad_bytes: float,
    num_gpus: int,
    cost: CostModelConfig = DEFAULT_COST_MODEL,
) -> float:
    """Seconds for one ring all-reduce of ``grad_bytes`` across ``num_gpus``."""
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    if num_gpus == 1 or grad_bytes <= 0:
        return 0.0
    moved = 2.0 * (num_gpus - 1) / num_gpus * grad_bytes
    return cost.nccl_latency_s + moved / cost.nccl_bus_bytes_per_s


def effective_pcie_bandwidth(
    per_link_bw: float,
    num_gpus: int,
    cost: CostModelConfig = DEFAULT_COST_MODEL,
) -> float:
    """Per-GPU host->device bandwidth when ``num_gpus`` transfer at once."""
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    return min(per_link_bw, cost.host_aggregate_bytes_per_s / num_gpus)
