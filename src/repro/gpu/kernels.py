"""Thread-block configuration and occupancy model for aggregation kernels.

The Memory-Aware kernel of the paper assigns each thread block X target
nodes and Y feature lanes (X*Y <= 1024 threads) and stages the partial sums
and edge weights in shared memory: ``4*X*Y + 4*X*|N(u)|`` bytes per block
(Section 4.2). This module checks those hardware constraints and computes SM
occupancy, which scales the achievable shared-memory bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.gpu.spec import GPUSpec


@dataclass(frozen=True)
class ThreadBlockConfig:
    """A (X target nodes) x (Y feature lanes) thread-block shape."""

    x_nodes: int = 8
    y_dims: int = 32

    @property
    def threads_per_block(self) -> int:
        return self.x_nodes * self.y_dims

    def validate(self, spec: GPUSpec) -> None:
        if self.x_nodes <= 0 or self.y_dims <= 0:
            raise ConfigError("thread-block dimensions must be positive")
        if self.threads_per_block > spec.max_threads_per_block:
            raise ConfigError(
                f"X*Y = {self.threads_per_block} exceeds the hardware limit "
                f"of {spec.max_threads_per_block} threads per block"
            )

    def shared_bytes(self, avg_degree: float) -> int:
        """Shared memory per block: partial sums + weights (paper, §4.2)."""
        partial_sums = 4 * self.x_nodes * self.y_dims
        weights = 4 * self.x_nodes * int(math.ceil(avg_degree))
        return partial_sums + weights


@dataclass(frozen=True)
class KernelPlan:
    """Launch geometry and occupancy for one aggregation kernel."""

    config: ThreadBlockConfig
    num_blocks: int
    shared_bytes_per_block: int
    blocks_per_sm: int
    occupancy: float

    @property
    def fits(self) -> bool:
        return self.blocks_per_sm >= 1


def aggregation_kernel_plan(
    num_target_nodes: int,
    feature_dim: int,
    avg_degree: float,
    spec: GPUSpec,
    config: ThreadBlockConfig = ThreadBlockConfig(),
) -> KernelPlan:
    """Plan the Memory-Aware aggregation launch.

    ``ceil(N / X) * ceil(d / Y)`` blocks cover all target nodes and feature
    lanes (the paper uses ``ceil(d / Y)`` blocks per X-node group).
    Occupancy is limited by both the shared-memory footprint and the
    resident-thread limit of each SM.
    """
    config.validate(spec)
    shared = config.shared_bytes(avg_degree)
    if shared > spec.max_shared_per_block:
        raise ConfigError(
            f"shared memory per block ({shared}B) exceeds the limit "
            f"({spec.max_shared_per_block}B); reduce X or Y"
        )
    node_groups = max(1, math.ceil(num_target_nodes / config.x_nodes))
    dim_groups = max(1, math.ceil(feature_dim / config.y_dims))
    num_blocks = node_groups * dim_groups

    by_shared = spec.l1_bytes_per_sm // max(1, shared)
    by_threads = spec.max_threads_per_sm // config.threads_per_block
    blocks_per_sm = max(0, min(by_shared, by_threads))
    resident_threads = blocks_per_sm * config.threads_per_block
    occupancy = min(1.0, resident_threads / spec.max_threads_per_sm)
    return KernelPlan(
        config=config,
        num_blocks=num_blocks,
        shared_bytes_per_block=shared,
        blocks_per_sm=int(blocks_per_sm),
        occupancy=occupancy,
    )


def autotune_thread_block(
    feature_dim: int,
    avg_degree: float,
    spec: GPUSpec,
    candidates=None,
) -> ThreadBlockConfig:
    """Pick the thread-block shape maximizing modeled throughput.

    The paper fixes X=8/Y=32 empirically; this sweeps candidate shapes
    and selects the one with the highest ``occupancy * resident threads``
    subject to the shared-memory and thread-count limits — a proxy for the
    shared-memory bandwidth actually reachable. Ties break toward the
    paper's default.
    """
    if candidates is None:
        candidates = [
            ThreadBlockConfig(x, y)
            for x in (4, 8, 16, 32)
            for y in (16, 32, 64, 128)
            if x * y <= spec.max_threads_per_block
        ]
    default = ThreadBlockConfig()
    best = None
    best_score = -1.0
    for config in candidates:
        try:
            plan = aggregation_kernel_plan(
                num_target_nodes=max(1, config.x_nodes),
                feature_dim=feature_dim,
                avg_degree=avg_degree,
                spec=spec,
                config=config,
            )
        except ConfigError:
            continue
        if not plan.fits:
            continue
        score = plan.occupancy
        is_default = (config.x_nodes == default.x_nodes
                      and config.y_dims == default.y_dims)
        if score > best_score or (score == best_score and is_default):
            best_score = score
            best = config
    if best is None:
        raise ConfigError("no thread-block shape fits this workload")
    return best


def gemm_time(m: int, n: int, k: int, spec: GPUSpec,
              efficiency: float = 0.45) -> float:
    """Modeled seconds for a dense (m,k) x (k,n) GEMM (the update phase)."""
    if min(m, n, k) <= 0:
        return 0.0
    flops = 2.0 * m * n * k
    return flops / (spec.peak_flops * efficiency)
