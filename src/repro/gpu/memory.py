"""GPU cache and memory-hierarchy model.

Two layers:

* :class:`CacheSim` — a functional set-associative LRU cache simulator.
  Feeding it the byte-address trace of the aggregation phase reproduces the
  paper's Table 2 (L1/L2 hit rates of 3-5% / 15-25% on sparse aggregation).
* :class:`MemoryHierarchy` — converts per-level hit fractions into the
  effective bandwidth available to the compute units, which is what the
  Memory-Aware analysis (Eqs. 3-4 of the paper) is about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CacheStats:
    """Access counters produced by :class:`CacheSim`."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        """Hit fraction in [0, 1]; zero when no accesses were made."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class CacheSim:
    """Set-associative LRU cache over a byte-address trace.

    The simulator is functional (it tracks actual tags per set) rather than
    statistical, so locality effects like the re-reference of hub-node
    feature rows are captured. Traces should be kept to a few hundred
    thousand accesses; callers subsample longer traces.

    Parameters
    ----------
    capacity_bytes:
        Total cache capacity.
    line_bytes:
        Cache-line size; consecutive bytes within one line count as hits.
    ways:
        Associativity. ``capacity_bytes`` must be divisible by
        ``line_bytes * ways``.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 128,
                 ways: int = 8) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache parameters must be positive")
        num_lines = max(ways, capacity_bytes // line_bytes)
        self.line_bytes = int(line_bytes)
        self.ways = int(ways)
        self.num_sets = max(1, num_lines // ways)
        # tags[set, way] = line tag (-1 empty); stamp[set, way] = LRU clock.
        self._tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self._stamp = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.ways * self.line_bytes

    def reset(self) -> None:
        """Clear contents and counters."""
        self._tags.fill(-1)
        self._stamp.fill(0)
        self._clock = 0
        self.stats = CacheStats()

    def access(self, addresses: np.ndarray) -> np.ndarray:
        """Run ``addresses`` (byte addresses) through the cache.

        Returns a boolean array marking which accesses hit. Misses are
        installed with LRU replacement.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        lines = addresses // self.line_bytes
        sets = lines % self.num_sets
        hit_mask = np.zeros(len(addresses), dtype=bool)
        tags = self._tags
        stamp = self._stamp
        clock = self._clock
        for i in range(len(lines)):
            s = sets[i]
            tag = lines[i]
            row = tags[s]
            clock += 1
            way = -1
            for w in range(self.ways):
                if row[w] == tag:
                    way = w
                    break
            if way >= 0:
                hit_mask[i] = True
                stamp[s, way] = clock
            else:
                victim = int(np.argmin(stamp[s]))
                tags[s, victim] = tag
                stamp[s, victim] = clock
        self._clock = clock
        self.stats.accesses += len(addresses)
        self.stats.hits += int(hit_mask.sum())
        return hit_mask


@dataclass
class HierarchyStats:
    """Per-level hit fractions of a two-level cache simulation."""

    l1_hit_rate: float
    l2_hit_rate: float
    accesses: int

    @property
    def global_fraction(self) -> float:
        """Fraction of accesses ultimately served by global memory."""
        return (1.0 - self.l1_hit_rate) * (1.0 - self.l2_hit_rate)


class MemoryHierarchy:
    """L1 -> L2 -> global simulation and effective-bandwidth conversion."""

    def __init__(self, spec) -> None:
        self.spec = spec
        # Aggregation kernels run across all SMs, but any single access
        # stream sees one SM's L1. Model L1 as a single-SM slice and L2 as
        # the shared 6 MiB array (paper Table 3).
        self.l1 = CacheSim(spec.l1_bytes_per_sm, spec.cache_line_bytes,
                           ways=4)
        self.l2 = CacheSim(spec.l2_bytes, spec.cache_line_bytes, ways=16)

    def run_trace(self, addresses: np.ndarray) -> HierarchyStats:
        """Simulate a trace through L1 then L2; return hit fractions."""
        l1_hits = self.l1.access(addresses)
        missed = np.asarray(addresses)[~l1_hits]
        if len(missed):
            self.l2.access(missed)
        l1_rate = self.l1.stats.hit_rate
        l2_rate = self.l2.stats.hit_rate
        return HierarchyStats(l1_hit_rate=l1_rate, l2_hit_rate=l2_rate,
                              accesses=int(self.l1.stats.accesses))

    def effective_bandwidth(self, l1_hit: float, l2_hit: float) -> float:
        """Bandwidth seen by the compute units given per-level hit rates.

        Each byte is served by exactly one level; the average service time
        per byte is the hit-weighted sum of per-level inverse bandwidths.
        """
        spec = self.spec
        f_l1 = l1_hit
        f_l2 = (1.0 - l1_hit) * l2_hit
        f_glob = (1.0 - l1_hit) * (1.0 - l2_hit)
        per_byte = f_l1 / spec.l1_bw + f_l2 / spec.l2_bw + f_glob / spec.global_bw
        return 1.0 / per_byte
