"""Simulated GPU substrate.

The paper's techniques are defined by *where bytes move* on a real GPU. This
subpackage models the relevant hardware: the memory hierarchy of an RTX 3090
(Table 3 of the paper), a set-associative cache simulator that reproduces the
paper's Table-2 hit-rate measurements, a thread-block/occupancy model for the
Memory-Aware kernel, an atomic-operation cost model for Fused-Map, the
host<->device PCIe link, a device-memory allocator for the Table-1/Table-9
accounting, and a multi-GPU data-parallel model.
"""

from repro.gpu.spec import GPUSpec, RTX3090
from repro.gpu.memory import CacheSim, CacheStats, MemoryHierarchy
from repro.gpu.pcie import PCIeLink
from repro.gpu.device import DeviceMemory
from repro.gpu.kernels import ThreadBlockConfig, aggregation_kernel_plan
from repro.gpu.cluster import allreduce_time, effective_pcie_bandwidth

__all__ = [
    "GPUSpec",
    "RTX3090",
    "CacheSim",
    "CacheStats",
    "MemoryHierarchy",
    "PCIeLink",
    "DeviceMemory",
    "ThreadBlockConfig",
    "aggregation_kernel_plan",
    "allreduce_time",
    "effective_pcie_bandwidth",
]
