"""Simulated device-memory allocator.

Tracks named allocations against a fixed capacity so frameworks can account
for what lives on the GPU during training — model parameters, optimizer
state, per-layer activations, subgraph structure, staged features and any
feature cache. This powers the paper's Table 1 (remaining memory) and
Table 9 (DGL vs FastGL usage) reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceMemoryError


@dataclass
class Allocation:
    name: str
    num_bytes: int


@dataclass
class DeviceMemory:
    """A byte-accounted device memory of ``capacity_bytes``."""

    capacity_bytes: int
    allocations: dict = field(default_factory=dict)
    peak_bytes: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")

    @property
    def used_bytes(self) -> int:
        return sum(a.num_bytes for a in self.allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def alloc(self, name: str, num_bytes: int) -> Allocation:
        """Reserve ``num_bytes`` under ``name``.

        Raises :class:`DeviceMemoryError` when the device is full; reusing a
        live name is a programming error and raises ``ValueError``.
        """
        num_bytes = int(num_bytes)
        if num_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        if name in self.allocations:
            raise ValueError(f"allocation {name!r} already exists")
        if num_bytes > self.free_bytes:
            raise DeviceMemoryError(num_bytes, self.free_bytes, what=name)
        allocation = Allocation(name=name, num_bytes=num_bytes)
        self.allocations[name] = allocation
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        return allocation

    def free(self, name: str) -> None:
        """Release the allocation registered under ``name``."""
        if name not in self.allocations:
            raise KeyError(f"no allocation named {name!r}")
        del self.allocations[name]

    def resize(self, name: str, num_bytes: int) -> None:
        """Grow or shrink a live allocation (models reused staging buffers)."""
        if name not in self.allocations:
            raise KeyError(f"no allocation named {name!r}")
        current = self.allocations[name].num_bytes
        delta = int(num_bytes) - current
        if delta > self.free_bytes:
            raise DeviceMemoryError(delta, self.free_bytes, what=name)
        self.allocations[name].num_bytes = int(num_bytes)
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)

    def snapshot(self) -> dict:
        """Mapping of live allocation names to byte sizes."""
        return {name: a.num_bytes for name, a in self.allocations.items()}
