"""Host <-> device link model (PCIe 4.0 x16, as in the paper).

The memory-IO phase the paper optimizes is, at bottom, ``bytes / 32 GB/s``
plus fixed per-transfer latency and the host-side gather of non-contiguous
feature rows into a staging buffer. When several GPUs pull simultaneously
the aggregate host memory bandwidth caps the per-link rate — this contention
is what makes IO-heavy baselines scale poorly with GPU count (Fig. 14a).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CostModelConfig, DEFAULT_COST_MODEL


@dataclass(frozen=True)
class PCIeLink:
    """One host->device link with optional multi-GPU contention."""

    bandwidth: float = 32e9
    latency_s: float = 15e-6
    #: Aggregate host-side bandwidth shared by all concurrent links.
    host_aggregate: float = 80e9

    def effective_bandwidth(self, concurrent_links: int = 1) -> float:
        """Per-link bandwidth when ``concurrent_links`` GPUs transfer at once."""
        if concurrent_links < 1:
            raise ValueError("concurrent_links must be >= 1")
        return min(self.bandwidth, self.host_aggregate / concurrent_links)

    def transfer_time(self, num_bytes: float, concurrent_links: int = 1) -> float:
        """Seconds to move ``num_bytes`` host->device on one link."""
        if num_bytes <= 0:
            return 0.0
        return self.latency_s + num_bytes / self.effective_bandwidth(concurrent_links)

    def gather_and_transfer_time(
        self,
        num_bytes: float,
        cost: CostModelConfig = DEFAULT_COST_MODEL,
        concurrent_links: int = 1,
    ) -> float:
        """Transfer time including the host-side row gather into a staging
        buffer (stage (1) of the paper's Section 7 discussion)."""
        if num_bytes <= 0:
            return 0.0
        gather = num_bytes / cost.host_gather_bytes_per_s
        return gather + self.transfer_time(num_bytes, concurrent_links)


def link_from_cost(spec, cost: CostModelConfig) -> PCIeLink:
    """Build the link model for ``spec`` using calibration ``cost``."""
    return PCIeLink(
        bandwidth=spec.pcie_bw,
        latency_s=cost.pcie_transfer_latency_s,
        host_aggregate=cost.host_aggregate_bytes_per_s,
    )
