"""Atomic-operation cost model.

Fused-Map (Algorithm 2 of the paper) replaces thread synchronization with
``atomicCAS`` (hash-table key insertion, plus linear-probing retries) and
``atomicAdd`` (local-ID allocation). The functional hash table in
:mod:`repro.sampling.idmap` counts exactly how many of each are executed;
this module converts those counts into modeled seconds and captures the
contention behaviour of atomics on the same address.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CostModelConfig, DEFAULT_COST_MODEL


@dataclass(frozen=True)
class AtomicCounters:
    """Counts of executed atomic operations."""

    cas_ops: int = 0
    add_ops: int = 0
    #: Extra CAS retries caused by hash collisions (linear probing).
    probe_retries: int = 0

    def __add__(self, other: "AtomicCounters") -> "AtomicCounters":
        return AtomicCounters(
            cas_ops=self.cas_ops + other.cas_ops,
            add_ops=self.add_ops + other.add_ops,
            probe_retries=self.probe_retries + other.probe_retries,
        )

    @property
    def total_ops(self) -> int:
        return self.cas_ops + self.add_ops + self.probe_retries


def atomic_time(
    counters: AtomicCounters,
    cost: CostModelConfig = DEFAULT_COST_MODEL,
    contention_factor: float = 1.0,
) -> float:
    """Seconds spent executing ``counters`` worth of atomics.

    ``contention_factor`` >= 1 models serialization when many threads target
    the same address (e.g. every thread incrementing one ``LocalID``
    counter); the device-wide throughput is divided by it.
    """
    if contention_factor < 1.0:
        raise ValueError("contention_factor must be >= 1")
    throughput = cost.atomic_ops_per_s / contention_factor
    return counters.total_ops / throughput
