"""Multi-machine data-parallel extension (the paper's Section 7.1 claim).

The paper expects FastGL to stay efficient across machines because its
three techniques are machine-count-agnostic. This module extends the
single-node cluster model with inter-machine gradient synchronization over
a NIC: a hierarchical all-reduce (intra-node ring over NVLink/PCIe, then
inter-node ring over the network, then broadcast back).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CostModelConfig, DEFAULT_COST_MODEL
from repro.gpu.cluster import allreduce_time


@dataclass(frozen=True)
class MachineSpec:
    """One machine: GPU count and its network interface."""

    gpus_per_machine: int = 8
    #: NIC bandwidth, bytes/second (100 GbE default).
    nic_bytes_per_s: float = 12.5e9
    #: Per-message network latency.
    nic_latency_s: float = 50e-6


def hierarchical_allreduce_time(
    grad_bytes: float,
    num_machines: int,
    machine: MachineSpec = MachineSpec(),
    cost: CostModelConfig = DEFAULT_COST_MODEL,
) -> float:
    """Seconds for a hierarchical all-reduce across machines.

    Phase 1: intra-node ring reduce (NCCL). Phase 2: inter-node ring over
    the NIC on the reduced buffer. Phase 3: intra-node broadcast (costed
    as a second intra-node pass).
    """
    if num_machines < 1:
        raise ValueError("num_machines must be >= 1")
    if grad_bytes <= 0:
        return 0.0
    intra = allreduce_time(grad_bytes, machine.gpus_per_machine, cost)
    if num_machines == 1:
        return intra
    moved = 2.0 * (num_machines - 1) / num_machines * grad_bytes
    inter = machine.nic_latency_s + moved / machine.nic_bytes_per_s
    return 2.0 * intra + inter


def multimachine_epoch_time(
    single_machine_epoch_time: float,
    iterations: int,
    grad_bytes: float,
    num_machines: int,
    machine: MachineSpec = MachineSpec(),
    cost: CostModelConfig = DEFAULT_COST_MODEL,
) -> float:
    """Epoch time when the batch stream is split across ``num_machines``.

    Compute/IO work divides across machines (each keeps its own host
    memory and PCIe links, so there is no cross-machine host contention);
    every iteration pays the hierarchical synchronization instead of the
    intra-node one.
    """
    if num_machines < 1:
        raise ValueError("num_machines must be >= 1")
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    intra_only = allreduce_time(grad_bytes, machine.gpus_per_machine, cost)
    per_machine_iters = -(-iterations // num_machines)  # ceil division
    compute_share = (single_machine_epoch_time
                     - iterations * intra_only) / max(1, iterations)
    sync = hierarchical_allreduce_time(grad_bytes, num_machines, machine,
                                       cost)
    return per_machine_iters * max(0.0, compute_share) + (
        per_machine_iters * sync
    )
