"""Node-feature stores.

Feature tables are the dominant memory-IO payload (the paper's central
bottleneck). Three stores cover the reproduction's needs:

* :class:`HashFeatureStore` — features computed on demand from the node ID,
  so a "Papers100M-wide" table can be modeled without materializing it.
* :class:`MaterializedFeatureStore` — a plain ndarray table.
* :class:`PlantedFeatureStore` — class-centroid + noise features correlated
  with labels, so training experiments (Fig. 16) genuinely learn.

All stores share one interface: ``dim``, ``bytes_per_node``, and
``gather(ids)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.rng import ensure_rng


class FeatureStore(ABC):
    """Read-only node-feature table addressed by global node ID."""

    def __init__(self, num_nodes: int, dim: int,
                 dtype: np.dtype = np.float32) -> None:
        if num_nodes < 0 or dim <= 0:
            raise ValueError("num_nodes must be >= 0 and dim positive")
        self.num_nodes = int(num_nodes)
        self.dim = int(dim)
        self.dtype = np.dtype(dtype)

    @property
    def bytes_per_node(self) -> int:
        """Bytes of one feature row (what one cache/transfer entry costs)."""
        return self.dim * self.dtype.itemsize

    @property
    def total_bytes(self) -> int:
        """Bytes of the full table (host-resident)."""
        return self.num_nodes * self.bytes_per_node

    def _check_ids(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) and (ids.min() < 0 or ids.max() >= self.num_nodes):
            raise IndexError("node IDs out of range")
        return ids

    @abstractmethod
    def gather(self, ids: np.ndarray) -> np.ndarray:
        """Return the ``(len(ids), dim)`` feature rows for ``ids``."""

    def materialize(self, chunk: int = 65536) -> "MaterializedFeatureStore":
        """Realize the full table in memory (fast repeated gathers for
        training experiments). Chunked to bound peak temporary memory."""
        table = np.empty((self.num_nodes, self.dim), dtype=self.dtype)
        for start in range(0, self.num_nodes, chunk):
            ids = np.arange(start, min(start + chunk, self.num_nodes))
            table[start:start + len(ids)] = self.gather(ids)
        return MaterializedFeatureStore(table)


class HashFeatureStore(FeatureStore):
    """Deterministic pseudo-random features generated from node IDs.

    ``gather`` hashes each ID into a per-row seed, so the same node always
    yields the same row, with zero resident storage. Used where only byte
    counts and numerical plausibility matter.
    """

    def __init__(self, num_nodes: int, dim: int, seed: int = 0,
                 dtype: np.dtype = np.float32) -> None:
        super().__init__(num_nodes, dim, dtype=dtype)
        self.seed = int(seed)

    def gather(self, ids: np.ndarray) -> np.ndarray:
        ids = self._check_ids(ids)
        out = np.empty((len(ids), self.dim), dtype=self.dtype)
        # A cheap splitmix-style hash expanded across dimensions.
        base = (ids.astype(np.uint64) + np.uint64(self.seed)) * np.uint64(
            0x9E3779B97F4A7C15
        )
        dims = np.arange(self.dim, dtype=np.uint64) * np.uint64(
            0xBF58476D1CE4E5B9
        )
        mixed = base[:, None] ^ dims[None, :]
        mixed ^= mixed >> np.uint64(31)
        mixed *= np.uint64(0x94D049BB133111EB)
        mixed ^= mixed >> np.uint64(29)
        out[:] = (mixed >> np.uint64(40)).astype(np.float64) / 2**24 - 0.5
        return out


class MaterializedFeatureStore(FeatureStore):
    """A plain in-memory feature table."""

    def __init__(self, table: np.ndarray) -> None:
        table = np.asarray(table)
        # Keep reduced-precision tables reduced (float16 halves both the
        # resident bytes and every modeled transfer); only non-float input
        # is promoted to the float32 default.
        dtype = (table.dtype if np.issubdtype(table.dtype, np.floating)
                 else np.dtype(np.float32))
        table = np.ascontiguousarray(table, dtype=dtype)
        if table.ndim != 2:
            raise ValueError("feature table must be 2-D")
        super().__init__(table.shape[0], table.shape[1], dtype=dtype)
        self.table = table

    def gather(self, ids: np.ndarray) -> np.ndarray:
        ids = self._check_ids(ids)
        return self.table[ids]


class PlantedFeatureStore(FeatureStore):
    """Label-correlated features: class centroid + Gaussian noise.

    Rows are generated on demand (deterministically per node) so even the
    wide-feature datasets stay cheap; the signal-to-noise ratio is chosen so
    a GCN reaches well-above-chance accuracy in a few epochs.
    """

    def __init__(self, labels: np.ndarray, dim: int, noise: float = 1.0,
                 seed: int = 0) -> None:
        labels = np.asarray(labels, dtype=np.int64)
        super().__init__(len(labels), dim)
        self.labels = labels
        self.noise = float(noise)
        self.seed = int(seed)
        num_classes = int(labels.max()) + 1 if len(labels) else 1
        rng = ensure_rng(seed)
        self.centroids = rng.normal(0.0, 1.0, size=(num_classes, dim)).astype(
            np.float32
        )
        self._noise_store = HashFeatureStore(len(labels), dim, seed=seed + 1)

    def gather(self, ids: np.ndarray) -> np.ndarray:
        ids = self._check_ids(ids)
        noise = self._noise_store.gather(ids) * (self.noise * 3.46)
        # HashFeatureStore rows are ~U(-0.5, 0.5): std ~0.289, so the 3.46
        # factor makes the noise term ~unit-variance before scaling.
        return self.centroids[self.labels[ids]] + noise
