"""Graph substrate: CSR storage, synthetic generators, datasets, features.

The paper evaluates on five real graphs (Reddit, OGB-Products, MAG,
IGB-large, OGB-Papers100M). Those datasets are not available offline, so
:mod:`repro.graph.datasets` builds scaled synthetic analogues that preserve
the properties the paper's techniques depend on: power-law degree
distributions, density, feature width, label/community homophily, and the
ratio of spare GPU memory to feature-table size.
"""

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    chung_lu_graph,
    community_graph,
    erdos_renyi_graph,
    power_law_degrees,
    rmat_graph,
)
from repro.graph.features import (
    FeatureStore,
    HashFeatureStore,
    MaterializedFeatureStore,
    PlantedFeatureStore,
)
from repro.graph.datasets import Dataset, DatasetSpec, get_dataset, DATASETS
from repro.graph.partition import MinibatchPlan, train_split

__all__ = [
    "CSRGraph",
    "chung_lu_graph",
    "community_graph",
    "erdos_renyi_graph",
    "power_law_degrees",
    "rmat_graph",
    "FeatureStore",
    "HashFeatureStore",
    "MaterializedFeatureStore",
    "PlantedFeatureStore",
    "Dataset",
    "DatasetSpec",
    "get_dataset",
    "DATASETS",
    "MinibatchPlan",
    "train_split",
]
