"""Training-node splits, mini-batch planning, and partition accounting.

Sampling-based training splits the training nodes into mini-batches and
samples one subgraph per batch (Fig. 2 of the paper). ``MinibatchPlan``
produces those batches deterministically per epoch; the Reorder strategy
later permutes *whole batches*, never their contents.

This module also owns the *assignment* vocabulary the multi-node layer
(:mod:`repro.cluster`) builds on: a node→partition assignment is a dense
``int`` array with one entry per node. :func:`validate_assignment`
rejects anything that does not cover every node exactly once, and
:func:`partition_stats` reports the edge-cut / balance / halo statistics
every partitioner is judged by.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import ensure_rng


def validate_assignment(assignment, num_nodes: int,
                        num_parts: int | None = None) -> np.ndarray:
    """Check that ``assignment`` maps every node to exactly one partition.

    Returns the assignment as an ``int64`` array. Raises
    :class:`~repro.errors.ConfigError` when the assignment misses nodes
    (wrong length), labels a node with a negative or out-of-range
    partition, or is not integral — the silent-acceptance failure modes
    that used to surface later as wrong halo traffic.
    """
    assignment = np.asarray(assignment)
    if assignment.ndim != 1 or len(assignment) != num_nodes:
        raise ConfigError(
            f"assignment must cover every node exactly once: expected "
            f"{num_nodes} entries, got shape {assignment.shape}"
        )
    if not np.issubdtype(assignment.dtype, np.integer):
        raise ConfigError(
            f"assignment must be integral, got dtype {assignment.dtype}"
        )
    assignment = assignment.astype(np.int64, copy=False)
    if num_nodes:
        low = int(assignment.min())
        high = int(assignment.max())
        if low < 0:
            raise ConfigError(
                f"assignment leaves node(s) unassigned (partition {low})"
            )
        if num_parts is not None and high >= num_parts:
            raise ConfigError(
                f"assignment references partition {high} but only "
                f"{num_parts} partition(s) exist"
            )
    return assignment


@dataclass(frozen=True)
class PartitionStats:
    """Edge-cut / balance / halo accounting of one node→part assignment.

    ``edge_cut`` counts *directed adjacency entries* whose endpoints live
    in different partitions (an undirected edge stored both ways counts
    twice — consistent across partitioners, which is all comparisons
    need). ``halo_nodes[p]`` is the number of distinct remote nodes
    adjacent to partition ``p`` — the boundary set a mini-batch on ``p``
    may have to fetch. ``balance`` is ``max(sizes) / ideal`` (1.0 is a
    perfectly even split).
    """

    num_parts: int
    sizes: tuple
    edge_cut: int
    cut_fraction: float
    balance: float
    halo_nodes: tuple

    @property
    def max_size(self) -> int:
        return max(self.sizes) if self.sizes else 0


def partition_stats(graph, assignment,
                    num_parts: int | None = None) -> PartitionStats:
    """Compute :class:`PartitionStats` for ``assignment`` over ``graph``.

    Validates the assignment first (every node exactly once, partitions
    in range) and derives ``num_parts`` from the assignment when not
    given.
    """
    assignment = validate_assignment(assignment, graph.num_nodes,
                                     num_parts=num_parts)
    if num_parts is None:
        num_parts = int(assignment.max()) + 1 if graph.num_nodes else 1
    if num_parts < 1:
        raise ConfigError("num_parts must be >= 1")
    sizes = np.bincount(assignment, minlength=num_parts)
    ideal = graph.num_nodes / num_parts if num_parts else 0.0
    balance = float(sizes.max() / ideal) if ideal > 0 else 1.0

    degrees = graph.degrees
    src_part = np.repeat(assignment, degrees)
    dst_part = assignment[graph.indices]
    cut_mask = src_part != dst_part
    edge_cut = int(np.count_nonzero(cut_mask))
    total = int(graph.indices.shape[0])
    cut_fraction = edge_cut / total if total else 0.0

    # Distinct remote neighbors per partition: unique (part, remote node)
    # pairs over the cut entries.
    halo = np.zeros(num_parts, dtype=np.int64)
    if edge_cut:
        pairs = (src_part[cut_mask].astype(np.int64) * graph.num_nodes
                 + graph.indices[cut_mask])
        unique_pairs = np.unique(pairs)
        halo = np.bincount(unique_pairs // graph.num_nodes,
                           minlength=num_parts)
    return PartitionStats(
        num_parts=int(num_parts),
        sizes=tuple(int(s) for s in sizes),
        edge_cut=edge_cut,
        cut_fraction=float(cut_fraction),
        balance=balance,
        halo_nodes=tuple(int(h) for h in halo),
    )


def train_split(num_nodes: int, train_fraction: float, rng=None) -> np.ndarray:
    """Choose a random ``train_fraction`` of nodes as training seeds."""
    if not 0.0 < train_fraction <= 1.0:
        raise ConfigError("train_fraction must be in (0, 1]")
    rng = ensure_rng(rng)
    num_train = max(1, int(round(train_fraction * num_nodes)))
    perm = rng.permutation(num_nodes)
    return np.sort(perm[:num_train]).astype(np.int64)


class MinibatchPlan:
    """Splits training nodes into mini-batches, per epoch.

    ``locality`` in [0, 1] controls batch composition: 0 is a uniform
    shuffle; at higher values that fraction of each batch is drawn from a
    contiguous run of the (ID-sorted) training nodes. Real benchmark splits
    are not uniform — OGB-Products' training set is sales-rank-ordered and
    Reddit's is time-ordered — and the synthetic generators here lay
    communities out contiguously by node ID, so contiguous runs model the
    community-correlated batches such splits produce. This heterogeneity is
    what gives the Greedy Reorder strategy its headroom (the paper's
    Table 4 reports a 4-7% match-degree spread).
    """

    def __init__(self, train_ids: np.ndarray, batch_size: int,
                 drop_last: bool = False, locality: float = 0.0) -> None:
        train_ids = np.asarray(train_ids, dtype=np.int64)
        if batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if len(train_ids) == 0:
            raise ConfigError("train_ids must be non-empty")
        if not 0.0 <= locality <= 1.0:
            raise ConfigError("locality must be in [0, 1]")
        self.train_ids = train_ids
        self.batch_size = int(batch_size)
        self.drop_last = bool(drop_last)
        self.locality = float(locality)

    @property
    def num_batches(self) -> int:
        full, rem = divmod(len(self.train_ids), self.batch_size)
        if rem and not self.drop_last:
            return full + 1
        return max(1, full)

    def _slice_batches(self, ids: np.ndarray) -> list:
        out = []
        for start in range(0, len(ids), self.batch_size):
            batch = ids[start:start + self.batch_size]
            if len(batch) < self.batch_size and self.drop_last and out:
                break
            out.append(batch)
        return out

    def batches(self, rng=None) -> list:
        """Return this epoch's batches (a new shuffle per call)."""
        rng = ensure_rng(rng)
        if self.locality <= 0.0:
            return self._slice_batches(rng.permutation(self.train_ids))

        num_batches = self.num_batches
        local_per_batch = int(round(self.batch_size * self.locality))
        ids_sorted = np.sort(self.train_ids)
        # Contiguous chunk per batch: the head of each equal slice of the
        # sorted IDs becomes the batch's local part; the tails are pooled,
        # shuffled, and dealt out to fill the remaining slots.
        slices = np.array_split(ids_sorted, num_batches)
        local_parts = []
        pooled = []
        for piece in slices:
            take = min(local_per_batch, len(piece))
            local_parts.append(piece[:take])
            pooled.append(piece[take:])
        pool = rng.permutation(np.concatenate(pooled)) if pooled else (
            np.empty(0, dtype=np.int64)
        )
        order = rng.permutation(num_batches)
        out = []
        cursor = 0
        for rank, idx in enumerate(order):
            remaining_batches = num_batches - rank
            fill = (len(pool) - cursor) // remaining_batches
            batch = np.concatenate(
                [local_parts[idx], pool[cursor:cursor + fill]]
            )
            cursor += fill
            out.append(rng.permutation(batch))
        return [b for b in out if len(b)]
