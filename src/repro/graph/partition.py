"""Training-node splits and mini-batch planning.

Sampling-based training splits the training nodes into mini-batches and
samples one subgraph per batch (Fig. 2 of the paper). ``MinibatchPlan``
produces those batches deterministically per epoch; the Reorder strategy
later permutes *whole batches*, never their contents.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import ensure_rng


def train_split(num_nodes: int, train_fraction: float, rng=None) -> np.ndarray:
    """Choose a random ``train_fraction`` of nodes as training seeds."""
    if not 0.0 < train_fraction <= 1.0:
        raise ConfigError("train_fraction must be in (0, 1]")
    rng = ensure_rng(rng)
    num_train = max(1, int(round(train_fraction * num_nodes)))
    perm = rng.permutation(num_nodes)
    return np.sort(perm[:num_train]).astype(np.int64)


class MinibatchPlan:
    """Splits training nodes into mini-batches, per epoch.

    ``locality`` in [0, 1] controls batch composition: 0 is a uniform
    shuffle; at higher values that fraction of each batch is drawn from a
    contiguous run of the (ID-sorted) training nodes. Real benchmark splits
    are not uniform — OGB-Products' training set is sales-rank-ordered and
    Reddit's is time-ordered — and the synthetic generators here lay
    communities out contiguously by node ID, so contiguous runs model the
    community-correlated batches such splits produce. This heterogeneity is
    what gives the Greedy Reorder strategy its headroom (the paper's
    Table 4 reports a 4-7% match-degree spread).
    """

    def __init__(self, train_ids: np.ndarray, batch_size: int,
                 drop_last: bool = False, locality: float = 0.0) -> None:
        train_ids = np.asarray(train_ids, dtype=np.int64)
        if batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if len(train_ids) == 0:
            raise ConfigError("train_ids must be non-empty")
        if not 0.0 <= locality <= 1.0:
            raise ConfigError("locality must be in [0, 1]")
        self.train_ids = train_ids
        self.batch_size = int(batch_size)
        self.drop_last = bool(drop_last)
        self.locality = float(locality)

    @property
    def num_batches(self) -> int:
        full, rem = divmod(len(self.train_ids), self.batch_size)
        if rem and not self.drop_last:
            return full + 1
        return max(1, full)

    def _slice_batches(self, ids: np.ndarray) -> list:
        out = []
        for start in range(0, len(ids), self.batch_size):
            batch = ids[start:start + self.batch_size]
            if len(batch) < self.batch_size and self.drop_last and out:
                break
            out.append(batch)
        return out

    def batches(self, rng=None) -> list:
        """Return this epoch's batches (a new shuffle per call)."""
        rng = ensure_rng(rng)
        if self.locality <= 0.0:
            return self._slice_batches(rng.permutation(self.train_ids))

        num_batches = self.num_batches
        local_per_batch = int(round(self.batch_size * self.locality))
        ids_sorted = np.sort(self.train_ids)
        # Contiguous chunk per batch: the head of each equal slice of the
        # sorted IDs becomes the batch's local part; the tails are pooled,
        # shuffled, and dealt out to fill the remaining slots.
        slices = np.array_split(ids_sorted, num_batches)
        local_parts = []
        pooled = []
        for piece in slices:
            take = min(local_per_batch, len(piece))
            local_parts.append(piece[:take])
            pooled.append(piece[take:])
        pool = rng.permutation(np.concatenate(pooled)) if pooled else (
            np.empty(0, dtype=np.int64)
        )
        order = rng.permutation(num_batches)
        out = []
        cursor = 0
        for rank, idx in enumerate(order):
            remaining_batches = num_batches - rank
            fill = (len(pool) - cursor) // remaining_batches
            batch = np.concatenate(
                [local_parts[idx], pool[cursor:cursor + fill]]
            )
            cursor += fill
            out.append(rng.permutation(batch))
        return [b for b in out if len(b)]
