"""Scaled synthetic analogues of the paper's evaluation datasets (Table 6).

The real graphs are unavailable offline, so each dataset here pairs

* **paper-scale metadata** — the node/edge counts, feature widths and the
  leftover-GPU-memory measurements the paper reports (Tables 1 and 6), used
  by the analytic paper-scale estimators, with
* **a scaled synthetic instance** — a power-law community graph whose
  density, feature width, label structure and (crucially) the ratio of
  spare device memory to feature-table size match the original.

That last ratio is what decides whether a GNNLab-style cache works at all,
so it is preserved exactly: the simulated device gives a framework
``paper_left_bytes / paper_feature_bytes`` of cache headroom *relative to
the scaled feature table* (see :meth:`Dataset.cache_budget_bytes`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.features import FeatureStore, PlantedFeatureStore
from repro.graph.generators import community_graph
from repro.utils.rng import RngFactory

GIB = 1024**3
MIB = 1024**2


@dataclass(frozen=True)
class PaperScale:
    """The original dataset's statistics as reported in the paper."""

    num_nodes: int
    num_edges: int
    #: Remaining GPU memory when training a 3-layer GCN with DGL (Table 1);
    #: IGB-large is not in Table 1 — its value is an estimate consistent
    #: with the neighboring rows.
    left_memory_bytes: int


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one scaled synthetic dataset."""

    name: str
    num_nodes: int
    avg_degree: float
    feature_dim: int
    num_classes: int
    train_fraction: float
    paper: PaperScale
    intra_fraction: float = 0.8
    feature_noise: float = 1.0

    @property
    def scale(self) -> float:
        """Node-count ratio of the scaled instance to the original."""
        return self.num_nodes / self.paper.num_nodes


class Dataset:
    """A generated dataset: graph + features + labels + train split."""

    def __init__(self, spec: DatasetSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = int(seed)
        rngs = RngFactory(seed)
        graph, communities = community_graph(
            spec.num_nodes,
            spec.avg_degree,
            num_communities=spec.num_classes,
            intra_fraction=spec.intra_fraction,
            rng=rngs.child(f"graph:{spec.name}"),
        )
        self.graph: CSRGraph = graph
        self.labels = communities.astype(np.int64)
        self.features: FeatureStore = PlantedFeatureStore(
            self.labels,
            spec.feature_dim,
            noise=spec.feature_noise,
            seed=rngs.child_seed(f"features:{spec.name}"),
        )
        num_train = max(1, int(round(spec.train_fraction * spec.num_nodes)))
        perm = rngs.child(f"split:{spec.name}").permutation(spec.num_nodes)
        self.train_ids = np.sort(perm[:num_train]).astype(np.int64)
        # Remaining nodes split evenly into validation and test.
        rest = perm[num_train:]
        half = len(rest) // 2
        self.val_ids = np.sort(rest[:half]).astype(np.int64)
        self.test_ids = np.sort(rest[half:]).astype(np.int64)

    # -- convenience --------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def feature_dim(self) -> int:
        return self.features.dim

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    def feature_table_bytes(self) -> int:
        """Bytes of the full (scaled) feature table."""
        return self.features.total_bytes

    def paper_feature_table_bytes(self) -> int:
        """Bytes of the original, paper-scale feature table."""
        return self.spec.paper.num_nodes * self.features.bytes_per_node

    def left_memory_ratio(self) -> float:
        """Spare device memory as a fraction of the feature table, at paper
        scale — the quantity that governs cache efficacy."""
        return self.spec.paper.left_memory_bytes / self.paper_feature_table_bytes()

    def cache_budget_bytes(self) -> int:
        """Device bytes available for a feature cache in this reproduction.

        Preserves the paper-scale ratio of spare memory to feature-table
        size, capped at the full (scaled) table.
        """
        budget = self.left_memory_ratio() * self.feature_table_bytes()
        return int(min(budget, self.feature_table_bytes()))

    def with_feature_dim(self, dim: int) -> "Dataset":
        """A shallow variant of this dataset with ``dim``-wide features
        (same graph, labels and split) — the Fig. 14c sweep."""
        clone = object.__new__(Dataset)
        clone.__dict__.update(self.__dict__)
        from dataclasses import replace

        clone.spec = replace(self.spec, feature_dim=int(dim))
        clone.features = PlantedFeatureStore(
            self.labels, int(dim), noise=self.spec.feature_noise,
            seed=self.seed + 17,
        )
        return clone

    def materialize_features(self) -> None:
        """Swap the lazy feature store for a realized table (training runs
        gather features every iteration; this makes that cheap)."""
        self.features = self.features.materialize()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Dataset({self.name!r}, nodes={self.num_nodes}, "
                f"edges={self.graph.num_edges}, dim={self.feature_dim})")


#: Scaled recipes for the paper's five datasets. Short names follow the
#: paper's abbreviations (RD, PR, MAG, IGB, PA).
DATASETS: dict = {
    "reddit": DatasetSpec(
        name="reddit",
        num_nodes=24_000,
        avg_degree=90.0,
        feature_dim=602,
        num_classes=41,
        train_fraction=0.55,
        paper=PaperScale(232_965, 110_000_000, 13 * GIB),
    ),
    "products": DatasetSpec(
        name="products",
        num_nodes=60_000,
        avg_degree=40.0,
        feature_dim=200,
        num_classes=47,
        train_fraction=0.10,
        paper=PaperScale(2_440_000, 123_000_000, 11 * GIB),
    ),
    "mag": DatasetSpec(
        name="mag",
        num_nodes=160_000,
        avg_degree=25.0,
        feature_dim=100,
        num_classes=8,
        train_fraction=0.05,
        paper=PaperScale(10_100_000, 300_000_000, 520 * MIB),
    ),
    "igb": DatasetSpec(
        name="igb",
        num_nodes=200_000,
        avg_degree=12.0,
        feature_dim=1024,
        num_classes=19,
        train_fraction=0.026,
        paper=PaperScale(100_000_000, 1_200_000_000, 800 * MIB),
    ),
    "papers100m": DatasetSpec(
        name="papers100m",
        num_nodes=220_000,
        avg_degree=15.0,
        feature_dim=128,
        num_classes=172,
        train_fraction=0.03,
        paper=PaperScale(111_000_000, 1_610_000_000, 1 * GIB),
    ),
}

#: Paper abbreviations for table headers.
SHORT_NAMES = {
    "reddit": "RD",
    "products": "PR",
    "mag": "MAG",
    "igb": "IGB",
    "papers100m": "PA",
}


@lru_cache(maxsize=16)
def get_dataset(name: str, seed: int = 0) -> Dataset:
    """Build (and memoize) the named dataset.

    Raises ``KeyError`` listing the available names on a miss.
    """
    if name not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return Dataset(DATASETS[name], seed=seed)
