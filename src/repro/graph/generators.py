"""Synthetic graph generators.

Real large graphs (the paper's Table 6) are power-law and community
structured. These generators produce scaled analogues:

* :func:`chung_lu_graph` — expected-degree (Chung-Lu) random graph with a
  power-law weight sequence; preserves hub structure, which drives both the
  inter-subgraph overlap the Match strategy exploits (Table 4) and the
  irregular access pattern the Memory-Aware kernel targets (Table 2).
* :func:`community_graph` — Chung-Lu within blocks plus cross-block edges;
  the block assignment doubles as the node label, giving the homophily that
  makes the convergence experiment (Fig. 16) actually learn.
* :func:`rmat_graph` — the classic recursive-matrix generator.
* :func:`erdos_renyi_graph` — uniform random baseline, used in tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.utils.rng import ensure_rng


def power_law_degrees(
    num_nodes: int,
    avg_degree: float,
    exponent: float = 2.2,
    max_degree: int | None = None,
    rng=None,
) -> np.ndarray:
    """Sample a degree sequence ~ Pareto(exponent) rescaled to ``avg_degree``.

    ``max_degree`` caps the hubs (defaults to ``sqrt(n) * avg_degree`` which
    keeps the Chung-Lu edge-probability approximation valid).
    """
    if num_nodes <= 0:
        raise GraphError("num_nodes must be positive")
    if avg_degree <= 0:
        raise GraphError("avg_degree must be positive")
    rng = ensure_rng(rng)
    raw = (1.0 - rng.random(num_nodes)) ** (-1.0 / (exponent - 1.0))
    if max_degree is None:
        max_degree = max(4, int(np.sqrt(num_nodes) * avg_degree**0.5))
    raw = np.minimum(raw, max_degree / avg_degree)
    weights = raw * (avg_degree / raw.mean())
    return weights


def chung_lu_graph(
    num_nodes: int,
    avg_degree: float,
    exponent: float = 2.2,
    rng=None,
) -> CSRGraph:
    """Expected-degree random graph with a power-law degree sequence.

    Sampling: each node ``i`` emits ``Poisson(w_i / 2)`` half-edges whose
    endpoints are drawn proportionally to weight; edges are symmetrized and
    deduplicated. The result is undirected, self-loop-free, with average
    degree close to ``avg_degree``.
    """
    rng = ensure_rng(rng)
    weights = power_law_degrees(num_nodes, avg_degree, exponent, rng=rng)
    probs = weights / weights.sum()
    emits = rng.poisson(weights / 2.0)
    src = np.repeat(np.arange(num_nodes, dtype=np.int64), emits)
    dst = rng.choice(num_nodes, size=len(src), p=probs).astype(np.int64)
    return CSRGraph.from_edges(src, dst, num_nodes, symmetrize=True)


def community_graph(
    num_nodes: int,
    avg_degree: float,
    num_communities: int,
    intra_fraction: float = 0.8,
    exponent: float = 2.2,
    rng=None,
) -> tuple:
    """Power-law graph with planted communities.

    Returns ``(graph, communities)`` where ``communities[i]`` is the block
    of node ``i``. A fraction ``intra_fraction`` of each node's edges lands
    inside its own block, the rest anywhere — homophily that GNN training
    can exploit.
    """
    if not 0.0 <= intra_fraction <= 1.0:
        raise GraphError("intra_fraction must be in [0, 1]")
    if num_communities <= 0:
        raise GraphError("num_communities must be positive")
    rng = ensure_rng(rng)
    communities = rng.integers(0, num_communities, size=num_nodes)
    order = np.argsort(communities, kind="stable")
    communities = communities[order]  # contiguous blocks simplify sampling

    weights = power_law_degrees(num_nodes, avg_degree, exponent, rng=rng)
    emits = rng.poisson(weights / 2.0)
    src = np.repeat(np.arange(num_nodes, dtype=np.int64), emits)
    intra = rng.random(len(src)) < intra_fraction

    # Global (cross-community) endpoints: weight-proportional anywhere.
    probs = weights / weights.sum()
    dst = rng.choice(num_nodes, size=len(src), p=probs).astype(np.int64)

    # Intra endpoints: weight-proportional within the source's block.
    block_start = np.searchsorted(communities, np.arange(num_communities))
    block_end = np.searchsorted(communities, np.arange(num_communities),
                                side="right")
    cum = np.concatenate([[0.0], np.cumsum(weights)])
    intra_idx = np.flatnonzero(intra)
    if len(intra_idx):
        blocks = communities[src[intra_idx]]
        lo_w = cum[block_start[blocks]]
        hi_w = cum[block_end[blocks]]
        # Inverse-CDF sample within each block's weight range.
        target = lo_w + rng.random(len(intra_idx)) * (hi_w - lo_w)
        dst[intra_idx] = np.searchsorted(cum, target, side="right") - 1
    graph = CSRGraph.from_edges(src, dst, num_nodes, symmetrize=True)
    return graph, communities


def rmat_graph(
    num_nodes: int,
    avg_degree: float,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng=None,
) -> CSRGraph:
    """Recursive-matrix (R-MAT / Graph500-style) generator.

    ``num_nodes`` is rounded up to a power of two internally; surplus IDs
    are folded back into range, which slightly flattens the tail but keeps
    the skew.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise GraphError("a + b + c must be <= 1")
    rng = ensure_rng(rng)
    scale = max(1, int(np.ceil(np.log2(max(2, num_nodes)))))
    num_edges = int(num_nodes * avg_degree / 2)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for _ in range(scale):
        r = rng.random(num_edges)
        src <<= 1
        dst <<= 1
        quad_b = (r >= a) & (r < a + b)
        quad_c = (r >= a + b) & (r < a + b + c)
        quad_d = r >= a + b + c
        dst += (quad_b | quad_d).astype(np.int64)
        src += (quad_c | quad_d).astype(np.int64)
    src %= num_nodes
    dst %= num_nodes
    return CSRGraph.from_edges(src, dst, num_nodes, symmetrize=True)


def erdos_renyi_graph(num_nodes: int, avg_degree: float, rng=None) -> CSRGraph:
    """Uniform random graph with the given expected average degree."""
    rng = ensure_rng(rng)
    num_edges = int(num_nodes * avg_degree / 2)
    src = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    return CSRGraph.from_edges(src, dst, num_nodes, symmetrize=True)
