"""Immutable CSR graph storage.

Row ``u`` of the CSR holds ``N(u)`` — the neighbors node ``u`` aggregates
from (Eq. 1 of the paper). Graph generators symmetrize, so for synthetic
datasets the structure is undirected; the sampler only ever reads rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError


@dataclass(frozen=True)
class CSRGraph:
    """Compressed-sparse-row adjacency.

    Attributes
    ----------
    indptr:
        ``int64[num_nodes + 1]`` row offsets into ``indices``.
    indices:
        ``int64[num_edges]`` neighbor IDs; row ``u`` is
        ``indices[indptr[u]:indptr[u+1]]``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    _degrees: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        self._validate()
        object.__setattr__(self, "_degrees", np.diff(indptr))
        indptr.setflags(write=False)
        indices.setflags(write=False)

    def _validate(self) -> None:
        if self.indptr.ndim != 1 or len(self.indptr) < 1:
            raise GraphError("indptr must be a 1-D array of length >= 1")
        if self.indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if self.indptr[-1] != len(self.indices):
            raise GraphError("indptr[-1] must equal len(indices)")
        n = len(self.indptr) - 1
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= n
        ):
            raise GraphError("indices contain out-of-range node IDs")

    # -- basic properties ---------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree (= |N(u)|) of every node."""
        return self._degrees

    @property
    def avg_degree(self) -> float:
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    def neighbors(self, node: int) -> np.ndarray:
        """The neighbor row of one node (a read-only view)."""
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} out of range [0, {self.num_nodes})")
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def structure_bytes(self) -> int:
        """Bytes occupied by the topology (what moves when a subgraph's
        structure is transferred to the GPU)."""
        return self.indptr.nbytes + self.indices.nbytes

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int,
        symmetrize: bool = False,
        dedup: bool = True,
        drop_self_loops: bool = True,
    ) -> "CSRGraph":
        """Build a CSR graph from an edge list ``src[i] -> dst[i]``.

        ``symmetrize`` adds the reversed edges; ``dedup`` removes parallel
        edges. Rows come out sorted by neighbor ID.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise GraphError("src and dst must have the same shape")
        if len(src) and (
            min(src.min(), dst.min()) < 0
            or max(src.max(), dst.max()) >= num_nodes
        ):
            raise GraphError("edge endpoints out of range")
        if symmetrize:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if drop_self_loops:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        if dedup and len(src):
            key = src * np.int64(num_nodes) + dst
            key = np.unique(key)
            src, dst = key // num_nodes, key % num_nodes
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr=indptr, indices=dst)

    def to_edges(self) -> tuple:
        """Return the (src, dst) edge list of this graph."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64),
                        self._degrees)
        return src, self.indices.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CSRGraph(num_nodes={self.num_nodes}, "
                f"num_edges={self.num_edges}, "
                f"avg_degree={self.avg_degree:.1f})")
