"""Graph and subgraph statistics, including paper-scale analytic estimators.

``expected_unique`` models neighbor explosion: drawing ``k`` times from a
pool of ``n`` candidates yields ``n * (1 - (1 - 1/n)^k)`` distinct values in
expectation. Chaining it per hop estimates sampled-subgraph sizes at *paper
scale* (hundreds of millions of nodes) without materializing those graphs —
used by the Table 1/9 memory accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph


def expected_unique(pool_size: float, num_draws: float) -> float:
    """Expected distinct values when drawing ``num_draws`` uniformly (with
    replacement) from ``pool_size`` candidates."""
    if pool_size <= 0 or num_draws <= 0:
        return 0.0
    return pool_size * (1.0 - np.exp(-num_draws / pool_size))


@dataclass(frozen=True)
class SubgraphSizeEstimate:
    """Per-hop estimated frontier sizes of a sampled subgraph."""

    #: frontier[0] is the seed batch; frontier[k] the unique nodes reached
    #: at hop k (not cumulative).
    frontiers: tuple
    #: Estimated edges sampled at each hop.
    edges_per_hop: tuple

    @property
    def num_input_nodes(self) -> float:
        """Nodes whose features must be loaded (deepest frontier union)."""
        return float(sum(self.frontiers))

    @property
    def num_edges(self) -> float:
        return float(sum(self.edges_per_hop))


def estimate_subgraph_size(
    num_nodes: float,
    avg_degree: float,
    batch_size: int,
    fanouts,
    hub_concentration: float = 0.35,
) -> SubgraphSizeEstimate:
    """Analytic sampled-subgraph size for a uniform k-hop sampler.

    ``hub_concentration`` shrinks the effective candidate pool: on power-law
    graphs neighbor draws concentrate on hubs, so distinct-neighbor counts
    saturate earlier than the uniform model predicts. 0.35 matches the
    degree-weighted collision rate of the synthetic generators here and is
    consistent with the overlap the paper reports in Table 4.
    """
    pool = max(1.0, num_nodes * hub_concentration)
    frontier = float(batch_size)
    frontiers = [frontier]
    edges = []
    for fanout in fanouts:
        draws = frontier * min(fanout, avg_degree)
        edges.append(draws)
        frontier = expected_unique(pool, draws)
        frontiers.append(frontier)
    return SubgraphSizeEstimate(frontiers=tuple(frontiers),
                                edges_per_hop=tuple(edges))


@dataclass(frozen=True)
class DegreeStats:
    """Degree-distribution summary of a graph."""

    num_nodes: int
    num_edges: int
    avg_degree: float
    max_degree: int
    p90_degree: float
    gini: float

    @classmethod
    def from_graph(cls, graph: CSRGraph) -> "DegreeStats":
        deg = graph.degrees
        if len(deg) == 0:
            return cls(0, 0, 0.0, 0, 0.0, 0.0)
        sorted_deg = np.sort(deg).astype(np.float64)
        n = len(sorted_deg)
        total = sorted_deg.sum()
        if total == 0:
            gini = 0.0
        else:
            ranks = np.arange(1, n + 1)
            gini = float((2 * (ranks * sorted_deg).sum()) / (n * total)
                         - (n + 1) / n)
        return cls(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            avg_degree=graph.avg_degree,
            max_degree=int(deg.max()),
            p90_degree=float(np.percentile(deg, 90)),
            gini=gini,
        )
