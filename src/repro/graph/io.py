"""Dataset/graph serialization.

Generating the larger synthetic datasets takes several seconds; saving
them to a single ``.npz`` lets benchmark reruns and external tools skip
regeneration. Features are stored materialized (lazy stores are realized
on save).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.datasets import Dataset, DatasetSpec, PaperScale
from repro.graph.features import MaterializedFeatureStore

_FORMAT_VERSION = 1


def save_graph(path, graph: CSRGraph) -> None:
    """Write one CSR graph to ``path`` (.npz)."""
    np.savez_compressed(path, indptr=graph.indptr, indices=graph.indices)


def load_graph(path) -> CSRGraph:
    """Read a CSR graph written by :func:`save_graph`."""
    with np.load(path) as data:
        return CSRGraph(indptr=data["indptr"], indices=data["indices"])


def save_dataset(path, dataset: Dataset) -> None:
    """Write a full dataset (graph, features, labels, splits, spec)."""
    spec = dataset.spec
    meta = {
        "version": _FORMAT_VERSION,
        "seed": dataset.seed,
        "spec": {
            "name": spec.name,
            "num_nodes": spec.num_nodes,
            "avg_degree": spec.avg_degree,
            "feature_dim": spec.feature_dim,
            "num_classes": spec.num_classes,
            "train_fraction": spec.train_fraction,
            "intra_fraction": spec.intra_fraction,
            "feature_noise": spec.feature_noise,
            "paper": {
                "num_nodes": spec.paper.num_nodes,
                "num_edges": spec.paper.num_edges,
                "left_memory_bytes": spec.paper.left_memory_bytes,
            },
        },
    }
    features = dataset.features
    if not isinstance(features, MaterializedFeatureStore):
        features = features.materialize()
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        indptr=dataset.graph.indptr,
        indices=dataset.graph.indices,
        labels=dataset.labels,
        train_ids=dataset.train_ids,
        val_ids=dataset.val_ids,
        test_ids=dataset.test_ids,
        features=features.table,
    )


def load_dataset(path) -> Dataset:
    """Read a dataset written by :func:`save_dataset` (no regeneration)."""
    path = pathlib.Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format version {meta.get('version')}"
            )
        spec_meta = meta["spec"]
        spec = DatasetSpec(
            name=spec_meta["name"],
            num_nodes=spec_meta["num_nodes"],
            avg_degree=spec_meta["avg_degree"],
            feature_dim=spec_meta["feature_dim"],
            num_classes=spec_meta["num_classes"],
            train_fraction=spec_meta["train_fraction"],
            intra_fraction=spec_meta["intra_fraction"],
            feature_noise=spec_meta["feature_noise"],
            paper=PaperScale(**spec_meta["paper"]),
        )
        dataset = object.__new__(Dataset)
        dataset.spec = spec
        dataset.seed = int(meta["seed"])
        dataset.graph = CSRGraph(indptr=data["indptr"],
                                 indices=data["indices"])
        dataset.labels = data["labels"].astype(np.int64)
        dataset.train_ids = data["train_ids"].astype(np.int64)
        dataset.val_ids = data["val_ids"].astype(np.int64)
        dataset.test_ids = data["test_ids"].astype(np.int64)
        dataset.features = MaterializedFeatureStore(data["features"])
        return dataset
