"""DGL-style framework: GPU sampling with the synchronizing three-kernel
ID map, naive feature loading and naive aggregation kernels.

This is the paper's primary baseline ('Naive' in Fig. 3) and the base the
ablation variants build on. :class:`OutOfCoreDGLFramework` is the same
strategy bundle with the feature table on SSD — the DGL+UVA/GIDS-style
baseline for graphs whose features exceed host DRAM.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.frameworks.base import Framework
from repro.graph.datasets import Dataset
from repro.sampling import BaselineIdMap
from repro.sampling.base import Sampler
from repro.transfer.loader import FeatureLoader
from repro.transfer.storage_loader import (
    build_storage_loader,
    page_cache_budget_bytes,
)


class DGLFramework(Framework):
    """Deep Graph Library strategy bundle."""

    name = "dgl"
    sample_device = "gpu"
    compute_mode = "naive"

    def make_idmap(self):
        return BaselineIdMap()


class OutOfCoreDGLFramework(DGLFramework):
    """DGL with an SSD-resident feature table.

    Every input node's rows are requested page-granularly through the
    storage tier (no Match, no reorder); reads are serial with the rest
    of the iteration, as in the in-core naive baseline.
    """

    name = "dgl-ooc"

    def make_loader(self, dataset: Dataset, config: RunConfig,
                    sampler: Sampler, rng) -> FeatureLoader:
        loader = build_storage_loader(dataset, config, use_match=False)
        self._last_loader = loader
        return loader

    def _extra_device_bytes(self, dataset: Dataset,
                            config: RunConfig) -> int:
        # GPU-initiated direct access keeps the page cache in device
        # memory; the bounce-buffer path keeps it in host DRAM.
        if config.storage_access == "direct":
            return page_cache_budget_bytes(dataset, config)
        return 0
