"""DGL-style framework: GPU sampling with the synchronizing three-kernel
ID map, naive feature loading and naive aggregation kernels.

This is the paper's primary baseline ('Naive' in Fig. 3) and the base the
ablation variants build on.
"""

from __future__ import annotations

from repro.frameworks.base import Framework
from repro.sampling import BaselineIdMap


class DGLFramework(Framework):
    """Deep Graph Library strategy bundle."""

    name = "dgl"
    sample_device = "gpu"
    compute_mode = "naive"

    def make_idmap(self):
        return BaselineIdMap()
