"""PaGraph-style framework: degree-ranked static feature cache.

PaGraph [Lin et al., SoCC'20] pins the highest-degree nodes' features on
the GPU. The paper cites it as the other cache-based IO optimizer and
notes its hit rate collapses on large graphs ("less than 20% on MAG") —
exactly the regime Match-Reorder targets. Sampling and compute follow the
DGL baseline.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.frameworks.base import Framework
from repro.frameworks.gnnlab import _cache_budget
from repro.graph.datasets import Dataset
from repro.sampling import BaselineIdMap
from repro.sampling.base import Sampler
from repro.transfer.cache import DegreeCachePolicy
from repro.transfer.loader import CachedLoader, FeatureLoader


class PaGraphFramework(Framework):
    """PaGraph strategy bundle (degree cache, no pipelining)."""

    name = "pagraph"
    sample_device = "gpu"
    compute_mode = "naive"

    def make_idmap(self):
        return BaselineIdMap()

    def make_loader(self, dataset: Dataset, config: RunConfig,
                    sampler: Sampler, rng) -> FeatureLoader:
        cache = DegreeCachePolicy.build(
            dataset.graph, dataset.features, _cache_budget(dataset, config)
        )
        self._last_cache = cache
        return CachedLoader(dataset.features, cache)

    def _extra_device_bytes(self, dataset: Dataset,
                            config: RunConfig) -> int:
        return _cache_budget(dataset, config)
