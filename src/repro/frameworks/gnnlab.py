"""GNNLab-style framework: factored sample/train GPUs + static cache.

GNNLab dedicates GPU(s) to sampling (1 when running on <= 4 GPUs, 2 above
— the paper's setting for optimal GNNLab performance) and pipelines batch
production against training. Feature traffic is reduced by a static,
presample-ranked device cache sized by the memory left over after the
training workspace — the quantity Table 1 shows collapsing on large
graphs, which is exactly where the cache stops helping.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.frameworks.base import Framework, pipeline_epoch_time
from repro.gpu.cluster import allreduce_time
from repro.graph.datasets import Dataset
from repro.sampling import BaselineIdMap
from repro.sampling.base import Sampler
from repro.transfer.cache import PresampleCachePolicy
from repro.transfer.loader import CachedLoader, FeatureLoader


def _cache_budget(dataset: Dataset, config: RunConfig) -> int:
    if config.cache_ratio_override is not None:
        ratio = max(0.0, float(config.cache_ratio_override))
        return int(min(ratio, 1.0) * dataset.feature_table_bytes())
    return dataset.cache_budget_bytes()


class GNNLabFramework(Framework):
    """GNNLab strategy bundle (factored GPUs + presample cache)."""

    name = "gnnlab"
    sample_device = "gpu"
    compute_mode = "naive"
    pipelined_sampling = True

    def make_idmap(self):
        return BaselineIdMap()

    def num_sampler_gpus(self, config: RunConfig) -> int:
        if config.num_gpus < 2:
            raise ValueError("GNNLab requires at least 2 GPUs (one samples)")
        return 1 if config.num_gpus <= 4 else 2

    def make_loader(self, dataset: Dataset, config: RunConfig,
                    sampler: Sampler, rng) -> FeatureLoader:
        budget = _cache_budget(dataset, config)
        cache = PresampleCachePolicy.build(
            sampler,
            dataset.train_ids,
            dataset.features,
            budget,
            batch_size=min(config.batch_size, len(dataset.train_ids)),
            rng=rng,
        )
        self._last_cache = cache
        return CachedLoader(dataset.features, cache)

    def _extra_device_bytes(self, dataset: Dataset,
                            config: RunConfig) -> int:
        return _cache_budget(dataset, config)

    def _epoch_time(self, per_trainer_iters, param_bytes, trainers,
                    config) -> float:
        """Producer/consumer pipeline: sampler GPU(s) produce rounds, the
        trainer GPUs consume them in lockstep."""
        samplers = self.num_sampler_gpus(config)
        rounds = max(len(iters) for iters in per_trainer_iters)
        sync = (allreduce_time(param_bytes, trainers, config.cost)
                if trainers > 1 else 0.0)
        produce, consume = [], []
        for r in range(rounds):
            sample_sum = 0.0
            rest_max = 0.0
            for iters in per_trainer_iters:
                if r < len(iters):
                    sample_t, io_t, comp_t = iters[r]
                    sample_sum += sample_t
                    rest_max = max(rest_max, io_t + comp_t)
            produce.append(sample_sum / samplers)
            consume.append(rest_max + sync)
        return pipeline_epoch_time(produce, consume)
