"""GNNLab-style framework: factored sample/train GPUs + static cache.

GNNLab dedicates GPU(s) to sampling (1 when running on <= 4 GPUs, 2 above
— the paper's setting for optimal GNNLab performance) and pipelines batch
production against training. Feature traffic is reduced by a static,
presample-ranked device cache sized by the memory left over after the
training workspace — the quantity Table 1 shows collapsing on large
graphs, which is exactly where the cache stops helping.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.frameworks.base import Framework
from repro.graph.datasets import Dataset
from repro.sampling import BaselineIdMap
from repro.sampling.base import Sampler
from repro.transfer.cache import PresampleCachePolicy
from repro.transfer.loader import CachedLoader, FeatureLoader


def _cache_budget(dataset: Dataset, config: RunConfig) -> int:
    if config.cache_ratio_override is not None:
        ratio = max(0.0, float(config.cache_ratio_override))
        return int(min(ratio, 1.0) * dataset.feature_table_bytes())
    return dataset.cache_budget_bytes()


class GNNLabFramework(Framework):
    """GNNLab strategy bundle (factored GPUs + presample cache)."""

    name = "gnnlab"
    sample_device = "gpu"
    compute_mode = "naive"
    pipelined_sampling = True

    def make_idmap(self):
        return BaselineIdMap()

    def num_sampler_gpus(self, config: RunConfig) -> int:
        if config.num_gpus < 2:
            raise ValueError("GNNLab requires at least 2 GPUs (one samples)")
        return 1 if config.num_gpus <= 4 else 2

    def make_loader(self, dataset: Dataset, config: RunConfig,
                    sampler: Sampler, rng) -> FeatureLoader:
        budget = _cache_budget(dataset, config)
        cache = PresampleCachePolicy.build(
            sampler,
            dataset.train_ids,
            dataset.features,
            budget,
            batch_size=min(config.batch_size, len(dataset.train_ids)),
            rng=rng,
        )
        self._last_cache = cache
        return CachedLoader(dataset.features, cache)

    def _extra_device_bytes(self, dataset: Dataset,
                            config: RunConfig) -> int:
        return _cache_budget(dataset, config)

    def _pipeline_stage_times(self, per_trainer_iters, config,
                              network=None) -> tuple:
        """GNNLab's sample stage is its dedicated sampler pool: a round's
        sample time is the *sum* across trainer lanes divided by the
        sampler GPUs (every simulated node factors its own pool on
        cluster runs), not the per-lane max the base hook assumes."""
        samples, ios, nets, computes = super()._pipeline_stage_times(
            per_trainer_iters, config, network=network,
        )
        samplers = self.num_sampler_gpus(config)
        if network is not None:
            samplers *= network.num_nodes
        for r in range(len(samples)):
            sample_sum = sum(iters[r][0] for iters in per_trainer_iters
                             if r < len(iters))
            samples[r] = sample_sum / samplers
        return samples, ios, nets, computes

    def _epoch_timeline(self, per_trainer_iters, param_bytes, trainers,
                        config, network=None) -> tuple:
        """Producer/consumer pipeline: sampler GPU(s) produce rounds, the
        trainer GPUs consume them in lockstep.

        The layout replays the same recurrence :func:`pipeline_epoch_time`
        computes — round ``r``'s consumption begins at
        ``max(produced_r, consumer_free)`` — so the trainer lanes' final
        spans end exactly at the pipelined epoch time instead of the
        serial sum the old trace showed. Cluster runs scale the sampler
        pool (every simulated node factors its own sampler GPUs) and add
        the halo exchange to each consumer lane plus the inter-node
        gradient hop to the round barrier.
        """
        samplers = self.num_sampler_gpus(config)
        if network is not None:
            samplers *= network.num_nodes
        rounds = max(len(iters) for iters in per_trainer_iters)
        sync, net_sync = self._sync_times(param_bytes, trainers, config,
                                          network=network)
        spans: list = []
        producer_free = 0.0
        consumer_free = 0.0
        for r in range(rounds):
            sample_sum = 0.0
            rest_max = 0.0
            for lane, iters in enumerate(per_trainer_iters):
                if r < len(iters):
                    sample_t, io_t, comp_t = iters[r]
                    net_t = (network.lane_time(lane, r)
                             if network is not None else 0.0)
                    sample_sum += sample_t
                    rest_max = max(rest_max, io_t + net_t + comp_t)
            produce = sample_sum / samplers
            if produce > 0:
                spans.append({
                    "lane": "sampler", "name": f"sample[{r}]",
                    "cat": "sample", "start": producer_free,
                    "dur": produce, "batch": r,
                })
            produced_at = producer_free + produce
            producer_free = produced_at
            begin = max(produced_at, consumer_free)
            for lane, iters in enumerate(per_trainer_iters):
                if r >= len(iters):
                    continue
                _, io_t, comp_t = iters[r]
                net_t = (network.lane_time(lane, r)
                         if network is not None else 0.0)
                cursor = begin
                for phase, duration in (("memory_io", io_t),
                                        ("network", net_t),
                                        ("compute", comp_t)):
                    if duration > 0:
                        spans.append({
                            "lane": f"gpu{lane}", "name": f"{phase}[{r}]",
                            "cat": phase, "start": cursor, "dur": duration,
                            "batch": r,
                        })
                        cursor += duration
            if sync > 0:
                for lane in range(len(per_trainer_iters)):
                    spans.append({
                        "lane": f"gpu{lane}", "name": f"allreduce[{r}]",
                        "cat": "allreduce", "start": begin + rest_max,
                        "dur": sync, "batch": r,
                    })
            if net_sync > 0:
                for lane in range(len(per_trainer_iters)):
                    spans.append({
                        "lane": f"gpu{lane}",
                        "name": f"allreduce_net[{r}]",
                        "cat": "network", "start": begin + rest_max + sync,
                        "dur": net_sync, "batch": r,
                    })
            consumer_free = begin + rest_max + sync + net_sync
        return consumer_free, spans
