"""The framework registry: the one place names map to strategy bundles.

Every comparable system (the paper's Table 5 lineup plus the out-of-core
variants) registers a constructor under a lowercase name; everything
else — the experiment runner, the serving simulator, the CLIs, the
public :mod:`repro.api` facade — resolves names through
:func:`create` / :func:`available_frameworks` instead of reaching into
module-level dicts. Third-party frameworks join the comparison with
:func:`register` (usable as a decorator).
"""

from __future__ import annotations

import warnings

#: name -> Framework subclass. Exposed as ``repro.frameworks.FRAMEWORKS``
#: for backward compatibility; treat it as read-only and use
#: :func:`register` to add entries.
FRAMEWORKS: dict = {}

_DEPRECATION_WARNED: set = set()


def register(name: str, cls: type | None = None):
    """Register a framework class under ``name``.

    Usable directly (``register("mine", MyFramework)``) or as a class
    decorator (``@register("mine")``). Re-registering a name replaces the
    previous entry (latest wins), which keeps test doubles simple.
    """
    if not isinstance(name, str) or not name:
        raise ValueError("framework name must be a non-empty string")

    def _register(cls: type) -> type:
        FRAMEWORKS[name] = cls
        return cls

    if cls is None:
        return _register
    return _register(cls)


def unregister(name: str) -> None:
    """Remove a registered framework (tests cleaning up after themselves)."""
    FRAMEWORKS.pop(name, None)


def available_frameworks() -> tuple:
    """Registered framework names, sorted."""
    return tuple(sorted(FRAMEWORKS))


def create(name: str, *, spec=None, **kwargs):
    """Instantiate the framework registered under ``name``.

    ``spec`` (a :class:`repro.gpu.spec.GPUSpec`) selects the simulated
    device; remaining keyword arguments pass through to the framework
    constructor.
    """
    try:
        cls = FRAMEWORKS[name]
    except KeyError:
        raise KeyError(
            f"unknown framework {name!r}; available: "
            f"{list(available_frameworks())}"
        ) from None
    if spec is not None:
        kwargs["spec"] = spec
    return cls(**kwargs)


def resolve(framework, *, spec=None):
    """Coerce a name, class, or instance into a framework instance."""
    if isinstance(framework, str):
        return create(framework, spec=spec)
    if isinstance(framework, type):
        return framework(**({"spec": spec} if spec is not None else {}))
    return framework


def warn_deprecated(old: str, new: str) -> None:
    """Emit one :class:`DeprecationWarning` per process per entry point.

    Shared by every compatibility shim in the package (the
    ``api.run(spec=/cluster=)`` and ``run_epoch(jobs=/cluster=)``
    keyword shims follow the precedent the removed ``get_framework``
    alias set): the first use of a deprecated entry point warns, later
    uses stay silent so sweeps don't flood the log.
    """
    if old in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(old)
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )
