"""FastGL and its ablation variants.

The full FastGL (paper Fig. 5) combines:

* **Fused-Map** sampling (synchronization-free ID map),
* **Match-Reorder** memory IO (reuse resident rows; greedy-reorder each
  window of sampled batches; prefetch the next batch's topology under
  compute; use a presample cache when device memory is left over — the
  paper's Section 5),
* **Memory-Aware** computation (shared-memory staged aggregation).

:func:`fastgl_variant` builds the intermediate stacks of the paper's
ablation (Fig. 3 and Fig. 15): ``Naive+MR``, ``Naive+MR+MA``, etc., all on
the DGL baseline.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.frameworks.base import Framework
from repro.frameworks.gnnlab import _cache_budget
from repro.graph.datasets import Dataset
from repro.sampling import BaselineIdMap, FusedIdMap
from repro.sampling.base import Sampler
from repro.storage.scheduler import storage_pipeline_makespan
from repro.transfer.cache import PresampleCachePolicy
from repro.transfer.loader import FeatureLoader, MatchLoader, NaiveLoader
from repro.transfer.storage_loader import (
    build_storage_loader,
    page_cache_budget_bytes,
)


class FastGLFramework(Framework):
    """The full FastGL strategy bundle."""

    name = "fastgl"
    sample_device = "gpu"
    compute_mode = "memory_aware"
    prefetch_topology = True
    use_reorder = True
    #: The fused Memory-Aware kernel accumulates in shared memory and never
    #: materializes per-edge messages.
    materialize_edge_messages = False
    #: Match is always on for FastGL; ablations toggle it off.
    use_match = True
    #: Use leftover memory as a feature cache (paper Section 5).
    use_cache = True

    def make_idmap(self):
        return FusedIdMap()

    def make_loader(self, dataset: Dataset, config: RunConfig,
                    sampler: Sampler, rng) -> FeatureLoader:
        cache = None
        if self.use_cache:
            budget = _cache_budget(dataset, config)
            if budget > 0:
                cache = PresampleCachePolicy.build(
                    sampler,
                    dataset.train_ids,
                    dataset.features,
                    budget,
                    batch_size=min(config.batch_size,
                                   len(dataset.train_ids)),
                    rng=rng,
                )
        if not self.use_match:
            return NaiveLoader(dataset.features)
        return MatchLoader(dataset.features, cache=cache)

    def _extra_device_bytes(self, dataset: Dataset,
                            config: RunConfig) -> int:
        return _cache_budget(dataset, config) if self.use_cache else 0


class OutOfCoreFastGLFramework(FastGLFramework):
    """FastGL with an SSD-resident feature table.

    Match-Reorder now operates *in front of* the storage tier: rows
    resident from the previous batch never become page requests, so the
    overlap that used to save PCIe bytes saves SSD reads too. The
    leftover device memory hosts the page cache (direct-access mode)
    instead of the in-core row cache, and the IO scheduler overlaps
    storage reads with sampling and compute through the prefetch queue.
    """

    name = "fastgl-ooc"
    #: The in-core presample row cache has no host table to shadow; spare
    #: memory is spent on the page cache instead.
    use_cache = False

    def make_loader(self, dataset: Dataset, config: RunConfig,
                    sampler: Sampler, rng) -> FeatureLoader:
        loader = build_storage_loader(dataset, config,
                                      use_match=self.use_match)
        self._last_loader = loader
        return loader

    def _extra_device_bytes(self, dataset: Dataset,
                            config: RunConfig) -> int:
        if config.storage_access == "direct":
            return page_cache_budget_bytes(dataset, config)
        return 0

    def _epoch_timeline(self, per_trainer_iters, param_bytes, trainers,
                        config, network=None) -> tuple:
        """Sample -> storage-read -> train pipeline per lockstep round,
        bounded by the prefetch queue depth.

        The event simulation records every executed stage interval, so
        the exported timeline shows the actual overlap (one lane per
        pipeline stage) and its last span ends at the pipelined epoch
        time. Cluster runs extend the train stage with the round's halo
        exchange (features must land before the forward pass) and the
        inter-node gradient hop; both render as ``network`` spans carved
        out of the stage interval, so reconciliation is untouched.
        """
        rounds = max(len(iters) for iters in per_trainer_iters)
        sync, net_sync = self._sync_times(param_bytes, trainers, config,
                                          network=network)
        samples, reads, trains, halos = [], [], [], []
        for r in range(rounds):
            sample_max = read_max = train_max = net_max = 0.0
            for lane, iters in enumerate(per_trainer_iters):
                if r < len(iters):
                    sample_t, io_t, comp_t = iters[r]
                    sample_max = max(sample_max, sample_t)
                    read_max = max(read_max, io_t)
                    train_max = max(train_max, comp_t)
                    if network is not None:
                        net_max = max(net_max, network.lane_time(lane, r))
            samples.append(sample_max)
            reads.append(read_max)
            trains.append(net_max + train_max + sync + net_sync)
            halos.append(net_max)
        records: list = []
        makespan = storage_pipeline_makespan(
            samples, reads, trains,
            queue_depth=max(1, config.storage_prefetch_depth),
            record=records.append,
        )
        lane_of = {"sample": "sampler", "memory_io": "nvme",
                   "compute": "trainers"}
        spans: list = []
        for stage, batch, start, end in records:
            if end <= start:
                continue
            if stage != "compute":
                spans.append({
                    "lane": lane_of[stage], "name": f"{stage}[{batch}]",
                    "cat": stage, "start": start, "dur": end - start,
                    "batch": batch,
                })
                continue
            halo = halos[batch] if batch < len(halos) else 0.0
            cursor = start
            if halo > 0:
                spans.append({
                    "lane": "trainers", "name": f"halo[{batch}]",
                    "cat": "network", "start": cursor, "dur": halo,
                    "batch": batch,
                })
                cursor += halo
            body_end = end - net_sync
            if body_end > cursor:
                spans.append({
                    "lane": "trainers", "name": f"compute[{batch}]",
                    "cat": "compute", "start": cursor,
                    "dur": body_end - cursor, "batch": batch,
                })
            if net_sync > 0:
                spans.append({
                    "lane": "trainers", "name": f"allreduce_net[{batch}]",
                    "cat": "network", "start": body_end, "dur": net_sync,
                    "batch": batch,
                })
        return makespan, spans


def fastgl_variant(
    match: bool = True,
    reorder: bool = True,
    memory_aware: bool = True,
    fused_map: bool = True,
    cache: bool = False,
    name: str | None = None,
) -> type:
    """Build an ablation variant class on the DGL baseline.

    Flags map to the paper's technique abbreviations: ``match``+``reorder``
    = MR, ``memory_aware`` = MA, ``fused_map`` = FM. The returned class can
    be instantiated like any framework.
    """
    label = name or "dgl+" + "".join(
        tag
        for enabled, tag in [
            (match, "M"),
            (reorder, "R"),
            (memory_aware, "A"),
            (fused_map, "F"),
        ]
        if enabled
    ).lower()

    class Variant(FastGLFramework):
        pass

    Variant.name = label
    Variant.use_match = match
    Variant.use_reorder = reorder and match
    Variant.use_cache = cache
    Variant.compute_mode = "memory_aware" if memory_aware else "naive"
    Variant.materialize_edge_messages = not memory_aware
    Variant.prefetch_topology = match
    if not fused_map:
        Variant.make_idmap = lambda self: BaselineIdMap()
    Variant.__name__ = f"Variant_{label}"
    return Variant
