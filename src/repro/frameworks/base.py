"""Shared epoch driver for all compared frameworks.

Each framework (PyG, DGL, GNNAdvisor, GNNLab, FastGL) is one strategy
bundle over the common substrate — Table 5 of the paper:

=============  ========  ============  ==============  ===============
framework      sampling  ID map        memory IO       computation
=============  ========  ============  ==============  ===============
PyG            CPU       CPU           naive           naive
DGL            GPU       3-kernel      naive           naive
GNNAdvisor     GPU       3-kernel      naive           2D workload (+preprocess)
GNNLab         GPU       3-kernel      static cache    naive (factored GPUs)
FastGL         GPU       Fused-Map     Match-Reorder   Memory-Aware
=============  ========  ============  ==============  ===============

``run_epoch`` executes one epoch *functionally* (sampling, byte-exact
transfer planning, optional real training) and *temporally* (the cost
model converts counted work into modeled seconds), returning an
:class:`EpochReport` with the three-phase breakdown the paper's figures
are built from.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field

import numpy as np

from repro.config import RunConfig
from repro.core.memory_aware import ComputeCostModel, ComputeReport, model_profile
from repro.core.reorder import greedy_reorder, match_degree_matrix
from repro.gpu.cluster import allreduce_time
from repro.gpu.pcie import link_from_cost
from repro.gpu.spec import GPUSpec, RTX3090
from repro.graph.datasets import Dataset
from repro.frameworks.registry import warn_deprecated
from repro.graph.partition import MinibatchPlan
from repro.nn import Adam, Tensor, build_model, cross_entropy
from repro.obs import get_registry
from repro.parallel import ParallelExecutor
from repro.pipeline import ExecutionSpec, pipelined_epoch_layout
from repro.sampling import (
    BaselineIdMap,
    NeighborSampler,
    SampledSubgraph,
)
from repro.sampling.base import Sampler
from repro.sim.pipeline import two_stage_makespan
from repro.transfer.loader import FeatureLoader, NaiveLoader, TransferReport
from repro.utils.rng import RngFactory


@dataclass
class PhaseTimes:
    """Modeled seconds per training phase, summed over an epoch."""

    sample: float = 0.0
    #: ID-map share of the sample phase (already included in ``sample``).
    idmap: float = 0.0
    memory_io: float = 0.0
    #: Cross-node fabric traffic (halo feature exchange + inter-node
    #: gradient allreduce); 0.0 outside cluster runs.
    network: float = 0.0
    compute: float = 0.0
    #: Preprocess share of ``compute`` (GNNAdvisor; already included).
    preprocess: float = 0.0
    allreduce: float = 0.0

    @property
    def serial_total(self) -> float:
        """Sum of the three phases plus gradient sync (no overlap)."""
        return (self.sample + self.memory_io + self.network + self.compute
                + self.allreduce)

    def fractions(self, detail: bool = False) -> dict:
        """Phase shares of the serial total (the paper's stacked bars).

        The default three-way split folds the ID map into ``sample`` and
        network + preprocess + allreduce into ``compute`` (the paper's
        Fig. 1 view — single-node runs have no network share to fold).
        ``detail=True`` splits those shares out as disjoint components —
        the stepwise-figure view — so the returned values still sum to
        1.0 in both modes. Each mode returns the same key set whether or
        not the total is zero (shares are all 0.0 in the empty case).
        """
        if detail:
            parts = {
                "sample": self.sample - self.idmap,
                "idmap": self.idmap,
                "memory_io": self.memory_io,
                "network": self.network,
                "compute": self.compute - self.preprocess,
                "preprocess": self.preprocess,
                "allreduce": self.allreduce,
            }
        else:
            parts = {
                "sample": self.sample,
                "memory_io": self.memory_io,
                "compute": self.compute + self.network + self.allreduce,
            }
        total = self.serial_total
        if total == 0:
            return {key: 0.0 for key in parts}
        return {key: value / total for key, value in parts.items()}


@dataclass(frozen=True)
class CacheStats:
    """Typed view of an epoch's feature-residency counters.

    ``hits`` counts rows served from a static device cache, ``reused``
    rows kept resident by Match across consecutive batches, ``loaded``
    rows that actually crossed the host link; together they partition
    ``wanted``.
    """

    wanted: int
    loaded: int
    reused: int
    hits: int

    @property
    def hit_rate(self) -> float:
        """Cache hits per wanted row."""
        if self.wanted == 0:
            return 0.0
        return self.hits / self.wanted

    @property
    def resident_rate(self) -> float:
        """Rows that never crossed the link (cache hits + Match reuse)."""
        if self.wanted == 0:
            return 0.0
        return (self.hits + self.reused) / self.wanted


@dataclass
class EpochReport:
    """Everything one epoch produced: times, bytes, counters, losses."""

    framework: str
    dataset: str
    model: str
    num_batches: int
    #: Phase sums across all batches and trainer GPUs.
    phases: PhaseTimes
    #: Modeled wall-clock of the epoch (accounts for data parallelism and
    #: any pipeline overlap the framework implements).
    epoch_time: float
    transfer: TransferReport
    compute: ComputeReport
    idmap_report: object = None
    losses: list = field(default_factory=list)
    #: Device-memory accounting of the largest iteration (bytes).
    memory_peak_bytes: int = 0
    memory_detail: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def avg_loss(self) -> float:
        if not self.losses:
            return float("nan")
        return float(np.mean(self.losses))

    # -- typed views over ``extras`` -----------------------------------------
    @property
    def num_trainers(self) -> int:
        """Trainer GPUs the epoch ran on."""
        return int(self.extras.get("num_trainers", 1))

    def timeline(self) -> list:
        """The modeled epoch timeline as :class:`repro.obs.trace.Span`
        objects (one per phase interval per lane), replacing digging
        through ``extras["timeline"]`` dicts.

        The layout is exactly what the framework's epoch-time model
        computed — including allreduce and pipeline overlap — so
        ``max(span.end for span in report.timeline())`` equals
        :attr:`epoch_time`.
        """
        from repro.obs.trace import Span

        return [
            Span(
                name=entry["name"],
                start=entry["start"],
                duration=entry["dur"],
                lane=entry["lane"],
                category=entry["cat"],
                depth=entry.get("depth", 0),
                args={key: value for key, value in entry.items()
                      if key not in ("name", "start", "dur", "lane", "cat",
                                     "depth")},
            )
            for entry in self.extras.get("timeline", [])
        ]

    def cache_stats(self) -> CacheStats:
        """Typed feature-residency counters of the memory-IO phase."""
        return CacheStats(
            wanted=self.transfer.num_wanted,
            loaded=self.transfer.num_loaded,
            reused=self.transfer.num_reused,
            hits=self.transfer.num_cache_hits,
        )

    def summary(self) -> str:
        """One human-readable paragraph about this epoch."""
        from repro.utils.format import format_bytes, format_seconds

        fractions = self.phases.fractions()
        return (
            f"{self.framework} on {self.dataset}/{self.model}: "
            f"{self.num_batches} batches in "
            f"{format_seconds(self.epoch_time)} modeled "
            f"(sample {fractions['sample']:.0%}, "
            f"memory IO {fractions['memory_io']:.0%}, "
            f"compute {fractions['compute']:.0%}); "
            f"{format_bytes(self.transfer.feature_bytes)} features over "
            f"PCIe, {self.transfer.num_reused} rows reused, "
            f"{self.transfer.num_cache_hits} cache hits"
        )


def _chunk(batches: list, num_chunks: int) -> list:
    """Split ``batches`` into ``num_chunks`` contiguous chunks (sizes differ
    by at most one)."""
    sizes = [len(batches) // num_chunks] * num_chunks
    for i in range(len(batches) % num_chunks):
        sizes[i] += 1
    out = []
    start = 0
    for size in sizes:
        out.append(batches[start:start + size])
        start += size
    return out


#: Phase order of one iteration's spans within a timeline lane. The
#: ``network`` slot (halo feature exchange) sits between memory IO and
#: compute — remote rows must land before the forward pass — and is only
#: populated by cluster runs.
PHASE_SPAN_ORDER = ("sample", "memory_io", "network", "compute")


@dataclass
class ClusterNetworkTimes:
    """Per-round fabric costs a cluster run adds to the epoch layout.

    Built by ``run_epoch`` from the :class:`~repro.cluster.engine.
    ClusterState`; ``None`` everywhere means "no cluster" and every
    layout falls back to the single-node math bit-for-bit.
    """

    #: ``per_lane[lane][r]`` — halo-exchange seconds of lane ``lane``'s
    #: round-``r`` batch (parallel to ``per_trainer_iters``).
    per_lane: list
    #: One NCCL allreduce across the trainers inside a node.
    intra_sync_s: float
    #: One inter-node allreduce over the fabric (0.0 at one node).
    net_sync_s: float
    num_nodes: int

    def lane_time(self, lane: int, r: int) -> float:
        if lane >= len(self.per_lane) or r >= len(self.per_lane[lane]):
            return 0.0
        return self.per_lane[lane][r]


def _inject_retry_spans(spans: list, per_trainer_retries: list) -> None:
    """Overlay ``cat="retry"`` child spans on the memory-IO intervals
    whose loads were retried.

    The retry backoff is already *inside* the memory-IO duration (the
    transfer report folds it into ``modeled_time``), so the retry span is
    drawn nested at the tail of its parent interval and never extends the
    timeline — reconciliation between the trace extent and the modeled
    epoch time is preserved for every layout. Per-trainer lanes
    (``gpuN``) use that lane's retry seconds; aggregated stage lanes
    (e.g. the out-of-core ``nvme`` lane, whose duration is the max across
    lanes) use the max retry seconds of the round.
    """
    if not any(delay > 0 for lane in per_trainer_retries
               for _, delay in lane):
        return

    def round_retries(lane_name: str, batch: int):
        if lane_name.startswith("gpu"):
            try:
                lane_index = int(lane_name[3:])
            except ValueError:
                return 0, 0.0
            lane = (per_trainer_retries[lane_index]
                    if lane_index < len(per_trainer_retries) else [])
            return lane[batch] if batch < len(lane) else (0, 0.0)
        count, delay = 0, 0.0
        for lane in per_trainer_retries:
            if batch < len(lane):
                count += lane[batch][0]
                delay = max(delay, lane[batch][1])
        return count, delay

    overlays = []
    for span in spans:
        if span["cat"] != "memory_io":
            continue
        count, delay = round_retries(span["lane"], span.get("batch", -1))
        if count <= 0 or delay <= 0:
            continue
        duration = min(delay, span["dur"])
        overlays.append({
            "lane": span["lane"],
            "name": f"retry[{span.get('batch', 0)}]",
            "cat": "retry",
            "start": span["start"] + span["dur"] - duration,
            "dur": duration,
            "batch": span.get("batch", 0),
            "retries": count,
            "depth": 1,
        })
    spans.extend(overlays)


def _merge_pipeline_info(infos: list) -> dict:
    """Fold per-epoch stage-graph accounting into ``extras["pipeline"]``.

    Scalar seconds and sync counts sum across epochs; the per-stage
    total/stall maps merge key-wise (the halo stage may be absent on
    epochs with no remote rows). Mode knobs come from the spec and are
    identical across epochs.
    """
    merged = {
        "mode": infos[0]["mode"],
        "queue_depth": infos[0]["queue_depth"],
        "staleness": infos[0]["staleness"],
        "stage_totals": {},
        "stall_seconds": {},
        "num_syncs": 0,
        "serial_seconds": 0.0,
        "fill_seconds": 0.0,
        "bound_seconds": 0.0,
        "epoch_seconds": 0.0,
    }
    for info in infos:
        merged["num_syncs"] += info["num_syncs"]
        for key in ("serial_seconds", "fill_seconds", "bound_seconds",
                    "epoch_seconds"):
            merged[key] += info[key]
        for field, totals in (("stage_totals", info["stage_totals"]),
                              ("stall_seconds", info["stall_seconds"])):
            for name, value in totals.items():
                merged[field][name] = merged[field].get(name, 0.0) + value
    return merged


def _consecutive_match(matrix, order) -> float:
    """Summed match degree of consecutive pairs under ``order``."""
    order = list(order)
    return float(sum(matrix[a][b] for a, b in zip(order, order[1:])))


class Framework:
    """Base framework; subclasses override the strategy hooks."""

    name = "base"
    #: "gpu" or "cpu" — where neighbor draws run.
    sample_device = "gpu"
    #: Compute-cost mode: "naive", "memory_aware" or "advisor".
    compute_mode = "naive"
    #: GNNLab dedicates sampler GPU(s) and pipelines produce/consume.
    pipelined_sampling = False
    #: FastGL prefetches the next subgraph's topology under compute.
    prefetch_topology = False
    #: FastGL reorders each window of sampled mini-batches (Algorithm 1).
    use_reorder = False
    #: Naive kernels materialize per-edge messages (memory accounting);
    #: the fused Memory-Aware kernel does not.
    materialize_edge_messages = True

    def __init__(self, spec: GPUSpec = RTX3090) -> None:
        self.spec = spec

    # -- strategy hooks ------------------------------------------------------
    def make_idmap(self):
        return BaselineIdMap()

    def make_sampler(self, dataset: Dataset, config: RunConfig,
                     rng) -> Sampler:
        return NeighborSampler(
            dataset.graph,
            config.fanouts,
            idmap=self.make_idmap(),
            device=self.sample_device,
            rng=rng,
        )

    def make_loader(self, dataset: Dataset, config: RunConfig,
                    sampler: Sampler, rng) -> FeatureLoader:
        return NaiveLoader(dataset.features)

    def num_sampler_gpus(self, config: RunConfig) -> int:
        """GPUs dedicated to sampling (0: trainers sample for themselves)."""
        return 0

    def num_trainer_gpus(self, config: RunConfig) -> int:
        trainers = config.num_gpus - self.num_sampler_gpus(config)
        if trainers < 1:
            raise ValueError(
                f"{self.name} needs more than {config.num_gpus} GPU(s)"
            )
        return trainers

    # -- the epoch driver -----------------------------------------------------
    def run_epoch(
        self,
        dataset: Dataset,
        config: RunConfig,
        model_name: str = "gcn",
        sampler: Sampler | None = None,
        execution: ExecutionSpec | None = None,
        jobs: int | None = None,
        cluster=None,
    ) -> EpochReport:
        """Execute one epoch and return its full report.

        ``execution`` (an :class:`~repro.pipeline.ExecutionSpec`)
        bundles every execution-environment knob:

        * ``jobs > 1`` computes the per-trainer lanes (reorder +
          transfer planning + compute modeling) in forked worker
          processes via :mod:`repro.parallel`. Sampling stays in the
          parent (the shared sampler RNG's consumption order must not
          depend on the job count), as do model training and the final
          accumulation — both run over the lanes' returned records in
          lane order, so the report and merged metrics are
          bit-identical to ``jobs=1``. Multi-epoch runs with loaders
          that carry state across epochs (the SSD page caches) fall
          back to in-process lanes.
        * ``cluster`` (a :class:`~repro.cluster.spec.ClusterSpec`)
          scales the run across simulated machines: ``config.num_gpus``
          describes *one* node, global trainer lanes multiply by
          ``num_nodes``, each batch pays a halo feature exchange for
          remote input rows, and the gradient sync becomes hierarchical
          (intra-node NCCL + an inter-node fabric allreduce in the
          ``network`` phase). A one-node cluster is bit-identical to
          ``cluster=None``.
        * ``faults`` (a :class:`~repro.faults.FaultPlan`) is installed
          for the span of the run, replacing a hand-written
          ``fault_scope`` around the call.
        * ``pipeline`` selects the epoch scheduler: ``"off"`` keeps
          this framework's classic layout bit-for-bit; ``"pipelined"``
          drives the epoch through the bounded stage graph
          (:mod:`repro.pipeline`) so sample/transfer/halo/train
          overlap across rounds. Model state (losses, parameters) is
          identical in both modes — the pipeline only reschedules
          modeled time.

        The bare ``jobs=`` / ``cluster=`` keyword arguments remain as
        warn-once deprecation shims for pre-``ExecutionSpec`` callers.
        """
        if jobs is not None:
            warn_deprecated("Framework.run_epoch(jobs=...)",
                            "execution=ExecutionSpec(jobs=...)")
        if cluster is not None:
            warn_deprecated("Framework.run_epoch(cluster=...)",
                            "execution=ExecutionSpec(cluster=...)")
        if execution is None:
            execution = ExecutionSpec(
                jobs=jobs if jobs is not None else 1,
                cluster=cluster,
            )
        elif jobs is not None or cluster is not None:
            raise TypeError(
                "pass jobs/cluster through the ExecutionSpec, not as "
                "separate keyword arguments"
            )
        with ExitStack() as stack:
            if execution.faults is not None:
                from repro.faults import fault_scope

                stack.enter_context(fault_scope(execution.faults))
            return self._run_epoch(dataset, config, model_name, sampler,
                                   execution)

    def _run_epoch(
        self,
        dataset: Dataset,
        config: RunConfig,
        model_name: str,
        sampler: Sampler | None,
        execution: ExecutionSpec,
    ) -> EpochReport:
        jobs = execution.jobs
        cluster = execution.cluster
        pipeline = execution.pipeline
        cost = config.cost
        rngs = RngFactory(config.seed)
        link = link_from_cost(self.spec, cost)
        per_node_trainers = self.num_trainer_gpus(config)
        cluster_state = None
        if cluster is not None and cluster.num_nodes >= 1:
            from repro.cluster.engine import ClusterState

            cluster_state = ClusterState(dataset, config, cluster,
                                         per_node_trainers)
        trainers = per_node_trainers * (
            cluster_state.num_nodes if cluster_state is not None else 1
        )
        profile = model_profile(
            model_name, dataset.feature_dim, dataset.num_classes,
            hidden_dim=config.hidden_dim, num_layers=config.num_layers,
        )
        cost_model = ComputeCostModel(self.spec, cost, self.compute_mode)

        plan = MinibatchPlan(dataset.train_ids, config.batch_size,
                             locality=config.batch_locality)

        if sampler is None:
            sampler = self.make_sampler(dataset, config,
                                        rngs.child("sampler"))
        loaders = [
            self.make_loader(dataset, config, sampler,
                             rngs.child(f"loader{t}"))
            for t in range(trainers)
        ]

        model = None
        optimizer = None
        if config.train_model:
            model = build_model(
                model_name, dataset.feature_dim, dataset.num_classes,
                hidden_dim=config.hidden_dim, num_layers=config.num_layers,
                seed=rngs.child_seed("model"),
            )
            optimizer = Adam(model.parameters(), lr=3e-3)
        param_bytes = (
            model.parameter_bytes()
            if model is not None
            else _profile_param_bytes(profile)
        )

        phases = PhaseTimes()
        #: Typed like the first report the loader produces, so storage-
        #: backed loaders keep their SSD counters through the epoch merge.
        transfer_total: TransferReport | None = None
        compute_total = ComputeReport()
        idmap_total = None
        losses: list = []
        memory_peak = 0
        memory_detail: dict = {}
        epoch_time = 0.0
        num_batches = 0
        iteration_log: list = []  # per trainer: [(sample, io, compute), ...]
        timeline: list = []  # modeled spans laid out by _epoch_timeline
        pipeline_log: list = []  # per-epoch stage-graph accounting

        # Observability handles, fetched once per epoch run. With the
        # registry disabled these are the shared no-op singletons, so the
        # per-batch path below performs only no-op method calls.
        registry = get_registry()
        phase_hist = registry.histogram(
            "repro_phase_seconds",
            "Modeled per-batch seconds spent in each training phase",
        )
        obs_phase = {
            phase: phase_hist.labels(framework=self.name, phase=phase)
            for phase in ("sample", "idmap", "memory_io", "network",
                          "compute", "allreduce")
        }
        obs_batches = registry.counter(
            "repro_batches_total", "Mini-batches processed",
        ).labels(framework=self.name)

        # Multi-epoch runs with cross-epoch loader state (SSD page
        # caches) must evolve that state in the parent process.
        lane_jobs = jobs
        if max(1, config.num_epochs) > 1 and any(
            loader.carries_state_across_epochs for loader in loaders
        ):
            lane_jobs = 1
        lane_executor = ParallelExecutor(jobs=lane_jobs)
        transport_totals = {"mode": "serial", "ipc_bytes": 0,
                            "shm_bytes": 0, "spilled_bytes": 0}

        for epoch in range(max(1, config.num_epochs)):
            batches = plan.batches(rngs.child(f"epoch-shuffle:{epoch}"))
            if cluster_state is not None:
                # Owner-compute placement: each node trains the seeds
                # its partition owns (identical to _chunk at one node).
                chunks = cluster_state.place_batches(batches,
                                                     config.batch_size)
                num_batches += sum(len(c) for c in chunks)
            else:
                chunks = _chunk(batches, trainers)
                num_batches += len(batches)
            # Sample every lane in the parent: the shared sampler RNG's
            # draw order is part of the results and must not depend on
            # the job count.
            lane_subgraphs = [
                [sampler.sample(batch) for batch in chunk]
                for chunk in chunks
            ]

            def lane_task(t):
                # PCIe contention is per node: only the trainers sharing
                # one host link compete (== all trainers without a
                # cluster).
                return self._run_lane(
                    lane_subgraphs[t], loaders[t], sampler, config, cost,
                    link, cost_model, profile, dataset, param_bytes,
                    per_node_trainers,
                )

            # Lane records come back in lane order; worker-side metric
            # snapshots (loader counters, reorder histograms, storage
            # schedulers) are merged in lane order too — the serial path
            # runs the identical fresh-registry protocol, so the merged
            # registry is the same at any job count.
            lane_records = lane_executor.map(lane_task, range(len(chunks)))
            transport = lane_executor.last_transport
            transport_totals["mode"] = transport.mode
            transport_totals["ipc_bytes"] += transport.ipc_bytes
            transport_totals["shm_bytes"] += transport.shm_bytes
            transport_totals["spilled_bytes"] += transport.spilled_bytes

            per_trainer_iters: list = []  # per trainer: (sample, io, comp)
            per_trainer_retries: list = []  # per trainer: (count, seconds)
            per_trainer_net: list = []  # per trainer: halo seconds per round
            for t, records in enumerate(lane_records):
                chunk = chunks[t]
                subgraphs = lane_subgraphs[t]
                iters = []
                lane_retries = []
                lane_net = []
                for rec in records:
                    position = rec["position"]
                    sg = subgraphs[position]
                    seeds = chunk[position]
                    sample_t = rec["sample_t"]
                    idmap_t = rec["idmap_t"]
                    io_t = rec["io_t"]
                    report = rec["report"]
                    comp = rec["comp"]
                    # Halo exchange runs in the parent, lane-major: the
                    # per-node remote caches must evolve in one
                    # deterministic order regardless of the job count.
                    net_t = 0.0
                    if cluster_state is not None:
                        net_t = cluster_state.batch_network_time(t, sg)
                    lane_net.append(net_t)

                    phases.sample += sample_t
                    phases.idmap += idmap_t
                    phases.memory_io += io_t
                    phases.network += net_t
                    phases.compute += comp.total_time
                    phases.preprocess += comp.preprocess_time
                    obs_phase["sample"].observe(sample_t)
                    obs_phase["idmap"].observe(idmap_t)
                    obs_phase["memory_io"].observe(io_t)
                    if net_t > 0:
                        obs_phase["network"].observe(net_t)
                    obs_phase["compute"].observe(comp.total_time)
                    obs_batches.inc()
                    if transfer_total is None:
                        transfer_total = type(report)()
                    transfer_total.merge(report)
                    compute_total.merge(comp)
                    idmap_total = (
                        sg.idmap_report if idmap_total is None
                        else idmap_total + sg.idmap_report
                    )
                    iters.append((sample_t, io_t, comp.total_time))
                    lane_retries.append((
                        getattr(report, "num_retries", 0),
                        getattr(report, "retry_delay_s", 0.0),
                    ))
                    while len(iteration_log) <= t:
                        iteration_log.append([])
                    iteration_log[t].append(
                        (sample_t, io_t, comp.total_time)
                    )

                    if model is not None:
                        features = Tensor(
                            dataset.features.gather(sg.input_nodes)
                        )
                        logits = model(sg, features)
                        loss = cross_entropy(logits, dataset.labels[seeds])
                        optimizer.zero_grad()
                        loss.backward()
                        optimizer.step()
                        losses.append(float(loss.data))

                    usage = rec["usage"]
                    if usage["total"] > memory_peak:
                        memory_peak = usage["total"]
                        memory_detail = usage
                per_trainer_iters.append(iters)
                per_trainer_retries.append(lane_retries)
                per_trainer_net.append(lane_net)

            network = None
            if cluster_state is not None:
                network = ClusterNetworkTimes(
                    per_lane=per_trainer_net,
                    intra_sync_s=cluster_state.intra_sync_time(
                        param_bytes, cost
                    ),
                    net_sync_s=cluster_state.net_sync_time(param_bytes),
                    num_nodes=cluster_state.num_nodes,
                )
            pipe_info = None
            if pipeline.enabled:
                epoch_seconds, epoch_spans, pipe_info = (
                    self._pipelined_timeline(
                        per_trainer_iters, param_bytes, trainers, config,
                        network=network, pipeline=pipeline,
                    )
                )
                pipe_info["epoch_seconds"] = epoch_seconds
                pipeline_log.append(pipe_info)
            else:
                epoch_seconds, epoch_spans = self._epoch_timeline(
                    per_trainer_iters, param_bytes, trainers, config,
                    network=network,
                )
            _inject_retry_spans(epoch_spans, per_trainer_retries)
            for span in epoch_spans:
                span["start"] += epoch_time
            timeline.extend(epoch_spans)
            epoch_time += epoch_seconds
            num_syncs = (pipe_info["num_syncs"] if pipe_info is not None
                         else None)
            epoch_allreduce = self._allreduce_total(
                per_trainer_iters, param_bytes, trainers, config,
                network=network, num_syncs=num_syncs,
            )
            phases.allreduce += epoch_allreduce
            if epoch_allreduce > 0:
                obs_phase["allreduce"].observe(epoch_allreduce)
            if network is not None and network.net_sync_s > 0:
                rounds = max(len(iters) for iters in per_trainer_iters)
                syncs = num_syncs if num_syncs is not None else rounds
                net_sync_total = syncs * network.net_sync_s
                phases.network += net_sync_total
                obs_phase["network"].observe(net_sync_total)
        extras = {"iterations": iteration_log,
                  "num_trainers": trainers,
                  "timeline": timeline,
                  # Transport-layer accounting of the lane executor
                  # (zero in serial mode). Like the matching obs
                  # counters, this is jobs/arena-dependent diagnostics —
                  # conformance comparisons strip it.
                  "parallel_transport": transport_totals}
        if pipeline_log:
            extras["pipeline"] = _merge_pipeline_info(pipeline_log)
        if cluster_state is not None:
            extras["cluster"] = cluster_state.summary()
        if model is not None:
            # Snapshot the trained parameters so conformance tests can
            # assert bit-identical model state across configurations.
            extras["final_params"] = [
                param.data.copy() for param in model.parameters()
            ]
        return EpochReport(
            framework=self.name,
            dataset=dataset.name,
            model=model_name,
            num_batches=num_batches,
            phases=phases,
            epoch_time=epoch_time,
            transfer=transfer_total if transfer_total is not None
            else TransferReport(),
            compute=compute_total,
            idmap_report=idmap_total,
            losses=losses,
            memory_peak_bytes=memory_peak,
            memory_detail=memory_detail,
            extras=extras,
        )

    # -- helpers ---------------------------------------------------------------
    def _run_lane(self, subgraphs: list, loader, sampler, config: RunConfig,
                  cost, link, cost_model, profile, dataset, param_bytes,
                  trainers: int) -> list:
        """One trainer lane's post-sampling work: window reorder, transfer
        planning, compute modeling, workspace sizing.

        Pure with respect to the parent's accumulators — everything the
        epoch driver folds is returned as picklable per-batch records (in
        execution order), so the lane can run in a forked worker. Metric
        side effects (loader counters, reorder histograms) go to whatever
        registry is current — the executor's per-chunk registry protocol
        captures and merges them.
        """
        loader.reset_epoch()
        order = list(range(len(subgraphs)))
        if self.use_reorder and len(subgraphs) > 2:
            order = self._reorder_windows(subgraphs, config)
        records = []
        for position in order:
            sg = subgraphs[position]
            sample_t = sampler.modeled_sample_time(sg, cost)
            idmap_t = sg.idmap_report.modeled_time(cost)
            sample_t += idmap_t
            report = loader.plan(sg)
            comp = cost_model.subgraph_report(sg, profile)
            io_t = self._io_time(report, comp, link, cost, trainers)
            usage = self._workspace_bytes(sg, profile, dataset,
                                          param_bytes, config)
            records.append({
                "position": position,
                "sample_t": sample_t,
                "idmap_t": idmap_t,
                "io_t": io_t,
                "report": report,
                "comp": comp,
                "usage": usage,
            })
        return records

    def _reorder_windows(self, subgraphs: list, config: RunConfig) -> list:
        """Greedy-reorder each window of ``reorder_window`` mini-batches."""
        order: list = []
        window = max(2, config.reorder_window)
        registry = get_registry()
        obs_match = registry.histogram(
            "repro_reorder_match_degree",
            "Summed consecutive match degree per reorder window, before "
            "(order=arrival) and after (order=reordered) Greedy Reorder",
            buckets=(0.25, 0.5, 1, 2, 4, 8, 16, 32),
        )
        for start in range(0, len(subgraphs), window):
            group = list(range(start, min(start + window, len(subgraphs))))
            if len(group) > 2:
                matrix = match_degree_matrix(
                    [subgraphs[i].unique_input_nodes() for i in group],
                    assume_unique=True,
                )
                chosen = greedy_reorder(matrix)
                if registry.enabled:
                    arrival = range(len(group))
                    obs_match.labels(
                        framework=self.name, order="arrival",
                    ).observe(_consecutive_match(matrix, arrival))
                    obs_match.labels(
                        framework=self.name, order="reordered",
                    ).observe(_consecutive_match(matrix, chosen))
                group = [group[i] for i in chosen]
            order.extend(group)
        return order

    def _io_time(self, report: TransferReport, comp: ComputeReport,
                 link, cost, trainers: int) -> float:
        io_t = report.modeled_time(link, cost, concurrent_links=trainers)
        if self.prefetch_topology and report.total_bytes > 0:
            # Topology of the next batch moves under this batch's compute;
            # only the un-overlapped remainder counts.
            bw = link.effective_bandwidth(trainers)
            structure_t = report.structure_bytes / bw
            io_t -= min(structure_t, comp.total_time)
        return max(0.0, io_t)

    def _allreduce_total(self, per_trainer_iters, param_bytes, trainers,
                         config, network=None, num_syncs=None) -> float:
        rounds = max(len(iters) for iters in per_trainer_iters)
        # Bounded-staleness accumulation syncs fewer than ``rounds``
        # times; the sequential layouts sync every round.
        syncs = rounds if num_syncs is None else num_syncs
        if network is not None:
            # Hierarchical sync: only the intra-node NCCL share counts as
            # ``allreduce``; the inter-node hop is network-phase time.
            return syncs * network.intra_sync_s
        if trainers <= 1:
            return 0.0
        return syncs * allreduce_time(param_bytes, trainers, config.cost)

    def _epoch_time(self, per_trainer_iters, param_bytes, trainers,
                    config, network=None) -> float:
        """Modeled epoch wall-clock (the makespan of the epoch timeline)."""
        seconds, _ = self._epoch_timeline(per_trainer_iters, param_bytes,
                                          trainers, config, network=network)
        return seconds

    def _sync_times(self, param_bytes, trainers, config,
                    network=None) -> tuple:
        """``(intra_sync, net_sync)`` per lockstep round: the NCCL
        allreduce every layout charges after each round, plus the
        inter-node fabric allreduce cluster runs append to it."""
        if network is not None:
            return network.intra_sync_s, network.net_sync_s
        sync = (allreduce_time(param_bytes, trainers, config.cost)
                if trainers > 1 else 0.0)
        return sync, 0.0

    def _pipeline_stage_times(self, per_trainer_iters, config,
                              network=None) -> tuple:
        """Per-round stage seconds the pipelined layout schedules.

        Returns ``(samples, ios, nets, computes)``, each one value per
        lockstep round: the phase reduced across trainer lanes by max,
        because the stage (sampler stream / DMA engine / NIC / training
        stream) only releases the round once its slowest lane finishes.
        Frameworks with a dedicated sampling tier (GNNLab) override this
        to factor their sampler-GPU throughput into the sample stage.
        """
        rounds = max(len(iters) for iters in per_trainer_iters)
        samples = [0.0] * rounds
        ios = [0.0] * rounds
        nets = [0.0] * rounds
        computes = [0.0] * rounds
        for lane, iters in enumerate(per_trainer_iters):
            for r, (sample_t, io_t, comp_t) in enumerate(iters):
                samples[r] = max(samples[r], sample_t)
                ios[r] = max(ios[r], io_t)
                computes[r] = max(computes[r], comp_t)
                if network is not None:
                    nets[r] = max(nets[r], network.lane_time(lane, r))
        return samples, ios, nets, computes

    def _pipelined_timeline(self, per_trainer_iters, param_bytes, trainers,
                            config, network=None, *, pipeline) -> tuple:
        """Asynchronous layout: the epoch's rounds flow through the
        bounded stage graph so round ``i+2`` samples while ``i+1``
        transfers and ``i`` trains. Returns ``(epoch_seconds, spans,
        info)``; model state is untouched — only modeled time moves.
        """
        samples, ios, nets, computes = self._pipeline_stage_times(
            per_trainer_iters, config, network=network,
        )
        sync, net_sync = self._sync_times(param_bytes, trainers, config,
                                          network=network)
        return pipelined_epoch_layout(
            samples, ios, nets, computes,
            sync=sync, net_sync=net_sync, pipeline=pipeline,
            label=self.name or "epoch",
        )

    def _epoch_timeline(self, per_trainer_iters, param_bytes, trainers,
                        config, network=None) -> tuple:
        """Lockstep data-parallel layout: each round runs one batch per
        trainer; gradient sync joins the round as a collective all lanes
        attend (intra-node allreduce, then the inter-node hop on cluster
        runs).

        Returns ``(epoch_seconds, spans)`` where each span is a dict with
        ``lane``/``name``/``cat``/``start``/``dur`` keys; every lane's
        final span ends exactly at ``epoch_seconds``, so the exported
        trace reconciles with the modeled epoch time.
        """
        rounds = max(len(iters) for iters in per_trainer_iters)
        sync, net_sync = self._sync_times(param_bytes, trainers, config,
                                          network=network)
        spans: list = []
        total = 0.0
        for r in range(rounds):
            round_time = 0.0
            for lane, iters in enumerate(per_trainer_iters):
                if r >= len(iters):
                    continue
                sample_t, io_t, comp_t = iters[r]
                net_t = (network.lane_time(lane, r)
                         if network is not None else 0.0)
                cursor = total
                for phase, duration in (("sample", sample_t),
                                        ("memory_io", io_t),
                                        ("network", net_t),
                                        ("compute", comp_t)):
                    if duration > 0:
                        spans.append({
                            "lane": f"gpu{lane}", "name": f"{phase}[{r}]",
                            "cat": phase, "start": cursor, "dur": duration,
                            "batch": r,
                        })
                        cursor += duration
                round_time = max(round_time, cursor - total)
            if sync > 0:
                for lane in range(len(per_trainer_iters)):
                    spans.append({
                        "lane": f"gpu{lane}", "name": f"allreduce[{r}]",
                        "cat": "allreduce", "start": total + round_time,
                        "dur": sync, "batch": r,
                    })
            if net_sync > 0:
                for lane in range(len(per_trainer_iters)):
                    spans.append({
                        "lane": f"gpu{lane}",
                        "name": f"allreduce_net[{r}]",
                        "cat": "network", "start": total + round_time + sync,
                        "dur": net_sync, "batch": r,
                    })
            total += round_time + sync + net_sync
        return total, spans

    def _workspace_bytes(self, subgraph: SampledSubgraph, profile, dataset,
                         param_bytes: int, config: RunConfig) -> dict:
        """Device-memory accounting for one iteration (Table 1/9 model)."""
        cost = config.cost
        store = dataset.features
        feature_buf = subgraph.num_nodes * store.bytes_per_node
        structure = subgraph.structure_bytes()
        activations = 0
        edge_messages = 0
        for (d_in, d_out), block in zip(profile.layer_dims,
                                        reversed(subgraph.layers)):
            rows = block.num_src if profile.gemm_on_src else block.num_dst
            activations += rows * d_out * 4 * 2  # forward + gradient
            agg_dim = d_out if profile.gemm_on_src else d_in
            if self.materialize_edge_messages:
                edge_messages += block.num_edges * agg_dim * 4
        workspace = feature_buf + structure + activations + edge_messages
        total = int(
            cost.runtime_overhead_bytes
            + param_bytes * 3  # params + Adam moments
            + workspace * cost.allocator_slack
            + self._extra_device_bytes(dataset, config)
        )
        return {
            "total": total,
            "features": feature_buf,
            "structure": structure,
            "activations": activations,
            "edge_messages": edge_messages,
            "params_opt": param_bytes * 3,
            "runtime": cost.runtime_overhead_bytes,
            "cache": self._extra_device_bytes(dataset, config),
        }

    def _extra_device_bytes(self, dataset: Dataset,
                            config: RunConfig) -> int:
        """Additional pinned device memory (feature caches)."""
        return 0


def _profile_param_bytes(profile) -> int:
    """Parameter bytes implied by a model profile (when no real model is
    instantiated): weights + biases per GEMM."""
    total = 0
    for d_in, d_out in profile.layer_dims:
        per_gemm = d_in * d_out + d_out
        total += per_gemm * profile.gemms_per_layer
        if profile.attention_heads:
            total += 2 * profile.attention_heads * d_out
    return total * 4


def pipeline_epoch_time(
    produce_times: list,
    consume_times: list,
) -> float:
    """Helper for pipelined frameworks (re-exported for GNNLab)."""
    return two_stage_makespan(produce_times, consume_times)
