"""PyG-style framework: CPU sampling, naive IO and compute.

PyG performs the whole sample phase (neighbor draws *and* ID map) on the
host. The paper measures it spending up to 97% of training time sampling on
large graphs — the CPU draw/ID-map throughputs in the cost model are what
reproduce that profile.
"""

from __future__ import annotations

from repro.frameworks.base import Framework
from repro.sampling import CpuIdMap


class PyGFramework(Framework):
    """PyTorch-Geometric strategy bundle."""

    name = "pyg"
    sample_device = "cpu"
    compute_mode = "naive"

    def make_idmap(self):
        return CpuIdMap()
