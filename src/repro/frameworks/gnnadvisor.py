"""GNNAdvisor-style framework.

GNNAdvisor accelerates aggregation with 2D workload management, but it was
designed for full-graph training: its preprocessing (neighbor grouping +
node renumbering) must run on *every sampled subgraph*, and that
per-iteration cost dominates — the paper shows preprocessing taking up to
75% of its computation phase, making it a net loss for sampling-based
training. Sampling is borrowed from DGL (as the paper does to give it a
sampler at all).
"""

from __future__ import annotations

from repro.frameworks.base import Framework
from repro.sampling import BaselineIdMap


class GNNAdvisorFramework(Framework):
    """GNNAdvisor strategy bundle (DGL sampler + 2D workload compute)."""

    name = "gnnadvisor"
    sample_device = "gpu"
    compute_mode = "advisor"

    def make_idmap(self):
        return BaselineIdMap()
