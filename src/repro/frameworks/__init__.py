"""Simulated training frameworks (the paper's Table 5 lineup)."""

from repro.frameworks.base import EpochReport, Framework, PhaseTimes
from repro.frameworks.pyg import PyGFramework
from repro.frameworks.dgl import DGLFramework, OutOfCoreDGLFramework
from repro.frameworks.gnnadvisor import GNNAdvisorFramework
from repro.frameworks.gnnlab import GNNLabFramework
from repro.frameworks.pagraph import PaGraphFramework
from repro.frameworks.fastgl import (
    FastGLFramework,
    OutOfCoreFastGLFramework,
    fastgl_variant,
)

#: Name -> constructor for the benchmark harness.
FRAMEWORKS = {
    "pyg": PyGFramework,
    "dgl": DGLFramework,
    "gnnadvisor": GNNAdvisorFramework,
    "gnnlab": GNNLabFramework,
    "pagraph": PaGraphFramework,
    "fastgl": FastGLFramework,
    "dgl-ooc": OutOfCoreDGLFramework,
    "fastgl-ooc": OutOfCoreFastGLFramework,
}


def get_framework(name: str, **kwargs) -> Framework:
    """Instantiate a framework by its lowercase name."""
    if name not in FRAMEWORKS:
        raise KeyError(
            f"unknown framework {name!r}; available: {sorted(FRAMEWORKS)}"
        )
    return FRAMEWORKS[name](**kwargs)


__all__ = [
    "EpochReport",
    "Framework",
    "PhaseTimes",
    "PyGFramework",
    "DGLFramework",
    "OutOfCoreDGLFramework",
    "GNNAdvisorFramework",
    "GNNLabFramework",
    "PaGraphFramework",
    "FastGLFramework",
    "OutOfCoreFastGLFramework",
    "fastgl_variant",
    "FRAMEWORKS",
    "get_framework",
]
