"""Simulated training frameworks (the paper's Table 5 lineup).

Names resolve through the registry (:func:`create`,
:func:`available_frameworks`, :func:`register`); the ``FRAMEWORKS`` dict
remains as a compatibility alias.
"""

from repro.frameworks.base import EpochReport, Framework, PhaseTimes
from repro.frameworks.registry import (
    FRAMEWORKS,
    available_frameworks,
    create,
    register,
    resolve,
    unregister,
)
from repro.frameworks.pyg import PyGFramework
from repro.frameworks.dgl import DGLFramework, OutOfCoreDGLFramework
from repro.frameworks.gnnadvisor import GNNAdvisorFramework
from repro.frameworks.gnnlab import GNNLabFramework
from repro.frameworks.pagraph import PaGraphFramework
from repro.frameworks.fastgl import (
    FastGLFramework,
    OutOfCoreFastGLFramework,
    fastgl_variant,
)

register("pyg", PyGFramework)
register("dgl", DGLFramework)
register("gnnadvisor", GNNAdvisorFramework)
register("gnnlab", GNNLabFramework)
register("pagraph", PaGraphFramework)
register("fastgl", FastGLFramework)
register("dgl-ooc", OutOfCoreDGLFramework)
register("fastgl-ooc", OutOfCoreFastGLFramework)

__all__ = [
    "EpochReport",
    "Framework",
    "PhaseTimes",
    "PyGFramework",
    "DGLFramework",
    "OutOfCoreDGLFramework",
    "GNNAdvisorFramework",
    "GNNLabFramework",
    "PaGraphFramework",
    "FastGLFramework",
    "OutOfCoreFastGLFramework",
    "fastgl_variant",
    "FRAMEWORKS",
    "available_frameworks",
    "create",
    "register",
    "resolve",
    "unregister",
]
