"""FastGL reproduction: GPU-efficient sampling-based GNN training at scale.

This package reproduces *FastGL: A GPU-Efficient Framework for Accelerating
Sampling-Based GNN Training at Large Scale* (ASPLOS 2024) on a simulated
GPU substrate. The paper's three techniques live in :mod:`repro.core`
(Match-Reorder, Memory-Aware computation, Fused-Map sampling); simulated
baseline frameworks (PyG, DGL, GNNAdvisor, GNNLab) in
:mod:`repro.frameworks`; and one experiment driver per paper table/figure
in :mod:`repro.experiments`.

Quickstart (the :mod:`repro.api` facade)::

    from repro.api import run, serve, available_frameworks

    report = run("fastgl", "products", config=RunConfig(num_gpus=2))
    print(report.epoch_time, report.phases.fractions())

    serving = serve("fastgl", "reddit")
    print(serving.p99, serving.throughput)
"""

from repro.config import CostModelConfig, DEFAULT_COST_MODEL, RunConfig
from repro.errors import (
    ConfigError,
    DeviceMemoryError,
    GraphError,
    ReproError,
    SamplingError,
)
from repro.frameworks import (
    DGLFramework,
    FastGLFramework,
    FRAMEWORKS,
    Framework,
    GNNAdvisorFramework,
    GNNLabFramework,
    PyGFramework,
    available_frameworks,
    create,
    fastgl_variant,
    register,
)
from repro.api import run, serve
from repro.pipeline import ExecutionSpec, PipelineSpec
from repro.core.pipeline import FastGLTrainer, TrainHistory
from repro.graph import CSRGraph, Dataset, DATASETS, get_dataset
from repro.gpu import GPUSpec, RTX3090
from repro.sampling import (
    BaselineIdMap,
    CpuIdMap,
    FusedIdMap,
    NeighborSampler,
    RandomWalkSampler,
    SampledSubgraph,
)

__version__ = "0.1.0"

__all__ = [
    "CostModelConfig",
    "DEFAULT_COST_MODEL",
    "RunConfig",
    "ReproError",
    "GraphError",
    "SamplingError",
    "DeviceMemoryError",
    "ConfigError",
    "Framework",
    "FRAMEWORKS",
    "available_frameworks",
    "create",
    "register",
    "run",
    "serve",
    "ExecutionSpec",
    "PipelineSpec",
    "PyGFramework",
    "DGLFramework",
    "GNNAdvisorFramework",
    "GNNLabFramework",
    "FastGLFramework",
    "fastgl_variant",
    "FastGLTrainer",
    "TrainHistory",
    "CSRGraph",
    "Dataset",
    "DATASETS",
    "get_dataset",
    "GPUSpec",
    "RTX3090",
    "NeighborSampler",
    "RandomWalkSampler",
    "SampledSubgraph",
    "FusedIdMap",
    "BaselineIdMap",
    "CpuIdMap",
    "__version__",
]
