"""Chrome-trace export of a modeled training epoch.

Converts an :class:`~repro.frameworks.base.EpochReport`'s per-iteration
phase times into the Chrome tracing JSON format (``chrome://tracing`` /
Perfetto): one lane per trainer GPU, one span per phase per mini-batch,
laid out serially within each lane (the non-pipelined execution model the
breakdown figures assume). Useful for eyeballing where an epoch's time
goes and for diffing two frameworks' timelines.
"""

from __future__ import annotations

import json

PHASES = ("sample", "memory_io", "compute")
_PHASE_COLORS = {
    "sample": "thread_state_runnable",
    "memory_io": "thread_state_iowait",
    "compute": "thread_state_running",
}


def epoch_trace_events(report) -> list:
    """Trace events (dicts) for ``report``; empty if it recorded none."""
    iterations = report.extras.get("iterations", [])
    events: list = []
    for gpu, batches in enumerate(iterations):
        cursor = 0.0
        for batch_index, phase_times in enumerate(batches):
            for phase, duration in zip(PHASES, phase_times):
                if duration <= 0:
                    continue
                events.append({
                    "name": f"{phase}[{batch_index}]",
                    "cat": phase,
                    "ph": "X",  # complete event
                    "ts": cursor * 1e6,       # microseconds
                    "dur": duration * 1e6,
                    "pid": report.framework,
                    "tid": f"gpu{gpu}",
                    "cname": _PHASE_COLORS[phase],
                    "args": {"batch": batch_index, "phase": phase},
                })
                cursor += duration
    return events


def write_chrome_trace(path, report) -> int:
    """Write the trace JSON for ``report``; returns the event count."""
    events = epoch_trace_events(report)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "framework": report.framework,
            "dataset": report.dataset,
            "model": report.model,
            "modeled_epoch_seconds": report.epoch_time,
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(events)
