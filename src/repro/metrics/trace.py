"""Chrome-trace export of a modeled training epoch.

Converts an :class:`~repro.frameworks.base.EpochReport` into the Chrome
tracing JSON format (``chrome://tracing`` / Perfetto). Reports produced
by ``run_epoch`` carry the modeled timeline in ``extras["timeline"]`` —
the exact layout the framework's epoch-time model computed, including
allreduce spans and any pipeline overlap (GNNLab's factored sampler,
the out-of-core prefetch pipeline) — so the exported trace's wall-clock
reconciles with ``EpochReport.epoch_time``. Hand-built reports without a
timeline fall back to the legacy serial per-lane layout.

The event generation itself is delegated to
:class:`repro.obs.trace.Tracer`, so modeled epochs and wall-clock spans
share one exporter.
"""

from __future__ import annotations

import json

from repro.obs.trace import Tracer

PHASES = ("sample", "memory_io", "compute", "allreduce")


def _tracer_from_timeline(spans) -> Tracer:
    """Spans are :class:`~repro.obs.trace.Span` objects, as returned by
    :meth:`EpochReport.timeline`."""
    tracer = Tracer(enabled=True)
    for span in spans:
        tracer.add_span(
            span.name,
            start=span.start,
            duration=span.duration,
            lane=span.lane,
            category=span.category,
            batch=span.args.get("batch"),
            phase=span.category,
        )
    return tracer


def _tracer_from_iterations(report) -> Tracer:
    """Legacy layout: phases laid out serially within each trainer lane."""
    tracer = Tracer(enabled=True)
    for gpu, batches in enumerate(report.extras.get("iterations", [])):
        cursor = 0.0
        for batch_index, phase_times in enumerate(batches):
            for phase, duration in zip(PHASES, phase_times):
                if duration <= 0:
                    continue
                tracer.add_span(
                    f"{phase}[{batch_index}]",
                    start=cursor,
                    duration=duration,
                    lane=f"gpu{gpu}",
                    category=phase,
                    batch=batch_index,
                    phase=phase,
                )
                cursor += duration
    return tracer


def epoch_tracer(report) -> Tracer:
    """A :class:`Tracer` holding ``report``'s modeled spans."""
    timeline = report.timeline() if hasattr(report, "timeline") else None
    if timeline:
        return _tracer_from_timeline(timeline)
    return _tracer_from_iterations(report)


def epoch_trace_events(report) -> list:
    """Trace events (dicts) for ``report``; empty if it recorded none."""
    return epoch_tracer(report).to_chrome_events(pid=report.framework)


def write_chrome_trace(path, report) -> int:
    """Write the trace JSON for ``report``; returns the event count."""
    events = epoch_trace_events(report)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "framework": report.framework,
            "dataset": report.dataset,
            "model": report.model,
            "modeled_epoch_seconds": report.epoch_time,
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(events)
