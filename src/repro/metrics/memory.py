"""Paper-scale device-memory estimation (Tables 1 and 9).

The paper measures GPU memory while training 3-layer GCNs on the *original*
datasets (batch 8000, hidden 256). Those graphs cannot be materialized
here, so this module estimates the workspace analytically: expected
sampled-subgraph sizes come from the neighbor-explosion model in
:mod:`repro.graph.stats`, and the per-buffer accounting mirrors the
framework memory model (features, activations, retained inputs, per-edge
messages for naive kernels, multi-format graph structure, allocator slack,
runtime overhead).

Absolute numbers depend on framework internals the paper does not specify
(allocator behaviour, retained buffers), so EXPERIMENTS.md compares the
*shape*: which datasets leave the device nearly full — MAG/IGB/Papers100M
— and which leave plenty (Reddit, Products).
"""

from __future__ import annotations

from repro.config import CostModelConfig, DEFAULT_COST_MODEL
from repro.graph.datasets import DatasetSpec
from repro.graph.stats import estimate_subgraph_size

#: DGL keeps the graph in up to three sparse formats (COO/CSR/CSC).
_STRUCTURE_FORMATS = 3


def paper_scale_workspace_bytes(
    spec: DatasetSpec,
    batch_size: int = 8000,
    fanouts=(5, 10, 15),
    hidden_dim: int = 256,
    materialize_edge_messages: bool = True,
    structure_formats: int = _STRUCTURE_FORMATS,
    cost: CostModelConfig = DEFAULT_COST_MODEL,
) -> dict:
    """Estimated device bytes while training a 3-layer GCN at paper scale.

    Returns a breakdown dict with a ``"total"`` key.
    """
    paper = spec.paper
    avg_degree = paper.num_edges * 2 / paper.num_nodes
    est = estimate_subgraph_size(
        paper.num_nodes, avg_degree, batch_size, fanouts
    )
    feat_bytes_per_node = spec.feature_dim * 4

    # frontiers[0] = seeds ... frontiers[-1] = input nodes.
    frontiers = est.frontiers
    input_nodes = frontiers[-1]
    features = input_nodes * feat_bytes_per_node

    dims = [spec.feature_dim] + [hidden_dim] * len(fanouts)
    activations = 0.0
    retained_inputs = 0.0
    edge_messages = 0.0
    # Layer k consumes frontier k+1 (sources) and produces frontier k.
    for k in range(len(fanouts)):
        num_dst = frontiers[len(fanouts) - 1 - k]
        num_src = frontiers[len(fanouts) - k]
        edges = est.edges_per_hop[len(fanouts) - 1 - k]
        d_in = dims[0] if k == 0 else hidden_dim
        d_out = hidden_dim
        activations += num_dst * d_out * 4 * 2  # output + gradient
        retained_inputs += num_src * d_in * 4  # kept for backward
        if materialize_edge_messages:
            edge_messages += edges * d_in * 4 * 2  # fwd message + grad

    structure = (est.num_edges * 16 + sum(frontiers) * 8) * structure_formats
    params = (spec.feature_dim * hidden_dim + hidden_dim * hidden_dim
              + hidden_dim * spec.num_classes) * 4 * 3  # + Adam moments

    # GPU-based sampling (DGL's and FastGL's mode) keeps the *full graph
    # topology* device-resident: neighbor indices + edge IDs (int64 each)
    # plus the offset array. This is the term that exhausts device memory
    # on the 100M-node graphs (Table 1's MAG/Papers100M rows).
    full_graph = paper.num_edges * 16 + paper.num_nodes * 8

    workspace = (features + activations + retained_inputs + edge_messages
                 + structure)
    total = (cost.runtime_overhead_bytes + params + full_graph
             + workspace * cost.allocator_slack)
    return {
        "total": int(total),
        "full_graph_topology": int(full_graph),
        "features": int(features),
        "activations": int(activations),
        "retained_inputs": int(retained_inputs),
        "edge_messages": int(edge_messages),
        "structure": int(structure),
        "params_opt": int(params),
        "runtime": cost.runtime_overhead_bytes,
        "input_nodes": int(input_nodes),
        "sampled_edges": int(est.num_edges),
    }
