"""Roofline analysis of the aggregation phase (the paper's Fig. 12).

A kernel's attainable performance is ``min(peak, OI * bandwidth)`` where
OI (operational intensity) is FLOPs per byte moved from the memory system.
The naive aggregation sits far below the roof because its effective
bandwidth is throttled by cache thrashing; the Memory-Aware kernel raises
achieved performance by serving the hot streams from shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.spec import GPUSpec, RTX3090


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on the roofline plot."""

    name: str
    operational_intensity: float
    achieved_flops: float

    def attainable_flops(self, spec: GPUSpec = RTX3090) -> float:
        return roofline_ceiling(self.operational_intensity, spec)

    @property
    def achieved_gflops(self) -> float:
        return self.achieved_flops / 1e9


def roofline_ceiling(operational_intensity: float,
                     spec: GPUSpec = RTX3090) -> float:
    """Attainable FLOP/s at the given OI under the global-memory roof."""
    if operational_intensity < 0:
        raise ValueError("operational intensity must be non-negative")
    return min(spec.peak_flops, operational_intensity * spec.global_bw)


def point_from_compute_report(name: str, report) -> RooflinePoint:
    """Build a roofline point from a :class:`ComputeReport`'s aggregation
    counters. OI is taken against DRAM traffic, the roof's denominator."""
    bytes_moved = max(1.0, report.agg_dram_bytes)
    time = max(report.agg_time, 1e-12)
    return RooflinePoint(
        name=name,
        operational_intensity=report.agg_flops / bytes_moved,
        achieved_flops=report.agg_flops / time,
    )
