"""Analysis helpers: roofline model and device-memory estimators."""

from repro.metrics.roofline import RooflinePoint, roofline_ceiling
from repro.metrics.memory import paper_scale_workspace_bytes
from repro.metrics.trace import epoch_trace_events, write_chrome_trace

__all__ = [
    "RooflinePoint",
    "roofline_ceiling",
    "paper_scale_workspace_bytes",
    "epoch_trace_events",
    "write_chrome_trace",
]
