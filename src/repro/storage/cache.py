"""Page caches for the out-of-core feature tier.

Three policies, mirroring the literature the tier models:

* :class:`LRUPageCache` — the classic OS-page-cache baseline: pure
  recency. On GNN feature traffic it thrashes once the per-epoch working
  set exceeds capacity, because most pages are touched once per batch and
  evicted before their next use.
* :class:`PartitionAwarePageCache` — BGL-style (arXiv:2112.08541): the
  cache knows the graph partition each page belongs to and how hot each
  partition is for the *training* workload (train-seed density times
  degree mass — neighbor sampling concentrates inside the partitions the
  seeds live in). The hottest pages are pinned; only the remainder runs
  recency-based. At the small cache ratios where out-of-core training
  operates, pinning what is provably hot beats recency guessing.

* :class:`FrequencyPageCache` — FastSample-style (arXiv:2311.17847):
  pure observed access frequency with admission control. Every lookup
  (hit or miss) bumps the page's count; a new page only displaces the
  coldest resident page when it has been seen more often. Where the
  partition cache needs workload foreknowledge (the train split and the
  partition map), the frequency cache learns the same skew online —
  which is exactly what a node can do for *remote* features it has no
  partition-local knowledge about.

All policies count hits/misses/evictions so loaders can feed the cost
model.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict

import numpy as np

#: Sentinel returned by ``lookup`` on a miss (``None`` is a valid frame
#: placeholder for stats-only schedulers).
MISS = object()


class PageCache:
    """Interface + shared counters of a page cache."""

    def __init__(self, capacity_pages: int) -> None:
        self.capacity_pages = max(0, int(capacity_pages))
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    @property
    def num_resident(self) -> int:
        raise NotImplementedError

    def resident_bytes(self, page_bytes: int) -> int:
        """Memory the cached pages occupy (host DRAM for the bounce path,
        device memory for GPU-initiated direct access)."""
        return self.num_resident * int(page_bytes)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def observe_into(self, registry, **labels) -> None:
        """Publish the cache's cumulative counters as registry gauges.

        Gauges (not counters) because the cache owns the authoritative
        tallies and this pushes their *current* values — callers may
        publish after every mini-batch or once per epoch, idempotently.
        """
        if not registry.enabled:
            return
        labels.setdefault("policy", type(self).__name__)
        for name, help_text, value in (
            ("repro_page_cache_hits",
             "Cumulative page-cache hits", self.hits),
            ("repro_page_cache_misses",
             "Cumulative page-cache misses", self.misses),
            ("repro_page_cache_evictions",
             "Cumulative page-cache evictions", self.evictions),
            ("repro_page_cache_resident_pages",
             "Pages currently resident in the cache", self.num_resident),
            ("repro_page_cache_hit_rate",
             "Cumulative page-cache hit rate", self.hit_rate),
        ):
            registry.gauge(name, help_text).labels(**labels).set(value)

    def lookup(self, page_id: int):
        """Return the cached frame (may be ``None``) or :data:`MISS`."""
        raise NotImplementedError

    def insert(self, page_id: int, frame) -> None:
        """Admit a page just read from the drive."""
        raise NotImplementedError

    def update(self, page_id: int, frame) -> None:
        """Replace the stored frame of a resident page (no-op if absent);
        used when a stats-only placeholder is later materialized."""
        raise NotImplementedError


class LRUPageCache(PageCache):
    """Recency-only page cache (the OS-page-cache baseline)."""

    def __init__(self, capacity_pages: int) -> None:
        super().__init__(capacity_pages)
        self._frames: OrderedDict = OrderedDict()

    @property
    def num_resident(self) -> int:
        return len(self._frames)

    def lookup(self, page_id: int):
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            self.hits += 1
            return self._frames[page_id]
        self.misses += 1
        return MISS

    def insert(self, page_id: int, frame) -> None:
        if self.capacity_pages == 0:
            return
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            self._frames[page_id] = frame
            return
        while len(self._frames) >= self.capacity_pages:
            self._frames.popitem(last=False)
            self.evictions += 1
        self._frames[page_id] = frame

    def update(self, page_id: int, frame) -> None:
        if page_id in self._frames:
            self._frames[page_id] = frame


class PartitionAwarePageCache(PageCache):
    """Hotness-pinned pages plus a recency tail (BGL-style).

    ``page_hotness`` ranks every page; the top ``pinned_fraction`` of the
    capacity is reserved for the hottest pages, which once admitted are
    never evicted. Cold first touches of pinned pages still count as
    misses (the page must cross the NVMe link once).
    """

    def __init__(self, capacity_pages: int, page_hotness: np.ndarray,
                 pinned_fraction: float = 0.8) -> None:
        super().__init__(capacity_pages)
        if not 0.0 <= pinned_fraction <= 1.0:
            raise ValueError("pinned_fraction must be in [0, 1]")
        hotness = np.asarray(page_hotness, dtype=np.float64)
        num_pinned = min(int(self.capacity_pages * pinned_fraction),
                         len(hotness))
        ranked = np.argsort(hotness, kind="stable")[::-1]
        self.pinned_ids = frozenset(int(p) for p in ranked[:num_pinned])
        self._pinned: dict = {}
        self._lru = LRUPageCache(self.capacity_pages - num_pinned)

    @property
    def num_resident(self) -> int:
        return len(self._pinned) + self._lru.num_resident

    def lookup(self, page_id: int):
        if page_id in self._pinned:
            self.hits += 1
            return self._pinned[page_id]
        if page_id in self.pinned_ids:
            self.misses += 1
            return MISS
        value = self._lru.lookup(page_id)
        if value is MISS:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def insert(self, page_id: int, frame) -> None:
        if page_id in self.pinned_ids:
            self._pinned[page_id] = frame
            return
        self._lru.insert(page_id, frame)

    def update(self, page_id: int, frame) -> None:
        if page_id in self._pinned:
            self._pinned[page_id] = frame
        else:
            self._lru.update(page_id, frame)

    def reset_stats(self) -> None:
        super().reset_stats()
        self._lru.reset_stats()


class FrequencyPageCache(PageCache):
    """Access-frequency cache with admission control (FastSample-style).

    Frequency counts accumulate on every lookup, resident or not, so the
    cache converges on the workload's true hot set instead of its recent
    one. Admission: a missing page is only admitted over the coldest
    resident page when its count is strictly higher — one-off scans
    cannot flush established hot pages. Ties and victim selection break
    on the lower page ID, keeping the policy fully deterministic.
    """

    def __init__(self, capacity_pages: int) -> None:
        super().__init__(capacity_pages)
        self._counts: dict = {}
        self._frames: dict = {}
        # Lazy min-heap of (count-at-push, page_id) over resident pages:
        # victim selection stays the exact (count, id) minimum, but in
        # O(log n) amortized instead of a full scan per admission.
        self._heap: list = []

    @property
    def num_resident(self) -> int:
        return len(self._frames)

    def _bump(self, page_id: int) -> None:
        self._counts[page_id] = self._counts.get(page_id, 0) + 1

    def lookup(self, page_id: int):
        self._bump(page_id)
        if page_id in self._frames:
            self.hits += 1
            return self._frames[page_id]
        self.misses += 1
        return MISS

    def _pop_coldest(self) -> tuple:
        """The resident page with the smallest (count, id) key. Stale
        heap entries (evicted pages, outdated counts) are discarded or
        refreshed on the way; counts only grow, so the first entry that
        matches its current count is the true minimum."""
        while True:
            count, pid = heapq.heappop(self._heap)
            if pid not in self._frames:
                continue
            current = self._counts.get(pid, 0)
            if current != count:
                heapq.heappush(self._heap, (current, pid))
                continue
            return count, pid

    def insert(self, page_id: int, frame) -> None:
        if self.capacity_pages == 0:
            return
        if page_id in self._frames:
            self._frames[page_id] = frame
            return
        if len(self._frames) < self.capacity_pages:
            self._frames[page_id] = frame
            heapq.heappush(self._heap,
                           (self._counts.get(page_id, 0), page_id))
            return
        victim = self._pop_coldest()
        if self._counts.get(page_id, 0) > victim[0]:
            del self._frames[victim[1]]
            self.evictions += 1
            self._frames[page_id] = frame
            heapq.heappush(self._heap,
                           (self._counts.get(page_id, 0), page_id))
        else:
            heapq.heappush(self._heap, victim)

    def update(self, page_id: int, frame) -> None:
        if page_id in self._frames:
            self._frames[page_id] = frame


def partition_page_hotness(
    page_store,
    partition_of_node: np.ndarray,
    train_ids: np.ndarray,
    degrees: np.ndarray | None = None,
    base_density: float = 0.25,
) -> np.ndarray:
    """Expected access frequency of every page, partition-aware.

    A node is touched roughly in proportion to its degree (neighbor draws)
    scaled by how training-hot its partition is: partitions dense in train
    seeds are entered by ~every batch, cold partitions only via the
    minority of cross-partition edges (``base_density`` floors them).
    Page hotness is the sum over its resident rows.
    """
    partition_of_node = np.asarray(partition_of_node, dtype=np.int64)
    num_nodes = page_store.backing.num_nodes
    if len(partition_of_node) != num_nodes:
        raise ValueError("partition_of_node must label every node")
    num_parts = int(partition_of_node.max()) + 1 if num_nodes else 1
    size = np.bincount(partition_of_node, minlength=num_parts)
    train_count = np.bincount(partition_of_node[np.asarray(train_ids)],
                              minlength=num_parts)
    density = train_count / np.maximum(size, 1)
    mean_density = density.mean() if density.size else 0.0
    if mean_density > 0:
        density = density / mean_density
    if degrees is None:
        degrees = np.ones(num_nodes, dtype=np.float64)
    node_score = np.asarray(degrees, dtype=np.float64) * (
        base_density + density[partition_of_node]
    )
    pages = np.arange(num_nodes, dtype=np.int64) // page_store.rows_per_page
    return np.bincount(pages, weights=node_score,
                       minlength=page_store.num_pages)


def build_page_cache(
    policy: str,
    capacity_pages: int,
    page_store=None,
    partition_of_node: np.ndarray | None = None,
    train_ids: np.ndarray | None = None,
    degrees: np.ndarray | None = None,
) -> PageCache:
    """Construct the named cache policy ("lru", "freq" or "partition")."""
    if policy == "lru":
        return LRUPageCache(capacity_pages)
    if policy == "freq":
        return FrequencyPageCache(capacity_pages)
    if policy == "partition":
        if page_store is None or partition_of_node is None:
            raise ValueError(
                "partition policy needs page_store and partition_of_node"
            )
        if train_ids is None:
            train_ids = np.empty(0, dtype=np.int64)
        hotness = partition_page_hotness(
            page_store, partition_of_node, train_ids, degrees=degrees
        )
        return PartitionAwarePageCache(capacity_pages, hotness)
    raise ValueError(f"unknown page-cache policy {policy!r}")
