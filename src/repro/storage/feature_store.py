"""SSD-backed feature store: the out-of-core drop-in for any FeatureStore.

``gather`` is *functionally identical* to gathering from the materialized
table — rows come back bit-for-bit equal — but every access is served
page-granularly through the IO scheduler and page cache, so the hit/miss
and byte counters describe exactly what an NVMe-resident table would cost.
"""

from __future__ import annotations

import numpy as np

from repro.graph.features import FeatureStore
from repro.storage.cache import LRUPageCache, PageCache
from repro.storage.page_store import PageStore
from repro.storage.scheduler import IOPlan, IOScheduler


class StorageBackedFeatureStore(FeatureStore):
    """A feature table living on SSD, read page-by-page through a cache."""

    def __init__(
        self,
        backing: FeatureStore,
        page_bytes: int = 4096,
        cache: PageCache | None = None,
        max_coalesce: int = 8,
    ) -> None:
        super().__init__(backing.num_nodes, backing.dim, backing.dtype)
        self.page_store = PageStore(backing, page_bytes=page_bytes)
        if cache is None:
            # Default: capacity for the whole table (cache policy only
            # matters when a caller sizes it below the working set).
            cache = LRUPageCache(self.page_store.num_pages)
        self.cache = cache
        self.scheduler = IOScheduler(self.page_store, cache,
                                     max_coalesce=max_coalesce)
        #: Accounting of the most recent ``gather`` call.
        self.last_plan: IOPlan = IOPlan()

    @property
    def backing(self) -> FeatureStore:
        return self.page_store.backing

    def attach_cache(self, cache: PageCache) -> None:
        """Swap in a sized/policied cache (replaces the default full-table
        LRU in both the store and its scheduler)."""
        self.cache = cache
        self.scheduler.cache = cache

    def reset_stats(self) -> None:
        self.page_store.reset_stats()
        self.cache.reset_stats()

    def gather(self, ids: np.ndarray) -> np.ndarray:
        ids = self._check_ids(ids)
        out = np.empty((len(ids), self.dim), dtype=self.dtype)
        if len(ids) == 0:
            self.last_plan = IOPlan()
            return out
        plan, frames = self.scheduler.submit(ids, fetch=True)
        self.last_plan = plan
        pids = self.page_store.page_of(ids)
        offsets = ids - pids * self.page_store.rows_per_page
        order = np.argsort(pids, kind="stable")
        sorted_pids = pids[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_pids[1:] != sorted_pids[:-1]))
        )
        bounds = np.concatenate((starts, [len(ids)]))
        for i in range(len(starts)):
            group = order[bounds[i]:bounds[i + 1]]
            out[group] = frames[int(sorted_pids[bounds[i]])][offsets[group]]
        return out
