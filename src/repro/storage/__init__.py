"""Out-of-core storage tier: an SSD-resident feature table.

At Papers100M/IGB scale the feature table exceeds host DRAM, so this
subsystem models the table living on an NVMe drive, accessed through a
page-granular store, a partition-aware page cache (BGL-style) and an IO
scheduler that coalesces requests and overlaps reads with the training
pipeline. Two access paths are modeled: the classic bounce buffer
(SSD -> host DRAM -> GPU) and GPU-initiated direct access (GIDS-style
SSD -> GPU peer-to-peer).
"""

from repro.storage.cache import (
    MISS,
    LRUPageCache,
    PageCache,
    PartitionAwarePageCache,
    build_page_cache,
    partition_page_hotness,
)
from repro.storage.feature_store import StorageBackedFeatureStore
from repro.storage.nvme import NVMeLink, nvme_from_cost
from repro.storage.page_store import PageStore
from repro.storage.scheduler import (
    IOPlan,
    IOScheduler,
    storage_pipeline_makespan,
)

__all__ = [
    "MISS",
    "LRUPageCache",
    "PageCache",
    "PartitionAwarePageCache",
    "build_page_cache",
    "partition_page_hotness",
    "StorageBackedFeatureStore",
    "NVMeLink",
    "nvme_from_cost",
    "PageStore",
    "IOPlan",
    "IOScheduler",
    "storage_pipeline_makespan",
]
