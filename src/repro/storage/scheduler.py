"""Per-mini-batch IO scheduling for the out-of-core tier.

Three jobs:

1. **Deduplicate** — a mini-batch wants thousands of feature rows; many
   share a page. Only unique pages are considered at all.
2. **Coalesce** — runs of consecutive missing pages merge into one NVMe
   command (up to ``max_coalesce`` pages), turning random reads into
   short sequential bursts; the command count drives the latency/IOPS
   side of the :class:`~repro.storage.nvme.NVMeLink` model.
3. **Overlap** — an epoch's storage reads run in a pipeline with sampling
   and training (:func:`storage_pipeline_makespan`, built directly on
   :mod:`repro.sim.events`), bounded by a prefetch queue depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import StorageReadError
from repro.faults import call_with_faults, get_fault_plan
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.obs import get_registry
from repro.sim.events import EventLoop
from repro.storage.cache import MISS, PageCache
from repro.storage.page_store import PageStore


@dataclass
class IOPlan:
    """Accounting of one mini-batch's page-request schedule."""

    num_rows: int = 0
    num_unique_pages: int = 0
    page_hits: int = 0
    page_misses: int = 0
    #: NVMe commands after coalescing consecutive missing pages.
    ssd_requests: int = 0
    #: Bytes read off the drive (full pages; the read amplification).
    ssd_bytes: int = 0
    #: Page reads that needed a retry (injected NVMe errors, absorbed).
    num_retries: int = 0
    #: Modeled seconds of retry backoff + injected slowdowns.
    fault_delay_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        if self.num_unique_pages == 0:
            return 0.0
        return self.page_hits / self.num_unique_pages


class IOScheduler:
    """Routes a mini-batch's row requests through cache and drive."""

    def __init__(self, page_store: PageStore, cache: PageCache,
                 max_coalesce: int = 8,
                 retry_policy: RetryPolicy | None = None) -> None:
        if max_coalesce < 1:
            raise ValueError("max_coalesce must be >= 1")
        self.page_store = page_store
        self.cache = cache
        self.max_coalesce = int(max_coalesce)
        #: Backoff budget for faulted page reads (``storage_read`` site).
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY

    def coalesced_requests(self, miss_pages: np.ndarray) -> int:
        """NVMe commands covering ``miss_pages`` (sorted unique): each run
        of consecutive page IDs becomes ``ceil(run / max_coalesce)``
        commands."""
        if len(miss_pages) == 0:
            return 0
        breaks = np.flatnonzero(np.diff(miss_pages) != 1)
        run_lengths = np.diff(
            np.concatenate(([0], breaks + 1, [len(miss_pages)]))
        )
        return int(np.sum(-(-run_lengths // self.max_coalesce)))

    def submit(self, ids: np.ndarray, fetch: bool = False):
        """Schedule the page reads behind the row requests ``ids``.

        Returns ``(plan, frames)``: ``frames`` maps page ID -> row block
        when ``fetch`` is true (the functional gather path), else ``None``
        (stats-only accounting; resident placeholders are admitted so the
        cache state still evolves exactly as a fetching run's would).
        """
        ids = np.asarray(ids, dtype=np.int64)
        unique_pages = np.unique(self.page_store.page_of(ids))
        frames: dict | None = {} if fetch else None
        miss_list = []
        for pid in unique_pages.tolist():
            value = self.cache.lookup(pid)
            if value is MISS:
                miss_list.append(pid)
                continue
            if fetch:
                if value is None:
                    # A stats-only pass admitted this page without data;
                    # materialize it quietly (it never re-crosses the NVMe
                    # link — the bytes are resident, only the frame is lazy).
                    start, count = self.page_store.page_rows(pid)
                    value = self.page_store.backing.gather(
                        np.arange(start, start + count)
                    )
                    self.cache.update(pid, value)
                frames[pid] = value
        fault_plan = get_fault_plan()
        num_retries = 0
        fault_delay = 0.0
        for pid in miss_list:
            # A faulted read retries with backoff; the page only reaches
            # the cache once a (re)read succeeded, so a genuinely failed
            # read (budget exhausted -> StorageReadError) leaves neither
            # a frame nor a placeholder behind.
            frame, stats = call_with_faults(
                lambda pid=pid: self.page_store.read_page(
                    pid, materialize=fetch),
                site="storage_read",
                policy=self.retry_policy,
                key=pid,
                exc_factory=lambda attempts, pid=pid: StorageReadError(
                    pid, attempts),
                plan=fault_plan,
            )
            num_retries += stats.num_retries
            fault_delay += stats.delay_s
            if fetch:
                frames[pid] = frame
            self.cache.insert(pid, frame)
        if fault_plan.enabled and miss_list:
            # NVMe latency outlier (throttle / GC pause): one draw per
            # faultable submit, modeled as extra IO seconds.
            fault_delay += fault_plan.stall("storage_slow")
        misses = np.asarray(miss_list, dtype=np.int64)
        plan = IOPlan(
            num_rows=len(ids),
            num_unique_pages=len(unique_pages),
            page_hits=len(unique_pages) - len(misses),
            page_misses=len(misses),
            ssd_requests=self.coalesced_requests(misses),
            ssd_bytes=len(misses) * self.page_store.page_bytes,
            num_retries=num_retries,
            fault_delay_s=fault_delay,
        )
        self._observe_plan(plan)
        return plan, frames

    def _observe_plan(self, plan: IOPlan) -> None:
        """Report one submit()'s accounting to the metrics registry."""
        registry = get_registry()
        if not registry.enabled:
            return
        handles = self._obs_handles(registry)
        handles["page_hits"].inc(plan.page_hits)
        handles["page_misses"].inc(plan.page_misses)
        handles["ssd_requests"].inc(plan.ssd_requests)
        handles["ssd_bytes"].inc(plan.ssd_bytes)
        if plan.ssd_requests > 0:
            handles["coalesce"].observe(
                plan.page_misses / plan.ssd_requests
            )
        self.cache.observe_into(registry)

    def _obs_handles(self, registry) -> dict:
        """Per-scheduler metric handles, cached per registry instance."""
        cached = getattr(self, "_obs_cache", None)
        if cached is not None and cached[0] is registry:
            return cached[1]
        labels = {"policy": type(self.cache).__name__}
        handles = {
            "page_hits": registry.counter(
                "repro_storage_page_hits_total",
                "Page requests served from the page cache",
            ).labels(**labels),
            "page_misses": registry.counter(
                "repro_storage_page_misses_total",
                "Page requests that went to the drive",
            ).labels(**labels),
            "ssd_requests": registry.counter(
                "repro_storage_ssd_requests_total",
                "NVMe read commands issued after coalescing",
            ).labels(**labels),
            "ssd_bytes": registry.counter(
                "repro_storage_ssd_bytes_total",
                "Bytes read off the drive (full pages)",
            ).labels(**labels),
            "coalesce": registry.histogram(
                "repro_storage_coalesce_pages_per_command",
                "Missing pages folded into each NVMe command",
                buckets=(1, 1.5, 2, 3, 4, 6, 8, 12, 16),
            ).labels(**labels),
        }
        self._obs_cache = (registry, handles)
        return handles


def storage_pipeline_makespan(
    sample_times: Sequence[float],
    read_times: Sequence[float],
    train_times: Sequence[float],
    queue_depth: int | None = None,
    record=None,
) -> float:
    """Makespan of the sample -> storage-read -> train pipeline.

    Each stage is an exclusive resource (the sampler kernel stream, the
    NVMe submission engine, the training stream); batch ``i`` flows
    through them in order, and at most ``queue_depth`` batches may be
    past sampling but not yet trained (the prefetch buffer). Built on the
    event engine so storage reads genuinely overlap the other stages.

    ``record``, when given, is called as ``record((stage, batch, start,
    end))`` for every executed stage interval — the hook the timeline
    exporter uses to lay the overlapped epoch out faithfully. When
    observability is enabled, per-stage stall seconds (makespan minus
    busy time) and the prefetch-queue occupancy at each batch admission
    are reported to the metrics registry.
    """
    if not len(sample_times) == len(read_times) == len(train_times):
        raise ValueError("stage time lists must have equal length")
    if queue_depth is not None and queue_depth < 1:
        raise ValueError("queue_depth must be >= 1 or None")
    n = len(sample_times)
    if n == 0:
        return 0.0
    loop = EventLoop()
    stage_names = ("sample", "memory_io", "compute")
    stages = [loop.resource(name) for name in stage_names]
    times = (sample_times, read_times, train_times)
    slots = ([loop.resource(f"slot{j}") for j in range(queue_depth)]
             if queue_depth is not None else None)
    registry = get_registry()
    occupancy_hist = registry.histogram(
        "repro_storage_queue_occupancy",
        "Batches in flight (sampled but not yet trained) at admission",
        buckets=(1, 2, 4, 8, 16, 32, 64),
    ).labels(pipeline="storage")
    in_flight = [0]

    def batch(i: int):
        if slots is not None:
            yield slots[i % queue_depth].acquire()
        in_flight[0] += 1
        occupancy_hist.observe(in_flight[0])
        for stage, stage_times in zip(stages, times):
            yield stage.acquire()
            start = loop.now
            yield float(stage_times[i])
            if record is not None:
                record((stage.name, i, start, loop.now))
            stage.release()
        in_flight[0] -= 1
        if slots is not None:
            slots[i % queue_depth].release()

    for i in range(n):
        loop.spawn(batch(i))
    makespan = loop.run()
    if registry.enabled and makespan > 0:
        stalls = registry.counter(
            "repro_pipeline_stall_seconds_total",
            "Modeled seconds a pipeline stage spent waiting on the other",
        )
        for name, stage_times in zip(stage_names, times):
            idle = makespan - float(sum(stage_times))
            stalls.labels(pipeline="storage", stage=name).inc(max(0.0, idle))
    return makespan
