"""Per-mini-batch IO scheduling for the out-of-core tier.

Three jobs:

1. **Deduplicate** — a mini-batch wants thousands of feature rows; many
   share a page. Only unique pages are considered at all.
2. **Coalesce** — runs of consecutive missing pages merge into one NVMe
   command (up to ``max_coalesce`` pages), turning random reads into
   short sequential bursts; the command count drives the latency/IOPS
   side of the :class:`~repro.storage.nvme.NVMeLink` model.
3. **Overlap** — an epoch's storage reads run in a pipeline with sampling
   and training (:func:`storage_pipeline_makespan`, built directly on
   :mod:`repro.sim.events`), bounded by a prefetch queue depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim.events import EventLoop
from repro.storage.cache import MISS, PageCache
from repro.storage.page_store import PageStore


@dataclass
class IOPlan:
    """Accounting of one mini-batch's page-request schedule."""

    num_rows: int = 0
    num_unique_pages: int = 0
    page_hits: int = 0
    page_misses: int = 0
    #: NVMe commands after coalescing consecutive missing pages.
    ssd_requests: int = 0
    #: Bytes read off the drive (full pages; the read amplification).
    ssd_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        if self.num_unique_pages == 0:
            return 0.0
        return self.page_hits / self.num_unique_pages


class IOScheduler:
    """Routes a mini-batch's row requests through cache and drive."""

    def __init__(self, page_store: PageStore, cache: PageCache,
                 max_coalesce: int = 8) -> None:
        if max_coalesce < 1:
            raise ValueError("max_coalesce must be >= 1")
        self.page_store = page_store
        self.cache = cache
        self.max_coalesce = int(max_coalesce)

    def coalesced_requests(self, miss_pages: np.ndarray) -> int:
        """NVMe commands covering ``miss_pages`` (sorted unique): each run
        of consecutive page IDs becomes ``ceil(run / max_coalesce)``
        commands."""
        if len(miss_pages) == 0:
            return 0
        breaks = np.flatnonzero(np.diff(miss_pages) != 1)
        run_lengths = np.diff(
            np.concatenate(([0], breaks + 1, [len(miss_pages)]))
        )
        return int(np.sum(-(-run_lengths // self.max_coalesce)))

    def submit(self, ids: np.ndarray, fetch: bool = False):
        """Schedule the page reads behind the row requests ``ids``.

        Returns ``(plan, frames)``: ``frames`` maps page ID -> row block
        when ``fetch`` is true (the functional gather path), else ``None``
        (stats-only accounting; resident placeholders are admitted so the
        cache state still evolves exactly as a fetching run's would).
        """
        ids = np.asarray(ids, dtype=np.int64)
        unique_pages = np.unique(self.page_store.page_of(ids))
        frames: dict | None = {} if fetch else None
        miss_list = []
        for pid in unique_pages.tolist():
            value = self.cache.lookup(pid)
            if value is MISS:
                miss_list.append(pid)
                continue
            if fetch:
                if value is None:
                    # A stats-only pass admitted this page without data;
                    # materialize it quietly (it never re-crosses the NVMe
                    # link — the bytes are resident, only the frame is lazy).
                    start, count = self.page_store.page_rows(pid)
                    value = self.page_store.backing.gather(
                        np.arange(start, start + count)
                    )
                    self.cache.update(pid, value)
                frames[pid] = value
        for pid in miss_list:
            if fetch:
                frame = self.page_store.read_page(pid)
                frames[pid] = frame
            else:
                frame = self.page_store.read_page(pid, materialize=False)
            self.cache.insert(pid, frame)
        misses = np.asarray(miss_list, dtype=np.int64)
        plan = IOPlan(
            num_rows=len(ids),
            num_unique_pages=len(unique_pages),
            page_hits=len(unique_pages) - len(misses),
            page_misses=len(misses),
            ssd_requests=self.coalesced_requests(misses),
            ssd_bytes=len(misses) * self.page_store.page_bytes,
        )
        return plan, frames


def storage_pipeline_makespan(
    sample_times: Sequence[float],
    read_times: Sequence[float],
    train_times: Sequence[float],
    queue_depth: int | None = None,
) -> float:
    """Makespan of the sample -> storage-read -> train pipeline.

    Each stage is an exclusive resource (the sampler kernel stream, the
    NVMe submission engine, the training stream); batch ``i`` flows
    through them in order, and at most ``queue_depth`` batches may be
    past sampling but not yet trained (the prefetch buffer). Built on the
    event engine so storage reads genuinely overlap the other stages.
    """
    if not len(sample_times) == len(read_times) == len(train_times):
        raise ValueError("stage time lists must have equal length")
    if queue_depth is not None and queue_depth < 1:
        raise ValueError("queue_depth must be >= 1 or None")
    n = len(sample_times)
    if n == 0:
        return 0.0
    loop = EventLoop()
    stages = [loop.resource(name) for name in ("sampler", "io", "trainer")]
    times = (sample_times, read_times, train_times)
    slots = ([loop.resource(f"slot{j}") for j in range(queue_depth)]
             if queue_depth is not None else None)

    def batch(i: int):
        if slots is not None:
            yield slots[i % queue_depth].acquire()
        for stage, stage_times in zip(stages, times):
            yield stage.acquire()
            yield float(stage_times[i])
            stage.release()
        if slots is not None:
            slots[i % queue_depth].release()

    for i in range(n):
        loop.spawn(batch(i))
    return loop.run()
