"""NVMe SSD link model (PCIe 4.0 x4 data-center drive).

The out-of-core tier's analogue of :mod:`repro.gpu.pcie`: reads are issued
as page-granular commands, and completion time is governed by three
quantities — per-command latency, sequential read bandwidth, and the
*queue depth* the initiator sustains. Latency is amortized across the
commands in flight, which is exactly why GPU-initiated direct access
(GIDS, arXiv:2306.16384) wins: tens of thousands of GPU threads keep the
device queues far deeper than a host-side bounce-buffer reader can.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import CostModelConfig, DEFAULT_COST_MODEL


@dataclass(frozen=True)
class NVMeLink:
    """One NVMe drive seen over PCIe 4.0 x4."""

    #: Sequential read bandwidth (datasheet ~7 GB/s for a Gen4 drive).
    bandwidth: float = 6.8e9
    #: Per-command completion latency (read, device + controller).
    latency_s: float = 80e-6
    #: Device-side IOPS ceiling for small random reads.
    iops_limit: float = 1.0e6

    def read_time(
        self,
        num_requests: int,
        num_bytes: float,
        queue_depth: int = 1,
        bandwidth_cap: float | None = None,
    ) -> float:
        """Seconds to complete ``num_requests`` read commands moving
        ``num_bytes`` total, with ``queue_depth`` commands kept in flight.

        Latency is paid once per *wave* of ``queue_depth`` commands; the
        payload streams at the link bandwidth (optionally capped by a
        downstream link, e.g. the GPU's PCIe slot for peer-to-peer reads)
        and the device's IOPS ceiling.
        """
        if num_requests <= 0 or num_bytes <= 0:
            return 0.0
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        bandwidth = self.bandwidth
        if bandwidth_cap is not None:
            bandwidth = min(bandwidth, bandwidth_cap)
        waves = math.ceil(num_requests / queue_depth)
        stream = max(num_bytes / bandwidth, num_requests / self.iops_limit)
        return waves * self.latency_s + stream


def nvme_from_cost(cost: CostModelConfig = DEFAULT_COST_MODEL) -> NVMeLink:
    """Build the drive model from calibration ``cost``."""
    return NVMeLink(
        bandwidth=cost.nvme_read_bytes_per_s,
        latency_s=cost.nvme_read_latency_s,
        iops_limit=cost.nvme_iops_limit,
    )
