"""Block/page view of a feature table resident on SSD.

The out-of-core tier never addresses single rows on the drive: the NVMe
namespace is an array of fixed-size pages, each holding a contiguous run
of feature rows. ``PageStore`` maps node IDs to pages, serves page reads
out of the backing :class:`~repro.graph.features.FeatureStore` (the
"truth" that would live on the drive), and counts every page and byte
read — the read-amplification input of the cost model.
"""

from __future__ import annotations

import numpy as np

from repro.graph.features import FeatureStore


class PageStore:
    """Fixed-size-page wrapper over a backing feature store.

    ``pool`` (a :class:`repro.parallel.shm.BumpAllocator` over a shared
    arena) turns materialised page reads into shared-memory residents:
    the gathered rows land in the pool and come back as a zero-copy
    arena view, so every OOC framework (and every forked worker) sharing
    the arena reads the same buffer instead of holding private copies.
    Several ``PageStore`` instances may share one pool — that is the
    "one buffer pool" the out-of-core tier hands to the executor. When
    the pool fills, reads fall back to private arrays (counted in
    ``pool_spill_bytes``); the page *contents* are identical either way.
    """

    def __init__(self, backing: FeatureStore, page_bytes: int = 4096,
                 pool=None) -> None:
        if page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        self.backing = backing
        self.pool = pool
        self.pool_bytes = 0
        self.pool_spill_bytes = 0
        #: A page always holds at least one row; tiny nominal pages are
        #: rounded up (drives cannot split a row across a read smaller
        #: than the row itself).
        self.page_bytes = max(int(page_bytes), backing.bytes_per_node)
        self.rows_per_page = self.page_bytes // backing.bytes_per_node
        self.num_pages = -(-backing.num_nodes // self.rows_per_page)
        self.pages_read = 0
        self.bytes_read = 0

    @property
    def total_bytes(self) -> int:
        """Bytes of the table as laid out on the drive (incl. padding)."""
        return self.num_pages * self.page_bytes

    def reset_stats(self) -> None:
        self.pages_read = 0
        self.bytes_read = 0

    def page_of(self, ids: np.ndarray) -> np.ndarray:
        """Page ID holding each node's feature row."""
        return np.asarray(ids, dtype=np.int64) // self.rows_per_page

    def page_rows(self, page_id: int) -> tuple:
        """``(first_node, num_rows)`` stored in ``page_id``."""
        if not 0 <= page_id < self.num_pages:
            raise IndexError(f"page {page_id} out of range")
        start = page_id * self.rows_per_page
        count = min(self.rows_per_page, self.backing.num_nodes - start)
        return start, count

    def read_page(self, page_id: int, materialize: bool = True):
        """Read one page from the drive: the full page crosses the NVMe
        link even when the tail page is only partially filled.

        ``materialize=False`` counts the read without producing the rows
        (the accounting-only path of the IO scheduler).
        """
        start, count = self.page_rows(page_id)
        self.pages_read += 1
        self.bytes_read += self.page_bytes
        if not materialize:
            return None
        rows = self.backing.gather(np.arange(start, start + count))
        if self.pool is not None:
            ref = self.pool.put(rows)
            if ref is not None:
                self.pool_bytes += ref.nbytes
                return self.pool.arena.view(ref)
            self.pool_spill_bytes += int(rows.nbytes)
        return rows
