"""Exception types shared across the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphError(ReproError):
    """An invalid graph structure or an out-of-range node/edge reference."""


class SamplingError(ReproError):
    """A sampler was configured or invoked incorrectly."""


class DeviceMemoryError(ReproError):
    """A simulated device allocation exceeded the device capacity."""

    def __init__(self, requested: int, available: int, what: str = "") -> None:
        self.requested = int(requested)
        self.available = int(available)
        self.what = what
        suffix = f" for {what}" if what else ""
        super().__init__(
            f"device allocation of {requested} bytes{suffix} exceeds "
            f"available {available} bytes"
        )


class ConfigError(ReproError):
    """An invalid experiment or model configuration."""


class FaultError(ReproError):
    """Base class for injected (or modeled) hardware/runtime faults."""


class StorageReadError(FaultError):
    """An NVMe page read failed (the drive returned an error or timed out).

    Models a media/controller read error; carries the failing page so the
    resilience layer can target its retry and the residency invalidation.
    """

    def __init__(self, page_id: int, attempts: int = 1) -> None:
        self.page_id = int(page_id)
        self.attempts = int(attempts)
        super().__init__(
            f"NVMe read of page {page_id} failed after {attempts} attempt(s)"
        )


class TransferStallError(FaultError):
    """A host->device feature transfer stalled past its retry budget.

    Models a PCIe link stall / DMA timeout; the device-side buffer state
    is unknown afterwards, so Match residency must be invalidated.
    """

    def __init__(self, what: str = "feature transfer",
                 attempts: int = 1) -> None:
        self.attempts = int(attempts)
        super().__init__(
            f"{what} stalled and was abandoned after {attempts} attempt(s)"
        )


class NetworkStallError(FaultError):
    """A node-to-node fabric transfer stalled past its retry budget.

    Models a NIC/link stall (flapping port, congested spine, RDMA
    timeout) during the halo feature exchange; the requesting node's
    receive buffers are incomplete, so the exchange must be re-issued.
    """

    def __init__(self, src: int, dst: int, attempts: int = 1) -> None:
        self.src = int(src)
        self.dst = int(dst)
        self.attempts = int(attempts)
        super().__init__(
            f"fabric transfer node{src}->node{dst} stalled and was "
            f"abandoned after {attempts} attempt(s)"
        )


class WorkerCrashError(FaultError):
    """A parallel worker process died more times than the crash budget.

    Models the loss of a GPU worker (OOM kill, XID error, node loss); the
    executor reassigns the chunk to a fresh worker up to ``max_crashes``
    times before giving up with this error.
    """

    def __init__(self, chunk_index: int, crashes: int) -> None:
        self.chunk_index = int(chunk_index)
        self.crashes = int(crashes)
        super().__init__(
            f"parallel chunk {chunk_index} lost its worker {crashes} "
            f"time(s); crash budget exhausted"
        )


class ParallelTaskError(ReproError, RuntimeError):
    """A task raised inside :class:`repro.parallel.ParallelExecutor`.

    Carries the *global task index* and the map's seed so a failing chunk
    can be re-run in isolation (``fn(items[task_index],
    task_rng(seed, task_index))``). Both the forked and the serial path
    raise this same type; the original exception is chained as
    ``__cause__`` (serial) or appended as the worker traceback (forked).
    """

    def __init__(self, task_index: int, seed: int | None, cause: str,
                 worker_traceback: str | None = None) -> None:
        self.task_index = int(task_index)
        self.seed = seed
        self.worker_traceback = worker_traceback
        message = (
            f"parallel task {task_index} (seed={seed!r}) failed: {cause}"
        )
        if worker_traceback:
            message += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(message)
