"""Exception types shared across the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphError(ReproError):
    """An invalid graph structure or an out-of-range node/edge reference."""


class SamplingError(ReproError):
    """A sampler was configured or invoked incorrectly."""


class DeviceMemoryError(ReproError):
    """A simulated device allocation exceeded the device capacity."""

    def __init__(self, requested: int, available: int, what: str = "") -> None:
        self.requested = int(requested)
        self.available = int(available)
        self.what = what
        suffix = f" for {what}" if what else ""
        super().__init__(
            f"device allocation of {requested} bytes{suffix} exceeds "
            f"available {available} bytes"
        )


class ConfigError(ReproError):
    """An invalid experiment or model configuration."""
