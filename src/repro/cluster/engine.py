"""Per-epoch cluster state for the framework drivers.

:class:`ClusterState` is what :meth:`Framework.run_epoch` builds when
handed a :class:`~repro.cluster.spec.ClusterSpec`: the partition
assignment, the fabric, the halo-exchange engine, and the two gradient
synchronization costs (intra-node NCCL allreduce over a node's local
trainers, inter-node fabric allreduce over the cluster — the standard
hierarchical scheme).

``num_nodes=1`` short-circuits everywhere: the assignment is all-zeros,
every batch's network time is exactly ``0.0``, and the inter-node sync
is ``0.0`` — so a one-node cluster run is bit-identical to a run with no
cluster at all (the conformance tests pin this).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.fabric import NetworkFabric
from repro.cluster.halo import HaloExchange
from repro.cluster.partitioner import partition_graph
from repro.cluster.spec import ClusterSpec
from repro.gpu.cluster import allreduce_time
from repro.graph.partition import PartitionStats, partition_stats
from repro.obs import get_registry


class ClusterState:
    """Everything one epoch needs to run on a simulated cluster.

    Lanes (global trainer indices) map onto nodes contiguously:
    lane ``t`` lives on node ``t // per_node_trainers``. Construction
    partitions the graph, prices nothing — all costs are per-call.
    """

    def __init__(self, dataset, config, spec: ClusterSpec,
                 per_node_trainers: int) -> None:
        self.spec = spec
        self.per_node_trainers = max(1, int(per_node_trainers))
        self.num_nodes = spec.num_nodes
        self.fabric = NetworkFabric.from_spec(spec)
        graph = dataset.graph
        if self.num_nodes == 1:
            self.assignment = np.zeros(graph.num_nodes, dtype=np.int64)
            self.stats: PartitionStats | None = None
            self.halo: HaloExchange | None = None
        else:
            self.assignment = partition_graph(
                graph, self.num_nodes,
                method=spec.partitioner,
                seed=config.seed,
                balance_slack=spec.balance_slack,
            )
            self.stats = partition_stats(graph, self.assignment,
                                         num_parts=self.num_nodes)
            self.halo = HaloExchange(
                self.assignment, self.fabric, spec,
                bytes_per_row=dataset.features.bytes_per_node,
                degrees=graph.degrees,
                train_ids=dataset.train_ids,
            )
            self._observe_partition()

    def _observe_partition(self) -> None:
        registry = get_registry()
        if not registry.enabled or self.stats is None:
            return
        labels = {"partitioner": self.spec.partitioner,
                  "num_nodes": str(self.num_nodes)}
        registry.gauge(
            "repro_cluster_edge_cut",
            "Directed edges crossing partition boundaries",
        ).labels(**labels).set(self.stats.edge_cut)
        registry.gauge(
            "repro_cluster_cut_fraction",
            "Fraction of directed edges cut by the partition",
        ).labels(**labels).set(self.stats.cut_fraction)
        registry.gauge(
            "repro_cluster_balance",
            "Largest partition over the ideal size",
        ).labels(**labels).set(self.stats.balance)
        for part, halo_nodes in enumerate(self.stats.halo_nodes):
            registry.gauge(
                "repro_cluster_halo_nodes",
                "Distinct remote neighbors each partition must import",
            ).labels(part=str(part), **labels).set(halo_nodes)

    # -- lane layout ---------------------------------------------------------
    def node_of_lane(self, lane: int) -> int:
        """The cluster node hosting global trainer lane ``lane``."""
        return lane // self.per_node_trainers

    def place_batches(self, batches: list, batch_size: int) -> list:
        """Distribute an epoch's mini-batches onto trainer lanes.

        Multi-node data-parallel training is **owner-compute**: each
        machine trains on the seed nodes its partition owns (that is
        what makes partition quality matter — a node's sampling frontier
        then stays mostly local). The epoch's seeds are pooled per
        owning node (original shuffle order preserved), re-split into
        ``batch_size`` mini-batches, and each node's batches are chunked
        across its local trainer lanes.

        On one node this is exactly the flat ``_chunk`` of the
        single-node driver, so the bit-identity guarantee holds.
        """
        from repro.frameworks.base import _chunk

        if self.halo is None:
            return _chunk(batches, self.per_node_trainers)
        seeds = np.concatenate(batches) if batches else np.empty(
            0, dtype=np.int64)
        owners = self.assignment[seeds]
        chunks: list = []
        for node in range(self.num_nodes):
            pool = seeds[owners == node]
            node_batches = [pool[i:i + batch_size]
                            for i in range(0, len(pool), batch_size)]
            chunks.extend(_chunk(node_batches, self.per_node_trainers))
        return chunks

    # -- per-batch / per-round costs ----------------------------------------
    def batch_network_time(self, lane: int, subgraph) -> float:
        """Modeled seconds lane ``lane`` spends pulling the halo features
        of one sampled mini-batch (0.0 on a one-node cluster)."""
        if self.halo is None:
            return 0.0
        report = self.halo.exchange(
            self.node_of_lane(lane), subgraph.unique_input_nodes()
        )
        return report.exchange_s

    def intra_sync_time(self, param_bytes: int, cost) -> float:
        """One NCCL allreduce across the trainers *inside* a node."""
        return allreduce_time(param_bytes, self.per_node_trainers, cost)

    def net_sync_time(self, param_bytes: int) -> float:
        """One inter-node allreduce over the fabric (0.0 at one node)."""
        return self.fabric.allreduce_time(param_bytes,
                                          algo=self.spec.allreduce)

    # -- reporting -----------------------------------------------------------
    def summary(self) -> dict:
        """What ``run_epoch`` publishes as ``extras['cluster']``."""
        out = {
            "num_nodes": self.num_nodes,
            "per_node_trainers": self.per_node_trainers,
            "topology": self.spec.topology,
            "partitioner": self.spec.partitioner,
            "remote_cache": self.spec.remote_cache,
            "allreduce": self.spec.allreduce,
        }
        if self.stats is not None:
            out["partition"] = {
                "sizes": list(self.stats.sizes),
                "edge_cut": self.stats.edge_cut,
                "cut_fraction": self.stats.cut_fraction,
                "balance": self.stats.balance,
                "halo_nodes": list(self.stats.halo_nodes),
            }
        if self.halo is not None:
            out["halo"] = self.halo.summary()
        return out
