"""Per-mini-batch halo (boundary-node) feature exchange.

When a mini-batch's sampled subgraph needs input features owned by
another node's partition, those **halo rows** must cross the fabric
before the forward pass can start. This module models that exchange:

* :func:`group_by_owner` buckets the requested node IDs by owning
  partition (the gather kernel the bench suite times);
* each node runs a **remote-feature cache** over rows it has pulled
  before — FastSample-style observed-frequency
  (:class:`~repro.storage.cache.FrequencyPageCache`), BGL-style
  partition-aware pinning
  (:class:`~repro.storage.cache.PartitionAwarePageCache`), plain LRU,
  or none — so hot halo rows stop paying fabric trips;
* the residual misses become per-peer pulls priced by
  :meth:`NetworkFabric.gather_time`, with the ``net_stall`` fault site
  injecting link stalls that the retry layer absorbs (backoff delay
  lands in the exchange time) or, past the budget, escalates to
  :class:`~repro.errors.NetworkStallError`.

Everything is deterministic: row order inside the cache walk is the
sorted unique ID order, fault keys are an explicit per-exchange
sequence, and the traffic matrix double-entry (bytes sent == bytes
received == fetched rows x row bytes) is pinned by the conservation
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.fabric import NetworkFabric
from repro.cluster.spec import ClusterSpec
from repro.errors import NetworkStallError
from repro.faults.retry import RetryPolicy, call_with_faults
from repro.obs import get_registry
from repro.storage.cache import (
    MISS,
    FrequencyPageCache,
    LRUPageCache,
    PartitionAwarePageCache,
)

#: Resident-marker frame for cached remote rows — the sim caches row
#: *identity*, not payload.
_RESIDENT = True


def group_by_owner(ids, owners, num_parts: int):
    """Bucket node ``ids`` by owning partition.

    Returns ``(sorted_ids, counts)``: ``sorted_ids`` reorders ``ids`` so
    every partition's members are contiguous (ascending partition, stable
    within one), and ``counts[p]`` is how many rows partition ``p`` owns.
    ``np.cumsum(counts)`` recovers the segment boundaries. This is the
    send-buffer packing kernel every distributed GNN runtime runs per
    mini-batch; :mod:`repro.bench` times it as ``halo_gather``.
    """
    ids = np.asarray(ids, dtype=np.int64)
    owners = np.asarray(owners, dtype=np.int64)
    parts = owners[ids]
    order = np.argsort(parts, kind="stable")
    counts = np.bincount(parts, minlength=num_parts).astype(np.int64)
    return ids[order], counts


@dataclass
class HaloReport:
    """What one mini-batch's halo exchange requested, hit, and paid."""

    node: int
    #: Distinct remote rows the batch needed.
    requested_rows: int = 0
    #: Of those, rows served by the local remote-feature cache.
    cache_hits: int = 0
    #: Rows actually pulled over the fabric (requested - hits).
    fetched_rows: int = 0
    #: Bytes pulled from each peer node (misses only).
    bytes_by_peer: dict = field(default_factory=dict)
    #: Modeled seconds the exchange took (gather + retry backoff).
    exchange_s: float = 0.0
    #: Seconds of that spent in ``net_stall`` retry backoff.
    retry_delay_s: float = 0.0
    #: Link-stall retries absorbed.
    retries: int = 0

    @property
    def bytes_total(self) -> int:
        return sum(self.bytes_by_peer.values())


class HaloExchange:
    """The halo-exchange engine of one simulated cluster.

    Owns the node->partition ``assignment``, one remote-feature cache per
    node, the cumulative traffic matrix, and the ``net_stall`` fault-key
    sequence. One instance is shared by every mini-batch of an epoch, so
    cache state (and therefore hit rates) evolves in execution order —
    callers must drive exchanges in a deterministic order.
    """

    def __init__(self, assignment: np.ndarray, fabric: NetworkFabric,
                 spec: ClusterSpec, bytes_per_row: int,
                 degrees: np.ndarray | None = None,
                 train_ids: np.ndarray | None = None,
                 retry_policy: RetryPolicy | None = None) -> None:
        self.assignment = np.asarray(assignment, dtype=np.int64)
        self.fabric = fabric
        self.spec = spec
        self.bytes_per_row = int(bytes_per_row)
        self.num_nodes = fabric.num_nodes
        self.retry_policy = retry_policy
        num_graph_nodes = len(self.assignment)
        capacity = int(spec.remote_cache_ratio * num_graph_nodes)
        self._caches = [
            self._build_cache(node, capacity, degrees, train_ids)
            for node in range(self.num_nodes)
        ]
        #: Cumulative bytes moved, ``traffic[src, dst]``.
        self.traffic = np.zeros((self.num_nodes, self.num_nodes),
                                dtype=np.int64)
        self.requested_rows = 0
        self.cache_hits = 0
        self.fetched_rows = 0
        self.exchange_s_total = 0.0
        self.retry_delay_s_total = 0.0
        self.retries = 0
        self._fault_seq = 0

    def _build_cache(self, node: int, capacity: int,
                     degrees: np.ndarray | None,
                     train_ids: np.ndarray | None):
        policy = self.spec.remote_cache
        if policy == "none" or capacity <= 0:
            return None
        if policy == "lru":
            return LRUPageCache(capacity)
        if policy == "freq":
            return FrequencyPageCache(capacity)
        # "partition": pin the rows whose owner partitions are training-hot
        # (degree mass x train density, as the storage tier does), with the
        # node's own rows scored out — local rows never cross the fabric.
        num_graph_nodes = len(self.assignment)
        sizes = np.bincount(self.assignment, minlength=self.num_nodes)
        if train_ids is None:
            train_counts = np.zeros(self.num_nodes)
        else:
            train_counts = np.bincount(
                self.assignment[np.asarray(train_ids, dtype=np.int64)],
                minlength=self.num_nodes,
            )
        density = train_counts / np.maximum(sizes, 1)
        mean_density = density.mean() if density.size else 0.0
        if mean_density > 0:
            density = density / mean_density
        if degrees is None:
            degrees = np.ones(num_graph_nodes, dtype=np.float64)
        hotness = np.asarray(degrees, dtype=np.float64) * (
            0.25 + density[self.assignment]
        )
        hotness[self.assignment == node] = -1.0
        return PartitionAwarePageCache(capacity, hotness)

    def cache_of(self, node: int):
        return self._caches[node]

    def next_fault_key(self) -> int:
        """The next ``net_stall`` operation key (explicit sequence — stays
        deterministic as long as exchanges run in a fixed order)."""
        key = self._fault_seq
        self._fault_seq += 1
        return key

    def exchange(self, node: int, input_nodes: np.ndarray) -> HaloReport:
        """Resolve one mini-batch's input features on ``node``.

        Splits the batch's unique input rows into local and halo,
        consults the node's remote cache for the halo rows, pulls the
        misses from their owners, and prices the pull on the fabric.
        """
        report = HaloReport(node=node)
        if self.num_nodes <= 1:
            return report
        ids = np.unique(np.asarray(input_nodes, dtype=np.int64))
        remote = ids[self.assignment[ids] != node]
        report.requested_rows = int(remote.size)
        if remote.size == 0:
            return report
        sorted_ids, _counts = group_by_owner(remote, self.assignment,
                                             self.num_nodes)
        cache = self._caches[node]
        misses_by_peer: dict = {}
        for node_id in sorted_ids.tolist():
            if cache is not None and cache.lookup(node_id) is not MISS:
                report.cache_hits += 1
                continue
            owner = int(self.assignment[node_id])
            misses_by_peer[owner] = misses_by_peer.get(owner, 0) + 1
            if cache is not None:
                cache.insert(node_id, _RESIDENT)
        report.fetched_rows = report.requested_rows - report.cache_hits
        report.bytes_by_peer = {
            peer: rows * self.bytes_per_row
            for peer, rows in sorted(misses_by_peer.items())
        }
        for peer, num_bytes in report.bytes_by_peer.items():
            self.traffic[peer, node] += num_bytes
            key = self.next_fault_key()
            _, stats = call_with_faults(
                lambda: None,
                site="net_stall",
                policy=self.retry_policy,
                key=key,
                exc_factory=lambda attempts, src=peer: NetworkStallError(
                    src=src, dst=node, attempts=attempts
                ),
            )
            report.retry_delay_s += stats.delay_s
            report.retries += stats.num_retries
        report.exchange_s = (
            self.fabric.gather_time(report.bytes_by_peer, node)
            + report.retry_delay_s
        )
        self._accumulate(report)
        return report

    def _accumulate(self, report: HaloReport) -> None:
        self.requested_rows += report.requested_rows
        self.cache_hits += report.cache_hits
        self.fetched_rows += report.fetched_rows
        self.exchange_s_total += report.exchange_s
        self.retry_delay_s_total += report.retry_delay_s
        self.retries += report.retries
        registry = get_registry()
        if registry.enabled and report.requested_rows:
            node = str(report.node)
            registry.counter(
                "repro_halo_requested_rows_total",
                "Distinct remote feature rows requested by mini-batches",
            ).labels(node=node).inc(report.requested_rows)
            registry.counter(
                "repro_halo_cache_hits_total",
                "Halo rows served from the remote-feature cache",
            ).labels(node=node).inc(report.cache_hits)
            registry.counter(
                "repro_halo_bytes_total",
                "Halo feature bytes pulled over the fabric",
            ).labels(node=node).inc(report.bytes_total)
            registry.histogram(
                "repro_halo_exchange_seconds",
                "Modeled halo-exchange time per mini-batch",
            ).labels(node=node).observe(report.exchange_s)

    # -- conservation accounting --------------------------------------------
    @property
    def bytes_sent_total(self) -> int:
        """Bytes leaving every owner node (traffic-matrix row sums)."""
        return int(self.traffic.sum())

    @property
    def bytes_received_total(self) -> int:
        """Bytes arriving at every requesting node (column sums) — equal
        to :attr:`bytes_sent_total` by construction; exposed separately so
        the conservation tests state the invariant against both views."""
        return int(self.traffic.sum(axis=0).sum())

    @property
    def hit_rate(self) -> float:
        if self.requested_rows == 0:
            return 0.0
        return self.cache_hits / self.requested_rows

    def summary(self) -> dict:
        """Cumulative exchange statistics (lands in ``extras['cluster']``)."""
        return {
            "requested_rows": self.requested_rows,
            "cache_hits": self.cache_hits,
            "fetched_rows": self.fetched_rows,
            "hit_rate": self.hit_rate,
            "bytes_moved": self.bytes_sent_total,
            "exchange_s": self.exchange_s_total,
            "retry_delay_s": self.retry_delay_s_total,
            "retries": self.retries,
        }
