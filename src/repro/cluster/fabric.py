"""Node-to-node network fabric model.

The cluster analogue of :class:`repro.gpu.pcie.PCIeLink`: per-link
bandwidth and latency with two contention effects —

* **NIC aggregate** — all flows entering (or leaving) one node share
  that node's NIC, so a node gathering halo features from ``k`` peers
  at once sees at most ``nic_bandwidth / k`` per flow and never more
  than ``nic_bandwidth`` in total;
* **topology** — ``alltoall`` gives every pair the full link bandwidth
  (a non-blocking switch); ``fat-tree`` divides bandwidth between nodes
  in *different pods* by the oversubscription factor (the classic 2:1
  leaf/spine ratio), so partition placement starts to matter.

Gradient allreduce has the two cost shapes the NCCL literature uses:
**ring** (bandwidth-optimal: ``2*(N-1)/N`` of the payload over the
slowest link on the ring, ``2*(N-1)`` latency hops) and **tree**
(latency-optimal: ``2*ceil(log2 N)`` steps each paying one latency and
one full payload transfer). Ring wins on large payloads, tree on small
ones — the crossover the cost model reproduces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.spec import ClusterSpec


@dataclass(frozen=True)
class NetworkFabric:
    """The wiring of one simulated cluster (see module docstring)."""

    num_nodes: int
    topology: str = "alltoall"
    link_bandwidth: float = 12.5e9
    link_latency_s: float = 5e-6
    nic_bandwidth: float = 12.5e9
    oversubscription: float = 2.0
    pod_size: int = 4

    @classmethod
    def from_spec(cls, spec: ClusterSpec) -> "NetworkFabric":
        return cls(
            num_nodes=spec.num_nodes,
            topology=spec.topology,
            link_bandwidth=spec.link_bandwidth,
            link_latency_s=spec.link_latency_s,
            nic_bandwidth=spec.nic_bandwidth,
            oversubscription=spec.oversubscription,
            pod_size=spec.pod_size,
        )

    # -- link structure ------------------------------------------------------
    def pod_of(self, node: int) -> int:
        """The pod (leaf switch) a node hangs off."""
        return node // self.pod_size

    def pair_bandwidth(self, a: int, b: int) -> float:
        """Uncontended bandwidth of the ``a``<->``b`` path."""
        bandwidth = self.link_bandwidth
        if self.topology == "fat-tree" and self.pod_of(a) != self.pod_of(b):
            bandwidth = bandwidth / self.oversubscription
        return bandwidth

    def effective_bandwidth(self, a: int, b: int,
                            concurrent_flows: int = 1) -> float:
        """Per-flow bandwidth of the path when the receiving node has
        ``concurrent_flows`` flows sharing its NIC."""
        if concurrent_flows < 1:
            raise ValueError("concurrent_flows must be >= 1")
        return min(self.pair_bandwidth(a, b),
                   self.nic_bandwidth / concurrent_flows)

    def transfer_time(self, num_bytes: float, src: int, dst: int,
                      concurrent_flows: int = 1) -> float:
        """Seconds to move ``num_bytes`` from ``src`` to ``dst``."""
        if num_bytes <= 0:
            return 0.0
        bandwidth = self.effective_bandwidth(src, dst, concurrent_flows)
        return self.link_latency_s + num_bytes / bandwidth

    # -- collective costs ----------------------------------------------------
    def gather_time(self, bytes_by_peer: dict, node: int) -> float:
        """Seconds for ``node`` to pull the given bytes from each peer,
        all flows in flight concurrently.

        Fluid max–min model: the NIC reallocates bandwidth as flows
        drain, so the makespan is the slower of (a) the largest single
        flow at its path bandwidth — a flow can never beat its own link
        — and (b) the NIC serialization bound, one latency plus
        ``total_bytes / nic_bandwidth``. (A fixed ``nic / num_flows``
        share would penalize skewed traffic — exactly the distribution a
        good partitioner produces — for bandwidth the small flows never
        use.)
        """
        flows = {peer: b for peer, b in bytes_by_peer.items()
                 if b > 0 and peer != node}
        if not flows:
            return 0.0
        slowest = max(
            self.link_latency_s + num_bytes / self.pair_bandwidth(peer, node)
            for peer, num_bytes in flows.items()
        )
        nic_floor = (self.link_latency_s
                     + sum(flows.values()) / self.nic_bandwidth)
        return max(slowest, nic_floor)

    def _slowest_ring_bandwidth(self) -> float:
        """Bandwidth of the slowest hop on the 0..N-1 ring."""
        worst = float("inf")
        for i in range(self.num_nodes):
            j = (i + 1) % self.num_nodes
            worst = min(worst, self.pair_bandwidth(i, j))
        return worst

    def allreduce_time(self, num_bytes: float, algo: str = "ring") -> float:
        """Seconds for one cross-node gradient allreduce of
        ``num_bytes`` per node."""
        n = self.num_nodes
        if n <= 1 or num_bytes <= 0:
            return 0.0
        if algo == "ring":
            bandwidth = min(self._slowest_ring_bandwidth(),
                            self.nic_bandwidth)
            moved = 2.0 * (n - 1) / n * num_bytes
            return 2.0 * (n - 1) * self.link_latency_s + moved / bandwidth
        if algo == "tree":
            # Reduce up + broadcast down a binary tree; inter-pod hops
            # bound the step bandwidth once the tree spans pods.
            bandwidth = self.link_bandwidth
            if (self.topology == "fat-tree"
                    and n > self.pod_size):
                bandwidth = bandwidth / self.oversubscription
            bandwidth = min(bandwidth, self.nic_bandwidth)
            steps = 2 * math.ceil(math.log2(n))
            return steps * (self.link_latency_s + num_bytes / bandwidth)
        raise ValueError(f"unknown allreduce algorithm {algo!r}")
