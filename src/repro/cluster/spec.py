"""Declarative description of a simulated training cluster.

A :class:`ClusterSpec` is to :meth:`Framework.run_epoch` what
:class:`~repro.config.RunConfig` is to a single node: a frozen, hashable
value object describing *how many* machines participate and *how* they
are wired — topology, per-link bandwidth/latency, NIC aggregate,
partitioner, remote-feature cache policy, and the allreduce algorithm.
``num_nodes=1`` is the degenerate cluster: the epoch driver produces
bit-identical results to a run without a cluster (the conformance tests
pin this), so the spec can be threaded through call sites
unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Supported node-to-node topologies.
TOPOLOGIES = ("alltoall", "fat-tree")
#: Supported graph partitioners (see :mod:`repro.cluster.partitioner`).
PARTITIONERS = ("greedy", "random", "hash")
#: Remote-feature cache policies (see :mod:`repro.cluster.halo`).
REMOTE_CACHES = ("freq", "partition", "lru", "none")
#: Gradient allreduce cost models (see :mod:`repro.cluster.fabric`).
ALLREDUCE_ALGOS = ("ring", "tree")


@dataclass(frozen=True)
class ClusterSpec:
    """One simulated multi-node training cluster.

    Bandwidths are bytes/second. The defaults model a 100 Gb/s RoCE
    fabric: each node owns one NIC whose aggregate caps all concurrent
    flows in or out of the node, and ``fat-tree`` divides inter-pod
    bandwidth by ``oversubscription`` (the classic 2:1 spine).
    """

    num_nodes: int = 4
    topology: str = "alltoall"
    #: Point-to-point bandwidth of one fabric link.
    link_bandwidth: float = 12.5e9
    #: One-way latency per fabric message.
    link_latency_s: float = 5e-6
    #: Per-node NIC aggregate shared by all of that node's flows.
    nic_bandwidth: float = 12.5e9
    #: Inter-pod bandwidth divisor of the fat-tree topology.
    oversubscription: float = 2.0
    #: Nodes per pod (leaf switch) of the fat-tree topology.
    pod_size: int = 4
    #: Graph partitioner: "greedy" (LDG-style edge-cut minimization),
    #: "random" (balanced random) or "hash" (modulo).
    partitioner: str = "greedy"
    #: Greedy partitioner's balance slack: no partition exceeds
    #: ``ceil(n/parts * (1 + balance_slack))`` nodes.
    balance_slack: float = 0.05
    #: Remote-feature cache per node: "freq" (FastSample-style observed
    #: frequency), "partition" (BGL-style pinned hotness), "lru", "none".
    remote_cache: str = "freq"
    #: Per-node remote cache capacity as a fraction of all graph nodes.
    remote_cache_ratio: float = 0.05
    #: Cross-node gradient allreduce algorithm: "ring" or "tree".
    allreduce: str = "ring"

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        if self.topology not in TOPOLOGIES:
            raise ConfigError(
                f"unknown topology {self.topology!r}; "
                f"expected one of {TOPOLOGIES}"
            )
        if self.link_bandwidth <= 0 or self.nic_bandwidth <= 0:
            raise ConfigError("fabric bandwidths must be positive")
        if self.link_latency_s < 0:
            raise ConfigError("link_latency_s must be >= 0")
        if self.oversubscription < 1.0:
            raise ConfigError("oversubscription must be >= 1")
        if self.pod_size < 1:
            raise ConfigError("pod_size must be >= 1")
        if self.partitioner not in PARTITIONERS:
            raise ConfigError(
                f"unknown partitioner {self.partitioner!r}; "
                f"expected one of {PARTITIONERS}"
            )
        if self.balance_slack < 0:
            raise ConfigError("balance_slack must be >= 0")
        if self.remote_cache not in REMOTE_CACHES:
            raise ConfigError(
                f"unknown remote_cache {self.remote_cache!r}; "
                f"expected one of {REMOTE_CACHES}"
            )
        if not 0.0 <= self.remote_cache_ratio <= 1.0:
            raise ConfigError("remote_cache_ratio must be in [0, 1]")
        if self.allreduce not in ALLREDUCE_ALGOS:
            raise ConfigError(
                f"unknown allreduce {self.allreduce!r}; "
                f"expected one of {ALLREDUCE_ALGOS}"
            )
