"""Graph partitioners for multi-node training.

Three strategies, all returning a validated dense node→part assignment
(see :func:`repro.graph.partition.validate_assignment`):

* :func:`hash_partition` — ``node % parts``. The zero-information
  baseline real systems default to; perfectly balanced, worst-case cut
  on community graphs (consecutive IDs — one community — scatter across
  all partitions).
* :func:`random_partition` — balanced random (a seeded permutation
  dealt round-robin). Expected cut fraction ``1 - 1/parts``.
* :func:`greedy_partition` — streaming METIS-style edge-cut
  minimization (linear deterministic greedy, à la Fennel/LDG): nodes
  stream in ID order and each picks the partition holding most of its
  already-placed neighbors, weighted by remaining capacity; a hard
  capacity of ``ceil(n/parts * (1 + balance_slack))`` enforces balance.
  The synthetic generators lay communities out contiguously by node ID,
  so the stream order gives the greedy pass the same locality signal a
  multilevel METIS would recover.

The greedy pass is vectorized over blocks of the stream: affinity
counts for a whole block are one ``np.add.at`` over the block's
adjacency slice (blocks are contiguous in ID order, so the slice is a
single range of the CSR arrays); only the final argmax-and-place runs
per node, keeping the pass O(E) with small constants.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError
from repro.graph.partition import validate_assignment


def hash_partition(num_nodes: int, num_parts: int) -> np.ndarray:
    """Modulo assignment (the zero-information baseline)."""
    if num_parts < 1:
        raise ConfigError("num_parts must be >= 1")
    return (np.arange(num_nodes, dtype=np.int64) % num_parts)


def random_partition(num_nodes: int, num_parts: int,
                     seed: int = 0) -> np.ndarray:
    """Balanced random assignment (partition sizes differ by <= 1)."""
    if num_parts < 1:
        raise ConfigError("num_parts must be >= 1")
    rng = np.random.default_rng(seed)
    assignment = np.empty(num_nodes, dtype=np.int64)
    assignment[rng.permutation(num_nodes)] = (
        np.arange(num_nodes, dtype=np.int64) % num_parts
    )
    return assignment


def greedy_partition(graph, num_parts: int, balance_slack: float = 0.05,
                     block_size: int = 64) -> np.ndarray:
    """Streaming greedy edge-cut minimization with a balance constraint.

    Each node joins the partition maximizing
    ``affinity * (1 - size/capacity)`` where ``affinity`` is the number
    of its already-placed neighbors in that partition; full partitions
    are excluded. Capacity is ``ceil(n/parts * (1 + balance_slack))``
    (total capacity always covers every node). Deterministic: ties break
    on the lowest partition index.
    """
    if num_parts < 1:
        raise ConfigError("num_parts must be >= 1")
    if balance_slack < 0:
        raise ConfigError("balance_slack must be >= 0")
    n = graph.num_nodes
    if num_parts == 1:
        return np.zeros(n, dtype=np.int64)
    capacity = max(
        math.ceil(n / num_parts),
        math.ceil(n / num_parts * (1.0 + balance_slack)),
    )
    indptr = graph.indptr
    indices = graph.indices
    assignment = np.full(n, -1, dtype=np.int64)
    sizes = np.zeros(num_parts, dtype=np.int64)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block = stop - start
        lo, hi = int(indptr[start]), int(indptr[stop])
        neigh_parts = assignment[indices[lo:hi]]
        degs = np.diff(indptr[start:stop + 1])
        rows = np.repeat(np.arange(block), degs)
        placed = neigh_parts >= 0
        affinity = np.zeros((block, num_parts), dtype=np.float64)
        np.add.at(affinity, (rows[placed], neigh_parts[placed]), 1.0)
        for i in range(block):
            score = affinity[i] * (1.0 - sizes / capacity)
            score[sizes >= capacity] = -np.inf
            best = int(np.argmax(score))
            assignment[start + i] = best
            sizes[best] += 1
    # Second-chance pass over intra-block edges: the blockwise affinity
    # above ignores edges between nodes of the same block, which matters
    # for tightly clustered ID ranges. One refinement sweep (still
    # capacity-bounded, still deterministic) re-places each node with
    # full neighbor knowledge.
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block = stop - start
        lo, hi = int(indptr[start]), int(indptr[stop])
        neigh_parts = assignment[indices[lo:hi]]
        degs = np.diff(indptr[start:stop + 1])
        rows = np.repeat(np.arange(block), degs)
        affinity = np.zeros((block, num_parts), dtype=np.float64)
        np.add.at(affinity, (rows, neigh_parts), 1.0)
        for i in range(block):
            node = start + i
            current = int(assignment[node])
            score = affinity[i] * (1.0 - sizes / capacity)
            score[sizes >= capacity] = -np.inf
            score[current] = affinity[i][current] * (
                1.0 - (sizes[current] - 1) / capacity
            )
            best = int(np.argmax(score))
            if best != current:
                assignment[node] = best
                sizes[current] -= 1
                sizes[best] += 1
    return assignment


def partition_graph(graph, num_parts: int, method: str = "greedy",
                    seed: int = 0,
                    balance_slack: float = 0.05) -> np.ndarray:
    """Partition ``graph`` into ``num_parts`` with the named method.

    The returned assignment is validated: every node assigned exactly
    once, partitions in range.
    """
    if method == "greedy":
        assignment = greedy_partition(graph, num_parts,
                                      balance_slack=balance_slack)
    elif method == "random":
        assignment = random_partition(graph.num_nodes, num_parts, seed=seed)
    elif method == "hash":
        assignment = hash_partition(graph.num_nodes, num_parts)
    else:
        raise ConfigError(
            f"unknown partitioner {method!r}; "
            f"expected 'greedy', 'random' or 'hash'"
        )
    return validate_assignment(assignment, graph.num_nodes,
                               num_parts=num_parts)
