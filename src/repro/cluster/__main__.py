"""Cluster-simulation smoke gate from the command line.

Usage::

    python -m repro.cluster                       # print the comparison
    python -m repro.cluster --write-baseline \\
        benchmarks/results/cluster_baseline.json  # refresh the baseline
    python -m repro.cluster --check-baseline \\
        benchmarks/results/cluster_baseline.json  # the CI smoke gate

Runs a deterministic 4-node mini configuration — every smoke framework
under the *informed* cluster (greedy edge-cut partitioning + frequency
remote cache) and under the *uninformed* one (random partitioning, no
cache) — then:

* verifies every cluster timeline reconciles with its modeled epoch
  time (lanes including ``network`` end exactly at ``epoch_time``);
* asserts the informed cluster beats the uninformed one on modeled
  epoch time for every framework (the tentpole claim of the cluster
  tier);
* with ``--check-baseline``, gates the instrumented metrics (epoch
  seconds, network share, halo hit rate, edge-cut fraction, fabric
  traffic) against the committed snapshot via
  :mod:`repro.obs.regress` tolerances.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cluster.spec import ClusterSpec
from repro.config import RunConfig
from repro.obs import instrumented, to_snapshot
from repro.obs.regress import build_baseline, check, format_violation
from repro.pipeline import ExecutionSpec
from repro.utils.format import ascii_table

#: Reconciliation tolerance between timeline extent and epoch time.
RECONCILE_TOL = 1e-6

#: Frameworks the smoke gate drives: the baseline strategy bundle plus
#: the out-of-core stack (its pipelined timeline exercises the network
#: spans differently).
SMOKE_FRAMEWORKS = ("dgl", "fastgl-ooc")


def smoke_dataset():
    """A tiny self-contained dataset for the CI smoke gate (never reads
    the named dataset registry; mirrors ``repro.obs.regress``)."""
    from repro.graph.datasets import Dataset, DatasetSpec, PaperScale

    spec = DatasetSpec(
        name="cluster-smoke",
        num_nodes=4000,
        avg_degree=10.0,
        feature_dim=128,
        num_classes=8,
        train_fraction=0.2,
        paper=PaperScale(300_000, 3_000_000, 1 << 30),
    )
    return Dataset(spec, seed=0)


def smoke_config() -> RunConfig:
    # Three epochs so the remote caches see repeat traffic; small batches
    # so every lane runs several rounds.
    return RunConfig(batch_size=64, fanouts=(5, 5), num_gpus=2,
                     num_epochs=3, seed=0)


def smoke_specs(num_nodes: int) -> dict:
    """The two cluster variants the gate compares.

    A 20 Gb/s fabric (vs the 100 Gb/s default) so halo traffic is a
    visible share of the mini epochs the smoke runs.
    """
    fabric = dict(link_bandwidth=2.5e9, nic_bandwidth=2.5e9)
    return {
        "greedy+freq": ClusterSpec(num_nodes=num_nodes,
                                   partitioner="greedy",
                                   remote_cache="freq", **fabric),
        "random+none": ClusterSpec(num_nodes=num_nodes,
                                   partitioner="random",
                                   remote_cache="none", **fabric),
    }


def _publish_summary(registry, report, variant: str) -> None:
    """Expose the per-run summary as gauges so the baseline gate diffs
    epoch/network seconds and the cluster counters directly."""
    labels = {"framework": report.framework, "variant": variant}
    cluster = report.extras.get("cluster", {})
    halo = cluster.get("halo", {})
    partition = cluster.get("partition", {})
    for metric, value in (
        ("repro_cluster_epoch_seconds", report.epoch_time),
        ("repro_cluster_network_seconds", report.phases.network),
        ("repro_cluster_halo_hit_rate", halo.get("hit_rate", 0.0)),
        ("repro_cluster_halo_bytes", halo.get("bytes_moved", 0)),
        ("repro_cluster_cut_fraction_run",
         partition.get("cut_fraction", 0.0)),
    ):
        registry.gauge(metric, "Cluster smoke summary statistic").labels(
            **labels).set(float(value))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Run the deterministic multi-node smoke comparison "
                    "and gate it against a committed baseline.",
    )
    parser.add_argument("--nodes", type=int, default=4,
                        help="simulated machines (default: %(default)s)")
    parser.add_argument("--framework", action="append", default=None,
                        metavar="NAME",
                        help="framework to run (repeatable; default: "
                             + ", ".join(SMOKE_FRAMEWORKS) + ")")
    parser.add_argument("--snapshot", metavar="PATH", default=None,
                        help="also write the raw metrics snapshot here")
    parser.add_argument("--check-baseline", metavar="PATH", default=None,
                        help="gate instrumented cluster metrics against a "
                             "committed baseline (repro.obs.regress)")
    parser.add_argument("--write-baseline", metavar="PATH", default=None,
                        help="write/refresh the baseline from this run")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="default relative tolerance when writing a "
                             "baseline (default: %(default)s)")
    args = parser.parse_args(argv)

    from repro.frameworks import FRAMEWORKS, available_frameworks

    frameworks = tuple(args.framework or SMOKE_FRAMEWORKS)
    unknown = [n for n in frameworks if n not in available_frameworks()]
    if unknown:
        parser.error(f"unknown framework(s): {unknown}; "
                     f"available: {list(available_frameworks())}")

    dataset = smoke_dataset()
    config = smoke_config()
    specs = smoke_specs(args.nodes)

    reports: dict = {}
    with instrumented() as registry:
        for name in frameworks:
            for variant, spec in specs.items():
                report = FRAMEWORKS[name]().run_epoch(
                    dataset, config, model_name="gcn",
                    execution=ExecutionSpec(cluster=spec),
                )
                reports[(name, variant)] = report
                _publish_summary(registry, report, variant)
        snapshot = to_snapshot(registry)

    rows = []
    for (name, variant), report in reports.items():
        halo = report.extras["cluster"].get("halo", {})
        partition = report.extras["cluster"].get("partition", {})
        rows.append([
            name, variant,
            round(report.epoch_time * 1e3, 4),
            round(report.phases.network * 1e3, 4),
            f"{partition.get('cut_fraction', 0.0):.1%}",
            f"{halo.get('hit_rate', 0.0):.1%}",
            halo.get("bytes_moved", 0),
        ])
    print(ascii_table(
        ["framework", "cluster", "epoch_ms", "network_ms", "cut",
         "halo_hits", "fabric_bytes"],
        rows,
    ))

    failures = 0
    for (name, variant), report in reports.items():
        spans = report.timeline()
        extent = max((span.end for span in spans), default=0.0)
        delta = abs(extent - report.epoch_time)
        if delta > RECONCILE_TOL:
            print(f"{name}/{variant}: TIMELINE MISMATCH: extent "
                  f"{extent!r} vs epoch_time {report.epoch_time!r}",
                  file=sys.stderr)
            failures += 1
    if not failures:
        print(f"all {len(reports)} cluster timelines reconcile "
              f"(tolerance {RECONCILE_TOL:g})")

    for name in frameworks:
        informed = reports[(name, "greedy+freq")].epoch_time
        uninformed = reports[(name, "random+none")].epoch_time
        if informed < uninformed:
            print(f"{name}: greedy+freq beats random+none "
                  f"({uninformed / informed:.2f}x)")
        else:
            print(f"{name}: REGRESSION: greedy+freq ({informed:.6f}s) "
                  f"not faster than random+none ({uninformed:.6f}s)",
                  file=sys.stderr)
            failures += 1

    if args.snapshot:
        with open(args.snapshot, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
        print(f"wrote snapshot: {args.snapshot}")

    if args.write_baseline:
        baseline = build_baseline(snapshot,
                                  default_tolerance=args.tolerance)
        baseline["suite"] = [f"{name}/{variant}" for name in frameworks
                             for variant in specs]
        with open(args.write_baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote baseline: {args.write_baseline} "
              f"({len(baseline['metrics'])} metrics)")
        return 0

    if args.check_baseline:
        try:
            with open(args.check_baseline) as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            print(f"no baseline at {args.check_baseline}; create one with "
                  "--write-baseline", file=sys.stderr)
            return 2
        violations = check(snapshot, baseline)
        checked = len(baseline.get("metrics", {}))
        if violations:
            print(f"{len(violations)} of {checked} cluster metrics "
                  "regressed:")
            for violation in violations:
                print("  " + format_violation(violation))
            return 1
        print(f"ok: {checked} cluster metrics within tolerance")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
