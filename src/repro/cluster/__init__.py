"""Multi-node distributed training simulation.

The cluster tier scales the single-node epoch model across simulated
machines: a METIS-style graph partitioner assigns every node of the
graph to a machine, mini-batches pay a **halo exchange** for the input
features their machine does not own (softened by a per-machine remote
feature cache), and each optimizer step pays a hierarchical gradient
sync — intra-node NCCL plus an inter-node ring or tree allreduce over a
contended fabric model. All of it lands in the ``network`` lane of the
epoch timeline, which still reconciles to the epoch time.

Entry points: pass ``cluster=ClusterSpec(...)`` to
:func:`repro.api.run` / :meth:`Framework.run_epoch`, or run the scaling
experiment (``python -m repro.experiments ext_cluster_strong``) and the
CI smoke gate (``python -m repro.cluster --check-baseline ...``).
"""

from repro.cluster.engine import ClusterState
from repro.cluster.fabric import NetworkFabric
from repro.cluster.halo import HaloExchange, HaloReport, group_by_owner
from repro.cluster.partitioner import (
    greedy_partition,
    hash_partition,
    partition_graph,
    random_partition,
)
from repro.cluster.spec import (
    ALLREDUCE_ALGOS,
    PARTITIONERS,
    REMOTE_CACHES,
    TOPOLOGIES,
    ClusterSpec,
)

__all__ = [
    "ALLREDUCE_ALGOS",
    "PARTITIONERS",
    "REMOTE_CACHES",
    "TOPOLOGIES",
    "ClusterSpec",
    "ClusterState",
    "HaloExchange",
    "HaloReport",
    "NetworkFabric",
    "greedy_partition",
    "group_by_owner",
    "hash_partition",
    "partition_graph",
    "random_partition",
]
