"""Deterministic fault injection and the resilience machinery it exercises.

The layer has two halves:

* :mod:`repro.faults.plan` — a seedable :class:`FaultPlan` describing
  per-site fault probabilities and shapes (NVMe read errors and
  slowdowns, PCIe transfer stalls, worker-process crashes, serving-lane
  stalls). Decisions are pure functions of ``(seed, site, key)``, so the
  same plan produces the same fault trace every run.
* :mod:`repro.faults.retry` — bounded retry with exponential backoff +
  jitter in *modeled* time. The storage scheduler and the feature
  loaders route faultable operations through
  :func:`~repro.faults.retry.call_with_faults`; the parallel executor
  detects crashed workers and reassigns their chunks; the serving
  admission controller sheds load when deadline drops spike.

Activate a plan with :func:`set_fault_plan` or scope one with
:func:`fault_scope`; the default plan is disabled and costs one
attribute read per site check. The conformance harness under
``tests/conformance/`` holds the whole stack to its contract: a seeded
epoch with faults injected *and fully retried* is bit-identical (model
parameters and losses) to the fault-free run, and its timeline still
reconciles — retries appear as explicit spans, they never corrupt state.
"""

from repro.errors import (
    FaultError,
    ParallelTaskError,
    StorageReadError,
    TransferStallError,
    WorkerCrashError,
)
from repro.faults.plan import (
    KNOWN_SITES,
    NO_FAULTS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    fault_scope,
    get_fault_plan,
    set_fault_plan,
)
from repro.faults.retry import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    RetryStats,
    call_with_faults,
)

__all__ = [
    "KNOWN_SITES",
    "NO_FAULTS",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "fault_scope",
    "get_fault_plan",
    "set_fault_plan",
    "DEFAULT_RETRY_POLICY",
    "RetryPolicy",
    "RetryStats",
    "call_with_faults",
    "FaultError",
    "ParallelTaskError",
    "StorageReadError",
    "TransferStallError",
    "WorkerCrashError",
]
