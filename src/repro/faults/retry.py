"""Bounded retry with exponential backoff + jitter (modeled time).

The resilience counterpart of :mod:`repro.faults.plan`: where the plan
decides an operation fails, :func:`call_with_faults` absorbs the failure
by retrying it — each retry paying a *modeled* backoff delay (this is a
simulation; nothing sleeps) that flows into the caller's IO accounting
and shows up as an explicit ``retry`` span in the epoch timeline.

The schedule contract the property tests pin:

* delays are **monotone non-decreasing** across attempts;
* each delay stays within ``jitter_fraction`` of its nominal value
  ``min(base * multiplier**k, max_delay)``;
* total attempts never exceed ``max_attempts``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultError
from repro.faults.plan import get_fault_plan
from repro.obs import get_registry


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of one site's retry budget and backoff curve."""

    #: Total tries including the first (>= 1); 1 disables retries.
    max_attempts: int = 4
    #: Modeled delay before the first retry.
    base_delay_s: float = 1e-4
    #: Geometric growth per retry.
    multiplier: float = 2.0
    #: Ceiling on any single delay.
    max_delay_s: float = 0.1
    #: Each delay is drawn within +/- this fraction of nominal.
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1 (backoff, not decay)")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")

    def nominal_delay(self, retry_index: int) -> float:
        """The un-jittered delay before retry ``retry_index`` (0-based)."""
        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        return min(self.base_delay_s * self.multiplier ** retry_index,
                   self.max_delay_s)

    def schedule(self, rng=None) -> list:
        """The full backoff schedule (one delay per possible retry).

        Jitter draws come from ``rng`` when given (deterministic retries
        need a seeded generator); without one the schedule is nominal.
        Monotonicity is enforced by construction: a jittered delay never
        drops below its predecessor.
        """
        delays: list = []
        previous = 0.0
        for k in range(self.max_attempts - 1):
            nominal = self.nominal_delay(k)
            delay = nominal
            if rng is not None and self.jitter_fraction > 0:
                offset = (2.0 * float(rng.random()) - 1.0)
                delay = nominal * (1.0 + self.jitter_fraction * offset)
            delay = max(delay, previous)
            delays.append(delay)
            previous = delay
        return delays


#: Defaults used by the storage scheduler and the feature loaders.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class RetryStats:
    """What one resilient call cost."""

    attempts: int = 1
    num_retries: int = 0
    #: Modeled seconds spent backing off between attempts.
    delay_s: float = 0.0


def call_with_faults(fn, *, site: str, policy: RetryPolicy | None = None,
                     exc_factory=None, key: int | None = None,
                     plan=None):
    """Run ``fn`` under the active fault plan with bounded retries.

    Returns ``(result, stats)``. The plan decides up front how many
    consecutive attempts the operation fails
    (:meth:`~repro.faults.plan.FaultPlan.failures_planned`); each failed
    attempt records a fault event and pays one backoff delay. When the
    planned failures exceed the retry budget the operation fails for
    real: ``exc_factory(attempts)`` (default :class:`FaultError`) is
    raised and ``fn`` never runs — there is no partial result to leak.

    With the plan disabled this is one branch and a direct call.
    """
    plan = plan if plan is not None else get_fault_plan()
    policy = policy or DEFAULT_RETRY_POLICY
    stats = RetryStats()
    if not plan.enabled or site not in plan.sites:
        return fn(), stats
    if key is None:
        key = plan.next_key(site)
    planned = plan.failures_planned(site, key)
    if planned == 0:
        return fn(), stats
    schedule = policy.schedule(rng=plan.jitter_rng(site, key))
    registry = get_registry()
    for attempt in range(planned):
        plan.record(site, key, attempt, "fail")
        if attempt + 1 >= policy.max_attempts:
            # Retry budget exhausted with failures still planned.
            stats.attempts = attempt + 1
            if registry.enabled:
                registry.counter(
                    "repro_faults_exhausted_total",
                    "Operations abandoned after the retry budget ran out",
                ).labels(site=site).inc()
            if exc_factory is None:
                raise FaultError(
                    f"fault site {site!r} (op {key}) still failing after "
                    f"{attempt + 1} attempt(s)"
                )
            raise exc_factory(attempt + 1)
        stats.delay_s += schedule[attempt]
        stats.num_retries += 1
    stats.attempts = stats.num_retries + 1
    if registry.enabled and stats.num_retries:
        registry.counter(
            "repro_faults_retries_total",
            "Retries absorbed by the resilience layer",
        ).labels(site=site).inc(stats.num_retries)
        registry.counter(
            "repro_faults_retry_delay_seconds_total",
            "Modeled seconds spent in retry backoff",
        ).labels(site=site).inc(stats.delay_s)
    return fn(), stats
