"""Deterministic, seedable fault injection.

A :class:`FaultPlan` describes *where* and *how often* the simulated
hardware misbehaves: each **site** (a named injection point compiled into
the hot paths — NVMe reads, PCIe transfers, worker processes, the serving
GPU lane) carries a :class:`FaultSpec` with a firing probability and a
failure/latency shape. Every decision is a pure function of ``(plan
seed, site, operation key)``, so the same plan driven through the same
call sequence produces the same fault trace — the property the chaos
tests pin.

Two decision shapes cover all sites:

* **failure sites** — :meth:`FaultPlan.failures_planned` returns how many
  consecutive times the operation identified by ``key`` fails before
  succeeding (capped by ``max_failures``). The resilience layer retries
  through them; when the cap exceeds the retry budget the operation
  fails for real.
* **delay sites** — :meth:`FaultPlan.stall` returns extra modeled seconds
  (a slow read, a PCIe hiccup, a GPU stall) or 0.0.

The active plan is process-global (like the metrics registry) so
instrumented code never threads it through call signatures; forked
workers inherit it. The default plan is disabled and free: every site
check is one attribute read.
"""

from __future__ import annotations

import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.obs import get_registry

#: The fault sites compiled into the codebase, with the real-hardware
#: failure each one models (see docs/resilience.md).
KNOWN_SITES = (
    "storage_read",   # NVMe page-read error (media/controller failure)
    "storage_slow",   # NVMe latency outlier (thermal throttle, GC pause)
    "pcie_stall",     # PCIe transfer stall / DMA timeout
    "worker_crash",   # worker-process loss (GPU OOM kill, XID, node loss)
    "serve_stall",    # serving-lane stall blowing request deadlines
    "net_stall",      # node-to-node fabric link stall (NIC/spine congestion)
    "replica_crash",  # serving-replica loss mid-traffic (host/GPU death)
)


@dataclass(frozen=True)
class FaultSpec:
    """How one site misbehaves.

    ``probability`` is the per-operation chance of faulting at all;
    ``max_failures`` caps how many consecutive attempts an operation can
    fail (failure sites); ``delay_s`` is the modeled stall added when a
    delay site fires.
    """

    probability: float = 0.0
    max_failures: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.max_failures < 0:
            raise ValueError("max_failures must be >= 0")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the plan's trace."""

    site: str
    #: Operation key the decision was drawn for.
    key: int
    #: Attempt number the fault hit (0 = first try; delay sites use 0).
    attempt: int
    #: "fail", "crash" or "stall".
    kind: str
    delay_s: float = 0.0


def _site_id(site: str) -> int:
    """Stable integer identity of a site name (seeds the per-site RNG)."""
    return zlib.crc32(site.encode("utf-8"))


class FaultPlan:
    """A seeded description of which operations fault, and how.

    ``sites`` maps site name -> :class:`FaultSpec`; unknown names are
    allowed (third-party sites), known names are listed in
    :data:`KNOWN_SITES`. A plan with no sites is disabled and injects
    nothing.
    """

    def __init__(self, seed: int = 0, sites: dict | None = None) -> None:
        self.seed = int(seed)
        self.sites = dict(sites or {})
        for name, spec in self.sites.items():
            if not isinstance(spec, FaultSpec):
                raise TypeError(
                    f"site {name!r} must map to a FaultSpec, "
                    f"got {type(spec).__name__}"
                )
        self.enabled = any(
            spec.probability > 0 for spec in self.sites.values()
        )
        self._lock = threading.Lock()
        self._counters: dict = {}
        self.events: list = []

    # -- construction helpers ------------------------------------------------
    @classmethod
    def disabled(cls) -> "FaultPlan":
        return cls(seed=0, sites={})

    @classmethod
    def chaos(cls, seed: int, probability: float = 0.2,
              max_failures: int = 2, delay_s: float = 1e-4) -> "FaultPlan":
        """A plan exercising every known site at the same intensity —
        the conformance harness's default storm."""
        sites = {
            "storage_read": FaultSpec(probability=probability,
                                      max_failures=max_failures),
            "storage_slow": FaultSpec(probability=probability,
                                      delay_s=delay_s),
            "pcie_stall": FaultSpec(probability=probability,
                                    max_failures=max_failures),
            "worker_crash": FaultSpec(probability=probability,
                                      max_failures=max_failures),
            "serve_stall": FaultSpec(probability=probability,
                                     delay_s=delay_s),
            "net_stall": FaultSpec(probability=probability,
                                   max_failures=max_failures),
            "replica_crash": FaultSpec(probability=probability,
                                       max_failures=max_failures),
        }
        return cls(seed=seed, sites=sites)

    def spec(self, site: str) -> FaultSpec | None:
        return self.sites.get(site)

    # -- deterministic decisions ---------------------------------------------
    def _rng(self, site: str, key: int, stream: int = 0):
        return np.random.default_rng(np.random.SeedSequence(
            [self.seed, _site_id(site), int(key), int(stream)]
        ))

    def next_key(self, site: str) -> int:
        """The next per-site operation key (a per-process sequence number).

        Callers that can name their operation stably (page ID, chunk
        index, batch ID) should pass that instead — explicit keys stay
        deterministic across process topologies; sequence keys are only
        deterministic for a fixed call order within one process.
        """
        with self._lock:
            key = self._counters.get(site, 0)
            self._counters[site] = key + 1
        return key

    def failures_planned(self, site: str, key: int) -> int:
        """How many consecutive attempts the operation ``key`` at ``site``
        fails before succeeding. Pure in ``(seed, site, key)``."""
        spec = self.sites.get(site)
        if spec is None or spec.probability <= 0 or spec.max_failures <= 0:
            return 0
        draws = self._rng(site, key).random(spec.max_failures)
        failures = 0
        for value in draws:
            if value >= spec.probability:
                break
            failures += 1
        return failures

    def should_crash(self, site: str, key: int, attempt: int) -> bool:
        """Whether attempt ``attempt`` of operation ``key`` crashes.

        Pure — safe to consult from any process (forked workers decide
        their own fate; the supervising parent records the event)."""
        return attempt < self.failures_planned(site, key)

    def stall(self, site: str, key: int | None = None) -> float:
        """Extra modeled seconds a delay site adds to operation ``key``
        (0.0 when the site does not fire)."""
        spec = self.sites.get(site)
        if spec is None or spec.probability <= 0 or spec.delay_s <= 0:
            return 0.0
        if key is None:
            key = self.next_key(site)
        rng = self._rng(site, key)
        if rng.random() >= spec.probability:
            return 0.0
        # Scale in [0.5, 1.5): outliers are never exactly alike.
        delay = spec.delay_s * (0.5 + rng.random())
        self.record(site, key, 0, "stall", delay_s=delay)
        return delay

    def jitter_rng(self, site: str, key: int):
        """The RNG retry backoff jitter draws from for operation ``key``
        (independent of the fault-decision stream)."""
        return self._rng(site, key, stream=1)

    # -- trace ---------------------------------------------------------------
    def record(self, site: str, key: int, attempt: int, kind: str,
               delay_s: float = 0.0) -> FaultEvent:
        """Append one event to the fault trace (and the metrics registry)."""
        event = FaultEvent(site=site, key=int(key), attempt=int(attempt),
                           kind=kind, delay_s=float(delay_s))
        with self._lock:
            self.events.append(event)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_faults_injected_total",
                "Injected faults by site and kind",
            ).labels(site=site, kind=kind).inc()
        return event

    def trace(self) -> tuple:
        """The fault trace as a comparable tuple of events."""
        with self._lock:
            return tuple(self.events)

    def reset_trace(self) -> None:
        """Drop recorded events and per-site sequence counters."""
        with self._lock:
            self.events.clear()
            self._counters.clear()

    def fired(self, site: str | None = None) -> int:
        """Number of recorded events (optionally for one site)."""
        with self._lock:
            if site is None:
                return len(self.events)
            return sum(1 for e in self.events if e.site == site)


#: The always-off plan the process starts with.
NO_FAULTS = FaultPlan.disabled()

_active_plan: FaultPlan = NO_FAULTS
_active_lock = threading.Lock()


def get_fault_plan() -> FaultPlan:
    """The process-wide active fault plan (disabled until opted in)."""
    return _active_plan


def set_fault_plan(plan: FaultPlan | None) -> FaultPlan:
    """Install ``plan`` (None = disable); returns the previous plan."""
    global _active_plan
    with _active_lock:
        previous = _active_plan
        _active_plan = plan if plan is not None else NO_FAULTS
    return previous


@contextmanager
def fault_scope(plan: FaultPlan | None):
    """Run a block under ``plan``, restoring the previous plan after."""
    previous = set_fault_plan(plan)
    try:
        yield get_fault_plan()
    finally:
        set_fault_plan(previous)
