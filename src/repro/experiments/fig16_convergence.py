"""Figure 16: training-loss convergence — FastGL vs DGL on Reddit.

FastGL's optimizations are exact (Match moves the same feature values;
Reorder permutes whole mini-batches; Fused-Map produces a bijective ID
map), so training converges like the baseline. Here both frameworks train
real numpy GCN/GIN models; the reported metric is the loss curve and the
gap between the two frameworks' smoothed curves.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.config import RunConfig
from repro.experiments.runner import ExperimentResult
from repro.frameworks import DGLFramework, FastGLFramework
from repro.graph.datasets import get_dataset


def run(
    dataset_name: str = "reddit",
    models=("gcn", "gin"),
    num_epochs: int = 2,
    config: RunConfig | None = None,
) -> ExperimentResult:
    config = config or RunConfig(num_gpus=2, batch_size=512,
                                 fanouts=(5, 5, 5))
    config = replace(config, train_model=True, num_epochs=num_epochs)
    dataset = get_dataset(dataset_name, seed=config.seed)
    dataset.materialize_features()
    result = ExperimentResult(
        exp_id="fig16",
        title=f"Training-loss convergence on {dataset_name} "
              f"({num_epochs} epochs)",
        headers=["model", "framework", "first_loss", "final_loss",
                 "mean_last5"],
    )
    for model in models:
        curves = {}
        for framework in (DGLFramework(), FastGLFramework()):
            report = framework.run_epoch(dataset, config, model_name=model)
            losses = list(report.losses)
            curves[framework.name] = losses
            result.rows.append([
                model, framework.name,
                round(losses[0], 4), round(losses[-1], 4),
                round(float(np.mean(losses[-5:])), 4),
            ])
            result.series.append(
                (f"{model}/{framework.name}",
                 list(range(len(losses))), losses)
            )
        # Per-iteration losses are stochastic (different batch orders);
        # convergence agreement means the *epoch-level* curves coincide.
        last = max(1, len(curves["dgl"]) // num_epochs)
        a = float(np.mean(curves["dgl"][-last:]))
        b = float(np.mean(curves["fastgl"][-last:]))
        rel = abs(a - b) / max(abs(a), 1e-9)
        result.notes.append(
            f"{model}: last-epoch mean loss DGL={a:.4f} FastGL={b:.4f} "
            f"(relative gap {rel:.1%}; paper shape: curves coincide)"
        )
    return result
