"""Table 1: remaining GPU memory for a 3-layer GCN (paper scale).

The paper measures, with DGL on one 24 GB RTX 3090 (batch 8000, hidden
256), how much device memory remains per dataset. Here the workspace is
estimated analytically at paper scale (see :mod:`repro.metrics.memory`).
The shape to reproduce: Reddit/Products leave plenty; MAG/Papers100M
(and IGB) leave little — which is why cache-based IO optimization fails
exactly where graphs are large.
"""

from __future__ import annotations

from repro.experiments.runner import ALL_DATASETS, ExperimentResult, short_name
from repro.graph.datasets import DATASETS
from repro.gpu.spec import GIB, RTX3090
from repro.metrics.memory import paper_scale_workspace_bytes

#: The paper's reported leftovers (bytes); IGB-large is not in Table 1.
PAPER_LEFT = {
    "reddit": 13 * GIB,
    "products": 11 * GIB,
    "mag": 520 * 1024**2,
    "papers100m": 1 * GIB,
}


def run(datasets=ALL_DATASETS, batch_size: int = 8000,
        hidden_dim: int = 256) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="tab01",
        title="Remaining GPU memory, 3-layer GCN at paper scale "
              f"(batch {batch_size}, hidden {hidden_dim}, 24GB RTX 3090)",
        headers=["dataset", "workspace_GB", "left_GB(model)",
                 "left_GB(paper)", "input_nodes_M"],
    )
    for dataset in datasets:
        spec = DATASETS[dataset]
        breakdown = paper_scale_workspace_bytes(
            spec, batch_size=batch_size, hidden_dim=hidden_dim
        )
        left = max(0, RTX3090.global_mem_bytes - breakdown["total"])
        paper_left = PAPER_LEFT.get(dataset)
        result.rows.append([
            short_name(dataset),
            breakdown["total"] / GIB,
            left / GIB,
            round(paper_left / GIB, 2) if paper_left else "n/a",
            breakdown["input_nodes"] / 1e6,
        ])
    result.notes.append(
        "shape: small graphs (RD, PR) leave far more device memory than "
        "the 100M-node graphs (MAG, IGB, PA); absolute values depend on "
        "allocator behaviour the paper does not specify"
    )
    return result
