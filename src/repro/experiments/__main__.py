"""Regenerate the paper's tables and figures from the command line.

Usage::

    python -m repro.experiments                 # run everything
    python -m repro.experiments fig09 tab08     # selected experiments
    python -m repro.experiments --all --jobs 4  # shard across 4 cores
    python -m repro.experiments --list
    python -m repro.experiments --out results/  # also write .txt files

Heavy experiments (fig09, fig14, fig16) take a few minutes each at the
default reproduction scale; ``--jobs N`` shards the selected experiments
across ``N`` worker processes (results and rendered text are identical
to a serial run — see :mod:`repro.parallel`). When exactly one
experiment is selected, ``--jobs`` is instead forwarded to the
experiment itself if it supports internal sharding (e.g. the serving
sweeps).
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pathlib
import sys
import time

from repro.parallel import parallel_map, resolve_jobs

#: Experiment ID -> (module, callable) in the paper's presentation order.
EXPERIMENTS = {
    "fig01": ("repro.experiments.fig01_breakdown", "run"),
    "fig03": ("repro.experiments.fig03_stepwise", "run"),
    "tab01": ("repro.experiments.tab01_left_memory", "run"),
    "tab02": ("repro.experiments.tab02_cache_hits", "run"),
    "tab03": ("repro.experiments.tab03_gpu_spec", "run"),
    "tab04": ("repro.experiments.tab04_match_degree", "run"),
    "fig09": ("repro.experiments.fig09_overall", "run"),
    "fig10a": ("repro.experiments.fig10_memory_io", "run_sweep"),
    "fig10b": ("repro.experiments.fig10_memory_io", "run_reorder"),
    "tab07": ("repro.experiments.tab07_random_walk", "run"),
    "fig11": ("repro.experiments.fig11_compute", "run"),
    "fig12": ("repro.experiments.fig12_roofline", "run"),
    "fig13": ("repro.experiments.fig13_sample_time", "run"),
    "tab08": ("repro.experiments.tab08_idmap", "run"),
    "fig14a": ("repro.experiments.fig14_scalability", "run_gpus"),
    "fig14b": ("repro.experiments.fig14_scalability", "run_batch_size"),
    "fig14c": ("repro.experiments.fig14_scalability", "run_feature_dim"),
    "fig14d": ("repro.experiments.fig14_scalability", "run_fanouts"),
    "fig15": ("repro.experiments.fig15_ablation", "run"),
    "tab09": ("repro.experiments.tab09_memory", "run"),
    "fig16": ("repro.experiments.fig16_convergence", "run"),
    "ext_gh": ("repro.experiments.ext_future", "run_grace_hopper"),
    "ext_mm": ("repro.experiments.ext_future", "run_multimachine"),
    "ext_cache": ("repro.experiments.ext_future", "run_cache_policies"),
    "ext_gpu": ("repro.experiments.ext_future", "run_gpu_sensitivity"),
    "ext_samplers": ("repro.experiments.ext_future",
                     "run_sampler_generality"),
    "ext_ooc_path": ("repro.experiments.ext_out_of_core",
                     "run_access_paths"),
    "ext_ooc_cache": ("repro.experiments.ext_out_of_core",
                      "run_cache_policies"),
    "ext_ooc_page": ("repro.experiments.ext_out_of_core",
                     "run_page_sizes"),
    "ext_ooc_match": ("repro.experiments.ext_out_of_core",
                      "run_match_ssd"),
    "ext_ooc_e2e": ("repro.experiments.ext_out_of_core",
                    "run_end_to_end"),
    "ext_serve": ("repro.experiments.ext_serving", "run_rate_sweep"),
    "ext_serve_window": ("repro.experiments.ext_serving",
                         "run_window_sweep"),
    "ext_cluster_strong": ("repro.experiments.ext_cluster",
                           "run_strong_scaling"),
    "ext_cluster_weak": ("repro.experiments.ext_cluster",
                         "run_weak_scaling"),
    "ext_cluster_part": ("repro.experiments.ext_cluster",
                         "run_partitioners"),
    "ext_pipe_overlap": ("repro.experiments.ext_pipeline",
                         "run_overlap"),
    "ext_pipe_depth": ("repro.experiments.ext_pipeline",
                       "run_queue_depths"),
    "ext_pipe_stale": ("repro.experiments.ext_pipeline",
                       "run_staleness"),
    "ext_fleet_routing": ("repro.experiments.ext_fleet", "run_routing"),
    "ext_fleet_scale": ("repro.experiments.ext_fleet", "run_scaling"),
    "ext_fleet_chaos": ("repro.experiments.ext_fleet", "run_chaos"),
}


def run_one(exp_id: str, jobs: int = 1):
    module_name, fn_name = EXPERIMENTS[exp_id]
    module = importlib.import_module(module_name)
    fn = getattr(module, fn_name)
    if jobs != 1 and "jobs" in inspect.signature(fn).parameters:
        return fn(jobs=jobs)
    return fn()


def run_suite(experiment_ids, jobs: int = 1) -> list:
    """Run experiments (sharded across ``jobs`` processes when more than
    one is selected); returns ``(exp_id, result, seconds)`` tuples in
    selection order. Results are identical at any job count — each
    experiment is a deterministic function of its seed."""
    experiment_ids = list(experiment_ids)
    jobs = resolve_jobs(jobs)
    if len(experiment_ids) <= 1 or jobs <= 1:
        # Single selection: forward jobs to the experiment itself.
        inner = jobs if len(experiment_ids) == 1 else 1
        out = []
        for exp_id in experiment_ids:
            start = time.perf_counter()
            result = run_one(exp_id, jobs=inner)
            out.append((exp_id, result, time.perf_counter() - start))
        return out

    def task(exp_id):
        start = time.perf_counter()
        result = run_one(exp_id)
        return exp_id, result, time.perf_counter() - start

    return parallel_map(task, experiment_ids, jobs=jobs)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the FastGL paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment IDs (default: all)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment (the default when none "
                             "are named; explicit for use with --jobs)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes to shard experiments across "
                             "(0 = all cores; default 1 = serial)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment IDs and exit")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to also write rendered .txt files")
    args = parser.parse_args(argv)

    if args.list:
        for exp_id, (module, fn) in EXPERIMENTS.items():
            print(f"{exp_id:14s} {module}.{fn}")
        return 0

    if args.all or not args.experiments:
        selected = list(EXPERIMENTS)
    else:
        selected = args.experiments
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}; "
                     f"available: {sorted(EXPERIMENTS)}")

    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
    for exp_id, result, seconds in run_suite(selected, jobs=args.jobs):
        text = result.render()
        print(text)
        print(f"[{exp_id} took {seconds:.1f}s]\n")
        if args.out:
            (args.out / f"{exp_id}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
