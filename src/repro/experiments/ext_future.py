"""Extension experiments for the paper's Section 7 discussion.

Not tables/figures of the evaluation, but claims the paper makes in
prose, reproduced quantitatively:

* :func:`run_grace_hopper` — Section 7.3: as host<->device bandwidth grows
  toward Grace-Hopper's 900 GB/s, the memory-IO bottleneck shifts from the
  transfer itself to organizing (gathering) the data on the CPU side.
* :func:`run_multimachine` — Section 7.1: FastGL's advantage over DGL is
  machine-count-agnostic; data-parallel scaling across machines preserves
  the gap.
* :func:`run_sampler_generality` — Section 7: Fused-Map accelerates the
  ID map under node-wise, random-walk and layer-wise samplers alike.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.experiments.runner import ExperimentResult, epoch_report
from repro.gpu.multimachine import MachineSpec, multimachine_epoch_time
from repro.graph.datasets import get_dataset
from repro.sampling import (
    BaselineIdMap,
    FusedIdMap,
    NeighborSampler,
    RandomWalkSampler,
)
from repro.sampling.layerwise import LayerWiseSampler
from repro.utils.rng import RngFactory

#: Host link bandwidths to sweep: PCIe 3.0/4.0/5.0, NVLink-C2C (GH200).
LINK_BANDWIDTHS = (16e9, 32e9, 64e9, 900e9)


def run_grace_hopper(dataset_name: str = "papers100m",
                     config: RunConfig | None = None) -> ExperimentResult:
    config = config or RunConfig(num_gpus=2)
    result = ExperimentResult(
        exp_id="ext_gh",
        title="Section 7.3: memory-IO composition vs host-link bandwidth "
              f"(DGL on {dataset_name})",
        headers=["link_GBps", "io_s", "gather_share", "transfer_share"],
    )
    report = epoch_report("dgl", dataset_name, config, model="gcn")
    cost = config.cost
    for bandwidth in LINK_BANDWIDTHS:
        feature_bytes = report.transfer.feature_bytes
        total_bytes = report.transfer.total_bytes
        # Grace-Hopper's unified memory also removes today's host-DRAM
        # aggregate cap, so the sweep applies the link bandwidth directly.
        gather = feature_bytes / cost.host_gather_bytes_per_s
        transfer = (total_bytes / bandwidth
                    + report.transfer.num_transfers
                    * cost.pcie_transfer_latency_s)
        io = gather + transfer
        result.rows.append([
            bandwidth / 1e9, io,
            round(gather / io, 3), round(transfer / io, 3),
        ])
    result.notes.append(
        "paper claim: at Grace-Hopper bandwidth the transfer stage stops "
        "dominating and host-side data organization becomes the bottleneck"
    )
    return result


def run_multimachine(dataset_name: str = "products",
                     machines=(1, 2, 4),
                     config: RunConfig | None = None) -> ExperimentResult:
    config = config or RunConfig(num_gpus=4)
    result = ExperimentResult(
        exp_id="ext_mm",
        title="Section 7.1: data-parallel scaling across machines "
              f"({dataset_name}, {config.num_gpus} GPUs/machine)",
        headers=["machines", "dgl_s", "fastgl_s", "x_dgl"],
    )
    spec = MachineSpec(gpus_per_machine=config.num_gpus)
    from repro.core.memory_aware import model_profile
    from repro.frameworks.base import _profile_param_bytes

    dataset = get_dataset(dataset_name, seed=config.seed)
    profile = model_profile("gcn", dataset.feature_dim,
                            dataset.num_classes,
                            hidden_dim=config.hidden_dim,
                            num_layers=config.num_layers)
    grad_bytes = _profile_param_bytes(profile)
    for count in machines:
        times = {}
        for name in ("dgl", "fastgl"):
            report = epoch_report(name, dataset_name, config, model="gcn")
            times[name] = multimachine_epoch_time(
                report.epoch_time, report.num_batches, grad_bytes,
                count, spec, config.cost,
            )
        result.rows.append([
            count, times["dgl"], times["fastgl"],
            round(times["dgl"] / times["fastgl"], 2),
        ])
    result.notes.append(
        "paper claim: the FastGL/DGL gap is machine-count-agnostic"
    )
    return result


def run_gpu_sensitivity(dataset_name: str = "products",
                        config: RunConfig | None = None
                        ) -> ExperimentResult:
    """Hardware sensitivity: the FastGL/DGL gap on an RTX 3090 vs an A100.

    FastGL's advantage comes from byte/synchronization counts, not from
    one card's constants — on the A100 (2.2x the DRAM bandwidth, same
    PCIe link) the compute phases shrink for everyone while the memory-IO
    bottleneck persists, so the gap survives.
    """
    from repro.frameworks import DGLFramework, FastGLFramework
    from repro.gpu.spec import A100, RTX3090

    config = config or RunConfig(num_gpus=2)
    result = ExperimentResult(
        exp_id="ext_gpu",
        title=f"GPU sensitivity on {dataset_name}: RTX 3090 vs A100",
        headers=["gpu", "dgl_s", "fastgl_s", "x_dgl", "dgl_io_frac",
                 "fastgl_compute_s"],
    )
    dataset = get_dataset(dataset_name, seed=config.seed)
    for spec in (RTX3090, A100):
        dgl = DGLFramework(spec=spec).run_epoch(dataset, config)
        fast = FastGLFramework(spec=spec).run_epoch(dataset, config)
        result.rows.append([
            spec.name,
            dgl.epoch_time,
            fast.epoch_time,
            round(dgl.epoch_time / fast.epoch_time, 2),
            round(dgl.phases.fractions()["memory_io"], 3),
            fast.phases.compute,
        ])
    result.notes.append(
        "shape: faster DRAM shrinks compute for everyone; the PCIe-bound "
        "memory-IO phase persists, so FastGL's advantage survives the "
        "hardware change"
    )
    return result


def run_cache_policies(datasets=("products", "mag", "papers100m"),
                       config: RunConfig | None = None) -> ExperimentResult:
    """Section 3.1's cache-collapse claim: on large graphs the leftover
    memory admits so few rows that *any* static policy (PaGraph's degree
    ranking, GNNLab's presample ranking) stops working — the paper quotes
    PaGraph under 20% hit rate on MAG."""
    config = config or RunConfig(num_gpus=2)
    result = ExperimentResult(
        exp_id="ext_cache",
        title="Static-cache hit rates under the leftover-memory budget",
        headers=["dataset", "budget_frac", "pagraph_hit", "gnnlab_hit",
                 "fastgl_reuse_frac"],
    )
    from repro.frameworks import PaGraphFramework

    for dataset_name in datasets:
        dataset = get_dataset(dataset_name, seed=config.seed)
        budget_frac = (dataset.cache_budget_bytes()
                       / dataset.feature_table_bytes())
        pagraph_fw = PaGraphFramework()
        pagraph = epoch_report(pagraph_fw, dataset_name, config,
                               model="gcn", dataset=dataset)
        gnnlab = epoch_report("gnnlab", dataset_name, config, model="gcn")
        fastgl = epoch_report("fastgl", dataset_name, config, model="gcn")
        pg_hit = pagraph.transfer.num_cache_hits / max(
            1, pagraph.transfer.num_wanted)
        gl_hit = gnnlab.transfer.num_cache_hits / max(
            1, gnnlab.transfer.num_wanted)
        reuse = (fastgl.transfer.num_reused
                 + fastgl.transfer.num_cache_hits) / max(
            1, fastgl.transfer.num_wanted)
        result.rows.append([
            dataset_name, round(budget_frac, 4),
            round(pg_hit, 3), round(gl_hit, 3), round(reuse, 3),
        ])
    result.notes.append(
        "paper claims: PaGraph's hit rate is under 20% on MAG; Match's "
        "reuse does not depend on spare memory at all"
    )
    return result


def run_sampler_generality(dataset_name: str = "products",
                           config: RunConfig | None = None
                           ) -> ExperimentResult:
    config = config or RunConfig(num_gpus=1)
    dataset = get_dataset(dataset_name, seed=config.seed)
    rngs = RngFactory(config.seed)
    result = ExperimentResult(
        exp_id="ext_samplers",
        title="Section 7: Fused-Map ID-map speedup across sampling "
              f"algorithms ({dataset_name})",
        headers=["sampler", "baseline_idmap_s", "fused_idmap_s", "x"],
    )

    def build(kind: str, idmap):
        rng = rngs.child(f"{kind}:{type(idmap).__name__}")
        if kind == "node-wise":
            return NeighborSampler(dataset.graph, config.fanouts,
                                   idmap=idmap, rng=rng)
        if kind == "random-walk":
            return RandomWalkSampler(dataset.graph, walk_length=3,
                                     num_walks=10, idmap=idmap, rng=rng)
        return LayerWiseSampler(dataset.graph, (512, 2048, 8192),
                                idmap=idmap, rng=rng)

    seeds = dataset.train_ids[: config.batch_size]
    for kind in ("node-wise", "random-walk", "layer-wise"):
        times = {}
        for label, idmap in (("baseline", BaselineIdMap()),
                             ("fused", FusedIdMap())):
            sampler = build(kind, idmap)
            subgraph = sampler.sample(seeds)
            times[label] = subgraph.idmap_report.modeled_time(config.cost)
        result.rows.append([
            kind, times["baseline"], times["fused"],
            round(times["baseline"] / times["fused"], 2),
        ])
    result.notes.append(
        "paper claim: every sampling algorithm needs the ID map, so "
        "Fused-Map's speedup generalizes"
    )
    return result
