"""Table 7: memory-IO time under a random-walk sampler (PinSAGE setting).

Match-Reorder's efficiency depends on inter-subgraph overlap, which the
sampling algorithm shapes. The paper swaps in a length-3 random-walk
sampler and shows the strategy still helps: DGL > FastGL-nG (Match only)
> FastGL (Match+Reorder) in memory-IO time on every graph.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.experiments.runner import (
    ExperimentResult,
    TABLE_DATASETS,
    epoch_report,
    short_name,
)
from repro.frameworks import DGLFramework, fastgl_variant
from repro.graph.datasets import get_dataset
from repro.sampling import BaselineIdMap, FusedIdMap, RandomWalkSampler
from repro.utils.rng import RngFactory

#: Paper Table 7 (seconds; normalized speedups in parentheses there).
PAPER_SPEEDUPS = {
    "reddit": (1.0, 2.6, 2.9),
    "products": (1.0, 1.5, 1.7),
    "mag": (1.0, 1.1, 1.3),
    "papers100m": (1.0, 1.1, 1.2),
}


def _walk_sampler(dataset, idmap, seed: int, walk_length: int,
                  num_walks: int) -> RandomWalkSampler:
    rngs = RngFactory(seed)
    return RandomWalkSampler(
        dataset.graph,
        walk_length=walk_length,
        num_walks=num_walks,
        idmap=idmap,
        rng=rngs.child(f"walk:{dataset.name}"),
    )


def run(
    datasets=TABLE_DATASETS,
    config: RunConfig | None = None,
    walk_length: int = 3,
    num_walks: int = 10,
) -> ExperimentResult:
    # Random-walk subgraphs are single-hop stars: one model layer.
    config = config or RunConfig(num_gpus=1, fanouts=(10,))
    no_reorder = fastgl_variant(reorder=False, name="fastgl-nG-rw")
    full = fastgl_variant(name="fastgl-rw")
    result = ExperimentResult(
        exp_id="tab07",
        title=f"Memory-IO time with a random-walk sampler (length "
              f"{walk_length}, {num_walks} walks/seed, GCN, 1 GPU)",
        headers=["dataset", "dgl_io_s", "fastgl_nG_io_s", "fastgl_io_s",
                 "x_nG", "x_full", "paper_x_nG", "paper_x_full"],
    )
    for dataset_name in datasets:
        dataset = get_dataset(dataset_name, seed=config.seed)
        rows = {}
        for label, framework, idmap in (
            ("dgl", DGLFramework(), BaselineIdMap()),
            ("nG", no_reorder(), FusedIdMap()),
            ("full", full(), FusedIdMap()),
        ):
            sampler = _walk_sampler(dataset, idmap, config.seed,
                                    walk_length, num_walks)
            report = epoch_report(framework, dataset_name, config,
                                  model="gcn", dataset=dataset,
                                  sampler=sampler)
            rows[label] = report.phases.memory_io
        paper = PAPER_SPEEDUPS.get(dataset_name, (1.0, "n/a", "n/a"))
        result.rows.append([
            short_name(dataset_name),
            rows["dgl"], rows["nG"], rows["full"],
            round(rows["dgl"] / rows["nG"], 2) if rows["nG"] else "inf",
            round(rows["dgl"] / rows["full"], 2) if rows["full"] else "inf",
            paper[1], paper[2],
        ])
    result.notes.append(
        "paper shape: Match still wins under random-walk sampling, and "
        "Reorder adds on top (DGL > FastGL-nG > FastGL)"
    )
    return result
