"""Figure 12: roofline analysis of the aggregation phase (GCN, Products).

Forward and backward aggregation kernels of DGL (naive), GNNAdvisor and
FastGL (Memory-Aware) are placed on the RTX 3090 roofline. Shape: all
three sit in the memory-bound region; FastGL achieves up to ~4x the
performance of DGL/GNNAdvisor at the same operational intensity, because
the Memory-Aware pattern raises the effective bandwidth, not the FLOP
count.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.core.memory_aware import ComputeCostModel, model_profile
from repro.experiments.runner import ExperimentResult
from repro.gpu.spec import RTX3090
from repro.graph.datasets import get_dataset
from repro.metrics.roofline import RooflinePoint, roofline_ceiling
from repro.sampling import NeighborSampler
from repro.utils.rng import RngFactory

MODES = (("dgl", "naive"), ("gnnadvisor", "advisor"),
         ("fastgl", "memory_aware"))


def run(dataset_name: str = "products",
        config: RunConfig | None = None) -> ExperimentResult:
    config = config or RunConfig()
    dataset = get_dataset(dataset_name, seed=config.seed)
    rngs = RngFactory(config.seed)
    sampler = NeighborSampler(dataset.graph, config.fanouts,
                              rng=rngs.child("fig12"))
    subgraph = sampler.sample(dataset.train_ids[: config.batch_size])
    profile = model_profile("gcn", dataset.feature_dim, dataset.num_classes,
                            hidden_dim=config.hidden_dim,
                            num_layers=config.num_layers)
    result = ExperimentResult(
        exp_id="fig12",
        title=f"Roofline of the aggregation phase (GCN on {dataset_name}, "
              "forward+backward)",
        headers=["kernel", "OI_flop_per_byte", "achieved_GFLOPs",
                 "roof_GFLOPs", "of_roof"],
    )
    points = {}
    for label, mode in MODES:
        cost_model = ComputeCostModel(RTX3090, config.cost, mode)
        report = cost_model.subgraph_report(subgraph, profile)
        point = RooflinePoint(
            name=label,
            operational_intensity=(
                report.agg_flops / max(1.0, report.agg_dram_bytes)
            ),
            achieved_flops=report.agg_flops / max(report.agg_time, 1e-12),
        )
        points[label] = point
        roof = roofline_ceiling(point.operational_intensity)
        result.rows.append([
            label,
            round(point.operational_intensity, 4),
            round(point.achieved_gflops, 1),
            round(roof / 1e9, 1),
            round(point.achieved_flops / roof, 3),
        ])
    gain = points["fastgl"].achieved_flops / points["dgl"].achieved_flops
    result.notes.append(
        f"FastGL achieves {gain:.2f}x the naive kernel's performance "
        "(paper: up to 4.2x); all kernels are memory-bound (OI << "
        "peak/bandwidth ridge)"
    )
    return result
