"""Table 3: memory-level statistics of the RTX 3090 (spec constants)."""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult
from repro.gpu.spec import RTX3090, GPUSpec


def run(spec: GPUSpec = RTX3090) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="tab03",
        title=f"Memory-level statistics of the {spec.name}",
        headers=["level", "bandwidth", "capacity"],
        rows=[list(row) for row in spec.spec_table_rows()],
    )
    result.notes.append(
        "these are the Table 3 datasheet values the Memory-Aware cost "
        "model (Eqs. 3-4) is parameterized with"
    )
    return result
