"""Table 4: average match degree and its spread between mini-batches.

Sample a window of mini-batches per dataset with the default uniform
sampler and compute the pairwise match-degree matrix. The shape to
reproduce: dense/small graphs (Reddit) overlap most (paper: 93.2%),
Products substantially (71.4%), the 100M-node graphs least (MAG 35.3%,
Papers100M 38.0%) — and the spread ``dM`` is a non-trivial few percent,
which is the headroom the Reorder strategy exploits.

Note: scaled-down graphs cannot reach the paper's tiny batch/graph ratio,
so absolute match degrees here are biased upward; the cross-dataset
*ordering* is the reproduced shape.
"""

from __future__ import annotations

import numpy as np

from repro.config import RunConfig
from repro.core.reorder import match_degree_matrix
from repro.experiments.runner import ALL_DATASETS, ExperimentResult, short_name
from repro.graph.datasets import get_dataset
from repro.graph.partition import MinibatchPlan
from repro.sampling import NeighborSampler
from repro.utils.rng import RngFactory

#: Paper Table 4 (batch 8000, uniform sampling).
PAPER_VALUES = {
    "reddit": (0.932, 0.049),
    "products": (0.714, 0.070),
    "mag": (0.353, 0.042),
    "papers100m": (0.380, 0.053),
}


def match_stats(dataset_name: str, config: RunConfig,
                num_batches: int = 12) -> tuple:
    """(avg match degree, max-min spread) over ``num_batches`` batches."""
    dataset = get_dataset(dataset_name, seed=config.seed)
    rngs = RngFactory(config.seed)
    sampler = NeighborSampler(dataset.graph, config.fanouts,
                              rng=rngs.child(f"tab04:{dataset_name}"))
    plan = MinibatchPlan(dataset.train_ids, config.batch_size)
    batches = plan.batches(rngs.child("shuffle"))[:num_batches]
    node_sets = [sampler.sample(batch).input_nodes for batch in batches]
    matrix = match_degree_matrix(node_sets)
    n = matrix.shape[0]
    upper = matrix[np.triu_indices(n, k=1)]
    return float(upper.mean()), float(upper.max() - upper.min())


def run(datasets=ALL_DATASETS, config: RunConfig | None = None,
        num_batches: int = 12) -> ExperimentResult:
    config = config or RunConfig()
    result = ExperimentResult(
        exp_id="tab04",
        title="Average match degree and spread between sampled mini-batches",
        headers=["dataset", "avg_M", "dM", "avg_M_paper", "dM_paper"],
    )
    for dataset in datasets:
        avg, spread = match_stats(dataset, config, num_batches)
        paper = PAPER_VALUES.get(dataset, ("n/a", "n/a"))
        result.rows.append([
            short_name(dataset), round(avg, 3), round(spread, 3),
            paper[0], paper[1],
        ])
    result.notes.append(
        "shape: Reddit >> Products > MAG/Papers100M in overlap; scaled "
        "graphs bias the absolute values upward (see module docstring)"
    )
    return result
