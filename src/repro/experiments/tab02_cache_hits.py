"""Table 2: L1/L2 hit rates and achieved GFLOP/s of naive aggregation.

The functional cache simulator replays the byte-address trace of the
forward aggregation (source-feature rows, edge weights, partial sums, per
edge) through an L1 -> L2 hierarchy with the RTX 3090's geometry. The
shape to reproduce: single-digit L1 hit rates, ~15-25% L2, and achieved
performance two orders of magnitude below the 29.2 TFLOP/s peak.
"""

from __future__ import annotations

import numpy as np

from repro.config import RunConfig
from repro.experiments.runner import ALL_DATASETS, ExperimentResult, short_name
from repro.gpu.memory import MemoryHierarchy
from repro.gpu.spec import RTX3090
from repro.graph.datasets import get_dataset
from repro.sampling import NeighborSampler
from repro.utils.rng import RngFactory

#: Paper's Table 2 measurements for reference.
PAPER_VALUES = {
    "reddit": (0.0334, 0.246, 340),
    "products": (0.0511, 0.183, 397),
    "mag": (0.0492, 0.157, 380),
    "papers100m": (0.0425, 0.196, 401),
}


def aggregation_trace(block, feature_dim: int, max_edges: int = 15000,
                      rng=None) -> np.ndarray:
    """Byte-address trace of the naive forward aggregation over ``block``.

    Per edge (u, v): the lines of feature row ``x_v``, the weight ``w_uv``,
    and the lines of the partial-sum row ``h_u``. Regions are laid out
    disjointly, as a kernel's global buffers are.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    row_bytes = feature_dim * 4
    lines_per_row = max(1, row_bytes // 128)
    num_edges = block.num_edges
    if num_edges > max_edges:
        picks = np.sort(rng.choice(num_edges, size=max_edges, replace=False))
    else:
        picks = np.arange(num_edges)
    # Thousands of concurrent threads interleave their edges arbitrarily;
    # replaying edges in storage order would credit the cache with
    # sequential same-target locality no real kernel sees. Shuffle.
    rng.shuffle(picks)
    src = block.edge_src[picks].astype(np.int64)
    dst = block.edge_dst[picks].astype(np.int64)

    x_base = 0
    w_base = x_base + block.num_src * row_bytes
    h_base = w_base + num_edges * 4
    offsets = np.arange(lines_per_row, dtype=np.int64) * 128
    trace = np.empty((len(picks), 2 * lines_per_row + 1), dtype=np.int64)
    trace[:, :lines_per_row] = x_base + src[:, None] * row_bytes + offsets
    trace[:, lines_per_row] = w_base + picks * 4
    trace[:, lines_per_row + 1:] = (
        h_base + dst[:, None] * row_bytes + offsets
    )
    return trace.ravel()


def run(datasets=ALL_DATASETS, config: RunConfig | None = None,
        max_edges: int = 15000) -> ExperimentResult:
    config = config or RunConfig()
    result = ExperimentResult(
        exp_id="tab02",
        title="L1/L2 hit rates and achieved GFLOP/s of the naive forward "
              "aggregation (functional cache simulation)",
        headers=["dataset", "L1_hit", "L2_hit", "GFLOP/s(model)",
                 "L1_paper", "L2_paper", "GFLOP/s_paper"],
    )
    for dataset_name in datasets:
        dataset = get_dataset(dataset_name, seed=config.seed)
        rngs = RngFactory(config.seed)
        sampler = NeighborSampler(dataset.graph, config.fanouts,
                                  rng=rngs.child(f"tab02:{dataset_name}"))
        seeds = dataset.train_ids[: config.batch_size]
        subgraph = sampler.sample(seeds)
        block = subgraph.layers[-1]  # the big, input-side block
        trace = aggregation_trace(block, dataset.feature_dim,
                                  max_edges=max_edges,
                                  rng=rngs.child("trace"))
        hier = MemoryHierarchy(RTX3090)
        stats = hier.run_trace(trace)
        # Achieved performance under the measured hit rates (Eq. 3 traffic).
        bw = hier.effective_bandwidth(stats.l1_hit_rate, stats.l2_hit_rate)
        d = dataset.feature_dim
        e, dst = block.num_edges, block.num_dst
        naive_bytes = 4.0 * d * (3.0 * e - dst)
        flops = 2.0 * e * d
        gflops = flops / (naive_bytes / bw) / 1e9
        paper = PAPER_VALUES.get(dataset_name, ("n/a", "n/a", "n/a"))
        result.rows.append([
            short_name(dataset_name),
            round(stats.l1_hit_rate, 4),
            round(stats.l2_hit_rate, 4),
            round(gflops, 1),
            paper[0], paper[1], paper[2],
        ])
    result.notes.append(
        "shape: L1 hits in the low single-digit %, L2 ~15-25%, achieved "
        "GFLOP/s roughly 1-2% of the 29155 GFLOP/s peak"
    )
    return result
