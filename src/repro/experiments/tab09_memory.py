"""Table 9: GPU memory usage of GCN — DGL vs FastGL.

Shape to reproduce: the two systems' memory usage is comparable (FastGL's
metadata is shared with what DGL keeps anyway; the Reorder window's
topology lives in *host* memory) with FastGL slightly lower on the big
graphs (the fused Memory-Aware kernel never materializes per-edge
messages; the paper's one legible Table-9 pair is IGB: DGL 23447 MB vs
FastGL 21035 MB).

Reported at both reproduction scale (measured workspace model on real
sampled subgraphs) and paper scale (analytic).
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.experiments.runner import (
    ALL_DATASETS,
    ExperimentResult,
    epoch_report,
    short_name,
)
from repro.graph.datasets import DATASETS
from repro.metrics.memory import paper_scale_workspace_bytes

MIB = 1024**2


def run(datasets=ALL_DATASETS,
        config: RunConfig | None = None) -> ExperimentResult:
    config = config or RunConfig(num_gpus=1)
    result = ExperimentResult(
        exp_id="tab09",
        title="GPU memory usage of GCN on 1 GPU: DGL vs FastGL "
              "(scaled measured / paper-scale analytic)",
        headers=["dataset", "dgl_MB", "fastgl_MB", "ratio",
                 "dgl_paper_GB", "fastgl_paper_GB"],
    )
    for dataset in datasets:
        dgl = epoch_report("dgl", dataset, config, model="gcn")
        fast = epoch_report("fastgl", dataset, config, model="gcn")
        spec = DATASETS[dataset]
        # At paper scale both systems run fused aggregation kernels (DGL's
        # cuSPARSE SpMM materializes no messages either); the small gap is
        # FastGL keeping one sparse format per block instead of DGL's three.
        paper_dgl = paper_scale_workspace_bytes(
            spec, materialize_edge_messages=False, structure_formats=3
        )["total"]
        paper_fast = paper_scale_workspace_bytes(
            spec, materialize_edge_messages=False, structure_formats=1
        )["total"]
        result.rows.append([
            short_name(dataset),
            round(dgl.memory_peak_bytes / MIB, 1),
            round(fast.memory_peak_bytes / MIB, 1),
            round(fast.memory_peak_bytes / dgl.memory_peak_bytes, 3),
            round(paper_dgl / 1024**3, 2),
            round(paper_fast / 1024**3, 2),
        ])
    result.notes.append(
        "paper shape: usage comparable, FastGL slightly lower (IGB: "
        "23447MB vs 21035MB)"
    )
    return result
