"""Pipelined-epoch study: overlap vs the phase-sequential driver.

The paper overlaps sampling, feature IO, and compute inside FastGL's
epoch (Section 4's prefetch and Section 5's cache hide transfer time);
the pipeline tier generalizes that overlap into an explicit stage graph
any framework can run through (:mod:`repro.pipeline`). These
experiments quantify what the graph buys and where its knobs bind:

* :func:`run_overlap` — every framework, sequential vs pipelined, on a
  Papers100M-shaped configuration: epoch time, the
  ``max(stage totals) + fill`` lower bound, achieved overlap ratio, and
  where the stalls concentrate.
* :func:`run_queue_depths` — the backpressure sweep: queue depth 1
  (fully serialized handoff) through deep run-ahead, against the
  unbounded bound.
* :func:`run_staleness` — bounded-staleness gradient accumulation:
  rounds between allreduces vs epoch time, on a cluster so the saved
  sync includes the inter-node hop.

The claim under test (the tentpole gate): on configurations whose
stage totals are comparable, the pipelined epoch approaches
``max(sample, IO, compute)`` plus the pipeline fill — time the
sequential driver pays serially.
"""

from __future__ import annotations

from repro.cluster.spec import ClusterSpec
from repro.config import RunConfig
from repro.experiments.runner import ExperimentResult, epoch_report
from repro.pipeline import ExecutionSpec, PipelineSpec

#: Frameworks the overlap table compares (the paper lineup's extremes:
#: the CPU-sampling baseline, the two pipelined-by-design systems, and
#: the full FastGL stack).
OVERLAP_FRAMEWORKS = ("pyg", "dgl", "gnnlab", "fastgl", "fastgl-ooc")

#: Queue depths the backpressure sweep visits.
QUEUE_DEPTHS = (1, 2, 3, 4, 8)

#: Staleness bounds the accumulation sweep visits (0 = sync each round).
STALENESS = (0, 1, 3, 7)


def _pipeline_config(config: RunConfig | None) -> RunConfig:
    """Papers100M-shaped run: 2 GPUs, sparse fanouts, batches small
    enough that every lane runs many rounds (the pipeline needs rounds
    in flight to overlap)."""
    return config or RunConfig(num_gpus=2, batch_size=128,
                               fanouts=(5, 10))


def _exec(depth: int = 2, staleness: int = 0,
          cluster: ClusterSpec | None = None) -> ExecutionSpec:
    return ExecutionSpec(
        cluster=cluster,
        pipeline=PipelineSpec(mode="pipelined", queue_depth=depth,
                              staleness=staleness),
    )


def run_overlap(dataset_name: str = "papers100m",
                config: RunConfig | None = None) -> ExperimentResult:
    """Sequential vs pipelined epoch for every compared framework."""
    config = _pipeline_config(config)
    result = ExperimentResult(
        exp_id="ext_pipeline_overlap",
        title=f"Pipelined epoch vs phase-sequential driver "
              f"({dataset_name}, {config.num_gpus} GPUs)",
        headers=["framework", "seq_s", "piped_s", "bound_s", "overlap",
                 "vs_bound", "bottleneck", "stall_s"],
    )
    for name in OVERLAP_FRAMEWORKS:
        seq = epoch_report(name, dataset_name, config)
        piped = epoch_report(name, dataset_name, config,
                             execution=_exec())
        info = piped.extras["pipeline"]
        totals = info["stage_totals"]
        bottleneck = max(totals, key=totals.get)
        # Overlap ratio: how much of the serially-paid time the graph
        # hid. 0 = no faster than sequential, 1 = at the lower bound.
        hidden = seq.epoch_time - piped.epoch_time
        hideable = seq.epoch_time - info["bound_seconds"]
        overlap = hidden / hideable if hideable > 1e-12 else 1.0
        result.rows.append([
            name,
            round(seq.epoch_time, 6),
            round(piped.epoch_time, 6),
            round(info["bound_seconds"], 6),
            round(overlap, 3),
            round(piped.epoch_time / info["bound_seconds"], 3)
            if info["bound_seconds"] > 0 else 1.0,
            bottleneck,
            round(sum(info["stall_seconds"].values()), 6),
        ])
    result.notes.append(
        "expected shape: piped_s lands within a few percent of bound_s "
        "(= max stage total + pipeline fill) for every framework; the "
        "sequential/pipelined gap is widest where no single stage "
        "dominates (DGL: sampling and IO both heavy) and narrowest "
        "where one stage already swallows the epoch (PyG's CPU "
        "sampling; FastGL's cache leaves compute dominant)"
    )
    return result


def run_queue_depths(dataset_name: str = "papers100m",
                     framework: str = "dgl",
                     config: RunConfig | None = None) -> ExperimentResult:
    """Backpressure sweep: bounded buffers vs the overlap they permit."""
    config = _pipeline_config(config)
    result = ExperimentResult(
        exp_id="ext_pipeline_depth",
        title=f"Queue-depth sweep ({framework}, {dataset_name})",
        headers=["queue_depth", "piped_s", "vs_depth1", "stall_s"],
    )
    base = None
    for depth in QUEUE_DEPTHS:
        report = epoch_report(framework, dataset_name, config,
                              execution=_exec(depth=depth))
        info = report.extras["pipeline"]
        if base is None:
            base = report.epoch_time
        result.rows.append([
            depth,
            round(report.epoch_time, 6),
            round(base / report.epoch_time, 3),
            round(sum(info["stall_seconds"].values()), 6),
        ])
    result.notes.append(
        "expected shape: epoch time is non-increasing in depth (more "
        "run-ahead never hurts) and saturates fast — double buffering "
        "(depth 2) captures nearly all of the unbounded overlap, the "
        "classic result the transfer lane's design assumes"
    )
    return result


def run_staleness(dataset_name: str = "papers100m",
                  framework: str = "fastgl",
                  num_nodes: int = 4,
                  config: RunConfig | None = None) -> ExperimentResult:
    """Bounded-staleness accumulation on a cluster: fewer allreduces,
    including the inter-node fabric hop."""
    config = _pipeline_config(config)
    cluster = ClusterSpec(num_nodes=num_nodes, link_bandwidth=2.5e9,
                          nic_bandwidth=2.5e9)
    result = ExperimentResult(
        exp_id="ext_pipeline_staleness",
        title=f"Bounded-staleness accumulation ({framework}, "
              f"{num_nodes} nodes, {dataset_name})",
        headers=["staleness", "syncs", "piped_s", "allreduce_s",
                 "network_s"],
    )
    for staleness in STALENESS:
        report = epoch_report(
            framework, dataset_name, config,
            execution=_exec(staleness=staleness, cluster=cluster),
        )
        info = report.extras["pipeline"]
        result.rows.append([
            staleness,
            info["num_syncs"],
            round(report.epoch_time, 6),
            round(report.phases.allreduce, 6),
            round(report.phases.network, 6),
        ])
    result.notes.append(
        "expected shape: sync count falls as rounds/(staleness+1) and "
        "both the allreduce and network phases shrink proportionally; "
        "epoch time is non-increasing in staleness (the timing model "
        "only removes barriers — convergence effects are out of scope)"
    )
    return result


def run(config: RunConfig | None = None) -> ExperimentResult:
    """All parts merged for the benchmark harness."""
    merged = ExperimentResult(
        exp_id="ext_pipeline",
        title="Asynchronous pipelined epoch studies",
    )
    for part in (run_overlap(config=config),
                 run_queue_depths(config=config),
                 run_staleness(config=config)):
        merged.notes.append(part.render())
    return merged
