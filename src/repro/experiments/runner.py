"""Shared experiment machinery: result records and a memoized epoch runner.

Several figures reuse the same (framework, dataset, model, config) epoch;
``epoch_report`` memoizes them per process so regenerating the full set of
tables stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import RunConfig
from repro.frameworks import EpochReport, create
from repro.graph.datasets import SHORT_NAMES, get_dataset
from repro.obs import get_registry
from repro.pipeline import DEFAULT_EXECUTION, ExecutionSpec
from repro.utils.format import ascii_series, ascii_table

#: Dataset order used throughout the paper's tables.
ALL_DATASETS = ("reddit", "products", "mag", "igb", "papers100m")
#: The four datasets of the paper's Tables 7 and 8.
TABLE_DATASETS = ("reddit", "products", "mag", "papers100m")


def short_name(dataset: str) -> str:
    """Paper abbreviation (RD/PR/MAG/IGB/PA) for a dataset name."""
    return SHORT_NAMES.get(dataset, dataset)


@dataclass
class ExperimentResult:
    """Renderable result of one experiment (one paper table or figure)."""

    exp_id: str
    title: str
    headers: list = field(default_factory=list)
    rows: list = field(default_factory=list)
    #: Figure-style data: (series name, xs, ys) triples.
    series: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    def render(self) -> str:
        parts = [f"== {self.exp_id}: {self.title} =="]
        if self.rows:
            parts.append(ascii_table(self.headers, self.rows))
        for name, xs, ys in self.series:
            parts.append(ascii_series(name, xs, ys))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def row_dict(self, key_col: int = 0) -> dict:
        """Rows keyed by their ``key_col`` value (test convenience)."""
        return {row[key_col]: row for row in self.rows}


_REPORT_CACHE: dict = {}
_CACHE_STATS = {"hits": 0, "misses": 0}


def clear_report_cache() -> None:
    _REPORT_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def cache_info() -> dict:
    """``functools``-style statistics of the epoch-report memo, so a
    rerun's cost (which epochs were recomputed vs served) is explainable."""
    return {
        "hits": _CACHE_STATS["hits"],
        "misses": _CACHE_STATS["misses"],
        "currsize": len(_REPORT_CACHE),
    }


def _record_cache_access(hit: bool) -> None:
    _CACHE_STATS["hits" if hit else "misses"] += 1
    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "repro_experiment_report_cache_total",
            "Epoch-report memoization lookups by outcome",
        ).labels(outcome="hit" if hit else "miss").inc()


def epoch_report(
    framework,
    dataset_name: str,
    config: RunConfig,
    model: str = "gcn",
    dataset=None,
    sampler=None,
    execution: ExecutionSpec | None = None,
) -> EpochReport:
    """Run (and memoize) one epoch.

    ``framework`` is a registry name (see
    :func:`repro.frameworks.available_frameworks`), a framework class,
    or an instance. Memoization only applies to the name/class forms
    with default datasets and samplers (``execution``, a frozen
    :class:`~repro.pipeline.ExecutionSpec`, is part of the key);
    hit/miss counts are visible through :func:`cache_info` and, when
    observability is on, the ``repro_experiment_report_cache_total``
    counter.
    """
    if execution is None:
        execution = DEFAULT_EXECUTION
    # A fault plan is stateful (fired counts) and unhashable; never memoize.
    cacheable = (dataset is None and sampler is None
                 and execution.faults is None)
    if isinstance(framework, str):
        key_id = framework
        instance = create(framework)
    elif isinstance(framework, type):
        key_id = f"{framework.__name__}:{framework.name}"
        instance = framework()
    else:
        instance = framework
        key_id = None
        cacheable = False
    key = (key_id, dataset_name, model, config, execution)
    if cacheable and key in _REPORT_CACHE:
        _record_cache_access(hit=True)
        return _REPORT_CACHE[key]
    _record_cache_access(hit=False)
    if dataset is None:
        dataset = get_dataset(dataset_name, seed=config.seed)
    report = instance.run_epoch(dataset, config, model_name=model,
                                sampler=sampler, execution=execution)
    if cacheable:
        _REPORT_CACHE[key] = report
    return report


def speedup(baseline_time: float, other_time: float) -> float:
    """``baseline / other`` guarded against zero."""
    if other_time <= 0:
        return float("inf")
    return baseline_time / other_time
