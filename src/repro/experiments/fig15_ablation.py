"""Figure 15: ablation — where the overall speedup comes from.

Average (geometric mean) speedup over DGL across the five datasets on GCN,
stacking techniques cumulatively: +MR (Match-Reorder), +MA (Memory-Aware),
+FM (Fused-Map). Shape: MR contributes the most (memory IO dominates the
baseline), MA a solid multiple on top, FM the least (sampling is the
smallest phase).
"""

from __future__ import annotations

import numpy as np

from repro.config import RunConfig
from repro.experiments.runner import (
    ALL_DATASETS,
    ExperimentResult,
    epoch_report,
    speedup,
)
from repro.frameworks import fastgl_variant

STACKS = (
    ("DGL", "dgl"),
    ("+MR", fastgl_variant(match=True, reorder=True, memory_aware=False,
                           fused_map=False, name="abl+mr")),
    ("+MR+MA", fastgl_variant(match=True, reorder=True, memory_aware=True,
                              fused_map=False, name="abl+mr+ma")),
    ("+MR+MA+FM", fastgl_variant(match=True, reorder=True, memory_aware=True,
                                 fused_map=True, name="abl+mr+ma+fm")),
)


def run(datasets=ALL_DATASETS,
        config: RunConfig | None = None) -> ExperimentResult:
    config = config or RunConfig(num_gpus=2)
    result = ExperimentResult(
        exp_id="fig15",
        title="Ablation: average speedup over DGL across datasets (GCN, "
              "2 GPUs; geometric mean)",
        headers=["stack", "avg_speedup"] + [f"x_{d}" for d in datasets],
    )
    dgl_times = {
        d: epoch_report("dgl", d, config, model="gcn").epoch_time
        for d in datasets
    }
    for label, framework in STACKS:
        per_dataset = []
        for dataset in datasets:
            report = epoch_report(framework, dataset, config, model="gcn")
            per_dataset.append(speedup(dgl_times[dataset],
                                       report.epoch_time))
        geo = float(np.exp(np.mean(np.log(per_dataset))))
        result.rows.append([label, round(geo, 2)]
                           + [round(x, 2) for x in per_dataset])
    result.notes.append(
        "paper shape: +MR gives the largest jump, +MA a further ~1.6x, "
        "+FM the smallest increment"
    )
    return result
