"""Multi-node scaling study: partition-aware halo exchange at scale.

The paper stops at one machine (Section 7 evaluates up to 8 GPUs in a
single node). These experiments push the same workloads across the
simulated cluster tier (:mod:`repro.cluster`): the Papers100M analogue
sharded over 4-16 machines, comparing what the tier actually models —

* :func:`run_strong_scaling` — fixed problem, growing cluster: modeled
  epoch speedup and parallel efficiency per (partitioner, remote-cache)
  pair, against the single-node run of the same config.
* :func:`run_weak_scaling` — the graph grows with the cluster (constant
  work per node): efficiency is how close epoch time stays to the
  single-node epoch on the per-node share.
* :func:`run_partitioners` — edge-cut quality vs halo traffic vs epoch
  time for every registered partitioner at a fixed cluster size.

The claim under test is the cluster tentpole: edge-cut-aware placement
plus frequency caching of hot remote rows keeps the network lane small
enough that scaling efficiency stays useful, where random placement
with no cache pays the full boundary traffic every round.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.spec import ClusterSpec
from repro.config import RunConfig
from repro.experiments.runner import ExperimentResult, epoch_report
from repro.pipeline import ExecutionSpec

#: Cluster sizes the scaling curves sweep.
NODE_COUNTS = (4, 8, 16)

#: (label, partitioner, remote_cache) variants compared throughout:
#: the informed bundle, its two ablations, and the uninformed floor.
VARIANTS = (
    ("greedy+freq", "greedy", "freq"),
    ("greedy+none", "greedy", "none"),
    ("random+freq", "random", "freq"),
    ("random+none", "random", "none"),
)

#: A 20 Gb/s fabric (two-level fat-tree, 2:1 oversubscribed) — modest
#: enough that halo traffic is a visible share of the modeled epoch, as
#: on real ethernet clusters (the 100 Gb/s default models InfiniBand).
FABRIC = dict(topology="fat-tree", link_bandwidth=2.5e9,
              nic_bandwidth=2.5e9, oversubscription=2.0, pod_size=4)


def _cluster_config(config: RunConfig | None) -> RunConfig:
    """Default multi-node setup: 2 GPUs per node, sparse fanouts."""
    return config or RunConfig(num_gpus=2, batch_size=128, fanouts=(5, 10))


def _spec(num_nodes: int, partitioner: str, cache: str) -> ClusterSpec:
    return ClusterSpec(num_nodes=num_nodes, partitioner=partitioner,
                       remote_cache=cache, **FABRIC)


def _exec(num_nodes: int, partitioner: str, cache: str) -> ExecutionSpec:
    return ExecutionSpec(cluster=_spec(num_nodes, partitioner, cache))


def run_strong_scaling(dataset_name: str = "papers100m",
                       nodes=NODE_COUNTS,
                       config: RunConfig | None = None) -> ExperimentResult:
    """Fixed Papers100M analogue, 4-16 nodes, informed vs uninformed."""
    config = _cluster_config(config)
    result = ExperimentResult(
        exp_id="ext_cluster_strong",
        title=f"Strong scaling across simulated nodes ({dataset_name}, "
              f"{config.num_gpus} GPUs/node, 20 Gb/s fat-tree)",
        headers=["nodes", "cluster", "epoch_s", "speedup", "efficiency",
                 "cut", "halo_hit", "net_share"],
    )
    base = epoch_report(
        "fastgl", dataset_name, config, model="gcn",
        execution=_exec(1, "greedy", "freq"),
    )
    for num_nodes in nodes:
        for label, partitioner, cache in VARIANTS:
            report = epoch_report(
                "fastgl", dataset_name, config, model="gcn",
                execution=_exec(num_nodes, partitioner, cache),
            )
            cluster = report.extras["cluster"]
            speedup = base.epoch_time / report.epoch_time
            detail = report.phases.fractions(detail=True)
            result.rows.append([
                num_nodes, label,
                round(report.epoch_time, 6),
                round(speedup, 2),
                round(speedup / num_nodes, 3),
                f"{cluster['partition']['cut_fraction']:.1%}",
                f"{cluster['halo']['hit_rate']:.1%}",
                f"{detail['network']:.1%}",
            ])
    result.notes.append(
        "expected shape: greedy+freq holds the highest efficiency at "
        "every size — the edge-cut partitioner shrinks boundary traffic "
        "and the frequency cache absorbs the hot remote rows; "
        "random+none pays full halo traffic and falls off first as the "
        "per-node batch share shrinks"
    )
    return result


def run_weak_scaling(dataset_name: str = "papers100m",
                     nodes=NODE_COUNTS,
                     config: RunConfig | None = None) -> ExperimentResult:
    """Graph grows with the cluster: constant per-node share of the
    Papers100M analogue, efficiency vs the single-node run."""
    from repro.graph.datasets import DATASETS, Dataset

    config = _cluster_config(config)
    base_spec = DATASETS[dataset_name]
    per_node = max(1, base_spec.num_nodes // max(nodes))

    def sized(num_nodes: int) -> Dataset:
        spec = replace(base_spec,
                       name=f"{base_spec.name}-x{num_nodes}",
                       num_nodes=per_node * num_nodes)
        return Dataset(spec, seed=config.seed)

    result = ExperimentResult(
        exp_id="ext_cluster_weak",
        title=f"Weak scaling: {per_node} graph nodes per machine "
              f"({dataset_name} recipe, informed vs uninformed cluster)",
        headers=["nodes", "cluster", "graph_nodes", "epoch_s",
                 "efficiency", "cut", "halo_hit"],
    )
    baselines: dict = {}
    for num_nodes in (1,) + tuple(nodes):
        dataset = sized(num_nodes)
        for label, partitioner, cache in VARIANTS:
            if num_nodes == 1 and label != "greedy+freq":
                continue  # one node has no partitions to differ on
            report = epoch_report(
                "fastgl", dataset_name, config, model="gcn",
                dataset=dataset,
                execution=_exec(num_nodes, partitioner, cache),
            )
            if num_nodes == 1:
                baselines["epoch"] = report.epoch_time
                continue
            cluster = report.extras["cluster"]
            result.rows.append([
                num_nodes, label, dataset.spec.num_nodes,
                round(report.epoch_time, 6),
                round(baselines["epoch"] / report.epoch_time, 3),
                f"{cluster['partition']['cut_fraction']:.1%}",
                f"{cluster['halo']['hit_rate']:.1%}",
            ])
    result.notes.append(
        "expected shape: perfect weak scaling is efficiency 1.0 (epoch "
        "time flat as graph and cluster grow together); the gap is the "
        "network lane — smallest under greedy+freq, growing with node "
        "count as the boundary widens and inter-pod hops appear"
    )
    return result


def run_partitioners(dataset_name: str = "papers100m",
                     num_nodes: int = 8,
                     config: RunConfig | None = None) -> ExperimentResult:
    """Every registered partitioner at one cluster size: cut quality vs
    halo bytes vs modeled epoch time (frequency cache throughout)."""
    config = _cluster_config(config)
    result = ExperimentResult(
        exp_id="ext_cluster_part",
        title=f"Partitioner quality at {num_nodes} nodes "
              f"({dataset_name}, freq remote cache)",
        headers=["partitioner", "cut", "balance", "halo_nodes",
                 "halo_MB", "halo_hit", "epoch_s"],
    )
    for partitioner in ("greedy", "random", "hash"):
        report = epoch_report(
            "fastgl", dataset_name, config, model="gcn",
            execution=_exec(num_nodes, partitioner, "freq"),
        )
        cluster = report.extras["cluster"]
        partition, halo = cluster["partition"], cluster["halo"]
        result.rows.append([
            partitioner,
            f"{partition['cut_fraction']:.1%}",
            round(partition["balance"], 3),
            sum(partition["halo_nodes"]),
            round(halo["bytes_moved"] / 1e6, 2),
            f"{halo['hit_rate']:.1%}",
            round(report.epoch_time, 6),
        ])
    result.notes.append(
        "expected shape: greedy cuts a fraction of the edges random/hash "
        "cut, which shrinks the halo front and the bytes on the wire; "
        "the epoch-time gap is that traffic divided by the fabric"
    )
    return result


def run(config: RunConfig | None = None) -> ExperimentResult:
    """All parts merged for the benchmark harness."""
    merged = ExperimentResult(
        exp_id="ext_cluster",
        title="Multi-node cluster tier studies",
    )
    for part in (run_strong_scaling(config=config),
                 run_weak_scaling(config=config),
                 run_partitioners(config=config)):
        merged.notes.append(part.render())
    return merged
