"""Figure 10: memory-IO time — cache-ratio sweep and Reorder ablation.

(a) GCN on Products: GNNLab's cached loader vs FastGL's Match(+cache) as a
function of how much device memory is available for caching. Shape: at low
cache ratios (the large-graph regime) Match-Reorder wins big; with plenty
of cache both converge, FastGL keeping a minor edge.

(b) GCN on 1 GPU across datasets: DGL vs FastGL without the Greedy Reorder
('w/o') vs full FastGL ('w/'). Shape: Match alone already beats DGL;
Reorder adds up to ~25% on top. The solid-line series of the paper (memory
accesses per epoch) is reported as loaded-feature rows.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import RunConfig
from repro.experiments.runner import (
    ExperimentResult,
    TABLE_DATASETS,
    epoch_report,
    short_name,
)
from repro.frameworks import fastgl_variant

CACHE_RATIOS = (0.0, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0)


def run_sweep(
    dataset: str = "products",
    ratios=CACHE_RATIOS,
    config: RunConfig | None = None,
) -> ExperimentResult:
    """Part (a): memory-IO time vs cache ratio."""
    config = config or RunConfig(num_gpus=2)
    result = ExperimentResult(
        exp_id="fig10a",
        title=f"Memory-IO time vs cache ratio on {dataset} (GCN)",
        headers=["cache_ratio", "gnnlab_io_s", "fastgl_io_s", "ratio"],
    )
    fastgl_cached = fastgl_variant(cache=True, name="fastgl+cache")
    xs, gnnlab_ys, fastgl_ys = [], [], []
    for ratio in ratios:
        cfg = replace(config, cache_ratio_override=float(ratio))
        gnnlab = epoch_report("gnnlab", dataset, cfg, model="gcn")
        fastgl = epoch_report(fastgl_cached, dataset, cfg, model="gcn")
        g, f = gnnlab.phases.memory_io, fastgl.phases.memory_io
        result.rows.append([ratio, g, f, round(g / f, 2) if f else "inf"])
        xs.append(ratio)
        gnnlab_ys.append(g)
        fastgl_ys.append(f)
    result.series.append(("gnnlab_io_s", xs, gnnlab_ys))
    result.series.append(("fastgl_io_s", xs, fastgl_ys))
    result.notes.append(
        "paper shape: FastGL's advantage is largest at cache ratio < 0.5 "
        "(the large-graph regime) and shrinks to a minor edge with ample "
        "cache"
    )
    return result


def run_reorder(
    datasets=TABLE_DATASETS,
    config: RunConfig | None = None,
) -> ExperimentResult:
    """Part (b): with vs without Greedy Reorder, against DGL, on 1 GPU."""
    config = config or RunConfig(num_gpus=1)
    no_reorder = fastgl_variant(reorder=False, name="fastgl-noreorder")
    with_reorder = fastgl_variant(name="fastgl-reorder")
    result = ExperimentResult(
        exp_id="fig10b",
        title="Memory-IO time with/without the Greedy Reorder strategy "
              "(GCN, 1 GPU; accesses = loaded feature rows per epoch)",
        headers=["dataset", "dgl_io_s", "wo_reorder_io_s", "w_reorder_io_s",
                 "reorder_gain", "dgl_rows", "wo_rows", "w_rows"],
    )
    for dataset in datasets:
        dgl = epoch_report("dgl", dataset, config, model="gcn")
        wo = epoch_report(no_reorder, dataset, config, model="gcn")
        w = epoch_report(with_reorder, dataset, config, model="gcn")
        gain = (wo.phases.memory_io / w.phases.memory_io
                if w.phases.memory_io else float("inf"))
        result.rows.append([
            short_name(dataset),
            dgl.phases.memory_io,
            wo.phases.memory_io,
            w.phases.memory_io,
            round(gain, 3),
            dgl.transfer.num_loaded,
            wo.transfer.num_loaded,
            w.transfer.num_loaded,
        ])
    result.notes.append(
        "paper shape: Match alone ('w/o') clearly beats DGL; Reorder adds "
        "up to ~25% on top"
    )
    return result


def run(config: RunConfig | None = None) -> ExperimentResult:
    """Both parts merged for the benchmark harness."""
    part_a = run_sweep(config=config)
    part_b = run_reorder(config=replace(config or RunConfig(), num_gpus=1))
    merged = ExperimentResult(
        exp_id="fig10",
        title="Memory-IO phase analysis (parts a and b)",
    )
    merged.notes.append(part_a.render())
    merged.notes.append(part_b.render())
    return merged
