"""Extension experiments: online inference serving (:mod:`repro.serve`).

The paper evaluates training throughput; these experiments ask the
serving question — *given the same three-phase hot path (sample ->
memory IO -> aggregate), what do Fused-Map, Match-Reorder and
Memory-Aware buy an online inference server?*

* :func:`run_rate_sweep` — p50/p99 latency and goodput of DGL-style vs
  FastGL-style serving as the arrival rate climbs past saturation. The
  FastGL profile saturates later because every micro-batch costs less
  GPU time, so at equal load its queues stay shorter.
* :func:`run_window_sweep` — the micro-batching latency/efficiency
  trade-off: a wider window coalesces more requests per GPU pass (and
  gives Match more overlap to find) but charges every request more
  batching delay at low load.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.experiments.runner import ExperimentResult
from repro.graph.datasets import get_dataset
from repro.parallel import parallel_map
from repro.serve import ServeConfig, simulate

#: Arrival rates (req/s) spanning under- to over-saturation on the
#: reproduction-scale datasets.
RATES = (10_000.0, 25_000.0, 50_000.0, 100_000.0)
#: Batching windows (seconds) for the policy sweep.
WINDOWS = (0.0, 0.001, 0.002, 0.004, 0.008)


def _serve(framework, dataset, config, **overrides):
    base = dict(
        rate=50_000.0,
        num_requests=400,
        seeds_per_request=8,
        max_batch=16,
        batch_window_s=0.002,
        queue_capacity=512,
        slo_s=0.25,
        seed=config.seed,
    )
    base.update(overrides)
    return simulate(framework, dataset, run_config=config,
                    serve_config=ServeConfig(**base))


def run_rate_sweep(dataset_name: str = "reddit",
                   config: RunConfig | None = None,
                   jobs: int = 1) -> ExperimentResult:
    config = config or RunConfig(num_gpus=1, seed=0)
    dataset = get_dataset(dataset_name, seed=config.seed)
    result = ExperimentResult(
        exp_id="ext_serve",
        title=f"Serving latency vs arrival rate ({dataset_name}, "
              "DGL-style vs FastGL-style profiles)",
        headers=["rate_rps", "framework", "p50_ms", "p99_ms",
                 "goodput_rps", "shed", "dropped", "occupancy"],
    )
    grid = [(rate, framework)
            for rate in RATES for framework in ("dgl", "fastgl")]

    def point(args):
        rate, framework = args
        report = _serve(framework, dataset, config, rate=rate)
        goodput = (report.num_completed - report.sla_misses) \
            / report.makespan
        return [
            int(rate), framework,
            round(report.p50 * 1e3, 3),
            round(report.p99 * 1e3, 3),
            round(goodput, 1),
            report.num_shed, report.num_dropped,
            round(report.occupancy, 3),
        ]

    result.rows.extend(parallel_map(point, grid, jobs=jobs))
    for i in range(0, len(result.rows), 2):
        dgl_row, fast_row = result.rows[i], result.rows[i + 1]
        result.series.append((
            f"p99_ms@{dgl_row[0]}", ["dgl", "fastgl"],
            [dgl_row[3], fast_row[3]],
        ))
    result.notes.append(
        "fastgl serves each micro-batch with less GPU time (fused map + "
        "match reuse + memory-aware aggregation), so it saturates at a "
        "higher arrival rate and sheds/drops later than dgl"
    )
    return result


def run_window_sweep(dataset_name: str = "reddit",
                     config: RunConfig | None = None,
                     jobs: int = 1) -> ExperimentResult:
    config = config or RunConfig(num_gpus=1, seed=0)
    dataset = get_dataset(dataset_name, seed=config.seed)
    result = ExperimentResult(
        exp_id="ext_serve_window",
        title=f"Micro-batch window trade-off ({dataset_name}, fastgl, "
              "3k req/s)",
        headers=["window_ms", "mean_batch", "p50_ms", "p99_ms",
                 "gpu_passes", "occupancy"],
    )

    def point(window):
        report = _serve("fastgl", dataset, config, rate=3_000.0,
                        num_requests=300, batch_window_s=window)
        return [
            round(window * 1e3, 1),
            round(report.mean_batch_size, 1),
            round(report.p50 * 1e3, 3),
            round(report.p99 * 1e3, 3),
            len(report.batches),
            round(report.occupancy, 3),
        ]

    result.rows.extend(parallel_map(point, WINDOWS, jobs=jobs))
    result.notes.append(
        "window 0 serves singletons, saturates the GPU and queues; wider "
        "windows coalesce more requests per pass (occupancy falls, match "
        "overlap grows) but charge every request more batching delay — "
        "the p50 minimum sits at the narrowest window that still fills "
        "batches"
    )
    return result
