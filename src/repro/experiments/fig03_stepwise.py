"""Figure 3: stepwise optimization breakdown on Products (GCN and GIN).

Starting from the DGL baseline ('Naive'), apply the paper's techniques
cumulatively — +Match-Reorder, then +Memory-Aware, then +Fused-Map
(= FastGL) — and report each stack's phase times. The shape: each step
removes the then-dominant phase's bottleneck; after MR+MA the sample phase
is the residual bottleneck, which FM then cuts.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.experiments.runner import ExperimentResult, epoch_report
from repro.frameworks import fastgl_variant

STACKS = (
    ("Naive", "dgl"),
    ("Naive+MR", None),        # match+reorder only
    ("Naive+MR+MA", None),     # + memory-aware
    ("FastGL", None),          # + fused-map
)


def _variant_for(label: str):
    # All FastGL stacks include the Section-5 leftover-memory cache, as the
    # paper's do (Products leaves ample device memory — Table 1).
    if label == "Naive+MR":
        return fastgl_variant(match=True, reorder=True, memory_aware=False,
                              fused_map=False, cache=True, name="naive+mr")
    if label == "Naive+MR+MA":
        return fastgl_variant(match=True, reorder=True, memory_aware=True,
                              fused_map=False, cache=True, name="naive+mr+ma")
    if label == "FastGL":
        return fastgl_variant(match=True, reorder=True, memory_aware=True,
                              fused_map=True, cache=True, name="fastgl-full")
    raise KeyError(label)


def run(
    dataset: str = "products",
    models=("gcn", "gin"),
    config: RunConfig | None = None,
) -> ExperimentResult:
    config = config or RunConfig(num_gpus=2)
    result = ExperimentResult(
        exp_id="fig03",
        title=f"Stepwise optimization breakdown on {dataset} "
              "(per-epoch modeled seconds)",
        headers=["model", "stack", "sample_s", "memory_io_s", "compute_s",
                 "total_s", "sample_frac"],
    )
    for model in models:
        for label, name in STACKS:
            framework = name if name else _variant_for(label)
            report = epoch_report(framework, dataset, config, model=model)
            phases = report.phases
            total = phases.serial_total
            result.rows.append([
                model,
                label,
                phases.sample,
                phases.memory_io,
                phases.compute + phases.allreduce,
                total,
                round(phases.sample / total, 3) if total else 0.0,
            ])
    result.notes.append(
        "paper shape: memory IO dominates Naive; after +MR compute "
        "dominates; after +MR+MA the sample phase exceeds 50%; FastGL "
        "(adds Fused-Map) cuts it"
    )
    return result
