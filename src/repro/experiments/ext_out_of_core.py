"""Out-of-core extension study: training when features exceed host DRAM.

The paper's evaluation assumes the feature table fits in host memory; at
true Papers100M/IGB scale it does not. These experiments run the
Papers100M analogue end-to-end through the SSD tier
(:mod:`repro.storage`) and measure the design choices of that tier:

* :func:`run_access_paths` — GIDS-style GPU-initiated direct access vs
  the classic bounce buffer (host-link bytes, IO time).
* :func:`run_cache_policies` — partition-aware (BGL-style) vs plain LRU
  page caching across cache ratios.
* :func:`run_page_sizes` — page size vs read amplification vs command
  count.
* :func:`run_match_ssd` — FastGL's Match in front of the storage tier:
  SSD reads per epoch vs the DGL out-of-core baseline.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import RunConfig
from repro.experiments.runner import ExperimentResult, epoch_report
from repro.frameworks import OutOfCoreDGLFramework, OutOfCoreFastGLFramework
from repro.graph.datasets import get_dataset

#: Host-memory budget as a fraction of the feature table. Below 1.0 the
#: table cannot be host-resident — the regime this tier exists for.
BUDGET_RATIOS = (0.02, 0.05, 0.1, 0.2)
PAGE_SIZES = (1024, 4096, 16384, 65536)


def _ooc_config(config: RunConfig | None) -> RunConfig:
    """Default out-of-core setup: 1 GPU, sparse fanouts (at reproduction
    scale the dense default saturates every page, hiding cache policy)."""
    return config or RunConfig(num_gpus=1, batch_size=128, fanouts=(3, 5))


def _with_budget(config: RunConfig, dataset_name: str,
                 ratio: float) -> RunConfig:
    table = get_dataset(dataset_name, seed=config.seed).features.total_bytes
    return replace(config, host_memory_bytes=int(ratio * table))


def run_access_paths(dataset_name: str = "papers100m",
                     config: RunConfig | None = None) -> ExperimentResult:
    """Direct SSD->GPU vs bounce-buffer staging, DGL-ooc and FastGL-ooc."""
    config = _with_budget(_ooc_config(config), dataset_name, 0.05)
    result = ExperimentResult(
        exp_id="ext_ooc_path",
        title="Out-of-core access path: GPU-initiated direct vs bounce "
              f"buffer ({dataset_name}, budget 5% of table)",
        headers=["framework", "access", "io_s", "host_link_MB",
                 "pcie_feature_MB", "ssd_MB"],
    )
    for framework in ("dgl-ooc", "fastgl-ooc"):
        for access in ("direct", "bounce"):
            cfg = replace(config, storage_access=access)
            report = epoch_report(framework, dataset_name, cfg, model="gcn")
            t = report.transfer
            result.rows.append([
                framework, access,
                report.phases.memory_io,
                round(t.host_bounce_bytes / 1e6, 2),
                round(t.feature_bytes / 1e6, 2),
                round(t.ssd_bytes / 1e6, 2),
            ])
    result.notes.append(
        "expected shape: direct access moves zero bytes through host "
        "DRAM and completes IO faster (deep GPU-side queues amortize "
        "NVMe latency; no host gather, no second hop)"
    )
    return result


def run_cache_policies(dataset_name: str = "papers100m",
                       ratios=BUDGET_RATIOS,
                       config: RunConfig | None = None) -> ExperimentResult:
    """Partition-aware vs LRU page cache across host-memory budgets."""
    config = _ooc_config(config)
    result = ExperimentResult(
        exp_id="ext_ooc_cache",
        title="Page-cache policy: partition-aware (BGL-style) vs LRU "
              f"({dataset_name}, DGL-ooc)",
        headers=["budget_ratio", "lru_hit", "partition_hit", "rel",
                 "lru_ssd_MB", "partition_ssd_MB"],
    )
    for ratio in ratios:
        cfg = _with_budget(config, dataset_name, ratio)
        rows = {}
        for policy in ("lru", "partition"):
            report = epoch_report(
                "dgl-ooc", dataset_name,
                replace(cfg, page_cache_policy=policy), model="gcn",
            )
            rows[policy] = report.transfer
        lru, part = rows["lru"], rows["partition"]
        rel = (part.page_hit_rate / lru.page_hit_rate
               if lru.page_hit_rate else float("inf"))
        result.rows.append([
            ratio,
            round(lru.page_hit_rate, 4),
            round(part.page_hit_rate, 4),
            round(rel, 2),
            round(lru.ssd_bytes / 1e6, 2),
            round(part.ssd_bytes / 1e6, 2),
        ])
    result.notes.append(
        "expected shape: pinning the pages of training-hot partitions "
        "beats recency at small cache ratios, where LRU thrashes on the "
        "once-per-batch page scan"
    )
    return result


def run_page_sizes(dataset_name: str = "papers100m",
                   sizes=PAGE_SIZES,
                   config: RunConfig | None = None) -> ExperimentResult:
    """Page size: read amplification vs NVMe command count."""
    config = _with_budget(_ooc_config(config), dataset_name, 0.05)
    result = ExperimentResult(
        exp_id="ext_ooc_page",
        title=f"Page-size sweep ({dataset_name}, DGL-ooc, direct access)",
        headers=["page_bytes", "ssd_MB", "amplification", "ssd_requests",
                 "io_s"],
    )
    for page_bytes in sizes:
        cfg = replace(config, page_bytes=int(page_bytes))
        report = epoch_report("dgl-ooc", dataset_name, cfg, model="gcn")
        t = report.transfer
        wanted_bytes = t.num_loaded * get_dataset(
            dataset_name, seed=cfg.seed
        ).features.bytes_per_node
        result.rows.append([
            page_bytes,
            round(t.ssd_bytes / 1e6, 2),
            round(t.ssd_bytes / max(1, wanted_bytes), 2),
            t.ssd_requests,
            report.phases.memory_io,
        ])
    result.notes.append(
        "expected shape: larger pages cut command count but inflate read "
        "amplification; the sweet spot sits at a few KiB for scattered "
        "feature rows"
    )
    return result


def run_match_ssd(dataset_name: str = "papers100m",
                  config: RunConfig | None = None) -> ExperimentResult:
    """Match-Reorder in front of the SSD: pages read per epoch."""
    config = _with_budget(_ooc_config(config), dataset_name, 0.05)
    result = ExperimentResult(
        exp_id="ext_ooc_match",
        title="SSD traffic per epoch: DGL-ooc vs FastGL-ooc "
              f"({dataset_name})",
        headers=["framework", "ssd_pages", "ssd_MB", "rows_reused",
                 "io_s", "epoch_s"],
    )
    for framework in ("dgl-ooc", "fastgl-ooc"):
        report = epoch_report(framework, dataset_name, config, model="gcn")
        t = report.transfer
        result.rows.append([
            framework, t.ssd_pages, round(t.ssd_bytes / 1e6, 2),
            t.num_reused, report.phases.memory_io, report.epoch_time,
        ])
    result.notes.append(
        "expected shape: rows resident from the previous batch never "
        "become page requests, so Match cuts SSD reads, and the "
        "prefetch pipeline overlaps the remaining reads with "
        "sampling/compute"
    )
    return result


def run_end_to_end(dataset_name: str = "papers100m",
                   budget_ratio: float = 0.08,
                   config: RunConfig | None = None) -> ExperimentResult:
    """The acceptance run: a Papers100M analogue whose host-memory budget
    is far below its feature table, end-to-end through the storage tier."""
    config = _with_budget(_ooc_config(config), dataset_name, budget_ratio)
    dataset = get_dataset(dataset_name, seed=config.seed)
    table = dataset.features.total_bytes
    result = ExperimentResult(
        exp_id="ext_ooc_e2e",
        title=f"Out-of-core end-to-end ({dataset_name}: host budget "
              f"{budget_ratio:.0%} of the feature table)",
        headers=["framework", "table_MB", "budget_MB", "cache_MB",
                 "epoch_s", "batches"],
    )
    for cls in (OutOfCoreDGLFramework, OutOfCoreFastGLFramework):
        framework = cls()
        report = framework.run_epoch(dataset, config)
        loader = framework._last_loader
        resident = loader.cache.resident_bytes(
            loader.store.page_store.page_bytes
        )
        result.rows.append([
            framework.name,
            round(table / 1e6, 2),
            round(config.host_memory_bytes / 1e6, 2),
            round(resident / 1e6, 2),
            report.epoch_time,
            report.num_batches,
        ])
    result.notes.append(
        "the run completes with the page cache strictly inside the "
        "budget — the feature table itself never becomes host-resident"
    )
    return result


def run(config: RunConfig | None = None) -> ExperimentResult:
    """All parts merged for the benchmark harness."""
    merged = ExperimentResult(
        exp_id="ext_ooc",
        title="Out-of-core storage tier studies",
    )
    for part in (run_access_paths(config=config),
                 run_cache_policies(config=config),
                 run_page_sizes(config=config),
                 run_match_ssd(config=config),
                 run_end_to_end(config=config)):
        merged.notes.append(part.render())
    return merged
