"""Figure 11: computation-phase time of GCN across frameworks.

Shape to reproduce: Memory-Aware (FastGL) beats DGL/PyG naive kernels by
~1.1-6.7x, and GNNAdvisor *loses* to DGL despite its better kernels,
because per-subgraph preprocessing (reported here as its own column, the
paper's shadowed bar-top) eats up to 75% of its computation phase.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.experiments.runner import (
    ALL_DATASETS,
    ExperimentResult,
    epoch_report,
    short_name,
    speedup,
)

FRAMEWORK_ORDER = ("pyg", "dgl", "gnnadvisor", "fastgl")


def run(
    datasets=ALL_DATASETS,
    frameworks=FRAMEWORK_ORDER,
    config: RunConfig | None = None,
) -> ExperimentResult:
    config = config or RunConfig(num_gpus=2)
    result = ExperimentResult(
        exp_id="fig11",
        title="Computation-phase time per epoch (GCN, 2 GPUs); advisor "
              "preprocess share shown separately",
        headers=["dataset"]
        + [f"{f}_s" for f in frameworks]
        + ["advisor_preprocess_s", "advisor_preprocess_frac", "x_over_dgl"],
    )
    for dataset in datasets:
        times = {}
        preprocess = 0.0
        for framework in frameworks:
            report = epoch_report(framework, dataset, config, model="gcn")
            times[framework] = report.phases.compute
            if framework == "gnnadvisor":
                preprocess = report.phases.preprocess
        frac = preprocess / times["gnnadvisor"] if times["gnnadvisor"] else 0
        result.rows.append(
            [short_name(dataset)]
            + [times[f] for f in frameworks]
            + [preprocess, round(frac, 3),
               round(speedup(times["dgl"], times["fastgl"]), 2)]
        )
    result.notes.append(
        "paper shape: FastGL 1.1-6.7x faster compute than the naive "
        "kernels; GNNAdvisor slower than DGL because preprocessing (up to "
        "75% of its compute phase) cannot be amortized under sampling"
    )
    return result
