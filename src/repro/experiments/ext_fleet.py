"""Extension experiments: the serving fleet (:mod:`repro.serve.fleet`).

The paper's Match stage exploits inter-batch node overlap on one GPU;
these experiments ask the fleet question — *when N replicas serve
overlapping user streams, what does routing on Match residency buy over
classic load balancing?*

* :func:`run_routing` — round-robin vs JSQ vs match-affinity at a fixed
  replica count on a locality-skewed user population: match-affinity
  must win **both** p99 and device cache-hit rate (the acceptance gate
  in ``benchmarks/test_ext_fleet.py``).
* :func:`run_scaling` — JSQ p99 as the replica count grows at a fixed
  arrival rate, with the shared cache tier's hit split alongside.
* :func:`run_chaos` — replica crashes mid-flash-crowd under the
  ``replica_crash`` fault site: availability ledger, re-routed counts
  and the autoscaler's recovery actions.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.experiments.runner import ExperimentResult
from repro.faults import FaultPlan, FaultSpec, fault_scope
from repro.serve import (
    AutoscalerConfig,
    CacheTierConfig,
    FleetSpec,
    ServeConfig,
    simulate_fleet,
)
from repro.serve.fleet import fleet_demo_dataset
from repro.serve.routing import ROUTER_POLICIES

#: The locality-skewed fleet workload every experiment shares: user
#: clusters draw seeds from overlapping windows, memory IO dominates
#: service time, and the fleet runs warm but unsaturated.
FLEET_WORKLOAD = dict(
    rate=2_000.0,
    num_requests=500,
    seeds_per_request=16,
    max_batch=4,
    batch_window_s=0.002,
    queue_capacity=512,
    slo_s=5.0,
    num_users=32,
)


def _fleet_config(seed: int, **overrides) -> ServeConfig:
    base = dict(FLEET_WORKLOAD, seed=seed)
    base.update(overrides)
    return ServeConfig(**base)


def run_routing(dataset_name: str = "fleet-smoke",
                config: RunConfig | None = None,
                jobs: int = 1) -> ExperimentResult:
    config = config or RunConfig(num_gpus=1, seed=0)
    dataset = fleet_demo_dataset(dataset_name, seed=config.seed)
    result = ExperimentResult(
        exp_id="ext_fleet_routing",
        title="Fleet routing policies on overlapping user streams "
              "(fastgl, 4 replicas)",
        headers=["router", "p50_ms", "p99_ms", "throughput_rps",
                 "device_hit", "availability", "rerouted"],
    )
    serve_config = _fleet_config(config.seed)
    for policy in ROUTER_POLICIES:
        report = simulate_fleet(
            "fastgl", dataset, run_config=config,
            serve_config=serve_config,
            fleet=FleetSpec(num_replicas=4, router=policy))
        result.rows.append([
            policy,
            round(report.p50 * 1e3, 3),
            round(report.p99 * 1e3, 3),
            round(report.throughput, 1),
            round(report.device_hit_rate, 4),
            round(report.availability, 4),
            report.rerouted,
        ])
    result.series.append((
        "p99_ms", [row[0] for row in result.rows],
        [row[2] for row in result.rows],
    ))
    result.series.append((
        "device_hit", [row[0] for row in result.rows],
        [row[4] for row in result.rows],
    ))
    result.notes.append(
        "match-affinity keeps each user cluster on the replica whose "
        "Match residency already holds its feature rows, so the same "
        "requests cost less PCIe traffic AND less queueing than "
        "round-robin or JSQ — the paper's inter-batch overlap insight "
        "applied across replicas instead of across micro-batches"
    )
    return result


def run_scaling(dataset_name: str = "fleet-smoke",
                config: RunConfig | None = None,
                jobs: int = 1) -> ExperimentResult:
    config = config or RunConfig(num_gpus=1, seed=0)
    dataset = fleet_demo_dataset(dataset_name, seed=config.seed)
    result = ExperimentResult(
        exp_id="ext_fleet_scale",
        title="JSQ fleet p99 vs replica count at fixed arrival rate "
              "(fastgl, shared cache tier on)",
        headers=["replicas", "p50_ms", "p99_ms", "throughput_rps",
                 "tier_hit", "tier_stale", "device_hit"],
    )
    # Singleton batching with a residency-free service keeps queueing
    # effects clean; the shared tier still shows its hit/stale split.
    serve_config = _fleet_config(config.seed, max_batch=1,
                                 batch_window_s=0.0)
    for replicas in (1, 2, 4, 8):
        report = simulate_fleet(
            "fastgl", dataset, run_config=config,
            serve_config=serve_config,
            fleet=FleetSpec(num_replicas=replicas, router="jsq",
                            cache=CacheTierConfig(enabled=True,
                                                  capacity_rows=8192,
                                                  ttl_s=0.05)))
        result.rows.append([
            replicas,
            round(report.p50 * 1e3, 3),
            round(report.p99 * 1e3, 3),
            round(report.throughput, 1),
            round(report.tier_hit_rate, 4),
            round(report.tier_stale_rate, 4),
            round(report.device_hit_rate, 4),
        ])
    result.series.append((
        "p99_ms", [str(r[0]) for r in result.rows],
        [r[2] for r in result.rows],
    ))
    result.notes.append(
        "doubling replicas divides each queue's arrival rate, so JSQ "
        "p99 falls monotonically toward the bare service time; the "
        "shared tier's TTL split shows the staleness price a fleet pays "
        "for caching embeddings that retrain underneath it"
    )
    return result


def run_chaos(dataset_name: str = "fleet-smoke",
              config: RunConfig | None = None,
              jobs: int = 1) -> ExperimentResult:
    config = config or RunConfig(num_gpus=1, seed=0)
    dataset = fleet_demo_dataset(dataset_name, seed=config.seed)
    result = ExperimentResult(
        exp_id="ext_fleet_chaos",
        title="Replica loss mid-flash-crowd: availability ledger and "
              "autoscaler recovery (fastgl, 4 replicas)",
        headers=["crash_prob", "crashes", "rerouted", "outage",
                 "availability", "p99_ms", "scale_adds"],
    )
    serve_config = _fleet_config(config.seed, arrival="flash")
    for probability in (0.0, 0.5, 1.0):
        plan = FaultPlan(seed=99, sites={
            "replica_crash": FaultSpec(probability=probability,
                                       max_failures=1),
        })
        with fault_scope(plan):
            report = simulate_fleet(
                "fastgl", dataset, run_config=config,
                serve_config=serve_config,
                fleet=FleetSpec(
                    num_replicas=4, router="jsq",
                    autoscaler=AutoscalerConfig(
                        enabled=True, max_replicas=6,
                        add_occupancy=0.2, drain_occupancy=0.02,
                        interval_s=0.005, cooldown_s=0.02)))
        adds = sum(1 for e in report.scale_events if e.action == "add")
        result.rows.append([
            probability,
            len(report.crash_events),
            report.rerouted,
            report.outage_shed,
            round(report.availability, 4),
            round(report.p99 * 1e3, 3),
            adds,
        ])
    result.notes.append(
        "a crashed replica's queued and in-flight requests are recovered "
        "and re-routed (never silently lost): completed + shed + dropped "
        "always equals the scheduled total, and availability falls only "
        "by what genuinely could not be absorbed"
    )
    return result
