"""Figure 1: execution-time breakdown of GCN training per framework.

The paper's motivating figure: across PyG, DGL and GNNLab on each graph,
what fraction of the epoch goes to sample / memory IO / computation. The
shapes to reproduce: PyG is sample-dominated (CPU sampling), DGL and
GNNLab are memory-IO-dominated on the large graphs.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.experiments.runner import (
    ALL_DATASETS,
    ExperimentResult,
    epoch_report,
    short_name,
)

FRAMEWORK_ORDER = ("pyg", "dgl", "gnnlab")


def run(
    datasets=ALL_DATASETS,
    frameworks=FRAMEWORK_ORDER,
    config: RunConfig | None = None,
) -> ExperimentResult:
    config = config or RunConfig(num_gpus=2)
    result = ExperimentResult(
        exp_id="fig01",
        title="Execution-time breakdown of GCN training (fractions of the "
              "serial epoch)",
        headers=["dataset", "framework", "sample", "memory_io", "compute",
                 "epoch_s"],
    )
    for dataset in datasets:
        for framework in frameworks:
            report = epoch_report(framework, dataset, config, model="gcn")
            fractions = report.phases.fractions()
            result.rows.append([
                short_name(dataset),
                framework,
                round(fractions["sample"], 3),
                round(fractions["memory_io"], 3),
                round(fractions["compute"], 3),
                report.epoch_time,
            ])
    result.notes.append(
        "paper shape: PyG spends up to 97% sampling; DGL/GNNLab are "
        "memory-IO bound (up to 77%) on large graphs"
    )
    return result
