"""Experiment drivers — one module per table/figure of the paper.

Every module exposes ``run(...) -> ExperimentResult`` with keyword
parameters defaulting to the reproduction-scale setup, and the benchmark
suite under ``benchmarks/`` regenerates and prints each one. The mapping
from experiment ID to module is in DESIGN.md §4.
"""

from repro.experiments.runner import (
    ALL_DATASETS,
    ExperimentResult,
    epoch_report,
    clear_report_cache,
)

__all__ = [
    "ALL_DATASETS",
    "ExperimentResult",
    "epoch_report",
    "clear_report_cache",
]
