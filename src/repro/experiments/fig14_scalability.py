"""Figure 14: scalability sweeps — GPUs, batch size, feature dim, fanouts.

Shapes to reproduce (all on Products, GCN, unless stated):

(a) FastGL scales better with GPU count than DGL (paper at 8 GPUs: 5.93x
    vs 3.36x over their own 1-GPU runs) — IO-bound baselines saturate the
    shared host link.
(b) FastGL's advantage grows with batch size (more overlap to Match, and
    sampling — accelerated by Fused-Map — becomes the bottleneck).
(c) FastGL wins across feature dimensions; compute speedup holds as d
    grows.
(d) FastGL wins across fanout/layer configurations, with the edge growing
    for deeper/wider sampling where GNNLab's one-GPU sampler can no longer
    hide its latency.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import RunConfig
from repro.experiments.runner import ExperimentResult, epoch_report, speedup
from repro.graph.datasets import get_dataset

GPU_COUNTS = (1, 2, 4, 8)
BATCH_SIZES = (64, 128, 256, 512, 768)
FEATURE_DIMS = (64, 128, 256, 512)
FANOUT_CONFIGS = ((5, 10), (5, 10, 15), (5, 5, 10, 10))


def run_gpus(dataset: str = "products",
             config: RunConfig | None = None) -> ExperimentResult:
    config = config or RunConfig()
    result = ExperimentResult(
        exp_id="fig14a",
        title=f"Scalability with GPU count ({dataset}, GCN)",
        headers=["gpus", "dgl_s", "gnnlab_s", "fastgl_s", "x_dgl",
                 "dgl_self_x", "fastgl_self_x"],
    )
    base = {}
    for gpus in GPU_COUNTS:
        cfg = replace(config, num_gpus=gpus)
        times = {}
        for framework in ("dgl", "gnnlab", "fastgl"):
            if framework == "gnnlab" and gpus < 2:
                times[framework] = float("nan")  # GNNLab needs >= 2 GPUs
                continue
            report = epoch_report(framework, dataset, cfg, model="gcn")
            times[framework] = report.epoch_time
        if gpus == GPU_COUNTS[0]:
            base = dict(times)
        result.rows.append([
            gpus, times["dgl"], times["gnnlab"], times["fastgl"],
            round(speedup(times["dgl"], times["fastgl"]), 2),
            round(speedup(base["dgl"], times["dgl"]), 2),
            round(speedup(base["fastgl"], times["fastgl"]), 2),
        ])
    result.notes.append(
        "paper shape: at 8 GPUs DGL reaches ~3.4x its 1-GPU speed, FastGL "
        "~5.9x; GNNLab cannot run on 1 GPU"
    )
    return result


def run_batch_size(dataset: str = "products",
                   config: RunConfig | None = None) -> ExperimentResult:
    config = config or RunConfig(num_gpus=2)
    result = ExperimentResult(
        exp_id="fig14b",
        title=f"Scalability with batch size ({dataset}, GCN, 2 GPUs)",
        headers=["batch", "dgl_s", "gnnlab_s", "fastgl_s", "x_dgl",
                 "x_gnnlab"],
    )
    for batch in BATCH_SIZES:
        cfg = replace(config, batch_size=batch)
        times = {
            f: epoch_report(f, dataset, cfg, model="gcn").epoch_time
            for f in ("dgl", "gnnlab", "fastgl")
        }
        result.rows.append([
            batch, times["dgl"], times["gnnlab"], times["fastgl"],
            round(speedup(times["dgl"], times["fastgl"]), 2),
            round(speedup(times["gnnlab"], times["fastgl"]), 2),
        ])
    result.notes.append(
        "paper shape: 1.8-3.2x over baselines, growing with batch size"
    )
    return result


def run_feature_dim(dataset: str = "products",
                    config: RunConfig | None = None) -> ExperimentResult:
    config = config or RunConfig(num_gpus=2)
    base = get_dataset(dataset, seed=config.seed)
    result = ExperimentResult(
        exp_id="fig14c",
        title=f"Scalability with feature dimension ({dataset}, GCN, 2 GPUs;"
              " compute_x = DGL/FastGL compute-phase ratio)",
        headers=["feat_dim", "dgl_s", "fastgl_s", "x_overall", "compute_x"],
    )
    for dim in FEATURE_DIMS:
        variant = base.with_feature_dim(dim)
        dgl = epoch_report("dgl", f"{dataset}:d{dim}", config, model="gcn",
                           dataset=variant)
        fast = epoch_report("fastgl", f"{dataset}:d{dim}", config,
                            model="gcn", dataset=variant)
        result.rows.append([
            dim, dgl.epoch_time, fast.epoch_time,
            round(speedup(dgl.epoch_time, fast.epoch_time), 2),
            round(speedup(dgl.phases.compute, fast.phases.compute), 2),
        ])
    result.notes.append(
        "paper shape: 1.4-2.5x overall across dimensions; Memory-Aware "
        "compute speedup holds for every d"
    )
    return result


def run_fanouts(dataset: str = "products",
                config: RunConfig | None = None) -> ExperimentResult:
    config = config or RunConfig(num_gpus=2)
    result = ExperimentResult(
        exp_id="fig14d",
        title=f"Scalability with fanouts/layers ({dataset}, GCN, 2 GPUs; "
              "sample_s = sample-phase time)",
        headers=["fanouts", "dgl_s", "gnnlab_s", "fastgl_s", "x_dgl",
                 "fastgl_sample_s", "gnnlab_sample_s"],
    )
    for fanouts in FANOUT_CONFIGS:
        cfg = replace(config, fanouts=fanouts)
        reports = {
            f: epoch_report(f, dataset, cfg, model="gcn")
            for f in ("dgl", "gnnlab", "fastgl")
        }
        result.rows.append([
            str(list(fanouts)),
            reports["dgl"].epoch_time,
            reports["gnnlab"].epoch_time,
            reports["fastgl"].epoch_time,
            round(speedup(reports["dgl"].epoch_time,
                          reports["fastgl"].epoch_time), 2),
            reports["fastgl"].phases.sample,
            reports["gnnlab"].phases.sample,
        ])
    result.notes.append(
        "paper shape: FastGL wins at every depth; for the largest config "
        "([5,5,10,10]) GNNLab's dedicated sampler can no longer hide "
        "sampling latency"
    )
    return result


def run(config: RunConfig | None = None) -> ExperimentResult:
    merged = ExperimentResult(
        exp_id="fig14", title="Scalability sweeps (parts a-d)"
    )
    for part in (run_gpus, run_batch_size, run_feature_dim, run_fanouts):
        merged.notes.append(part(config=config).render())
    return merged
