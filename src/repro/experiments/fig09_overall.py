"""Figure 9: overall training speed, 3 models x 5 datasets, 2 GPUs.

The headline comparison. Shapes to reproduce: FastGL fastest everywhere;
speedups over DGL in the ~1.7-5x band; over GNNLab in the ~1.1-2x band
(larger where the cache has no memory to live in); GNNAdvisor worse than
DGL (per-iteration preprocessing); PyG an order of magnitude slower
(reported separately, as the paper leaves it off the figure).
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.experiments.runner import (
    ALL_DATASETS,
    ExperimentResult,
    epoch_report,
    short_name,
    speedup,
)

MODELS = ("gcn", "gin", "gat")
FRAMEWORK_ORDER = ("dgl", "gnnadvisor", "gnnlab", "fastgl")


def run(
    datasets=ALL_DATASETS,
    models=MODELS,
    frameworks=FRAMEWORK_ORDER,
    include_pyg: bool = True,
    config: RunConfig | None = None,
) -> ExperimentResult:
    config = config or RunConfig(num_gpus=2)
    result = ExperimentResult(
        exp_id="fig09",
        title="Overall training speed on 2 GPUs (modeled epoch seconds; "
              "speedup = framework / FastGL)",
        headers=["model", "dataset"]
        + [f"{f}_s" for f in frameworks]
        + [f"x_{f}" for f in frameworks if f != "fastgl"],
    )
    pyg_rows = []
    for model in models:
        for dataset in datasets:
            times = {}
            for framework in frameworks:
                report = epoch_report(framework, dataset, config, model=model)
                times[framework] = report.epoch_time
            fast = times["fastgl"]
            row = [model, short_name(dataset)]
            row += [times[f] for f in frameworks]
            row += [round(speedup(times[f], fast), 2)
                    for f in frameworks if f != "fastgl"]
            result.rows.append(row)
            if include_pyg:
                pyg = epoch_report("pyg", dataset, config, model=model)
                pyg_rows.append(
                    (model, short_name(dataset), pyg.epoch_time,
                     round(speedup(pyg.epoch_time, fast), 1))
                )
    if pyg_rows:
        for model, dataset, time, ratio in pyg_rows:
            result.notes.append(
                f"PyG {model}/{dataset}: {time:.4g}s ({ratio}x slower than "
                "FastGL; off-figure as in the paper)"
            )
    result.notes.append(
        "paper bands: FastGL over DGL 1.7-5.1x, over GNNLab 1.1-2.0x, over "
        "GNNAdvisor 2.9-8.8x, over PyG 4.3-28.9x"
    )
    return result
