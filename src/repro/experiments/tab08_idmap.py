"""Table 8: time spent in the ID-map process, DGL vs Fused-Map.

Per epoch, on the four Table-8 datasets: the synchronizing three-kernel ID
map against Fused-Map. Shape: Fused-Map is ~2.1-2.7x faster (paper: RD
2.3x, PR 2.1x, MAG 2.6x, PA 2.7x).
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.experiments.runner import (
    ExperimentResult,
    TABLE_DATASETS,
    epoch_report,
    short_name,
)

#: Paper Table 8: (DGL seconds, Fused-Map seconds).
PAPER_VALUES = {
    "reddit": (0.18, 0.08),
    "products": (0.30, 0.14),
    "mag": (2.55, 0.98),
    "papers100m": (2.18, 0.81),
}


def run(datasets=TABLE_DATASETS,
        config: RunConfig | None = None) -> ExperimentResult:
    config = config or RunConfig(num_gpus=1)
    result = ExperimentResult(
        exp_id="tab08",
        title="ID-map time per epoch: DGL's synchronizing map vs Fused-Map",
        headers=["dataset", "dgl_s", "fused_s", "x", "paper_x"],
    )
    for dataset in datasets:
        dgl = epoch_report("dgl", dataset, config, model="gcn")
        fast = epoch_report("fastgl", dataset, config, model="gcn")
        ratio = (dgl.phases.idmap / fast.phases.idmap
                 if fast.phases.idmap else float("inf"))
        paper = PAPER_VALUES.get(dataset)
        paper_ratio = round(paper[0] / paper[1], 2) if paper else "n/a"
        result.rows.append([
            short_name(dataset),
            dgl.phases.idmap,
            fast.phases.idmap,
            round(ratio, 2),
            paper_ratio,
        ])
    result.notes.append("paper band: 2.1-2.7x faster ID map with Fused-Map")
    return result
