"""Figure 13: sample-phase time per epoch (GCN, 2 GPUs).

Shape to reproduce: PyG is orders of magnitude slower (CPU sampling, up to
~80x); DGL is ~2-2.5x slower than FastGL because of ID-map thread
synchronization, which Fused-Map removes.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.experiments.runner import (
    ALL_DATASETS,
    ExperimentResult,
    epoch_report,
    short_name,
    speedup,
)

FRAMEWORK_ORDER = ("pyg", "dgl", "gnnlab", "fastgl")


def run(
    datasets=ALL_DATASETS,
    frameworks=FRAMEWORK_ORDER,
    config: RunConfig | None = None,
) -> ExperimentResult:
    config = config or RunConfig(num_gpus=2)
    result = ExperimentResult(
        exp_id="fig13",
        title="Sample-phase time per epoch (GCN, 2 GPUs)",
        headers=["dataset"]
        + [f"{f}_s" for f in frameworks]
        + ["x_pyg", "x_dgl"],
    )
    for dataset in datasets:
        times = {}
        for framework in frameworks:
            report = epoch_report(framework, dataset, config, model="gcn")
            times[framework] = report.phases.sample
        result.rows.append(
            [short_name(dataset)]
            + [times[f] for f in frameworks]
            + [round(speedup(times["pyg"], times["fastgl"]), 1),
               round(speedup(times["dgl"], times["fastgl"]), 2)]
        )
    result.notes.append(
        "paper shape: up to 80.8x over PyG and 2.0-2.5x over DGL"
    )
    return result
