"""Deterministic random-number helpers.

Every stochastic component in the package (graph generators, samplers, the
simulated-concurrency harness) takes either a seed or a ``numpy`` Generator.
``RngFactory`` derives independent child generators from a root seed so that
changing one component's consumption of randomness does not perturb others —
important for reproducible experiment tables.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (a fixed default seed — this package favours determinism over
    surprise entropy).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        rng = 0
    return np.random.default_rng(int(rng))


class RngFactory:
    """Derives named, independent child generators from one root seed.

    >>> f = RngFactory(seed=7)
    >>> a = f.child("sampler")
    >>> b = f.child("generator")

    The same ``(seed, name)`` pair always yields the same stream, and two
    distinct names yield statistically independent streams (via
    ``SeedSequence.spawn`` keyed on the name hash).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def child(self, name: str) -> np.random.Generator:
        """Return a generator unique to ``(self.seed, name)``."""
        # Stable across processes: hash() is salted, so use a simple fold.
        digest = 0
        for ch in name:
            digest = (digest * 131 + ord(ch)) % (2**31 - 1)
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(digest,))
        return np.random.default_rng(seq)

    def child_seed(self, name: str) -> int:
        """An integer seed derived like :meth:`child` (for APIs wanting ints)."""
        return int(self.child(name).integers(0, 2**31 - 1))
