"""Plain-text reporting helpers: tables and inline series.

The benchmark harness regenerates every table and figure of the paper as
text. These helpers render aligned ASCII tables and compact numeric series so
the output can be diffed and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix (k, M, G, T)."""
    prefixes = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")]
    for scale, prefix in prefixes:
        if abs(value) >= scale:
            return f"{value / scale:.{digits}g}{prefix}{unit}"
    return f"{value:.{digits}g}{unit}"


def format_bytes(num_bytes: float) -> str:
    """Format a byte count using binary prefixes (KiB, MiB, GiB)."""
    value = float(num_bytes)
    for prefix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or prefix == "TiB":
            return f"{value:.4g}{prefix}" if prefix != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.4g}TiB"  # pragma: no cover - unreachable

def format_seconds(seconds: float) -> str:
    """Format a duration, auto-selecting s/ms/µs."""
    if seconds >= 1.0:
        return f"{seconds:.3g}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g}ms"
    return f"{seconds * 1e6:.3g}µs"


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned ASCII table.

    Cell values are converted with ``str``; floats keep 4 significant digits.
    """

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def ascii_series(name: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """Render one named (x, y) series on a single line, for figure data."""
    pairs = ", ".join(f"{x}={y:.4g}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
