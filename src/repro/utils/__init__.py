"""Small shared utilities: deterministic RNG helpers and text reporting."""

from repro.utils.rng import RngFactory, ensure_rng
from repro.utils.format import (
    format_bytes,
    format_seconds,
    format_si,
    ascii_table,
    ascii_series,
)

__all__ = [
    "RngFactory",
    "ensure_rng",
    "format_bytes",
    "format_seconds",
    "format_si",
    "ascii_table",
    "ascii_series",
]
