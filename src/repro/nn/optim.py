"""Optimizers: SGD (with momentum) and Adam."""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum/weight decay."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = float(lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def state_bytes(self) -> int:
        """Bytes of optimizer state (device-memory accounting)."""
        return sum(m.nbytes + v.nbytes for m, v in zip(self._m, self._v))
