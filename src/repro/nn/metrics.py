"""Classification metrics for evaluation runs."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions/labels shape mismatch")
    if len(labels) == 0:
        return 0.0
    return float((predictions == labels).mean())


def macro_f1(predictions: np.ndarray, labels: np.ndarray,
             num_classes: int | None = None) -> float:
    """Unweighted mean of per-class F1 scores.

    Classes absent from both predictions and labels are skipped (the OGB
    convention); returns 0 when nothing is scorable.
    """
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError("predictions/labels shape mismatch")
    if len(labels) == 0:
        return 0.0
    if num_classes is None:
        num_classes = int(max(predictions.max(initial=0),
                              labels.max(initial=0))) + 1
    scores = []
    for cls in range(num_classes):
        predicted = predictions == cls
        actual = labels == cls
        true_positive = int((predicted & actual).sum())
        if not predicted.any() and not actual.any():
            continue
        precision_denominator = int(predicted.sum())
        recall_denominator = int(actual.sum())
        precision = (true_positive / precision_denominator
                     if precision_denominator else 0.0)
        recall = (true_positive / recall_denominator
                  if recall_denominator else 0.0)
        if precision + recall == 0.0:
            scores.append(0.0)
        else:
            scores.append(2 * precision * recall / (precision + recall))
    if not scores:
        return 0.0
    return float(np.mean(scores))


def logits_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Accuracy of argmax predictions from a logits matrix."""
    logits = np.asarray(logits)
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D")
    return accuracy(logits.argmax(axis=1), labels)
